// Policy explorer: interactive sweep of the two knobs an operator actually
// owns — the cost-function trade-off (alpha) and the power-management
// idleness threshold — on a medium-size system, printing the
// energy/response frontier for each combination.
//
//   $ ./policy_explorer
#include <iostream>

#include "core/cost_scheduler.hpp"
#include "placement/placement.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  storage::SystemConfig system;
  const double breakeven = system.power.breakeven_seconds();

  placement::ZipfPlacementConfig pcfg;
  pcfg.num_disks = 60;
  pcfg.num_data = 8000;
  pcfg.replication_factor = 3;
  const auto placement = placement::make_zipf_placement(pcfg);

  trace::SyntheticTraceConfig tcfg = trace::cello_like_config();
  tcfg.num_requests = 15000;
  tcfg.num_data = 8000;
  tcfg.mean_rate = 12.0;
  const auto trace = trace::make_synthetic_trace(tcfg);

  std::cout << "60 disks, rf=3, " << tcfg.num_requests
            << " bursty requests; breakeven T_B = " << breakeven << " s\n\n";

  util::Table t({"alpha", "threshold", "norm_energy", "mean_resp_ms",
                 "p99_resp_ms", "spin_cycles"});
  for (double alpha : {0.0, 0.2, 0.5, 1.0}) {
    for (double threshold_factor : {0.5, 1.0, 2.0}) {
      core::CostFunctionScheduler sched(core::CostParams{alpha, 100.0});
      power::FixedThresholdPolicy policy(breakeven * threshold_factor);
      const auto r =
          storage::run_online(system, placement, trace, sched, policy);
      t.row()
          .cell(alpha, 1)
          .cell(std::to_string(threshold_factor).substr(0, 3) + "x T_B")
          .cell(r.normalized_energy(system.power))
          .cell(r.mean_response() * 1e3, 1)
          .cell(r.response_times.p99() * 1e3, 1)
          .cell(static_cast<long long>(r.total_spin_ups()));
    }
  }
  t.print(std::cout);
  std::cout << "\nReading the frontier: alpha trades response time for "
               "energy (0 = pure performance, 1 = pure energy); thresholds "
               "below the breakeven spin down eagerly and pay extra wake "
               "cycles, thresholds above sleep late and waste idle power. "
               "The 2CPM guarantee holds only at exactly 1.0x T_B.\n";
  return 0;
}
