// Declaring and running an experiment grid on the parallel SweepRunner:
// the §4.3 roster over two replication factors, executed concurrently,
// with the same results no matter how many worker threads run it.
//
// Output goes through the composable sink API: the builder selects the
// primary format plus the observability sinks (here: metrics, and a Chrome
// trace written next to the results — load sweep_grid.trace.json in
// Perfetto to see each cell's per-disk power-state timeline).
//
//   $ ./sweep_grid                      # aligned table + metrics + trace
//   $ EAS_EMIT=json EAS_THREADS=8 ./sweep_grid
#include <iostream>

#include "runner/sinks.hpp"
#include "runner/sweep.hpp"

using namespace eas;

int main() {
  // A validated parameter set (builder throws on nonsense values) scaled
  // down from the paper's 70k requests so the example finishes in seconds.
  // trace()/metrics() switch the recorder and registry on for every run of
  // every cell; sink() says where the artifacts go. build() cross-checks
  // the two (a sink cannot ask for artifacts no run produces).
  runner::SinkConfig out = runner::SinkConfig::from_env();  // EAS_EMIT compat
  out.with_metrics = true;
  out.with_trace = true;
  out.trace_path = "sweep_grid.trace.json";
  const auto base = runner::ExperimentBuilder(runner::Workload::kCello)
                        .requests(5000)
                        .trace({.categories = obs::cat_bit(obs::Cat::kPower) |
                                              obs::cat_bit(obs::Cat::kBatch),
                                .capacity = 1u << 15})
                        .metrics()
                        .sink(out)
                        .build();

  // One cell per (rf, scheduler); every cell shares the same immutable
  // trace, and the two rf axis points each share one placement.
  auto cells = runner::product_grid(
      base, {"always-on", "static", "heuristic", "wsc", "mwis"}, {"1", "3"},
      [](const runner::ExperimentParams& b, const std::string& tag) {
        return runner::ExperimentBuilder(b)
            .replication(tag == "1" ? 1 : 3)
            .build();
      });

  runner::SweepOptions opts;
  opts.progress = &std::cerr;  // "# sweep: ..." summary line
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  // One sink handles everything: the raw per-cell dump in the selected
  // format, then the merged metrics line and the combined trace file.
  const auto sink = runner::make_sink(base.sink, std::cout);
  sink->cells(results);

  // Figure-style pivots ride the same sink: rows = rf, cols = schedulers.
  const auto power = runner::paper_system_config().power;
  runner::ResultTable t("normalized energy",
                        {"rf", "always-on", "static", "heuristic", "wsc",
                         "mwis"});
  for (const std::string tag : {"1", "3"}) {
    t.row().cell(tag);
    for (const char* name :
         {"always-on", "static", "heuristic", "wsc", "mwis"}) {
      t.cell(runner::find_cell(results, tag, name)
                 .result.normalized_energy(power));
    }
  }
  sink->table(t);
  return 0;
}
