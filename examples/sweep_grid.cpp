// Declaring and running an experiment grid on the parallel SweepRunner:
// the §4.3 roster over two replication factors, executed concurrently,
// with the same results no matter how many worker threads run it.
//
//   $ ./sweep_grid                      # aligned table
//   $ EAS_EMIT=json EAS_THREADS=8 ./sweep_grid
#include <iostream>

#include "runner/emit.hpp"
#include "runner/sweep.hpp"

using namespace eas;

int main() {
  // A validated parameter set (builder throws on nonsense values) scaled
  // down from the paper's 70k requests so the example finishes in seconds.
  const auto base = runner::ExperimentBuilder(runner::Workload::kCello)
                        .requests(5000)
                        .build();

  // One cell per (rf, scheduler); every cell shares the same immutable
  // trace, and the two rf axis points each share one placement.
  auto cells = runner::product_grid(
      base, {"always-on", "static", "heuristic", "wsc", "mwis"}, {"1", "3"},
      [](const runner::ExperimentParams& b, const std::string& tag) {
        return runner::ExperimentBuilder(b)
            .replication(tag == "1" ? 1 : 3)
            .build();
      });

  runner::SweepOptions opts;
  opts.progress = &std::cerr;  // "# sweep: ..." summary line
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  // Raw per-cell dump (status, wall time, RSS, full result in JSON mode).
  runner::emit_cells(std::cout, results, runner::emit_format_from_env());

  // Or pivot into a figure-style table: rows = rf, columns = schedulers.
  const auto power = runner::paper_system_config().power;
  runner::ResultTable t("normalized energy",
                        {"rf", "always-on", "static", "heuristic", "wsc",
                         "mwis"});
  for (const std::string tag : {"1", "3"}) {
    t.row().cell(tag);
    for (const char* name :
         {"always-on", "static", "heuristic", "wsc", "mwis"}) {
      t.cell(runner::find_cell(results, tag, name)
                 .result.normalized_energy(power));
    }
  }
  t.emit(std::cout, runner::emit_format_from_env());
  return 0;
}
