// Trace replay: run a block-level I/O trace (real or synthetic) through the
// storage simulator with a chosen scheduler and print a full report.
//
// Usage:
//   ./trace_replay [--trace FILE] [--scheduler NAME] [--policy POLICY]
//                  [--rf N] [--disks N] [--zipf Z] [--alpha A] [--beta B]
//                  [--batch SECONDS] [--requests N]
//                  [--workload cello|financial]
//
// NAME in {static, random, heuristic, predictive, wsc, mwis, always-on};
// POLICY in {2cpm, covering} (online schedulers only). Without --trace, a
// synthetic workload is generated (--workload picks the preset). Supported
// trace formats by extension: .spc (UMass/SPC CSV), .cello (textual Cello
// export), .csv (this library's own format, see trace/parsers.hpp).
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "core/mwis_scheduler.hpp"
#include "core/predictive_scheduler.hpp"
#include "core/wsc_scheduler.hpp"
#include "placement/placement.hpp"
#include "power/covering_subset.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/parsers.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

using namespace eas;

namespace {

struct Options {
  std::string trace_file;
  std::string scheduler = "heuristic";
  std::string policy = "2cpm";
  std::string workload = "cello";
  unsigned rf = 3;
  DiskId disks = 60;
  double zipf = 1.0;
  double alpha = 0.2;
  double beta = 100.0;
  double batch = 0.1;
  std::size_t requests = 20000;
};

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--trace") o.trace_file = next();
    else if (flag == "--scheduler") o.scheduler = next();
    else if (flag == "--policy") o.policy = next();
    else if (flag == "--workload") o.workload = next();
    else if (flag == "--rf") o.rf = static_cast<unsigned>(std::stoul(next()));
    else if (flag == "--disks") o.disks = static_cast<DiskId>(std::stoul(next()));
    else if (flag == "--zipf") o.zipf = std::stod(next());
    else if (flag == "--alpha") o.alpha = std::stod(next());
    else if (flag == "--beta") o.beta = std::stod(next());
    else if (flag == "--batch") o.batch = std::stod(next());
    else if (flag == "--requests") o.requests = std::stoul(next());
    else {
      std::cerr << "unknown flag " << flag << "\n";
      std::exit(2);
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);

  // Workload: parse a file or synthesise one.
  trace::Trace t;
  if (!o.trace_file.empty()) {
    try {
      t = trace::load_trace_file(o.trace_file).densified();
    } catch (const std::exception& e) {
      std::cerr << "failed to load trace: " << e.what() << "\n";
      return 1;
    }
    if (o.requests > 0) t = t.prefix(o.requests);
  } else {
    auto cfg = o.workload == "financial" ? trace::financial_like_config()
                                         : trace::cello_like_config();
    cfg.num_requests = o.requests;
    t = trace::make_synthetic_trace(cfg);
  }
  const auto stats = t.compute_stats();
  std::cout << "trace: " << stats.num_records << " reads over "
            << stats.num_distinct_data << " data items, "
            << stats.duration_seconds << " s (rate " << stats.mean_rate
            << "/s, interarrival CV " << stats.interarrival_cv << ")\n";

  placement::ZipfPlacementConfig pcfg;
  pcfg.num_disks = o.disks;
  pcfg.num_data = std::max<DataId>(t.data_universe_size(), 1);
  pcfg.replication_factor = o.rf;
  pcfg.zipf_z = o.zipf;
  const auto placement = placement::make_zipf_placement(pcfg);

  storage::SystemConfig system;
  core::CostParams cost{o.alpha, o.beta};

  // Power policy for the online schedulers.
  auto make_policy = [&]() -> std::unique_ptr<power::PowerPolicy> {
    if (o.policy == "covering") {
      system.initial_state = disk::DiskState::Idle;
      return std::make_unique<power::CoveringSubsetPolicy>(placement);
    }
    if (o.policy != "2cpm") {
      std::cerr << "unknown policy '" << o.policy << "'\n";
      std::exit(2);
    }
    return std::make_unique<power::FixedThresholdPolicy>();
  };

  storage::RunResult result;
  if (o.scheduler == "static") {
    core::StaticScheduler s;
    const auto p = make_policy();
    result = storage::run_online(system, placement, t, s, *p);
  } else if (o.scheduler == "random") {
    core::RandomScheduler s;
    const auto p = make_policy();
    result = storage::run_online(system, placement, t, s, *p);
  } else if (o.scheduler == "heuristic") {
    core::CostFunctionScheduler s(cost);
    const auto p = make_policy();
    result = storage::run_online(system, placement, t, s, *p);
  } else if (o.scheduler == "predictive") {
    core::PredictiveParams pp;
    pp.cost = cost;
    core::PredictiveCostScheduler s(pp);
    const auto p = make_policy();
    result = storage::run_online(system, placement, t, s, *p);
  } else if (o.scheduler == "wsc") {
    core::WscBatchScheduler s(o.batch, cost);
    power::FixedThresholdPolicy p;
    result = storage::run_batch(system, placement, t, s, p);
  } else if (o.scheduler == "mwis") {
    core::MwisOfflineScheduler s;
    const auto assignment = s.schedule(t, placement, system.power);
    result = storage::run_offline(system, placement, t, assignment, s.name());
  } else if (o.scheduler == "always-on") {
    result = storage::run_always_on(system, placement, t);
  } else {
    std::cerr << "unknown scheduler '" << o.scheduler << "'\n";
    return 2;
  }

  util::Table r({"metric", "value"});
  r.row().cell("scheduler").cell(result.scheduler_name);
  r.row().cell("power policy").cell(result.policy_name);
  r.row().cell("requests served").cell(
      static_cast<long long>(result.total_requests));
  r.row().cell("horizon (s)").cell(result.horizon, 1);
  r.row().cell("total energy (kJ)").cell(result.total_energy() / 1e3, 2);
  r.row().cell("energy vs always-on").cell(
      result.normalized_energy(system.power));
  r.row().cell("spin-ups / spin-downs").cell(
      std::to_string(result.total_spin_ups()) + " / " +
      std::to_string(result.total_spin_downs()));
  r.row().cell("requests that waited on spin-up").cell(
      static_cast<long long>(result.requests_waited_spinup));
  r.row().cell("mean response (ms)").cell(result.mean_response() * 1e3, 2);
  if (!result.response_times.empty()) {
    r.row().cell("median response (ms)").cell(
        result.response_times.median() * 1e3, 2);
    r.row().cell("p90 response (ms)").cell(result.response_times.p90() * 1e3, 2);
    r.row().cell("p99 response (ms)").cell(result.response_times.p99() * 1e3, 2);
    r.row().cell("max response (s)").cell(result.response_times.quantile(1.0), 2);
  }
  r.print(std::cout);
  return 0;
}
