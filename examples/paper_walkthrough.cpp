// Walkthrough of the paper's §2.3 / Fig 2-4 worked examples, computed by
// the library: the batch schedules A and B, the offline schedules B and C,
// the MWIS conflict graph, and the exact and greedy MWIS solutions.
//
//   $ ./paper_walkthrough
#include <iostream>
#include <vector>

#include "core/conflict_graph.hpp"
#include "core/mwis_scheduler.hpp"
#include "core/offline_eval.hpp"
#include "disk/params.hpp"
#include "graph/mwis.hpp"
#include "placement/placement.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"

using namespace eas;

namespace {

placement::PlacementMap example_placement() {
  std::vector<std::vector<DiskId>> locs = {
      {0}, {0, 1}, {0, 1, 3}, {2, 3}, {0, 3}, {2, 3}};
  return placement::PlacementMap(4, std::move(locs));
}

trace::Trace trace_at(const std::vector<double>& times) {
  std::vector<trace::TraceRecord> recs;
  for (DataId b = 0; b < times.size(); ++b) {
    recs.push_back({times[b], b, 512 * 1024, true});
  }
  return trace::Trace(std::move(recs));
}

core::OfflineAssignment schedule(std::vector<DiskId> disks) {
  core::OfflineAssignment a;
  a.disk_of_request = std::move(disks);
  return a;
}

void show(const char* label, const trace::Trace& t,
          const core::OfflineAssignment& a,
          const disk::DiskPowerParams& p) {
  const auto report = core::evaluate_offline(t, a, 4, p);
  std::cout << "  " << label << ": total energy = " << report.total_energy()
            << " J (";
  for (DiskId k = 0; k < 4; ++k) {
    if (report.disk_stats[k].total_joules() > 0) {
      std::cout << " d" << k + 1 << "=" << report.disk_stats[k].total_joules();
    }
  }
  std::cout << " )\n";
}

}  // namespace

int main() {
  const auto p = disk::example_power_params();  // 1 W idle, T_B = 5 s
  const auto placement = example_placement();

  std::cout << "Power model: idle 1 W, no spin cost, breakeven T_B = 5 s\n"
            << "Placement: d1{b1,b2,b3,b5} d2{b2,b3} d3{b4,b6} d4{b3,b4,b5,b6}\n\n";

  std::cout << "== Fig 2: batch example (all requests at t=0) ==\n";
  const auto batch = trace_at({0, 0, 0, 0, 0, 0});
  show("schedule A (r1,r5->d1; r2,r3->d2; r4,r6->d3)", batch,
       schedule({0, 1, 1, 2, 0, 2}), p);
  show("schedule B (r1,r2,r3,r5->d1; r4,r6->d3)    ", batch,
       schedule({0, 0, 0, 2, 0, 2}), p);
  std::cout << "  always-on over the same horizon: 20 J\n\n";

  std::cout << "== Fig 3: offline example (arrivals 0,1,3,5,12,13) ==\n";
  const auto offline = trace_at({0, 1, 3, 5, 12, 13});
  show("schedule B", offline, schedule({0, 0, 0, 2, 0, 2}), p);
  show("schedule C (r1..r3->d1; r4->d3; r5,r6->d4) ", offline,
       schedule({0, 0, 0, 2, 3, 3}), p);
  std::cout << '\n';

  std::cout << "== Fig 4: MWIS pipeline on the offline example ==\n";
  core::ConflictGraphOptions gopts;
  gopts.successor_horizon = 2;
  const auto graph = core::build_conflict_graph(offline, placement, p, gopts);
  util::Table t({"node", "X(i,j,k)", "weight (J)"});
  for (const auto& n : graph.nodes) {
    t.row()
        .cell(std::string())
        .cell("X(" + std::to_string(n.i + 1) + "," + std::to_string(n.j + 1) +
              "," + std::to_string(n.k + 1) + ")")
        .cell(n.weight, 0);
  }
  t.print(std::cout);
  std::cout << "conflict edges: " << graph.num_edges() << "\n";

  const auto exact = graph::exact_mwis(graph.to_weighted_graph());
  std::cout << "exact MWIS total saving: " << exact.total_weight
            << " J  (ceiling 30 J - optimal 19 J = 11 J)\n";

  core::MwisOptions mopts;
  mopts.algorithm = core::MwisOptions::Algorithm::kExact;
  mopts.graph = gopts;
  core::MwisOfflineScheduler sched(mopts);
  const auto assignment = sched.schedule(offline, placement, p);
  std::cout << "derived schedule:";
  for (std::size_t r = 0; r < assignment.disk_of_request.size(); ++r) {
    std::cout << " r" << r + 1 << "->d" << assignment.disk_of_request[r] + 1;
  }
  std::cout << '\n';
  show("MWIS schedule", offline, assignment, p);
  return 0;
}
