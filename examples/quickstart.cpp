// Quickstart: the smallest end-to-end use of libeasched.
//
// Builds a 24-disk replicated storage system, generates a bursty synthetic
// read trace, and runs it twice — once routing every request to its primary
// copy (Static) and once with the paper's energy-aware online heuristic —
// then compares energy, spin cycles and response time.
//
//   $ ./quickstart
#include <iostream>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "placement/placement.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  // 1. Describe the fleet: 24 disks with the default (Cheetah/Barracuda)
  //    performance and power model; disks start spun down.
  storage::SystemConfig system;  // defaults are the paper's disk model

  // 2. Place 2,000 data items with 3 copies each: originals Zipf-skewed
  //    across the disks, replicas uniform — the usual fault-tolerant layout.
  placement::ZipfPlacementConfig pcfg;
  pcfg.num_disks = 24;
  pcfg.num_data = 2000;
  pcfg.replication_factor = 3;
  pcfg.zipf_z = 1.0;
  const auto placement = placement::make_zipf_placement(pcfg);

  // 3. Generate a 10,000-request bursty read workload over those items.
  trace::SyntheticTraceConfig tcfg;
  tcfg.num_requests = 10000;
  tcfg.num_data = 2000;
  tcfg.mean_rate = 6.0;                // sparse enough that sleeping pays
  tcfg.burst_rate_multiplier = 30.0;
  tcfg.burst_time_fraction = 0.05;
  const auto trace = trace::make_synthetic_trace(tcfg);

  // 4. Run the same trace under both schedulers; 2CPM manages spin-downs.
  core::StaticScheduler static_sched;
  core::CostFunctionScheduler energy_aware;  // alpha=0.2, beta=100
  power::FixedThresholdPolicy p1, p2;        // 2CPM (threshold = breakeven)
  const auto baseline =
      storage::run_online(system, placement, trace, static_sched, p1);
  const auto improved =
      storage::run_online(system, placement, trace, energy_aware, p2);

  // 5. Compare.
  util::Table t({"metric", "static", "energy-aware heuristic"});
  t.row()
      .cell("energy (kJ)")
      .cell(baseline.total_energy() / 1e3, 1)
      .cell(improved.total_energy() / 1e3, 1);
  t.row()
      .cell("energy vs always-on")
      .cell(baseline.normalized_energy(system.power))
      .cell(improved.normalized_energy(system.power));
  t.row()
      .cell("disk spin-ups")
      .cell(static_cast<long long>(baseline.total_spin_ups()))
      .cell(static_cast<long long>(improved.total_spin_ups()));
  t.row()
      .cell("mean response (ms)")
      .cell(baseline.mean_response() * 1e3, 1)
      .cell(improved.mean_response() * 1e3, 1);
  t.row()
      .cell("p99 response (ms)")
      .cell(baseline.response_times.p99() * 1e3, 1)
      .cell(improved.response_times.p99() * 1e3, 1);
  t.print(std::cout);

  const double saved = 100.0 * (1.0 - improved.total_energy() /
                                          baseline.total_energy());
  std::cout << "\nenergy-aware scheduling saved " << saved
            << "% energy on the same workload and placement.\n";
  return 0;
}
