// Mixed read/write workload with the two extensions enabled: write
// off-loading (§2.1's assumed substrate) and the prediction-augmented
// online scheduler (§3.3's suggested refinement).
//
//   $ ./mixed_workload
#include <iostream>

#include "core/cost_scheduler.hpp"
#include "core/predictive_scheduler.hpp"
#include "core/write_offload.hpp"
#include "placement/placement.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  storage::SystemConfig system;

  placement::ZipfPlacementConfig pcfg;
  pcfg.num_disks = 36;
  pcfg.num_data = 4000;
  pcfg.replication_factor = 3;
  const auto placement = placement::make_zipf_placement(pcfg);

  // 30% writes — §2.1 assumes these are off-loaded away from the scheduler.
  trace::SyntheticTraceConfig tcfg = trace::cello_like_config();
  tcfg.num_requests = 20000;
  tcfg.num_data = 4000;
  tcfg.mean_rate = 8.0;
  tcfg.write_fraction = 0.3;
  const auto trace = trace::make_synthetic_trace(tcfg);
  std::cout << "workload: " << trace.size() << " requests, "
            << trace.size() - trace.reads_only().size() << " writes\n\n";

  util::Table t({"configuration", "norm_energy", "spin_ups", "mean_resp_ms",
                 "diverted_writes"});
  auto report = [&](const std::string& label, const storage::RunResult& r,
                    const core::WriteOffloadManager& offloader) {
    t.row()
        .cell(label)
        .cell(r.normalized_energy(system.power))
        .cell(static_cast<long long>(r.total_spin_ups()))
        .cell(r.mean_response() * 1e3, 1)
        .cell(static_cast<long long>(offloader.stats().writes_diverted));
  };

  {  // naive: every write wakes its home disk, plain heuristic for reads
    core::CostFunctionScheduler sched;
    power::FixedThresholdPolicy policy;
    core::WriteOffloadOptions opts;
    opts.enabled = false;
    core::WriteOffloadManager offloader(opts);
    report("heuristic / wake-home writes",
           storage::run_online_mixed(system, placement, trace, sched, policy,
                                     offloader),
           offloader);
  }
  {  // write off-loading on
    core::CostFunctionScheduler sched;
    power::FixedThresholdPolicy policy;
    core::WriteOffloadManager offloader;
    report("heuristic / write off-loading",
           storage::run_online_mixed(system, placement, trace, sched, policy,
                                     offloader),
           offloader);
  }
  {  // off-loading + popularity prediction
    core::PredictiveCostScheduler sched;
    power::FixedThresholdPolicy policy;
    core::WriteOffloadManager offloader;
    report("predictive / write off-loading",
           storage::run_online_mixed(system, placement, trace, sched, policy,
                                     offloader),
           offloader);
  }
  t.print(std::cout);
  std::cout << "\nWrite off-loading keeps sleeping home disks asleep by "
               "parking fresh blocks on already-spinning disks; reads of "
               "diverted blocks follow them until the home disk's next "
               "wake-up reclaims the data for free.\n";
  return 0;
}
