// Ablation: optimality gap of the greedy solvers on small instances where
// the exact solvers are tractable — greedy weighted set cover vs exact
// cover, and GWMIN(+refinement) vs exact MWIS on random offline scheduling
// instances. §5.1 conjectures "more sophisticated set cover and independent
// set algorithms" would save more; this quantifies how much is on the table.
#include <iostream>

#include "core/mwis_scheduler.hpp"
#include "core/offline_eval.hpp"
#include "graph/set_cover.hpp"
#include "placement/placement.hpp"
#include "runner/emit.hpp"
#include "stats/summary.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

using namespace eas;

namespace {

disk::DiskPowerParams small_power() {
  disk::DiskPowerParams p;
  p.idle_watts = 1.0;
  p.active_watts = 1.0;
  p.standby_watts = 0.0;
  p.spinup_watts = 2.0;
  p.spindown_watts = 1.0;
  p.spinup_seconds = 1.0;
  p.spindown_seconds = 1.0;  // T_B = 3 s, window 5 s
  return p;
}

}  // namespace

int main() {
  const int kRounds = 200;

  // --- greedy vs exact weighted set cover -------------------------------
  {
    stats::SummaryStats ratio;
    int optimal_hits = 0;
    for (int round = 0; round < kRounds; ++round) {
      util::Rng rng(1000 + round);
      graph::SetCoverInstance inst;
      inst.num_elements = 14;
      for (int s = 0; s < 12; ++s) {
        graph::SetCoverInstance::Set set;
        set.weight = rng.uniform(0.2, 5.0);
        for (std::size_t e = 0; e < inst.num_elements; ++e) {
          if (rng.bernoulli(0.3)) set.elements.push_back(e);
        }
        inst.sets.push_back(std::move(set));
      }
      graph::SetCoverInstance::Set universal;
      universal.weight = 25.0;
      for (std::size_t e = 0; e < inst.num_elements; ++e) {
        universal.elements.push_back(e);
      }
      inst.sets.push_back(std::move(universal));

      const auto greedy = graph::greedy_weighted_set_cover(inst);
      const auto exact = graph::exact_set_cover(inst);
      const double r = greedy.total_weight / exact->total_weight;
      ratio.add(r);
      if (r < 1.0 + 1e-9) ++optimal_hits;
    }
    runner::ResultTable t("Ablation: greedy vs exact weighted set cover (" +
                              std::to_string(kRounds) +
                              " random batch instances)",
                          {"metric", "value"});
    t.row().cell("mean weight ratio (greedy/opt)").cell(ratio.mean(), 4);
    t.row().cell("max weight ratio").cell(ratio.max(), 4);
    t.row().cell("instances solved optimally").cell(
        std::to_string(optimal_hits) + " / " + std::to_string(kRounds));
    t.emit(std::cout, runner::emit_format_from_env());
    std::cout << "\n";
  }

  // --- GWMIN / GWMIN2 / +refine vs exact MWIS on scheduling instances ----
  {
    const auto power = small_power();
    struct Variant {
      const char* label;
      core::MwisOptions opts;
    };
    std::vector<Variant> variants;
    {
      core::MwisOptions o;
      o.algorithm = core::MwisOptions::Algorithm::kGwmin;
      o.refine_passes = 0;
      o.graph.successor_horizon = 8;
      variants.push_back({"gwmin (paper)", o});
      o.algorithm = core::MwisOptions::Algorithm::kGwmin2;
      variants.push_back({"gwmin2", o});
      o.algorithm = core::MwisOptions::Algorithm::kGwmin;
      o.refine_passes = 3;
      variants.push_back({"gwmin+refine", o});
    }

    std::vector<stats::SummaryStats> ratios(variants.size());
    std::vector<int> hits(variants.size(), 0);
    int rounds_used = 0;
    for (int round = 0; round < kRounds; ++round) {
      util::Rng rng(5000 + round);
      // 10 requests, 4 disks, rf 2.
      std::vector<std::vector<DiskId>> locs(10);
      for (auto& l : locs) {
        while (l.size() < 2) {
          const auto k = static_cast<DiskId>(rng.next_below(4));
          if (std::find(l.begin(), l.end(), k) == l.end()) l.push_back(k);
        }
      }
      placement::PlacementMap placement(4, std::move(locs));
      std::vector<trace::TraceRecord> recs;
      double t = 0.0;
      for (DataId b = 0; b < 10; ++b) {
        t += rng.uniform(0.2, 3.0);
        recs.push_back({t, b, 4096, true});
      }
      const trace::Trace trace(std::move(recs));
      const double horizon =
          trace.end_time() + power.breakeven_seconds() + power.spindown_seconds;

      core::MwisOptions exact_opts;
      exact_opts.algorithm = core::MwisOptions::Algorithm::kExact;
      exact_opts.graph.successor_horizon = 10;
      exact_opts.exact_vertex_limit = 400;
      exact_opts.refine_passes = 0;
      core::MwisOfflineScheduler exact_sched(exact_opts);
      const auto exact_assignment =
          exact_sched.schedule(trace, placement, power);
      const double exact_energy =
          core::evaluate_offline(trace, exact_assignment, 4, power, horizon)
              .total_energy();
      if (exact_energy <= 0.0) continue;
      ++rounds_used;

      for (std::size_t v = 0; v < variants.size(); ++v) {
        core::MwisOfflineScheduler sched(variants[v].opts);
        const auto a = sched.schedule(trace, placement, power);
        const double e =
            core::evaluate_offline(trace, a, 4, power, horizon).total_energy();
        const double r = e / exact_energy;
        ratios[v].add(r);
        if (r < 1.0 + 1e-9) ++hits[v];
      }
    }
    runner::ResultTable t(
        "Ablation: greedy MWIS variants vs exact, offline scheduling energy "
        "(" + std::to_string(rounds_used) + " random instances)",
        {"variant", "mean energy ratio", "max energy ratio",
         "optimal instances"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
      t.row()
          .cell(variants[v].label)
          .cell(ratios[v].mean(), 4)
          .cell(ratios[v].max(), 4)
          .cell(std::to_string(hits[v]) + " / " + std::to_string(rounds_used));
    }
    t.emit(std::cout, runner::emit_format_from_env());
    std::cout << "\nExpected shape: all greedies within a few percent of "
                 "exact; refinement closes most of GWMIN's residual gap.\n";
  }
  return 0;
}
