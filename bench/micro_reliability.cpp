// Micro-benchmarks: reliability-tier hot paths. backoff_delay runs once per
// deadline miss and must stay a pure register computation (two hash mixes +
// an ldexp); these benches track that constant factor so the retry path
// never becomes a reason to avoid enabling the tier.
#include <benchmark/benchmark.h>

#include "reliability/retry_policy.hpp"

using namespace eas;

namespace {

void BM_BackoffDelay(benchmark::State& state) {
  const reliability::RetryPolicy policy(0.010, 1.0, 0.5, 0x5eed);
  RequestId id = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += policy.backoff_delay(id, 2);
    ++id;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BackoffDelay);

void BM_BackoffDelayAttemptLadder(benchmark::State& state) {
  // One full retry ladder per iteration: the per-request worst case when
  // every attempt up to the budget times out.
  const reliability::RetryPolicy policy(0.010, 1.0, 0.5, 0x5eed);
  const auto attempts = static_cast<std::uint32_t>(state.range(0));
  RequestId id = 0;
  double acc = 0.0;
  for (auto _ : state) {
    for (std::uint32_t a = 2; a <= attempts + 1; ++a) {
      acc += policy.backoff_delay(id, a);
    }
    ++id;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          attempts);
}
BENCHMARK(BM_BackoffDelayAttemptLadder)->Arg(3)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
