// Shared experiment driver for the figure-reproduction benches.
//
// Encapsulates the paper's §4 setup: a 180-disk system, Cheetah/Barracuda
// disk parameters, 2CPM power management, Zipf-original/uniform-replica
// placement, 70k-request workloads, and the five §4.3 schedulers. Each
// bench binary sweeps the parameter its figure varies and prints the same
// series the figure plots.
#pragma once

#include <cstdint>
#include <string>

#include "core/energy_model.hpp"
#include "placement/placement.hpp"
#include "storage/storage_system.hpp"
#include "trace/trace.hpp"

namespace eas::bench {

enum class Workload { kCello, kFinancial };
const char* to_string(Workload w);

/// One experiment configuration (defaults = the paper's primary setup).
struct ExperimentParams {
  Workload workload = Workload::kCello;
  std::uint64_t trace_seed = 1;
  std::size_t num_requests = 70000;  ///< §4.1

  DiskId num_disks = 180;            ///< §4.2
  unsigned replication_factor = 3;
  double zipf_z = 1.0;               ///< original-location skew
  std::uint64_t placement_seed = 42;

  core::CostParams cost{};           ///< §4.3: alpha=0.2, beta=100
  double batch_interval = 0.1;       ///< §4.3: 0.1 s WSC batching
  std::size_t mwis_horizon = 4;      ///< conflict-graph successor horizon
  std::size_t mwis_refine_passes = 8;
};

/// The calibrated synthetic stand-in for the named trace (see DESIGN.md §1).
trace::Trace make_workload(Workload w, std::uint64_t seed,
                           std::size_t num_requests = 70000);

placement::PlacementMap make_placement(const ExperimentParams& p);

/// §4: Cheetah 15K.5 service model + Barracuda power model, disks initially
/// standby.
storage::SystemConfig paper_system_config();

// One runner per §4.3 scheduler row. All are deterministic in the params'
// seeds. The trace/placement are passed in so sweeps reuse them.
storage::RunResult run_always_on(const ExperimentParams& p,
                                 const trace::Trace& trace,
                                 const placement::PlacementMap& placement);
storage::RunResult run_random(const ExperimentParams& p,
                              const trace::Trace& trace,
                              const placement::PlacementMap& placement);
storage::RunResult run_static(const ExperimentParams& p,
                              const trace::Trace& trace,
                              const placement::PlacementMap& placement);
storage::RunResult run_heuristic(const ExperimentParams& p,
                                 const trace::Trace& trace,
                                 const placement::PlacementMap& placement);
storage::RunResult run_wsc(const ExperimentParams& p,
                           const trace::Trace& trace,
                           const placement::PlacementMap& placement);
storage::RunResult run_mwis(const ExperimentParams& p,
                            const trace::Trace& trace,
                            const placement::PlacementMap& placement);

/// Header line identifying an experiment (workload, fleet, seeds).
std::string describe(const ExperimentParams& p);

/// Dispatch by scheduler row name: "always-on", "random", "static",
/// "heuristic", "wsc", "mwis". Throws InvariantError on unknown names.
storage::RunResult run_scheduler(const std::string& name,
                                 const ExperimentParams& p,
                                 const trace::Trace& trace,
                                 const placement::PlacementMap& placement);

/// Number of requests honoured by the fig benches: the EAS_REQUESTS
/// environment variable when set (for quick shape checks), else 70000.
std::size_t requests_from_env(std::size_t fallback = 70000);

}  // namespace eas::bench
