#include "common/experiment.hpp"

#include <cstdlib>
#include <sstream>

#include "core/basic_schedulers.hpp"
#include "util/check.hpp"
#include "core/cost_scheduler.hpp"
#include "core/mwis_scheduler.hpp"
#include "core/wsc_scheduler.hpp"
#include "power/fixed_threshold.hpp"
#include "power/policy.hpp"
#include "trace/synthetic.hpp"

namespace eas::bench {

const char* to_string(Workload w) {
  return w == Workload::kCello ? "cello" : "financial1";
}

trace::Trace make_workload(Workload w, std::uint64_t seed,
                           std::size_t num_requests) {
  trace::SyntheticTraceConfig cfg = w == Workload::kCello
                                        ? trace::cello_like_config(seed)
                                        : trace::financial_like_config(seed);
  cfg.num_requests = num_requests;
  return trace::make_synthetic_trace(cfg);
}

placement::PlacementMap make_placement(const ExperimentParams& p) {
  placement::ZipfPlacementConfig cfg;
  cfg.num_disks = p.num_disks;
  // The data universe must cover every id the workload references.
  cfg.num_data = 32768;
  cfg.replication_factor = p.replication_factor;
  cfg.zipf_z = p.zipf_z;
  cfg.seed = p.placement_seed;
  return placement::make_zipf_placement(cfg);
}

storage::SystemConfig paper_system_config() {
  storage::SystemConfig cfg;  // DiskPowerParams/DiskPerfParams defaults are
                              // the Fig 5 values; see disk/params.hpp.
  cfg.initial_state = disk::DiskState::Standby;
  return cfg;
}

storage::RunResult run_always_on(const ExperimentParams& /*p*/,
                                 const trace::Trace& trace,
                                 const placement::PlacementMap& placement) {
  return storage::run_always_on(paper_system_config(), placement, trace);
}

storage::RunResult run_random(const ExperimentParams& p,
                              const trace::Trace& trace,
                              const placement::PlacementMap& placement) {
  core::RandomScheduler sched(p.trace_seed ^ 0x5eedULL);
  power::FixedThresholdPolicy policy;
  return storage::run_online(paper_system_config(), placement, trace, sched,
                             policy);
}

storage::RunResult run_static(const ExperimentParams& /*p*/,
                              const trace::Trace& trace,
                              const placement::PlacementMap& placement) {
  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy;
  return storage::run_online(paper_system_config(), placement, trace, sched,
                             policy);
}

storage::RunResult run_heuristic(const ExperimentParams& p,
                                 const trace::Trace& trace,
                                 const placement::PlacementMap& placement) {
  core::CostFunctionScheduler sched(p.cost);
  power::FixedThresholdPolicy policy;
  return storage::run_online(paper_system_config(), placement, trace, sched,
                             policy);
}

storage::RunResult run_wsc(const ExperimentParams& p,
                           const trace::Trace& trace,
                           const placement::PlacementMap& placement) {
  core::WscBatchScheduler sched(p.batch_interval, p.cost);
  power::FixedThresholdPolicy policy;
  return storage::run_batch(paper_system_config(), placement, trace, sched,
                            policy);
}

storage::RunResult run_mwis(const ExperimentParams& p,
                            const trace::Trace& trace,
                            const placement::PlacementMap& placement) {
  core::MwisOptions opts;
  opts.algorithm = core::MwisOptions::Algorithm::kGwmin;
  opts.graph.successor_horizon = p.mwis_horizon;
  opts.refine_passes = p.mwis_refine_passes;
  core::MwisOfflineScheduler sched(opts);
  const auto assignment =
      sched.schedule(trace, placement, paper_system_config().power);
  return storage::run_offline(paper_system_config(), placement, trace,
                              assignment, sched.name());
}

storage::RunResult run_scheduler(const std::string& name,
                                 const ExperimentParams& p,
                                 const trace::Trace& trace,
                                 const placement::PlacementMap& placement) {
  if (name == "always-on") return run_always_on(p, trace, placement);
  if (name == "random") return run_random(p, trace, placement);
  if (name == "static") return run_static(p, trace, placement);
  if (name == "heuristic") return run_heuristic(p, trace, placement);
  if (name == "wsc") return run_wsc(p, trace, placement);
  if (name == "mwis") return run_mwis(p, trace, placement);
  EAS_CHECK_MSG(false, "unknown scheduler row: " << name);
  return {};
}

std::size_t requests_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("EAS_REQUESTS")) {
    const auto n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return fallback;
}

std::string describe(const ExperimentParams& p) {
  std::ostringstream os;
  os << "workload=" << to_string(p.workload) << " requests="
     << p.num_requests << " disks=" << p.num_disks
     << " rf=" << p.replication_factor << " zipf_z=" << p.zipf_z
     << " alpha=" << p.cost.alpha << " beta=" << p.cost.beta
     << " batch=" << p.batch_interval << "s";
  return os.str();
}

}  // namespace eas::bench
