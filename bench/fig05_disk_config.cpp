// Fig 5: the disk model and 2CPM configuration used throughout the
// evaluation (Seagate Cheetah 15K.5 performance + Barracuda power).
#include <iostream>

#include "runner/emit.hpp"
#include "runner/experiment.hpp"

using namespace eas;

int main() {
  const auto cfg = runner::paper_system_config();
  const auto& pw = cfg.power;
  const auto& pf = cfg.perf;

  runner::ResultTable t("Fig 5: 2CPM / disk configuration",
                        {"parameter", "value", "unit"});
  t.row().cell("idle power (P_I)").cell(pw.idle_watts, 1).cell("W");
  t.row().cell("active power").cell(pw.active_watts, 1).cell("W");
  t.row().cell("standby power").cell(pw.standby_watts, 1).cell("W");
  t.row().cell("spin-up power").cell(pw.spinup_watts, 1).cell("W");
  t.row().cell("spin-down power").cell(pw.spindown_watts, 1).cell("W");
  t.row().cell("spin-up time (T_up)").cell(pw.spinup_seconds, 1).cell("s");
  t.row().cell("spin-down time (T_down)").cell(pw.spindown_seconds, 1).cell("s");
  t.row().cell("transition energy (E_up/down)").cell(pw.transition_energy(), 1).cell("J");
  t.row().cell("breakeven time (T_B = E/P_I)").cell(pw.breakeven_seconds(), 1).cell("s");
  t.row().cell("per-request energy ceiling").cell(pw.max_request_energy(), 1).cell("J");
  t.row().cell("saving window (T_B+T_up+T_down)").cell(pw.saving_window_seconds(), 1).cell("s");
  t.row().cell("avg seek").cell(pf.avg_seek_seconds * 1e3, 2).cell("ms");
  t.row().cell("rotational speed").cell(pf.rpm, 0).cell("RPM");
  t.row().cell("avg rotational latency").cell(pf.avg_rotational_latency_seconds() * 1e3, 2).cell("ms");
  t.row().cell("sustained transfer rate").cell(pf.transfer_mb_per_sec, 0).cell("MB/s");
  t.row().cell("512 KB block service time").cell(pf.service_seconds(512 * 1024) * 1e3, 2).cell("ms");
  t.emit(std::cout, runner::emit_format_from_env());
  return 0;
}
