// One full-scale MWIS run for timing. Usage: zz_probe_single [wl] [n] [rf] [h] [passes] [alg2]
#include <cstdlib>
#include <iostream>
#include "runner/experiment.hpp"
#include "core/mwis_scheduler.hpp"
#include "storage/storage_system.hpp"
using namespace eas;
int main(int argc, char** argv) {
  runner::ExperimentParams p;
  if (argc > 1 && std::string(argv[1]) == "financial") p.workload = runner::Workload::kFinancial;
  p.num_requests = 5000;  // quick by default
  if (argc > 2) p.num_requests = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) p.replication_factor = std::atoi(argv[3]);
  core::MwisOptions opts;
  opts.seed = core::MwisOptions::Seed::kSolverOnly;  // probe the solver itself
  if (argc > 4) opts.graph.successor_horizon = std::atoi(argv[4]);
  if (argc > 5) opts.refine_passes = std::atoi(argv[5]);
  if (argc > 6 && std::atoi(argv[6])) opts.algorithm = core::MwisOptions::Algorithm::kGwmin2;
  const auto trace = runner::make_workload(p.workload, p.trace_seed, p.num_requests);
  const auto placement = runner::make_placement(p);
  const auto power = runner::paper_system_config().power;
  core::MwisOfflineScheduler sched(opts);
  auto assignment = sched.schedule(trace, placement, power);
  const auto r = storage::run_offline(runner::paper_system_config(), placement, trace, assignment, sched.name());
  std::cout << sched.name() << " nodes=" << sched.last_graph_nodes() << " edges=" << sched.last_graph_edges()
            << " norm_energy=" << r.normalized_energy(power) << "\n";
  return 0;
}
