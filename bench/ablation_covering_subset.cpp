// Ablation: composing the schedulers with a covering-subset power strategy
// ([16]/[14], cited in §1 as complementary). A minimum disk subset covering
// all data is pinned always-on; everything else runs 2CPM. Measures the
// energy premium of the availability guarantee and the latency it buys,
// across replication factors. The covering rows need a policy built from
// the placement, which the registry factories cannot see at roster-build
// time — so they use CellSpec::run.
#include <iostream>

#include "core/cost_scheduler.hpp"
#include "power/covering_subset.hpp"
#include "power/fixed_threshold.hpp"
#include "runner/emit.hpp"
#include "runner/sweep.hpp"

using namespace eas;

int main() {
  const auto base =
      runner::ExperimentBuilder(runner::Workload::kCello)
          .requests(runner::requests_from_env(30000))
          .initial_state(disk::DiskState::Idle)  // covering disks boot first
          .build();
  const auto power = runner::paper_system_config().power;
  std::cerr << "# covering-subset ablation, " << runner::describe(base)
            << "\n";

  std::vector<runner::CellSpec> cells;
  for (unsigned rf : {1u, 3u, 5u}) {
    const auto p = runner::ExperimentBuilder(base).replication(rf).build();
    {
      runner::CellSpec cell;
      cell.scheduler = "heuristic";
      cell.params = p;
      cell.tag = "2cpm/" + std::to_string(rf);
      cells.push_back(std::move(cell));
    }
    {
      runner::CellSpec cell;
      cell.params = p;
      cell.tag = "covering/" + std::to_string(rf);
      cell.run = [](const runner::ExperimentParams& cp,
                    const trace::Trace& trace,
                    const placement::PlacementMap& placement) {
        const auto config = runner::system_config_for(cp);
        core::CostFunctionScheduler sched(cp.cost);
        power::CoveringSubsetPolicy policy(placement);
        return storage::run_online(config, placement, trace, sched, policy);
      };
      cells.push_back(std::move(cell));
    }
  }

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  runner::ResultTable t(
      "Ablation: 2CPM vs covering-subset pinning (heuristic scheduler)",
      {"rf", "policy", "pinned", "norm_energy", "mean_resp_s", "p99_resp_ms",
       "waited_spinup"});
  for (const auto& cell : results) {
    const auto& r = cell.result;
    const bool covering = cell.spec.tag.rfind("covering/", 0) == 0;
    // covering_size is a pure function of the placement; rebuild the policy
    // here rather than smuggling a side channel out of the cell.
    const std::size_t pinned =
        covering ? power::CoveringSubsetPolicy(*cell.spec.placement)
                       .covering_size()
                 : 0;
    t.row()
        .cell(static_cast<int>(cell.spec.params.replication_factor))
        .cell(covering ? "covering+2cpm" : "2cpm")
        .cell(pinned)
        .cell(r.normalized_energy(power))
        .cell(r.mean_response(), 4)
        .cell(r.response_times.p99() * 1e3, 1)
        .cell(static_cast<unsigned long long>(r.requests_waited_spinup));
  }
  t.emit(std::cout, runner::emit_format_from_env());
  std::cout << "\nExpected shape: pinning shrinks spin-up waits toward zero "
               "and cuts tail latency; the energy premium falls as rf grows "
               "(a higher rf needs fewer pinned disks per data item, and the "
               "scheduler concentrates load on them anyway).\n";
  return 0;
}
