// Ablation: composing the schedulers with a covering-subset power strategy
// ([16]/[14], cited in §1 as complementary). A minimum disk subset covering
// all data is pinned always-on; everything else runs 2CPM. Measures the
// energy premium of the availability guarantee and the latency it buys,
// across replication factors.
#include <iostream>

#include "common/experiment.hpp"
#include "core/cost_scheduler.hpp"
#include "power/covering_subset.hpp"
#include "power/fixed_threshold.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  bench::ExperimentParams params;
  params.num_requests = bench::requests_from_env(30000);
  const auto trace = bench::make_workload(params.workload, params.trace_seed,
                                          params.num_requests);
  auto cfg = bench::paper_system_config();
  cfg.initial_state = disk::DiskState::Idle;  // covering disks boot first
  std::cerr << "# covering-subset ablation, " << bench::describe(params)
            << "\n";

  std::cout << "=== Ablation: 2CPM vs covering-subset pinning (heuristic "
               "scheduler) ===\n";
  util::Table t({"rf", "policy", "pinned", "norm_energy", "mean_resp_s",
                 "p99_resp_ms", "waited_spinup"});
  for (unsigned rf : {1u, 3u, 5u}) {
    bench::ExperimentParams p = params;
    p.replication_factor = rf;
    const auto placement = bench::make_placement(p);

    {
      core::CostFunctionScheduler sched(p.cost);
      power::FixedThresholdPolicy policy;
      const auto r = storage::run_online(cfg, placement, trace, sched, policy);
      t.row()
          .cell(static_cast<int>(rf))
          .cell("2cpm")
          .cell(0)
          .cell(r.normalized_energy(cfg.power))
          .cell(r.mean_response(), 4)
          .cell(r.response_times.p99() * 1e3, 1)
          .cell(static_cast<unsigned long long>(r.requests_waited_spinup));
    }
    {
      core::CostFunctionScheduler sched(p.cost);
      power::CoveringSubsetPolicy policy(placement);
      const auto r = storage::run_online(cfg, placement, trace, sched, policy);
      t.row()
          .cell(static_cast<int>(rf))
          .cell("covering+2cpm")
          .cell(static_cast<std::size_t>(policy.covering_size()))
          .cell(r.normalized_energy(cfg.power))
          .cell(r.mean_response(), 4)
          .cell(r.response_times.p99() * 1e3, 1)
          .cell(static_cast<unsigned long long>(r.requests_waited_spinup));
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: pinning shrinks spin-up waits toward zero "
               "and cuts tail latency; the energy premium falls as rf grows "
               "(a higher rf needs fewer pinned disks per data item, and the "
               "scheduler concentrates load on them anyway).\n";
  return 0;
}
