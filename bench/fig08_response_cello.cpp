// Fig 8: mean request response time vs replication factor, Cello workload.
// MWIS is omitted as in the paper (the offline model suffers no spin-up
// delay, making the comparison vacuous). Paper shape: Heuristic < WSC <
// Static < Random once replicas exist; WSC carries the 0.1 s batching delay.
#include <iostream>

#include "fig_sweep_common.hpp"

using namespace eas;

int main() {
  const std::vector<std::string> schedulers = {"random", "static", "heuristic",
                                               "wsc"};
  const auto sweep = bench::sweep_replication(runner::Workload::kCello,
                                              schedulers);
  bench::pivot_by_rf(
      sweep, "Fig 8: mean response time (s) vs replication factor (Cello)",
      schedulers,
      [](const bench::ReplicationSweep& s, unsigned rf,
         const std::string& name) { return s.at(rf, name).mean_response(); })
      .emit(std::cout, runner::emit_format_from_env());
  return 0;
}
