// Fig 8: mean request response time vs replication factor, Cello workload.
// MWIS is omitted as in the paper (the offline model suffers no spin-up
// delay, making the comparison vacuous). Paper shape: Heuristic < WSC <
// Static < Random once replicas exist; WSC carries the 0.1 s batching delay.
#include <iostream>
#include <map>

#include "fig_sweep_common.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  std::map<unsigned, std::map<std::string, double>> cells;
  bench::sweep_replication(
      bench::Workload::kCello, {"static", "random", "heuristic", "wsc"},
      [&](const bench::SweepRow& row) {
        cells[row.rf][row.scheduler] = row.result.mean_response();
      });

  std::cout << "=== Fig 8: mean response time (s) vs replication factor "
               "(Cello) ===\n";
  util::Table t({"rf", "random", "static", "heuristic", "wsc"});
  for (auto& [rf, by_sched] : cells) {
    t.row()
        .cell(static_cast<int>(rf))
        .cell(by_sched["random"])
        .cell(by_sched["static"])
        .cell(by_sched["heuristic"])
        .cell(by_sched["wsc"]);
  }
  t.print(std::cout);
  return 0;
}
