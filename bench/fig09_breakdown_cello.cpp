// Fig 9: per-disk time breakdown across the four disk states, rf=3, Cello.
// Paper shape: Random keeps nearly every disk idle (a,~0 standby); Static
// sends a long standby tail (b); WSC and MWIS push far more disks into
// majority-standby (c, d) — the source of their energy savings.
#include "fig_breakdown_common.hpp"

int main() {
  std::cout << "=== Fig 9: per-disk state-time breakdown, rf=3 (Cello) ===\n";
  eas::bench::print_breakdown(eas::runner::Workload::kCello,
                              {"random", "static", "wsc", "mwis"});
  return 0;
}
