// Fig 15 (Appendix A.4): spin-up/down operations vs replication factor,
// Financial1, normalized to Static. Paper: same shape as Fig 7.
#include <iostream>
#include <map>

#include "fig_sweep_common.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  std::map<unsigned, std::map<std::string, double>> cells;
  bench::sweep_replication(
      bench::Workload::kFinancial,
      {"static", "random", "heuristic", "wsc", "mwis"},
      [&](const bench::SweepRow& row) {
        const double ops = static_cast<double>(row.result.total_spin_ups() +
                                               row.result.total_spin_downs());
        const double ref =
            static_cast<double>(row.static_ref->total_spin_ups() +
                                row.static_ref->total_spin_downs());
        cells[row.rf][row.scheduler] = ref > 0.0 ? ops / ref : 0.0;
      });

  std::cout << "=== Fig 15: spin-up/down ops vs replication factor, "
               "normalized to Static (Financial1) ===\n";
  util::Table t({"rf", "random", "static", "heuristic", "wsc", "mwis"});
  for (auto& [rf, by_sched] : cells) {
    t.row()
        .cell(static_cast<int>(rf))
        .cell(by_sched["random"])
        .cell(by_sched["static"])
        .cell(by_sched["heuristic"])
        .cell(by_sched["wsc"])
        .cell(by_sched["mwis"]);
  }
  t.print(std::cout);
  return 0;
}
