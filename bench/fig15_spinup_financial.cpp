// Fig 15 (Appendix A.4): spin-up/down operations vs replication factor,
// Financial1, normalized to Static. Paper: same shape as Fig 7.
#include <iostream>

#include "fig_sweep_common.hpp"

using namespace eas;

namespace {

double spin_ops(const storage::RunResult& r) {
  return static_cast<double>(r.total_spin_ups() + r.total_spin_downs());
}

}  // namespace

int main() {
  const std::vector<std::string> schedulers = {"random", "static", "heuristic",
                                               "wsc", "mwis"};
  const auto sweep = bench::sweep_replication(runner::Workload::kFinancial,
                                              schedulers);
  bench::pivot_by_rf(
      sweep,
      "Fig 15: spin-up/down ops vs replication factor, normalized to Static "
      "(Financial1)",
      schedulers,
      [](const bench::ReplicationSweep& s, unsigned rf,
         const std::string& name) {
        const double ref = spin_ops(s.at(rf, "static"));
        return ref > 0.0 ? spin_ops(s.at(rf, name)) / ref : 0.0;
      })
      .emit(std::cout, runner::emit_format_from_env());
  return 0;
}
