// Fig 11 (Appendix A.2): the energy / response-time trade-off of the online
// heuristic's cost function across alpha in [0,1] and beta in {1,10,100,
// 500,1000}, rf=3, Cello, normalized to the alpha=0 (pure-performance) run
// per beta. Paper shape: energy falls >35% as alpha -> 1 while response
// rises ~2x; larger beta shifts both curves toward the alpha=0 behaviour;
// (alpha=0.2, beta=100) sits near the knee. The 30 (alpha x beta) cells run
// as one parallel sweep over a shared trace and placement.
#include <iostream>

#include "runner/emit.hpp"
#include "runner/sweep.hpp"

using namespace eas;

namespace {

std::string tag_of(double beta, double alpha) {
  return "b" + std::to_string(static_cast<long long>(beta)) + "/a" +
         std::to_string(alpha).substr(0, 3);
}

}  // namespace

int main() {
  const auto base = runner::ExperimentBuilder(runner::Workload::kCello)
                        .requests(runner::requests_from_env())
                        .replication(3)
                        .build();
  std::cerr << "# " << runner::describe(base) << "\n";

  const double alphas[] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const double betas[] = {1.0, 10.0, 100.0, 500.0, 1000.0};

  std::vector<runner::CellSpec> cells;
  for (double beta : betas) {
    for (double alpha : alphas) {
      runner::CellSpec cell;
      cell.scheduler = "heuristic";
      cell.params =
          runner::ExperimentBuilder(base).alpha(alpha).beta(beta).build();
      cell.tag = tag_of(beta, alpha);
      cells.push_back(std::move(cell));
    }
  }

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  const auto at = [&](double beta, double alpha) -> const storage::RunResult& {
    return runner::find_cell(results, tag_of(beta, alpha), "heuristic").result;
  };

  const auto format = runner::emit_format_from_env();
  const auto pivot = [&](std::string title, auto&& metric) {
    std::vector<std::string> header{"beta"};
    for (double a : alphas) {
      header.push_back("a=" + std::to_string(a).substr(0, 3));
    }
    runner::ResultTable t(std::move(title), std::move(header));
    for (double beta : betas) {
      t.row().cell(static_cast<long long>(beta));
      for (double alpha : alphas) {
        t.cell(metric(at(beta, alpha)) / metric(at(beta, 0.0)));
      }
    }
    t.emit(std::cout, format);
  };

  pivot(
      "Fig 11a: heuristic energy vs alpha (normalized to alpha=0), rf=3 "
      "(Cello)",
      [](const storage::RunResult& r) { return r.total_energy(); });
  std::cout << "\n";
  pivot(
      "Fig 11b: heuristic mean response vs alpha (normalized to alpha=0), "
      "rf=3 (Cello)",
      [](const storage::RunResult& r) { return r.mean_response(); });

  // The unnormalized cost at the paper's chosen operating point, for
  // EXPERIMENTS.md.
  std::cout << "\npaper operating point (alpha=0.2, beta=100): energy="
            << at(100.0, 0.2).total_energy() / at(100.0, 0.0).total_energy()
            << "x, response="
            << at(100.0, 0.2).mean_response() / at(100.0, 0.0).mean_response()
            << "x of alpha=0\n";
  return 0;
}
