// Fig 11 (Appendix A.2): the energy / response-time trade-off of the online
// heuristic's cost function across alpha in [0,1] and beta in {1,10,100,
// 500,1000}, rf=3, Cello, normalized to the alpha=0 (pure-performance) run
// per beta. Paper shape: energy falls >35% as alpha -> 1 while response
// rises ~2x; larger beta shifts both curves toward the alpha=0 behaviour;
// (alpha=0.2, beta=100) sits near the knee.
#include <iostream>

#include "common/experiment.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  bench::ExperimentParams base;
  base.workload = bench::Workload::kCello;
  base.num_requests = bench::requests_from_env();
  base.replication_factor = 3;
  const auto trace =
      bench::make_workload(base.workload, base.trace_seed, base.num_requests);
  const auto placement = bench::make_placement(base);
  std::cerr << "# " << bench::describe(base) << "\n";

  const double alphas[] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const double betas[] = {1.0, 10.0, 100.0, 500.0, 1000.0};

  struct Cell {
    double energy, response;
  };
  std::vector<std::vector<Cell>> grid(std::size(betas));
  for (std::size_t b = 0; b < std::size(betas); ++b) {
    for (double alpha : alphas) {
      bench::ExperimentParams p = base;
      p.cost.alpha = alpha;
      p.cost.beta = betas[b];
      const auto r = bench::run_heuristic(p, trace, placement);
      grid[b].push_back(Cell{r.total_energy(), r.mean_response()});
    }
  }

  std::cout << "=== Fig 11a: heuristic energy vs alpha (normalized to "
               "alpha=0), rf=3 (Cello) ===\n";
  {
    std::vector<std::string> header{"beta"};
    for (double a : alphas) header.push_back("a=" + std::to_string(a).substr(0, 3));
    util::Table t(header);
    for (std::size_t b = 0; b < std::size(betas); ++b) {
      t.row().cell(static_cast<long long>(betas[b]));
      for (std::size_t a = 0; a < std::size(alphas); ++a) {
        t.cell(grid[b][a].energy / grid[b][0].energy);
      }
    }
    t.print(std::cout);
  }

  std::cout << "\n=== Fig 11b: heuristic mean response vs alpha (normalized "
               "to alpha=0), rf=3 (Cello) ===\n";
  {
    std::vector<std::string> header{"beta"};
    for (double a : alphas) header.push_back("a=" + std::to_string(a).substr(0, 3));
    util::Table t(header);
    for (std::size_t b = 0; b < std::size(betas); ++b) {
      t.row().cell(static_cast<long long>(betas[b]));
      for (std::size_t a = 0; a < std::size(alphas); ++a) {
        t.cell(grid[b][a].response / grid[b][0].response);
      }
    }
    t.print(std::cout);
  }

  // The unnormalized cost at the paper's chosen operating point, for
  // EXPERIMENTS.md.
  std::cout << "\npaper operating point (alpha=0.2, beta=100): energy="
            << grid[2][1].energy / grid[2][0].energy
            << "x, response=" << grid[2][1].response / grid[2][0].response
            << "x of alpha=0\n";
  return 0;
}
