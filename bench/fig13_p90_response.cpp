// Fig 13 (Appendix A.3): 90th-percentile response time vs replication
// factor, Cello. Paper shape: always-on and MWIS sit at the ~10 ms disk
// service floor; Heuristic starts elevated at rf=1 and drops to the floor
// once replicas exist; WSC stays highest (~0.1 s) because of the batching
// interval.
#include <iostream>

#include "fig_sweep_common.hpp"

using namespace eas;

int main() {
  const std::vector<std::string> schedulers = {"always-on", "random", "static",
                                               "heuristic", "wsc", "mwis"};
  const auto sweep = bench::sweep_replication(runner::Workload::kCello,
                                              schedulers);
  bench::pivot_by_rf(
      sweep, "Fig 13: p90 response time (ms) vs replication factor (Cello)",
      schedulers,
      [](const bench::ReplicationSweep& s, unsigned rf,
         const std::string& name) {
        const auto& r = s.at(rf, name);
        return r.response_times.empty() ? 0.0 : r.response_times.p90() * 1e3;
      },
      1)
      .emit(std::cout, runner::emit_format_from_env());
  return 0;
}
