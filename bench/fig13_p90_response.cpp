// Fig 13 (Appendix A.3): 90th-percentile response time vs replication
// factor, Cello. Paper shape: always-on and MWIS sit at the ~10 ms disk
// service floor; Heuristic starts elevated at rf=1 and drops to the floor
// once replicas exist; WSC stays highest (~0.1 s) because of the batching
// interval.
#include <iostream>
#include <map>

#include "fig_sweep_common.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  std::map<unsigned, std::map<std::string, double>> cells;
  bench::sweep_replication(
      bench::Workload::kCello,
      {"static", "always-on", "random", "heuristic", "wsc", "mwis"},
      [&](const bench::SweepRow& row) {
        cells[row.rf][row.scheduler] =
            row.result.response_times.empty()
                ? 0.0
                : row.result.response_times.p90() * 1e3;
      });

  std::cout << "=== Fig 13: p90 response time (ms) vs replication factor "
               "(Cello) ===\n";
  util::Table t({"rf", "always-on", "random", "static", "heuristic", "wsc",
                 "mwis"});
  for (auto& [rf, by_sched] : cells) {
    t.row()
        .cell(static_cast<int>(rf))
        .cell(by_sched["always-on"], 1)
        .cell(by_sched["random"], 1)
        .cell(by_sched["static"], 1)
        .cell(by_sched["heuristic"], 1)
        .cell(by_sched["wsc"], 1)
        .cell(by_sched["mwis"], 1);
  }
  t.print(std::cout);
  return 0;
}
