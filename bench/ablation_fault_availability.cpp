// Ablation: energy vs availability under a single-disk failure.
//
// Runs the full §4.3 roster twice over the same Cello workload — once
// fault-free, once with a scripted fail-stop of one disk a tenth into the
// trace and a replacement online halfway through (so the run exercises
// failover, degraded routing AND the rebuild traffic competing with
// foreground I/O). The emitters grow the availability columns
// (unavailable, mean_degraded_s, rebuild_bytes) plus the per-cell energy
// delta against the fault-free twin, so the table reads directly as
// "what does surviving this failure cost each scheduler".
#include <iostream>

#include "runner/emit.hpp"
#include "runner/sweep.hpp"

using namespace eas;

int main() {
  const auto clean = runner::ExperimentBuilder(runner::Workload::kCello)
                         .requests(runner::requests_from_env(30000))
                         .build();

  // Place the failure relative to the actual trace span so EAS_REQUESTS
  // scaling keeps the scenario shape: dead at 10%, replacement at 50%.
  const auto trace = runner::make_shared_workload(clean);
  const double span = trace->duration();
  const DiskId victim = 7;
  const auto faulty = runner::ExperimentBuilder(clean)
                          .fail_disk_at(victim, 0.1 * span, 0.4 * span)
                          .build();
  std::cerr << "# fault availability ablation, " << runner::describe(faulty)
            << "\n";

  const auto placement = runner::make_shared_placement(clean);
  std::vector<runner::CellSpec> cells;
  for (const auto& name : runner::SchedulerRegistry::global().names()) {
    for (const bool with_fault : {false, true}) {
      runner::CellSpec cell;
      cell.scheduler = name;
      cell.params = with_fault ? faulty : clean;
      cell.tag = with_fault ? "fail-stop" : "fault-free";
      cell.trace = trace;
      cell.placement = placement;
      cells.push_back(std::move(cell));
    }
  }

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));
  runner::emit_cells(std::cout, results, runner::emit_format_from_env());
  std::cout << "\nExpected shape: availability columns are zero-cost on the "
               "fault-free rows; under the failure every scheduler keeps "
               "unavailable at 0 (rf=3) and pays the same rebuild_bytes "
               "bill. For the online schedulers the energy delta stays "
               "small relative to total energy (the dead disk stops burning "
               "power, failover+rebuild traffic buys it back). The offline "
               "mwis row pays by far the most: its oracle spin plan knows "
               "nothing about rebuild traffic, so internal reads land on "
               "spun-down disks, stretch the degraded window, and drag the "
               "fleet awake long past the planned schedule.\n";
  return 0;
}
