// Fig 12 (Appendix A.3): inverse CDF of request response time,
// P[response > x], rf=3, Cello, per scheduler. Paper shape: the
// overwhelming majority of requests finish within 100 ms under every
// schedule; under 2CPM schedules a sub-1% tail waits out spin-ups (up to
// ~15 s); always-on and MWIS have no such tail.
#include <iostream>

#include "common/experiment.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  bench::ExperimentParams params;
  params.workload = bench::Workload::kCello;
  params.num_requests = bench::requests_from_env();
  params.replication_factor = 3;
  const auto trace = bench::make_workload(params.workload, params.trace_seed,
                                          params.num_requests);
  const auto placement = bench::make_placement(params);
  std::cerr << "# " << bench::describe(params) << "\n";

  const char* rows[] = {"always-on", "random", "static",
                        "heuristic", "wsc",    "mwis"};
  const double xs[] = {0.001, 0.003, 0.01, 0.03, 0.1, 0.3,
                       1.0,   3.0,   10.0, 15.0, 20.0};

  std::cout << "=== Fig 12: P[response > x], rf=3 (Cello) ===\n";
  std::vector<std::string> header{"scheduler"};
  for (double x : xs) header.push_back(std::to_string(x).substr(0, 6) + "s");
  util::Table t(header);
  for (const char* name : rows) {
    const auto r = bench::run_scheduler(name, params, trace, placement);
    t.row().cell(std::string(name));
    for (double x : xs) t.cell(r.response_times.fraction_above(x), 5);
  }
  t.print(std::cout);
  return 0;
}
