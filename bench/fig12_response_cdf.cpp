// Fig 12 (Appendix A.3): inverse CDF of request response time,
// P[response > x], rf=3, Cello, per scheduler. Paper shape: the
// overwhelming majority of requests finish within 100 ms under every
// schedule; under 2CPM schedules a sub-1% tail waits out spin-ups (up to
// ~15 s); always-on and MWIS have no such tail.
#include <iostream>

#include "runner/emit.hpp"
#include "runner/sweep.hpp"

using namespace eas;

int main() {
  const auto params = runner::ExperimentBuilder(runner::Workload::kCello)
                          .requests(runner::requests_from_env())
                          .replication(3)
                          .build();
  std::cerr << "# " << runner::describe(params) << "\n";

  const std::vector<std::string> schedulers = {"always-on", "random", "static",
                                               "heuristic", "wsc", "mwis"};
  const double xs[] = {0.001, 0.003, 0.01, 0.03, 0.1, 0.3,
                       1.0,   3.0,   10.0, 15.0, 20.0};

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(
      runner::product_grid(params, schedulers, {"rf3"}, nullptr));

  std::vector<std::string> header{"scheduler"};
  for (double x : xs) header.push_back(std::to_string(x).substr(0, 6) + "s");
  runner::ResultTable t("Fig 12: P[response > x], rf=3 (Cello)",
                        std::move(header));
  for (const auto& name : schedulers) {
    const auto& r = runner::find_cell(results, "rf3", name).result;
    t.row().cell(name);
    for (double x : xs) t.cell(r.response_times.fraction_above(x), 5);
  }
  t.emit(std::cout, runner::emit_format_from_env());
  return 0;
}
