// Fig 16 (Appendix A.4): mean response time vs replication factor,
// Financial1. Paper: same ranking as Fig 8 but at ~300 ms scale instead of
// ~1 s — Financial1's smoother arrivals produce fewer deep queues.
#include <iostream>

#include "fig_sweep_common.hpp"

using namespace eas;

int main() {
  const std::vector<std::string> schedulers = {"random", "static", "heuristic",
                                               "wsc"};
  const auto sweep = bench::sweep_replication(runner::Workload::kFinancial,
                                              schedulers);
  bench::pivot_by_rf(
      sweep,
      "Fig 16: mean response time (s) vs replication factor (Financial1)",
      schedulers,
      [](const bench::ReplicationSweep& s, unsigned rf,
         const std::string& name) { return s.at(rf, name).mean_response(); })
      .emit(std::cout, runner::emit_format_from_env());
  return 0;
}
