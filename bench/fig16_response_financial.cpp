// Fig 16 (Appendix A.4): mean response time vs replication factor,
// Financial1. Paper: same ranking as Fig 8 but at ~300 ms scale instead of
// ~1 s — Financial1's smoother arrivals produce fewer deep queues.
#include <iostream>
#include <map>

#include "fig_sweep_common.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  std::map<unsigned, std::map<std::string, double>> cells;
  bench::sweep_replication(
      bench::Workload::kFinancial, {"static", "random", "heuristic", "wsc"},
      [&](const bench::SweepRow& row) {
        cells[row.rf][row.scheduler] = row.result.mean_response();
      });

  std::cout << "=== Fig 16: mean response time (s) vs replication factor "
               "(Financial1) ===\n";
  util::Table t({"rf", "random", "static", "heuristic", "wsc"});
  for (auto& [rf, by_sched] : cells) {
    t.row()
        .cell(static_cast<int>(rf))
        .cell(by_sched["random"])
        .cell(by_sched["static"])
        .cell(by_sched["heuristic"])
        .cell(by_sched["wsc"]);
  }
  t.print(std::cout);
  return 0;
}
