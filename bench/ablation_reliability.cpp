// Ablation: the request reliability tier under sustained overload plus a
// transient outage. A 12-disk fleet is offered roughly 2x its aggregate
// service rate while one disk times out mid-run. The reliability-off twin
// has no defence: queues grow for as long as the overload lasts and the
// response tail grows with them. The reliability-on cells sweep the hedge
// delay with a fixed deadline/retry budget and bounded per-disk queues —
// they shed what the fleet cannot serve and bound the tail, with every
// dropped or abandoned request counted, not silently lost. Deterministic:
// the table is bit-identical across EAS_THREADS and repeated runs.
#include <iostream>

#include "core/cost_scheduler.hpp"
#include "power/fixed_threshold.hpp"
#include "runner/emit.hpp"
#include "runner/sweep.hpp"
#include "trace/synthetic.hpp"

using namespace eas;

int main() {
  const auto base = runner::ExperimentBuilder(runner::Workload::kCello)
                        .requests(runner::requests_from_env(20000))
                        .disks(12)
                        .replication(3)
                        // Spun-up start: a 0.25 s deadline budget is gone many
                        // times over inside one standby->active transition, so
                        // a cold fleet would abandon everything before serving
                        // anything and the sweep would only measure spin-up.
                        .initial_state(disk::DiskState::Idle)
                        .fail_disk_at(0, 0.5, /*repair=*/1.0)
                        .build();

  // One 512 KiB request occupies a disk for ~9.7 ms, so 12 disks serve
  // ~1240 req/s flat out; offer roughly twice that. Poisson arrivals (burst
  // multiplier 1) rather than the Cello MMPP preset: the point here is
  // *sustained* overload for the whole horizon, and a short MMPP window
  // realises far less than its configured long-run mean rate.
  trace::SyntheticTraceConfig tc = trace::cello_like_config(base.trace_seed);
  tc.num_requests = base.num_requests;
  tc.mean_rate = 2400.0;
  tc.burst_rate_multiplier = 1.0;
  auto shared_trace =
      std::make_shared<const trace::Trace>(trace::make_synthetic_trace(tc));

  std::cerr << "# reliability ablation, " << runner::describe(base) << "\n";

  std::vector<runner::CellSpec> cells;
  auto make_cell = [&](runner::ExperimentParams p, std::string tag) {
    runner::CellSpec cell;
    cell.params = std::move(p);
    cell.tag = std::move(tag);
    cell.trace = shared_trace;
    cell.run = [](const runner::ExperimentParams& params,
                  const trace::Trace& trace,
                  const placement::PlacementMap& placement) {
      const auto config = runner::system_config_for(params);
      core::CostFunctionScheduler sched(params.cost);
      power::FixedThresholdPolicy policy;
      return storage::run_online(config, placement, trace, sched, policy);
    };
    cells.push_back(std::move(cell));
  };

  make_cell(base, "off");
  const double hedge_delays[] = {0.02, 0.05, 0.10, 0.25};
  for (const double h : hedge_delays) {
    reliability::ReliabilityConfig rel;
    rel.deadline_seconds = 0.25;
    rel.max_attempts = 3;
    rel.hedge_delay_seconds = h;
    rel.max_queue_depth = 64;
    make_cell(runner::ExperimentBuilder(base).reliability(rel).build(),
              "on/h=" + std::to_string(h).substr(0, 4));
  }

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  runner::ResultTable t(
      "Ablation: reliability tier under 2x overload + transient fault",
      {"mode", "hedge_s", "served", "p99_resp_s", "max_resp_s", "mean_resp_s",
       "deadline_miss", "retries", "hedge_wins", "shed", "abandoned",
       "energy_j"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i].result;
    const auto& rs = r.reliability_stats;
    const bool any = !r.response_times.empty();
    t.row()
        .cell(results[i].spec.tag)
        .cell(i == 0 ? 0.0 : hedge_delays[i - 1], 3)
        .cell(static_cast<unsigned long long>(r.total_requests))
        .cell(any ? r.response_times.p99() : 0.0, 4)
        .cell(any ? r.response_times.quantile(1.0) : 0.0, 4)
        .cell(r.mean_response(), 4)
        .cell(static_cast<unsigned long long>(rs.deadline_misses))
        .cell(static_cast<unsigned long long>(rs.retries))
        .cell(static_cast<unsigned long long>(rs.hedge_wins))
        .cell(static_cast<unsigned long long>(rs.shed))
        .cell(static_cast<unsigned long long>(rs.abandoned))
        .cell(r.total_energy());
  }
  t.emit(std::cout, runner::emit_format_from_env());
  std::cout << "\nExpected shape: the off twin serves everything eventually "
               "but its backlog compounds for the whole overload window — "
               "max and p99 response grow with trace length, an unbounded "
               "tail. Every reliability cell bounds p99 near the deadline: "
               "excess load is shed (counted, not lost), deadline retries "
               "re-spread waves across replicas, and shorter hedge delays "
               "trade extra disk work for a tighter read tail.\n";
  return 0;
}
