// One-off probe: MWIS solver/refinement variants on one configuration.
// Usage: zz_probe_mwis [cello|financial] [num_requests] [rf]
#include <cstdlib>
#include <iostream>

#include "runner/experiment.hpp"
#include "core/mwis_scheduler.hpp"
#include "core/offline_eval.hpp"
#include "storage/storage_system.hpp"

using namespace eas;

int main(int argc, char** argv) {
  runner::ExperimentParams p;
  if (argc > 1 && std::string(argv[1]) == "financial") {
    p.workload = runner::Workload::kFinancial;
  }
  p.num_requests = 5000;  // quick by default
  if (argc > 2) p.num_requests = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) p.replication_factor = std::atoi(argv[3]);

  const auto trace = runner::make_workload(p.workload, p.trace_seed, p.num_requests);
  const auto placement = runner::make_placement(p);
  const auto power = runner::paper_system_config().power;

  for (auto alg : {core::MwisOptions::Algorithm::kGwmin,
                   core::MwisOptions::Algorithm::kGwmin2}) {
    for (std::size_t passes : {0u, 3u, 8u, 16u}) {
      for (std::size_t horizon : {1u, 2u, 4u}) {
        core::MwisOptions opts;
        opts.seed = core::MwisOptions::Seed::kSolverOnly;  // probe the solver itself
        opts.algorithm = alg;
        opts.refine_passes = passes;
        opts.graph.successor_horizon = horizon;
        core::MwisOfflineScheduler sched(opts);
        auto assignment = sched.schedule(trace, placement, power);
        const auto r = storage::run_offline(runner::paper_system_config(),
                                            placement, trace, assignment,
                                            sched.name());
        std::cout << sched.name() << " passes=" << passes
                  << " norm_energy=" << r.normalized_energy(power)
                  << " spin=" << r.total_spin_ups() + r.total_spin_downs()
                  << "\n";
      }
    }
  }
  return 0;
}
