// Ablation: the power-aware cache & destage tier. Runs cache-off/cache-on
// twins of a mixed Cello-like workload (30% writes) under the energy-aware
// heuristic + 2CPM, sweeping the memory power charged per GiB of tier
// capacity. The tier only wins while its DRAM/NVRAM power stays below the
// disk energy it saves (hits avoid wakes, destages ride already-paid
// spin-ups) — the sweep locates that crossover. Cache cells carry their
// CacheConfig through ExperimentParams, so the registry-independent run
// lambda is only needed to pick the scheduler/policy pair.
#include <iostream>

#include "core/cost_scheduler.hpp"
#include "power/fixed_threshold.hpp"
#include "runner/emit.hpp"
#include "runner/sweep.hpp"
#include "trace/synthetic.hpp"

using namespace eas;

int main() {
  const auto base = runner::ExperimentBuilder(runner::Workload::kCello)
                        .requests(runner::requests_from_env(30000))
                        .replication(3)
                        .build();

  trace::SyntheticTraceConfig tc = trace::cello_like_config(base.trace_seed);
  tc.num_requests = base.num_requests;
  tc.write_fraction = 0.3;
  auto shared_trace =
      std::make_shared<const trace::Trace>(trace::make_synthetic_trace(tc));

  std::cerr << "# cache-tier ablation, " << runner::describe(base) << "\n";

  // Cell 0: no tier. Cells 1..N: LRU tier at increasing memory power.
  const double watts_per_gib[] = {0.1, 0.375, 1.0, 4.0};
  std::vector<runner::CellSpec> cells;
  auto make_cell = [&](runner::ExperimentParams p, std::string tag) {
    runner::CellSpec cell;
    cell.params = std::move(p);
    cell.tag = std::move(tag);
    cell.trace = shared_trace;
    cell.run = [](const runner::ExperimentParams& params,
                  const trace::Trace& trace,
                  const placement::PlacementMap& placement) {
      const auto config = runner::system_config_for(params);
      core::CostFunctionScheduler sched(params.cost);
      power::FixedThresholdPolicy policy;
      return storage::run_online(config, placement, trace, sched, policy);
    };
    cells.push_back(std::move(cell));
  };

  make_cell(base, "off");
  for (const double w : watts_per_gib) {
    cache::CacheConfig cc;
    cc.capacity_blocks = 1024;      // 512 MiB read cache
    cc.dirty_capacity_blocks = 256; // 128 MiB write-back buffer
    cc.memory_watts_per_gib = w;
    make_cell(runner::ExperimentBuilder(base).cache(cc).build(),
              "lru/" + std::to_string(w).substr(0, 5));
  }

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  runner::ResultTable t(
      "Ablation: cache & destage tier vs none, 30% writes, rf=3",
      {"mode", "mem_w_gib", "disk_energy_j", "mem_energy_j", "total_j",
       "spin_up+down", "mean_resp_s", "hit_ratio", "destaged",
       "piggyback_frac"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i].result;
    const auto& cs = r.cache_stats;
    const double mem_j = r.cache_enabled ? cs.memory_energy_joules : 0.0;
    const std::uint64_t batches = cs.destage_batches;
    t.row()
        .cell(i == 0 ? "off" : "lru")
        .cell(i == 0 ? 0.0 : watts_per_gib[i - 1], 3)
        .cell(r.total_energy())
        .cell(mem_j)
        .cell(r.total_energy() + mem_j)
        .cell(static_cast<unsigned long long>(r.total_spin_ups() +
                                              r.total_spin_downs()))
        .cell(r.mean_response(), 4)
        .cell(r.cache_enabled ? cs.hit_ratio() : 0.0, 4)
        .cell(static_cast<unsigned long long>(cs.destaged_blocks))
        .cell(batches > 0 ? static_cast<double>(cs.destage_piggyback) /
                                static_cast<double>(batches)
                          : 0.0,
              3);
  }
  t.emit(std::cout, runner::emit_format_from_env());
  std::cout << "\nExpected shape: the tier cuts disk energy and spin "
               "cycles at every memory-power point (hits never wake disks; "
               "destages ride foreground spin-ups), while total energy "
               "crosses back over the no-tier baseline once W/GiB prices "
               "the DRAM above the disk joules it saves.\n";
  return 0;
}
