// Calibration harness (not a figure): prints the anchor quantities the
// paper reports so the synthetic workloads can be tuned — normalized energy
// per scheduler at rf 1..5, spin counts, response times, trace statistics.
// Kept in-tree so recalibration is reproducible. The (rf × scheduler) grid
// runs on the SweepRunner; the per-rf heuristic/MWIS state dumps and MWIS
// graph diagnostics stay serial on the main thread (they poke scheduler
// internals the registry does not expose).
#include <cstdlib>
#include <iostream>

#include "core/mwis_scheduler.hpp"
#include "core/offline_eval.hpp"
#include "disk/disk.hpp"
#include "runner/emit.hpp"
#include "runner/sweep.hpp"
#include "trace/synthetic.hpp"

using namespace eas;

int main(int argc, char** argv) {
  auto builder = runner::ExperimentBuilder(
      argc > 1 && std::string(argv[1]) == "financial"
          ? runner::Workload::kFinancial
          : runner::Workload::kCello);
  // Quick by default; pass an explicit count for full scale.
  std::size_t num_requests = 20000;
  if (argc > 2) num_requests = std::strtoull(argv[2], nullptr, 10);
  const auto params = builder.requests(num_requests).build();

  // Optional overrides for tuning: mean_rate burst_multiplier burst_fraction.
  trace::SyntheticTraceConfig tc =
      params.workload == runner::Workload::kCello
          ? trace::cello_like_config(params.trace_seed)
          : trace::financial_like_config(params.trace_seed);
  tc.num_requests = params.num_requests;
  if (argc > 3) tc.mean_rate = std::strtod(argv[3], nullptr);
  if (argc > 4) tc.burst_rate_multiplier = std::strtod(argv[4], nullptr);
  if (argc > 5) tc.burst_time_fraction = std::strtod(argv[5], nullptr);
  const auto trace =
      std::make_shared<const trace::Trace>(trace::make_synthetic_trace(tc));
  const auto ts = trace->compute_stats();
  std::cout << "trace: " << runner::to_string(params.workload)
            << " records=" << ts.num_records << " data=" << ts.num_distinct_data
            << " duration=" << ts.duration_seconds << "s rate=" << ts.mean_rate
            << "/s interarrival_cv=" << ts.interarrival_cv
            << " top1%share=" << ts.top1pct_access_share << "\n\n";

  const std::vector<std::string> schedulers = {"always-on", "random", "static",
                                               "heuristic", "wsc", "mwis"};
  std::vector<std::string> axis;
  for (unsigned rf = 1; rf <= 5; ++rf) axis.push_back(std::to_string(rf));
  auto cells = runner::product_grid(
      params, schedulers, axis,
      [](const runner::ExperimentParams& b, const std::string& tag) {
        return runner::ExperimentBuilder(b)
            .replication(static_cast<unsigned>(std::stoul(tag)))
            .build();
      });
  for (auto& cell : cells) cell.trace = trace;  // custom tuning overrides

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  const auto power = runner::paper_system_config().power;
  runner::ResultTable table("calibration anchors",
                            {"rf", "scheduler", "norm_energy", "spin_up+down",
                             "mean_resp_s", "p90_resp_s", "waited"});
  auto dump_states = [](unsigned rf, const std::string& label,
                        const storage::RunResult& r) {
    double secs[disk::kNumDiskStates] = {};
    for (const auto& ds : r.disk_stats) {
      for (int s = 0; s < disk::kNumDiskStates; ++s) {
        secs[s] += ds.seconds_in_state[s];
      }
    }
    std::cerr << "  [states rf=" << rf << " " << label << "] horizon="
              << r.horizon;
    for (int s = 0; s < disk::kNumDiskStates; ++s) {
      std::cerr << " " << disk::to_string(static_cast<disk::DiskState>(s))
                << "=" << secs[s];
    }
    std::cerr << " energy=" << r.total_energy() << "\n";
  };

  for (unsigned rf = 1; rf <= 5; ++rf) {
    for (const auto& name : schedulers) {
      const auto& cell = runner::find_cell(results, std::to_string(rf), name);
      const auto& r = cell.result;
      table.row()
          .cell(static_cast<int>(rf))
          .cell(name)
          .cell(r.normalized_energy(power))
          .cell(static_cast<unsigned long long>(r.total_spin_ups() +
                                                r.total_spin_downs()))
          .cell(r.mean_response(), 4)
          .cell(r.response_times.empty() ? 0.0 : r.response_times.p90(), 4)
          .cell(static_cast<unsigned long long>(r.requests_waited_spinup));
      if (name == "heuristic" || name == "mwis") dump_states(rf, name, r);
      if (name == "mwis") {
        const auto& placement = *cell.spec.placement;
        core::MwisOptions mo;
        mo.graph.successor_horizon = cell.spec.params.mwis_horizon;
        core::MwisOfflineScheduler sched(mo);
        const auto assignment = sched.schedule(*trace, placement, power);
        const auto analytic = core::evaluate_offline(
            *trace, assignment, placement.num_disks(), power);
        std::cerr << "  [mwis diag rf=" << rf
                  << "] nodes=" << sched.last_graph_nodes()
                  << " edges=" << sched.last_graph_edges()
                  << " selected=" << sched.last_selected_count()
                  << " claimed_saving=" << sched.last_selected_saving()
                  << " realized_saving=" << analytic.total_saving(power)
                  << " ceiling="
                  << static_cast<double>(trace->size()) *
                         power.max_request_energy()
                  << "\n";
      }
    }
  }
  table.emit(std::cout, runner::emit_format_from_env());
  return 0;
}
