// Calibration harness (not a figure): prints the anchor quantities the
// paper reports so the synthetic workloads can be tuned — normalized energy
// per scheduler at rf 1..5, spin counts, response times, trace statistics.
// Kept in-tree so recalibration is reproducible.
#include <cstdlib>
#include <iostream>

#include "common/experiment.hpp"
#include "core/mwis_scheduler.hpp"
#include "disk/disk.hpp"
#include "core/offline_eval.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

using namespace eas;

int main(int argc, char** argv) {
  bench::ExperimentParams params;
  if (argc > 1 && std::string(argv[1]) == "financial") {
    params.workload = bench::Workload::kFinancial;
  }
  params.num_requests = 20000;  // quick by default; pass an explicit count for full scale
  if (argc > 2) params.num_requests = std::strtoull(argv[2], nullptr, 10);

  // Optional overrides for tuning: mean_rate burst_multiplier burst_fraction.
  trace::SyntheticTraceConfig tc = params.workload == bench::Workload::kCello
                                       ? trace::cello_like_config(params.trace_seed)
                                       : trace::financial_like_config(params.trace_seed);
  tc.num_requests = params.num_requests;
  if (argc > 3) tc.mean_rate = std::strtod(argv[3], nullptr);
  if (argc > 4) tc.burst_rate_multiplier = std::strtod(argv[4], nullptr);
  if (argc > 5) tc.burst_time_fraction = std::strtod(argv[5], nullptr);
  const auto trace = trace::make_synthetic_trace(tc);
  const auto ts = trace.compute_stats();
  std::cout << "trace: " << bench::to_string(params.workload)
            << " records=" << ts.num_records << " data=" << ts.num_distinct_data
            << " duration=" << ts.duration_seconds << "s rate=" << ts.mean_rate
            << "/s interarrival_cv=" << ts.interarrival_cv
            << " top1%share=" << ts.top1pct_access_share << "\n\n";

  util::Table table({"rf", "scheduler", "norm_energy", "spin_up+down",
                     "mean_resp_s", "p90_resp_s", "waited"});
  const auto power = bench::paper_system_config().power;
  for (unsigned rf = 1; rf <= 5; ++rf) {
    bench::ExperimentParams p = params;
    p.replication_factor = rf;
    const auto placement = bench::make_placement(p);
    auto report = [&](const char* label, const storage::RunResult& r) {
      table.row()
          .cell(static_cast<int>(rf))
          .cell(label)
          .cell(r.normalized_energy(power))
          .cell(static_cast<unsigned long long>(r.total_spin_ups() +
                                                r.total_spin_downs()))
          .cell(r.mean_response(), 4)
          .cell(r.response_times.empty() ? 0.0 : r.response_times.p90(), 4)
          .cell(static_cast<unsigned long long>(r.requests_waited_spinup));
    };
    auto dump_states = [&](const char* label, const storage::RunResult& r) {
      double secs[disk::kNumDiskStates] = {};
      for (const auto& ds : r.disk_stats) {
        for (int s = 0; s < disk::kNumDiskStates; ++s) {
          secs[s] += ds.seconds_in_state[s];
        }
      }
      std::cerr << "  [states rf=" << rf << " " << label << "] horizon="
                << r.horizon;
      for (int s = 0; s < disk::kNumDiskStates; ++s) {
        std::cerr << " " << disk::to_string(static_cast<disk::DiskState>(s))
                  << "=" << secs[s];
      }
      std::cerr << " energy=" << r.total_energy() << "\n";
    };
    report("always-on", bench::run_always_on(p, trace, placement));
    report("random", bench::run_random(p, trace, placement));
    report("static", bench::run_static(p, trace, placement));
    {
      const auto r = bench::run_heuristic(p, trace, placement);
      report("heuristic", r);
      dump_states("heuristic", r);
    }
    report("wsc", bench::run_wsc(p, trace, placement));
    {
      const auto r = bench::run_mwis(p, trace, placement);
      report("mwis", r);
      dump_states("mwis", r);
    }
    {
      core::MwisOptions opts;
      opts.graph.successor_horizon = p.mwis_horizon;
      core::MwisOfflineScheduler sched(opts);
      const auto assignment = sched.schedule(trace, placement, power);
      const auto analytic = core::evaluate_offline(
          trace, assignment, placement.num_disks(), power);
      std::cerr << "  [mwis diag rf=" << rf
                << "] nodes=" << sched.last_graph_nodes()
                << " edges=" << sched.last_graph_edges()
                << " selected=" << sched.last_selected_count()
                << " claimed_saving=" << sched.last_selected_saving()
                << " realized_saving=" << analytic.total_saving(power)
                << " ceiling=" << trace.size() * power.max_request_energy()
                << "\n";
    }
  }
  table.print(std::cout);
  return 0;
}
