// Fig 6: energy consumption vs data replication factor, Cello workload.
// Values normalized to the always-on configuration. Paper shape: Random
// climbs toward 1, Static stays flat (~0.88 there), the energy-aware rows
// fall monotonically with MWIS lowest and Heuristic highest of the three.
#include <iostream>

#include "fig_sweep_common.hpp"

using namespace eas;

int main() {
  const auto power = runner::paper_system_config().power;
  const std::vector<std::string> schedulers = {"random", "static", "heuristic",
                                               "wsc", "mwis"};
  const auto sweep = bench::sweep_replication(runner::Workload::kCello,
                                              schedulers);
  bench::pivot_by_rf(
      sweep, "Fig 6: normalized energy vs replication factor (Cello)",
      schedulers,
      [&](const bench::ReplicationSweep& s, unsigned rf,
          const std::string& name) {
        return s.at(rf, name).normalized_energy(power);
      })
      .emit(std::cout, runner::emit_format_from_env());
  return 0;
}
