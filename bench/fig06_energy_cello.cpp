// Fig 6: energy consumption vs data replication factor, Cello workload.
// Values normalized to the always-on configuration. Paper shape: Random
// climbs toward 1, Static stays flat (~0.88 there), the energy-aware rows
// fall monotonically with MWIS lowest and Heuristic highest of the three.
#include <iostream>
#include <map>

#include "fig_sweep_common.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  const auto power = bench::paper_system_config().power;
  std::map<unsigned, std::map<std::string, double>> cells;
  bench::sweep_replication(
      bench::Workload::kCello,
      {"static", "random", "heuristic", "wsc", "mwis"},
      [&](const bench::SweepRow& row) {
        cells[row.rf][row.scheduler] = row.result.normalized_energy(power);
      });

  std::cout << "=== Fig 6: normalized energy vs replication factor (Cello) ===\n";
  util::Table t({"rf", "random", "static", "heuristic", "wsc", "mwis"});
  for (auto& [rf, by_sched] : cells) {
    t.row()
        .cell(static_cast<int>(rf))
        .cell(by_sched["random"])
        .cell(by_sched["static"])
        .cell(by_sched["heuristic"])
        .cell(by_sched["wsc"])
        .cell(by_sched["mwis"]);
  }
  t.print(std::cout);
  return 0;
}
