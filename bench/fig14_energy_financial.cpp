// Fig 14 (Appendix A.4): energy vs replication factor, Financial1 workload,
// normalized to always-on. Paper: same ranking and shape as Fig 6 (Cello).
#include <iostream>

#include "fig_sweep_common.hpp"

using namespace eas;

int main() {
  const auto power = runner::paper_system_config().power;
  const std::vector<std::string> schedulers = {"random", "static", "heuristic",
                                               "wsc", "mwis"};
  const auto sweep = bench::sweep_replication(runner::Workload::kFinancial,
                                              schedulers);
  bench::pivot_by_rf(
      sweep, "Fig 14: normalized energy vs replication factor (Financial1)",
      schedulers,
      [&](const bench::ReplicationSweep& s, unsigned rf,
          const std::string& name) {
        return s.at(rf, name).normalized_energy(power);
      })
      .emit(std::cout, runner::emit_format_from_env());
  return 0;
}
