// Micro-benchmarks: event kernel and disk entity hot paths, with and
// without the trace recorder attached (the tracing-off numbers are the ones
// the ≤2% observability overhead budget is judged against).
#include <benchmark/benchmark.h>

#include "disk/disk.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/simulator.hpp"

using namespace eas;

namespace {

void BM_ScheduleAndFire(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::uint64_t a = 0, b = 0, c = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_at(static_cast<double>(i % 64),
                      [&a, &b, &c, i] { a += i + b + c; });
    }
    benchmark::DoNotOptimize(sim.run());
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScheduleAndFire)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_ScheduleCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventHandle> handles;
    handles.reserve(4096);
    std::uint64_t a = 0, b = 0, c = 0;
    for (int i = 0; i < 4096; ++i) {
      handles.push_back(
          sim.schedule_at(1.0 + i, [&a, &b, &c, i] { a += b + c + i; }));
    }
    for (auto& h : handles) sim.cancel(h);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ScheduleCancel);

void BM_DiskServiceLoop(benchmark::State& state) {
  // Submit-serve-complete cycles on one idle disk (no power transitions).
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    disk::Disk d(0, sim, disk::DiskPowerParams{}, disk::DiskPerfParams{},
                 disk::DiskState::Idle);
    for (std::size_t i = 0; i < n; ++i) {
      disk::Request r;
      r.id = i;
      r.data = 0;
      d.submit(r);
    }
    sim.run();
    benchmark::DoNotOptimize(d.stats().requests_served);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DiskServiceLoop)->Arg(1 << 10)->Arg(1 << 14);

void BM_DiskSpinCycle(benchmark::State& state) {
  // Full standby -> spin-up -> serve -> idle -> spin-down cycles.
  for (auto _ : state) {
    sim::Simulator sim;
    disk::Disk d(0, sim, disk::DiskPowerParams{}, disk::DiskPerfParams{},
                 disk::DiskState::Standby);
    for (int i = 0; i < 64; ++i) {
      sim.schedule_at(100.0 * i, [&d, i] {
        disk::Request r;
        r.id = static_cast<RequestId>(i);
        d.submit(r);
      });
      sim.schedule_at(100.0 * i + 50.0, [&d] {
        if (d.state() == disk::DiskState::Idle) d.spin_down();
      });
    }
    sim.run();
    benchmark::DoNotOptimize(d.stats().spin_ups);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DiskSpinCycle);

void BM_DiskServiceLoopTraced(benchmark::State& state) {
  // BM_DiskServiceLoop with a recorder attached: the delta against the
  // untraced run is the cost of the EAS_OBS sites actually firing (queue +
  // service begin/end per request) into a warm preallocated ring.
  const auto n = static_cast<std::size_t>(state.range(0));
  obs::TraceRecorder rec({.enabled = true, .capacity = 1u << 12});
  for (auto _ : state) {
    sim::Simulator sim;
    sim.set_recorder(&rec);
    disk::Disk d(0, sim, disk::DiskPowerParams{}, disk::DiskPerfParams{},
                 disk::DiskState::Idle);
    for (std::size_t i = 0; i < n; ++i) {
      disk::Request r;
      r.id = i;
      r.data = 0;
      d.submit(r);
    }
    sim.run();
    benchmark::DoNotOptimize(d.stats().requests_served);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DiskServiceLoopTraced)->Arg(1 << 10)->Arg(1 << 14);

void BM_TraceRecord(benchmark::State& state) {
  // Raw ring append throughput, wrap included: the per-site ceiling every
  // instrumented hot path pays when its category is enabled.
  obs::TraceRecorder rec({.enabled = true, .capacity = 1u << 16});
  std::uint64_t i = 0;
  for (auto _ : state) {
    rec.record(static_cast<double>(i), obs::Ev::kQueue, i, 3, 7);
    ++i;
    benchmark::DoNotOptimize(rec.recorded());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceRecord);

}  // namespace

BENCHMARK_MAIN();
