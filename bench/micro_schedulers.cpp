// Micro-benchmarks: per-request scheduling decision latency. The online
// heuristic must be cheap enough to sit on the I/O dispatch path.
#include <benchmark/benchmark.h>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "core/wsc_scheduler.hpp"
#include "fault/failure_view.hpp"
#include "placement/placement.hpp"
#include "util/rng.hpp"

using namespace eas;

namespace {

/// Static view with synthetic per-disk snapshots for decision benchmarks.
class BenchView final : public core::SystemView {
 public:
  BenchView(placement::PlacementMap placement, std::uint64_t seed)
      : placement_(std::move(placement)) {
    util::Rng rng(seed);
    snapshots_.resize(placement_.num_disks());
    for (auto& s : snapshots_) {
      s.state = static_cast<disk::DiskState>(rng.next_below(5));
      if (s.state == disk::DiskState::SpinningUp ||
          s.state == disk::DiskState::SpinningDown) {
        s.state = disk::DiskState::Idle;
      }
      s.last_request_time = rng.uniform(0.0, 100.0);
      s.queued_requests = static_cast<std::size_t>(rng.next_below(8));
    }
  }
  double now() const override { return 100.0; }
  const placement::PlacementMap& placement() const override {
    return placement_;
  }
  core::DiskSnapshot snapshot(DiskId k) const override {
    return snapshots_[k];
  }
  const disk::DiskPowerParams& power_params() const override { return power_; }
  const fault::FailureView* failure_view() const override { return view_; }

  void attach(const fault::FailureView* v) { view_ = v; }

 private:
  placement::PlacementMap placement_;
  std::vector<core::DiskSnapshot> snapshots_;
  disk::DiskPowerParams power_;
  const fault::FailureView* view_ = nullptr;
};

placement::PlacementMap bench_placement() {
  placement::ZipfPlacementConfig cfg;
  cfg.num_disks = 180;
  cfg.num_data = 32768;
  cfg.replication_factor = 3;
  return placement::make_zipf_placement(cfg);
}

template <typename Scheduler>
void run_pick(benchmark::State& state, Scheduler& sched) {
  const BenchView view(bench_placement(), 3);
  util::Rng rng(9);
  for (auto _ : state) {
    disk::Request r;
    r.data = static_cast<DataId>(rng.next_below(32768));
    benchmark::DoNotOptimize(sched.pick(r, view));
  }
}

void BM_PickStatic(benchmark::State& state) {
  core::StaticScheduler sched;
  run_pick(state, sched);
}
BENCHMARK(BM_PickStatic);

void BM_PickRandom(benchmark::State& state) {
  core::RandomScheduler sched(1);
  run_pick(state, sched);
}
BENCHMARK(BM_PickRandom);

void BM_PickHeuristic(benchmark::State& state) {
  core::CostFunctionScheduler sched;
  run_pick(state, sched);
}
BENCHMARK(BM_PickHeuristic);

// Failover-path cost: the same decisions with one dead disk in the
// FailureView, so every pick/cover filters candidates through the degraded
// view. The delta against the fault-free twin above is the price of the
// degraded-mode branch — tracked in BENCH_micro.json.
void BM_PickHeuristicDegraded(benchmark::State& state) {
  BenchView view(bench_placement(), 3);
  fault::FailureView fv(180);
  fv.set_health(0.0, 7, fault::DiskHealth::kDown);
  view.attach(&fv);
  core::CostFunctionScheduler sched;
  util::Rng rng(9);
  for (auto _ : state) {
    disk::Request r;
    r.data = static_cast<DataId>(rng.next_below(32768));
    benchmark::DoNotOptimize(sched.pick(r, view));
  }
}
BENCHMARK(BM_PickHeuristicDegraded);

void BM_WscAssignBatch(benchmark::State& state) {
  const BenchView view(bench_placement(), 3);
  core::WscBatchScheduler sched(0.1);
  util::Rng rng(11);
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  std::vector<disk::Request> batch;
  for (std::size_t i = 0; i < batch_size; ++i) {
    disk::Request r;
    r.id = i;
    r.data = static_cast<DataId>(rng.next_below(32768));
    batch.push_back(r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.assign(batch, view));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_WscAssignBatch)->Arg(4)->Arg(32)->Arg(256);

void BM_WscAssignBatchDegraded(benchmark::State& state) {
  BenchView view(bench_placement(), 3);
  fault::FailureView fv(180);
  fv.set_health(0.0, 7, fault::DiskHealth::kDown);
  view.attach(&fv);
  core::WscBatchScheduler sched(0.1);
  util::Rng rng(11);
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  std::vector<disk::Request> batch;
  for (std::size_t i = 0; i < batch_size; ++i) {
    disk::Request r;
    r.id = i;
    r.data = static_cast<DataId>(rng.next_below(32768));
    batch.push_back(r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.assign(batch, view));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_WscAssignBatchDegraded)->Arg(32)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
