// Fig 10 (Appendix A.1): normalized energy across the full data-placement
// grid — replication factor 1..5 x original-location Zipf exponent z — for
// Random, Static and Heuristic. Paper shape: Random/Static only save energy
// when locality is skewed (z near 1); Heuristic keeps saving even at z=0
// once replicas exist (>40% saving at rf=5, z=0), and its z-sensitivity
// shrinks as rf grows.
//
// The paper steps z by 0.1; default here is 0.25 for bench runtime, with
// EAS_ZSTEP available to reproduce the full grid. All (rf x z x scheduler)
// cells run as one parallel sweep sharing a single trace; each (rf, z)
// placement is built once and shared across its schedulers.
#include <cstdlib>
#include <iostream>

#include "runner/emit.hpp"
#include "runner/sweep.hpp"

using namespace eas;

namespace {

std::string z_label(double z) { return std::to_string(z).substr(0, 4); }

}  // namespace

int main() {
  double z_step = 0.25;
  if (const char* env = std::getenv("EAS_ZSTEP")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.0 && v <= 1.0) z_step = v;
  }

  const auto base = runner::ExperimentBuilder(runner::Workload::kCello)
                        .requests(runner::requests_from_env())
                        .build();
  const auto power = runner::paper_system_config().power;
  std::cerr << "# " << runner::describe(base) << " z_step=" << z_step << "\n";

  std::vector<double> zs;
  for (double z = 0.0; z <= 1.0 + 1e-9; z += z_step) zs.push_back(z);

  const std::vector<std::string> schedulers = {"random", "static", "heuristic"};
  std::vector<runner::CellSpec> cells;
  for (unsigned rf = 1; rf <= 5; ++rf) {
    for (double z : zs) {
      const auto p = runner::ExperimentBuilder(base)
                         .replication(rf)
                         .zipf_z(z)
                         .build();
      for (const auto& name : schedulers) {
        runner::CellSpec cell;
        cell.scheduler = name;
        cell.params = p;
        cell.tag = std::to_string(rf) + "/" + z_label(z);
        cells.push_back(std::move(cell));
      }
    }
  }

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  const auto format = runner::emit_format_from_env();
  std::cout << "=== Fig 10: normalized energy vs (rf, zipf z), Cello ===\n";
  for (const auto& name : schedulers) {
    std::vector<std::string> header{"rf"};
    for (double z : zs) header.push_back("z=" + z_label(z));
    runner::ResultTable t("scheduler: " + name, std::move(header));
    for (unsigned rf = 1; rf <= 5; ++rf) {
      t.row().cell(static_cast<int>(rf));
      for (double z : zs) {
        const auto& r = runner::find_cell(
            results, std::to_string(rf) + "/" + z_label(z), name);
        t.cell(r.result.normalized_energy(power));
      }
    }
    t.emit(std::cout, format);
    std::cout << "\n";
  }
  return 0;
}
