// Fig 10 (Appendix A.1): normalized energy across the full data-placement
// grid — replication factor 1..5 x original-location Zipf exponent z — for
// Random, Static and Heuristic. Paper shape: Random/Static only save energy
// when locality is skewed (z near 1); Heuristic keeps saving even at z=0
// once replicas exist (>40% saving at rf=5, z=0), and its z-sensitivity
// shrinks as rf grows.
//
// The paper steps z by 0.1; default here is 0.25 for bench runtime, with
// EAS_ZSTEP available to reproduce the full grid.
#include <cstdlib>
#include <iostream>

#include "common/experiment.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  double z_step = 0.25;
  if (const char* env = std::getenv("EAS_ZSTEP")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.0 && v <= 1.0) z_step = v;
  }

  bench::ExperimentParams base;
  base.workload = bench::Workload::kCello;
  base.num_requests = bench::requests_from_env();
  const auto trace =
      bench::make_workload(base.workload, base.trace_seed, base.num_requests);
  const auto power = bench::paper_system_config().power;
  std::cerr << "# " << bench::describe(base) << " z_step=" << z_step << "\n";

  std::cout << "=== Fig 10: normalized energy vs (rf, zipf z), Cello ===\n";
  for (const char* sched : {"random", "static", "heuristic"}) {
    std::cout << "--- scheduler: " << sched << " ---\n";
    std::vector<std::string> header{"rf"};
    for (double z = 0.0; z <= 1.0 + 1e-9; z += z_step) {
      header.push_back("z=" + std::to_string(z).substr(0, 4));
    }
    util::Table t(header);
    for (unsigned rf = 1; rf <= 5; ++rf) {
      t.row().cell(static_cast<int>(rf));
      for (double z = 0.0; z <= 1.0 + 1e-9; z += z_step) {
        bench::ExperimentParams p = base;
        p.replication_factor = rf;
        p.zipf_z = z;
        const auto placement = bench::make_placement(p);
        const auto result = bench::run_scheduler(sched, p, trace, placement);
        t.cell(result.normalized_energy(power));
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
