// Fig 17 (Appendix A.4): per-disk state-time breakdown, rf=3, Financial1.
// Paper: same qualitative picture as Fig 9.
#include "fig_breakdown_common.hpp"

int main() {
  std::cout << "=== Fig 17: per-disk state-time breakdown, rf=3 "
               "(Financial1) ===\n";
  eas::bench::print_breakdown(eas::runner::Workload::kFinancial,
                              {"random", "static", "wsc", "mwis"});
  return 0;
}
