// Ablation: the WSC batching interval (the paper fixes 0.1 s in §4.3).
// Longer intervals gather bigger batches — better covers, more energy
// saved — but every request eats the queueing delay. This bench maps that
// trade-off at rf = 3 on the Cello workload.
#include <iostream>

#include "runner/emit.hpp"
#include "runner/sweep.hpp"

using namespace eas;

int main() {
  const auto base = runner::ExperimentBuilder(runner::Workload::kCello)
                        .requests(runner::requests_from_env(30000))
                        .replication(3)
                        .build();
  const auto power = runner::paper_system_config().power;
  std::cerr << "# " << runner::describe(base) << "\n";

  const double intervals[] = {0.01, 0.05, 0.1, 0.5, 1.0, 5.0};
  std::vector<runner::CellSpec> cells;
  for (double interval : intervals) {
    runner::CellSpec cell;
    cell.scheduler = "wsc";
    cell.params = runner::ExperimentBuilder(base).batch_interval(interval).build();
    cell.tag = std::to_string(interval);
    cells.push_back(std::move(cell));
  }

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  runner::ResultTable t("Ablation: WSC batch interval, rf=3 (Cello)",
                        {"interval_s", "norm_energy", "mean_resp_s",
                         "p90_resp_ms", "spin_up+down"});
  for (const auto& cell : results) {
    const auto& r = cell.result;
    t.row()
        .cell(cell.spec.params.batch_interval)
        .cell(r.normalized_energy(power))
        .cell(r.mean_response(), 4)
        .cell(r.response_times.p90() * 1e3, 1)
        .cell(static_cast<unsigned long long>(r.total_spin_ups() +
                                              r.total_spin_downs()));
  }
  t.emit(std::cout, runner::emit_format_from_env());
  std::cout << "\nExpected shape: p90 response grows with the interval "
               "(queueing floor ~ interval); energy improves modestly as "
               "batches grow, then saturates.\n";
  return 0;
}
