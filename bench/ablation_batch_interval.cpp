// Ablation: the WSC batching interval (the paper fixes 0.1 s in §4.3).
// Longer intervals gather bigger batches — better covers, more energy
// saved — but every request eats the queueing delay. This bench maps that
// trade-off at rf = 3 on the Cello workload.
#include <iostream>

#include "common/experiment.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  bench::ExperimentParams params;
  params.workload = bench::Workload::kCello;
  params.num_requests = bench::requests_from_env(30000);
  params.replication_factor = 3;
  const auto trace = bench::make_workload(params.workload, params.trace_seed,
                                          params.num_requests);
  const auto placement = bench::make_placement(params);
  const auto power = bench::paper_system_config().power;
  std::cerr << "# " << bench::describe(params) << "\n";

  std::cout << "=== Ablation: WSC batch interval, rf=3 (Cello) ===\n";
  util::Table t({"interval_s", "norm_energy", "mean_resp_s", "p90_resp_ms",
                 "spin_up+down"});
  for (double interval : {0.01, 0.05, 0.1, 0.5, 1.0, 5.0}) {
    bench::ExperimentParams p = params;
    p.batch_interval = interval;
    const auto r = bench::run_wsc(p, trace, placement);
    t.row()
        .cell(interval)
        .cell(r.normalized_energy(power))
        .cell(r.mean_response(), 4)
        .cell(r.response_times.p90() * 1e3, 1)
        .cell(static_cast<unsigned long long>(r.total_spin_ups() +
                                              r.total_spin_downs()));
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: p90 response grows with the interval "
               "(queueing floor ~ interval); energy improves modestly as "
               "batches grow, then saturates.\n";
  return 0;
}
