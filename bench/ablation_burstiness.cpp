// Ablation: workload burstiness. §A.4 attributes the Cello-vs-Financial1
// response-time gap (~1 s vs ~300 ms) to interarrival burstiness. This
// bench sweeps the MMPP burst multiplier at a fixed mean rate and shows how
// interarrival CV drives mean response while the energy ranking stays put.
// Each multiplier's synthetic trace is built once up front and shared (as
// an immutable CellSpec input) by its static and heuristic cells.
#include <iostream>

#include "runner/emit.hpp"
#include "runner/sweep.hpp"
#include "trace/synthetic.hpp"

using namespace eas;

int main() {
  const auto params = runner::ExperimentBuilder(runner::Workload::kCello)
                          .requests(runner::requests_from_env(30000))
                          .replication(3)
                          .build();
  const auto power = runner::paper_system_config().power;
  std::cerr << "# burstiness sweep, " << runner::describe(params) << "\n";

  const double mults[] = {1.0, 3.0, 10.0, 30.0, 60.0, 100.0};
  std::vector<double> cvs;
  std::vector<runner::CellSpec> cells;
  for (double mult : mults) {
    trace::SyntheticTraceConfig tc;
    tc.num_requests = params.num_requests;
    tc.num_data = 32768;
    tc.mean_rate = 35.0;
    tc.burst_rate_multiplier = mult;
    tc.burst_time_fraction = mult > 1.0 ? 0.04 : 0.0;
    tc.mean_burst_seconds = 2.0;
    auto shared_trace =
        std::make_shared<const trace::Trace>(trace::make_synthetic_trace(tc));
    cvs.push_back(shared_trace->compute_stats().interarrival_cv);

    for (const char* sched : {"static", "heuristic"}) {
      runner::CellSpec cell;
      cell.scheduler = sched;
      cell.params = params;
      cell.tag = std::to_string(static_cast<int>(mult));
      cell.trace = shared_trace;
      cells.push_back(std::move(cell));
    }
  }

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  runner::ResultTable t(
      "Ablation: arrival burstiness (MMPP multiplier), rf=3",
      {"multiplier", "interarrival_cv", "static_energy", "heuristic_energy",
       "static_resp_s", "heuristic_resp_s"});
  for (std::size_t m = 0; m < std::size(mults); ++m) {
    const auto tag = std::to_string(static_cast<int>(mults[m]));
    const auto& rs = runner::find_cell(results, tag, "static").result;
    const auto& rh = runner::find_cell(results, tag, "heuristic").result;
    t.row()
        .cell(mults[m], 0)
        .cell(cvs[m], 2)
        .cell(rs.normalized_energy(power))
        .cell(rh.normalized_energy(power))
        .cell(rs.mean_response(), 4)
        .cell(rh.mean_response(), 4);
  }
  t.emit(std::cout, runner::emit_format_from_env());
  std::cout << "\nExpected shape: response time rises steeply with CV "
               "(queueing during bursts + spin-up tails); the heuristic's "
               "energy advantage over Static persists at every burstiness "
               "level — the Cello/Financial1 gap is a response-time story, "
               "not an energy one.\n";
  return 0;
}
