// Ablation: workload burstiness. §A.4 attributes the Cello-vs-Financial1
// response-time gap (~1 s vs ~300 ms) to interarrival burstiness. This
// bench sweeps the MMPP burst multiplier at a fixed mean rate and shows how
// interarrival CV drives mean response while the energy ranking stays put.
#include <iostream>

#include "common/experiment.hpp"
#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "power/fixed_threshold.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  bench::ExperimentParams params;
  params.replication_factor = 3;
  params.num_requests = bench::requests_from_env(30000);
  const auto placement = bench::make_placement(params);
  const auto cfg = bench::paper_system_config();
  std::cerr << "# burstiness sweep, " << bench::describe(params) << "\n";

  std::cout << "=== Ablation: arrival burstiness (MMPP multiplier), rf=3 "
               "===\n";
  util::Table t({"multiplier", "interarrival_cv", "static_energy",
                 "heuristic_energy", "static_resp_s", "heuristic_resp_s"});
  for (double mult : {1.0, 3.0, 10.0, 30.0, 60.0, 100.0}) {
    trace::SyntheticTraceConfig tc;
    tc.num_requests = params.num_requests;
    tc.num_data = 32768;
    tc.mean_rate = 35.0;
    tc.burst_rate_multiplier = mult;
    tc.burst_time_fraction = mult > 1.0 ? 0.04 : 0.0;
    tc.mean_burst_seconds = 2.0;
    const auto trace = trace::make_synthetic_trace(tc);
    const auto cv = trace.compute_stats().interarrival_cv;

    core::StaticScheduler static_sched;
    core::CostFunctionScheduler heur(params.cost);
    power::FixedThresholdPolicy p1, p2;
    const auto rs =
        storage::run_online(cfg, placement, trace, static_sched, p1);
    const auto rh = storage::run_online(cfg, placement, trace, heur, p2);
    t.row()
        .cell(mult, 0)
        .cell(cv, 2)
        .cell(rs.normalized_energy(cfg.power))
        .cell(rh.normalized_energy(cfg.power))
        .cell(rs.mean_response(), 4)
        .cell(rh.mean_response(), 4);
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: response time rises steeply with CV "
               "(queueing during bursts + spin-up tails); the heuristic's "
               "energy advantage over Static persists at every burstiness "
               "level — the Cello/Financial1 gap is a response-time story, "
               "not an energy one.\n";
  return 0;
}
