// Ablation: the power-management policy under a fixed scheduler.
// 2CPM's breakeven threshold is provably 2-competitive; this bench measures
// how always-on, eager/lazy thresholds, and the offline oracle compare on a
// real workload (heuristic scheduler, rf = 3, Cello). The threshold rows
// are registry-inexpressible (they vary the policy under one scheduler), so
// they use CellSpec::run — each lambda builds its own scheduler+policy,
// keeping cells independent and the sweep parallel.
#include <iostream>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "power/fixed_threshold.hpp"
#include "runner/emit.hpp"
#include "runner/sweep.hpp"

using namespace eas;

int main() {
  const auto params = runner::ExperimentBuilder(runner::Workload::kCello)
                          .requests(runner::requests_from_env(30000))
                          .replication(3)
                          .build();
  const auto cfg = runner::paper_system_config();
  const double breakeven = cfg.power.breakeven_seconds();
  std::cerr << "# " << runner::describe(params) << "\n";

  std::vector<runner::CellSpec> cells;
  const auto add = [&](std::string tag,
                       std::function<storage::RunResult(
                           const runner::ExperimentParams&,
                           const trace::Trace&, const placement::PlacementMap&)>
                           run) {
    runner::CellSpec cell;
    cell.params = params;
    cell.tag = std::move(tag);
    cell.run = std::move(run);
    if (!cell.run) cell.scheduler = cell.tag;  // tag doubles as registry name
    cells.push_back(std::move(cell));
  };

  add("always-on", nullptr);
  for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    add("threshold x" + std::to_string(factor).substr(0, 4),
        [factor, breakeven](const runner::ExperimentParams& p,
                            const trace::Trace& trace,
                            const placement::PlacementMap& placement) {
          const auto config = runner::system_config_for(p);
          core::CostFunctionScheduler sched(p.cost);
          power::FixedThresholdPolicy policy(
              factor == 1.0 ? -1.0 : breakeven * factor);
          return storage::run_online(config, placement, trace, sched, policy);
        });
  }
  // Oracle comparison point: a deterministic assignment (Static) replayed
  // with future knowledge (per-disk pre-spins, no wake penalties) — a
  // stateful heuristic's dispatch cannot be replayed offline, so Static
  // isolates the policy axis. The plain online Static row pairs with it.
  add("static@oracle",
      [](const runner::ExperimentParams& p, const trace::Trace& trace,
         const placement::PlacementMap& placement) {
        const auto config = runner::system_config_for(p);
        core::StaticScheduler sched;
        const auto assignment = sched.schedule(trace, placement, config.power);
        return storage::run_offline(config, placement, trace, assignment,
                                    "static@oracle");
      });
  add("static", nullptr);

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  runner::ResultTable t(
      "Ablation: power policy under the heuristic scheduler, rf=3 (Cello)",
      {"policy", "norm_energy", "mean_resp_s", "waited_spinup",
       "spin_up+down"});
  for (const auto& cell : results) {
    const auto& r = cell.result;
    t.row()
        .cell(r.policy_name)
        .cell(r.normalized_energy(cfg.power))
        .cell(r.mean_response(), 4)
        .cell(static_cast<unsigned long long>(r.requests_waited_spinup))
        .cell(static_cast<unsigned long long>(r.total_spin_ups() +
                                              r.total_spin_downs()));
  }
  t.emit(std::cout, runner::emit_format_from_env());
  std::cout << "\nExpected shape: eager thresholds (< T_B) add spin cycles "
               "and wake penalties; lazy ones (> T_B) idle away the savings; "
               "the oracle rows bound what any threshold policy could do on "
               "the same assignment.\n";
  return 0;
}
