// Ablation: the power-management policy under a fixed scheduler.
// 2CPM's breakeven threshold is provably 2-competitive; this bench measures
// how always-on, eager/lazy thresholds, and the offline oracle compare on a
// real workload (heuristic scheduler, rf = 3, Cello).
#include <iostream>

#include "common/experiment.hpp"
#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "power/fixed_threshold.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  bench::ExperimentParams params;
  params.workload = bench::Workload::kCello;
  params.num_requests = bench::requests_from_env(30000);
  params.replication_factor = 3;
  const auto trace = bench::make_workload(params.workload, params.trace_seed,
                                          params.num_requests);
  const auto placement = bench::make_placement(params);
  const auto cfg = bench::paper_system_config();
  const double breakeven = cfg.power.breakeven_seconds();
  std::cerr << "# " << bench::describe(params) << "\n";

  std::cout << "=== Ablation: power policy under the heuristic scheduler, "
               "rf=3 (Cello) ===\n";
  util::Table t({"policy", "norm_energy", "mean_resp_s", "waited_spinup",
                 "spin_up+down"});

  auto report = [&](const storage::RunResult& r) {
    t.row()
        .cell(r.policy_name)
        .cell(r.normalized_energy(cfg.power))
        .cell(r.mean_response(), 4)
        .cell(static_cast<unsigned long long>(r.requests_waited_spinup))
        .cell(static_cast<unsigned long long>(r.total_spin_ups() +
                                              r.total_spin_downs()));
  };

  report(bench::run_always_on(params, trace, placement));
  for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::CostFunctionScheduler sched(params.cost);
    power::FixedThresholdPolicy policy(factor == 1.0 ? -1.0
                                                     : breakeven * factor);
    report(storage::run_online(cfg, placement, trace, sched, policy));
  }
  {
    // Oracle comparison point: the same heuristic *assignment* replayed
    // with future knowledge (per-disk pre-spins, no wake penalties).
    core::CostFunctionScheduler sched(params.cost);
    power::FixedThresholdPolicy policy;
    const auto live = storage::run_online(cfg, placement, trace, sched, policy);
    (void)live;
    // Re-derive the dispatch assignment by replaying decisions offline is
    // not possible for a stateful heuristic, so use Static for the oracle
    // row — it isolates the policy axis on a deterministic assignment.
    core::StaticScheduler static_sched;
    const auto assignment =
        static_sched.schedule(trace, placement, cfg.power);
    report(storage::run_offline(cfg, placement, trace, assignment,
                                "static@oracle"));
    power::FixedThresholdPolicy p2;
    core::StaticScheduler s2;
    report(storage::run_online(cfg, placement, trace, s2, p2));
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: eager thresholds (< T_B) add spin cycles "
               "and wake penalties; lazy ones (> T_B) idle away the savings; "
               "the oracle rows bound what any threshold policy could do on "
               "the same assignment.\n";
  return 0;
}
