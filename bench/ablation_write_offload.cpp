// Ablation: write off-loading (§2.1's assumed substrate, implemented as an
// extension). Sweeps the write fraction of a Cello-like workload and
// compares wake-the-home-disk handling against off-loading to spinning
// disks, under the energy-aware heuristic at rf=3. Mixed read/write runs
// thread a WriteOffloadManager through run_online_mixed — outside the
// registry's vocabulary — so every cell is a CellSpec::run lambda that owns
// its manager and deposits the offload counters in a pre-sized slot.
#include <iostream>

#include "core/cost_scheduler.hpp"
#include "core/write_offload.hpp"
#include "power/fixed_threshold.hpp"
#include "runner/emit.hpp"
#include "runner/sweep.hpp"
#include "trace/synthetic.hpp"

using namespace eas;

int main() {
  const auto params = runner::ExperimentBuilder(runner::Workload::kCello)
                          .requests(runner::requests_from_env(30000))
                          .replication(3)
                          .build();
  const auto power = runner::paper_system_config().power;
  std::cerr << "# write-offload ablation, " << runner::describe(params)
            << "\n";

  const double fracs[] = {0.0, 0.1, 0.3, 0.5};
  std::vector<runner::CellSpec> cells;
  std::vector<core::WriteOffloadStats> stats(std::size(fracs) * 2);
  for (std::size_t f = 0; f < std::size(fracs); ++f) {
    trace::SyntheticTraceConfig tc =
        trace::cello_like_config(params.trace_seed);
    tc.num_requests = params.num_requests;
    tc.write_fraction = fracs[f];
    auto shared_trace = std::make_shared<const trace::Trace>(
        trace::make_synthetic_trace(tc));

    for (const bool enabled : {false, true}) {
      const std::size_t slot = f * 2 + (enabled ? 1 : 0);
      runner::CellSpec cell;
      cell.params = params;
      cell.tag = std::to_string(fracs[f]).substr(0, 3) +
                 (enabled ? "/offload" : "/wake-home");
      cell.trace = shared_trace;
      cell.run = [enabled, slot, &stats](
                     const runner::ExperimentParams& p,
                     const trace::Trace& trace,
                     const placement::PlacementMap& placement) {
        const auto config = runner::system_config_for(p);
        core::CostFunctionScheduler sched(p.cost);
        power::FixedThresholdPolicy policy;
        core::WriteOffloadOptions opts;
        opts.enabled = enabled;
        opts.cost = p.cost;
        core::WriteOffloadManager offloader(opts);
        auto r = storage::run_online_mixed(config, placement, trace, sched,
                                           policy, offloader);
        stats[slot] = offloader.stats();
        return r;
      };
      cells.push_back(std::move(cell));
    }
  }

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  runner::ResultTable t(
      "Ablation: write off-loading vs wake-the-home, rf=3",
      {"write_frac", "mode", "norm_energy", "spin_up+down", "mean_resp_s",
       "diverted", "redirected_reads", "reclaims"});
  for (std::size_t f = 0; f < std::size(fracs); ++f) {
    for (const bool enabled : {false, true}) {
      const std::size_t slot = f * 2 + (enabled ? 1 : 0);
      const auto& r = results[slot].result;
      t.row()
          .cell(fracs[f], 1)
          .cell(enabled ? "offload" : "wake-home")
          .cell(r.normalized_energy(power))
          .cell(static_cast<unsigned long long>(r.total_spin_ups() +
                                                r.total_spin_downs()))
          .cell(r.mean_response(), 4)
          .cell(static_cast<unsigned long long>(stats[slot].writes_diverted))
          .cell(static_cast<unsigned long long>(stats[slot].reads_redirected))
          .cell(static_cast<unsigned long long>(stats[slot].reclaims));
    }
  }
  t.emit(std::cout, runner::emit_format_from_env());
  std::cout << "\nExpected shape: identical at write fraction 0; as writes "
               "grow, wake-the-home burns wake cycles on sleeping homes "
               "while off-loading keeps them asleep (lower energy, fewer "
               "spin ops) at the cost of diversion bookkeeping.\n";
  return 0;
}
