// Ablation: write off-loading (§2.1's assumed substrate, implemented as an
// extension). Sweeps the write fraction of a Cello-like workload and
// compares wake-the-home-disk handling against off-loading to spinning
// disks, under the energy-aware heuristic at rf=3.
#include <iostream>

#include "common/experiment.hpp"
#include "core/cost_scheduler.hpp"
#include "core/write_offload.hpp"
#include "power/fixed_threshold.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  bench::ExperimentParams params;
  params.replication_factor = 3;
  params.num_requests = bench::requests_from_env(30000);
  const auto placement = bench::make_placement(params);
  const auto cfg = bench::paper_system_config();
  std::cerr << "# write-offload ablation, " << bench::describe(params) << "\n";

  std::cout << "=== Ablation: write off-loading vs wake-the-home, rf=3 ===\n";
  util::Table t({"write_frac", "mode", "norm_energy", "spin_up+down",
                 "mean_resp_s", "diverted", "redirected_reads", "reclaims"});
  for (double frac : {0.0, 0.1, 0.3, 0.5}) {
    trace::SyntheticTraceConfig tc = trace::cello_like_config(params.trace_seed);
    tc.num_requests = params.num_requests;
    tc.write_fraction = frac;
    const auto trace = trace::make_synthetic_trace(tc);

    for (const bool enabled : {false, true}) {
      core::CostFunctionScheduler sched(params.cost);
      power::FixedThresholdPolicy policy;
      core::WriteOffloadOptions opts;
      opts.enabled = enabled;
      opts.cost = params.cost;
      core::WriteOffloadManager offloader(opts);
      const auto r = storage::run_online_mixed(cfg, placement, trace, sched,
                                               policy, offloader);
      t.row()
          .cell(frac, 1)
          .cell(enabled ? "offload" : "wake-home")
          .cell(r.normalized_energy(cfg.power))
          .cell(static_cast<unsigned long long>(r.total_spin_ups() +
                                                r.total_spin_downs()))
          .cell(r.mean_response(), 4)
          .cell(static_cast<unsigned long long>(
              offloader.stats().writes_diverted))
          .cell(static_cast<unsigned long long>(
              offloader.stats().reads_redirected))
          .cell(static_cast<unsigned long long>(offloader.stats().reclaims));
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: identical at write fraction 0; as writes "
               "grow, wake-the-home burns wake cycles on sleeping homes "
               "while off-loading keeps them asleep (lower energy, fewer "
               "spin ops) at the cost of diversion bookkeeping.\n";
  return 0;
}
