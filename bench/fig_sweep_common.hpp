// Shared replication-factor sweep used by the Fig 6/7/8/13 (Cello) and
// Fig 14/15/16 (Financial1) benches: run the §4.3 scheduler roster at
// rf = 1..5 over one workload. The (rf × scheduler) grid is declared once
// and executed by the parallel SweepRunner — all cells share one immutable
// trace, one placement per rf, and results are bit-identical to a serial
// run regardless of EAS_THREADS.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "runner/emit.hpp"
#include "runner/sweep.hpp"

namespace eas::bench {

inline constexpr unsigned kMaxReplication = 5;

struct ReplicationSweep {
  std::vector<runner::CellResult> cells;

  const storage::RunResult& at(unsigned rf, std::string_view sched) const {
    return runner::find_cell(cells, std::to_string(rf), sched).result;
  }
};

/// Runs `schedulers` (registry row names) for rf 1..5 in parallel.
inline ReplicationSweep sweep_replication(
    runner::Workload workload, const std::vector<std::string>& schedulers) {
  const auto base = runner::ExperimentBuilder(workload)
                        .requests(runner::requests_from_env())
                        .build();
  std::cerr << "# " << runner::describe(base) << "\n";

  std::vector<std::string> axis;
  for (unsigned rf = 1; rf <= kMaxReplication; ++rf) {
    axis.push_back(std::to_string(rf));
  }
  auto cells = runner::product_grid(
      base, schedulers, axis,
      [](const runner::ExperimentParams& b, const std::string& tag) {
        return runner::ExperimentBuilder(b)
            .replication(static_cast<unsigned>(std::stoul(tag)))
            .build();
      });

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  return ReplicationSweep{runner::SweepRunner(opts).run(std::move(cells))};
}

/// The common "one metric per (rf, scheduler)" pivot: rf rows, one column
/// per scheduler, values from `metric`.
template <typename MetricFn>
runner::ResultTable pivot_by_rf(const ReplicationSweep& sweep,
                                std::string title,
                                const std::vector<std::string>& schedulers,
                                MetricFn&& metric, int precision = 3) {
  std::vector<std::string> columns{"rf"};
  columns.insert(columns.end(), schedulers.begin(), schedulers.end());
  runner::ResultTable t(std::move(title), std::move(columns));
  for (unsigned rf = 1; rf <= kMaxReplication; ++rf) {
    t.row().cell(static_cast<int>(rf));
    for (const auto& name : schedulers) {
      t.cell(metric(sweep, rf, name), precision);
    }
  }
  return t;
}

}  // namespace eas::bench
