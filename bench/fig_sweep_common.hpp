// Shared replication-factor sweep used by the Fig 6/7/8/13 (Cello) and
// Fig 14/15/16 (Financial1) benches: run the §4.3 scheduler roster at
// rf = 1..5 over one workload and hand each result to a row callback.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/experiment.hpp"

namespace eas::bench {

struct SweepRow {
  unsigned rf;
  std::string scheduler;
  storage::RunResult result;
  /// The Static run at the same rf (already computed), for normalisation.
  const storage::RunResult* static_ref;
};

/// Runs `schedulers` (row names) for rf 1..5 and invokes `consume` per run.
/// The "static" row is always run (first) so it can serve as reference.
inline void sweep_replication(Workload workload,
                              const std::vector<std::string>& schedulers,
                              const std::function<void(const SweepRow&)>& consume) {
  ExperimentParams params;
  params.workload = workload;
  params.num_requests = requests_from_env();
  const auto trace =
      make_workload(workload, params.trace_seed, params.num_requests);
  std::cerr << "# " << describe(params) << "\n";

  for (unsigned rf = 1; rf <= 5; ++rf) {
    ExperimentParams p = params;
    p.replication_factor = rf;
    const auto placement = make_placement(p);
    const auto static_run = run_static(p, trace, placement);
    for (const auto& name : schedulers) {
      if (name == "static") {
        consume(SweepRow{rf, name, static_run, &static_run});
        continue;
      }
      consume(SweepRow{rf, name, run_scheduler(name, p, trace, placement),
                       &static_run});
    }
  }
}

}  // namespace eas::bench
