#include <cstdlib>
#include <iostream>
#include "runner/experiment.hpp"
#include "core/energy_model.hpp"
#include "core/offline_eval.hpp"
#include "core/refine.hpp"
#include "storage/storage_system.hpp"
using namespace eas;
int main(int argc, char** argv) {
  runner::ExperimentParams p;
  if (argc > 1 && std::string(argv[1]) == "financial") p.workload = runner::Workload::kFinancial;
  p.num_requests = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5000;  // quick by default
  if (argc > 3) p.replication_factor = std::atoi(argv[3]);
  std::size_t passes = argc > 4 ? std::atoi(argv[4]) : 8;
  const auto trace = runner::make_workload(p.workload, p.trace_seed, p.num_requests);
  const auto placement = runner::make_placement(p);
  const auto power = runner::paper_system_config().power;
  core::OfflineAssignment a;
  std::vector<double> last(placement.num_disks(), -1e9);
  for (std::size_t r = 0; r < trace.size(); ++r) {
    DiskId best = placement.original(trace[r].data);
    double bs = 0.0;
    for (DiskId k : placement.locations(trace[r].data)) {
      const double s = core::pairwise_energy_saving(std::max(last[k], 0.0) <= trace[r].time && last[k] > -1e8 ? last[k] : trace[r].time - power.saving_window_seconds() - 1, trace[r].time, power);
      if (s > bs) { bs = s; best = k; }
    }
    a.disk_of_request.push_back(best);
    last[best] = trace[r].time;
  }
  const auto st = core::refine_offline_assignment(a, trace, placement, power, passes);
  const auto run = storage::run_offline(runner::paper_system_config(), placement, trace, a, "pile+refine");
  std::cout << "pile+refine passes=" << passes << " moves=" << st.moves << "+" << st.pair_moves
            << " norm_energy=" << run.normalized_energy(power) << "\n";
  return 0;
}
