// Fig 7: number of disk spin-up/down operations vs replication factor,
// Cello workload, normalized to the Static schedule. Paper shape: MWIS is
// far below 1 already at rf=1; the energy-aware rows and Random decline as
// replication grows.
#include <iostream>

#include "fig_sweep_common.hpp"

using namespace eas;

namespace {

double spin_ops(const storage::RunResult& r) {
  return static_cast<double>(r.total_spin_ups() + r.total_spin_downs());
}

}  // namespace

int main() {
  const std::vector<std::string> schedulers = {"random", "static", "heuristic",
                                               "wsc", "mwis"};
  const auto sweep = bench::sweep_replication(runner::Workload::kCello,
                                              schedulers);
  bench::pivot_by_rf(
      sweep,
      "Fig 7: spin-up/down ops vs replication factor, normalized to Static "
      "(Cello)",
      schedulers,
      [](const bench::ReplicationSweep& s, unsigned rf,
         const std::string& name) {
        const double ref = spin_ops(s.at(rf, "static"));
        return ref > 0.0 ? spin_ops(s.at(rf, name)) / ref : 0.0;
      })
      .emit(std::cout, runner::emit_format_from_env());
  return 0;
}
