// Shared per-disk state-time breakdown (Fig 9 / Fig 17): for each scheduler
// at rf=3, report the percentage of time every disk spends in standby /
// idle / active / spin-up+down, disks sorted by standby share descending —
// exactly the series those figures plot, condensed to every Nth disk plus
// fleet aggregates.
#pragma once

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/experiment.hpp"
#include "util/table.hpp"

namespace eas::bench {

inline void print_breakdown(Workload workload,
                            const std::vector<std::string>& schedulers) {
  ExperimentParams params;
  params.workload = workload;
  params.num_requests = requests_from_env();
  params.replication_factor = 3;
  const auto trace =
      make_workload(workload, params.trace_seed, params.num_requests);
  const auto placement = make_placement(params);
  std::cerr << "# " << describe(params) << "\n";

  for (const auto& name : schedulers) {
    const auto result = run_scheduler(name, params, trace, placement);

    struct Row {
      double standby, idle, active, spin;
    };
    std::vector<Row> rows;
    rows.reserve(result.disk_stats.size());
    for (const auto& ds : result.disk_stats) {
      const double total = ds.total_seconds();
      if (total <= 0.0) continue;
      rows.push_back(Row{
          100.0 * ds.seconds(disk::DiskState::Standby) / total,
          100.0 * ds.seconds(disk::DiskState::Idle) / total,
          100.0 * ds.seconds(disk::DiskState::Active) / total,
          100.0 *
              (ds.seconds(disk::DiskState::SpinningUp) +
               ds.seconds(disk::DiskState::SpinningDown)) /
              total,
      });
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.standby > b.standby; });

    std::cout << "--- scheduler: " << name << " (disks sorted by standby "
              << "share, every 15th of " << rows.size() << ") ---\n";
    util::Table t({"disk_rank", "standby%", "idle%", "active%", "spin%"});
    for (std::size_t i = 0; i < rows.size(); i += 15) {
      t.row()
          .cell(i)
          .cell(rows[i].standby, 1)
          .cell(rows[i].idle, 1)
          .cell(rows[i].active, 2)
          .cell(rows[i].spin, 1);
    }
    Row mean{0, 0, 0, 0};
    std::size_t above_half = 0;
    for (const auto& r : rows) {
      mean.standby += r.standby;
      mean.idle += r.idle;
      mean.active += r.active;
      mean.spin += r.spin;
      if (r.standby > 50.0) ++above_half;
    }
    const auto n = static_cast<double>(rows.size());
    t.row()
        .cell(std::string("fleet-mean"))
        .cell(mean.standby / n, 1)
        .cell(mean.idle / n, 1)
        .cell(mean.active / n, 2)
        .cell(mean.spin / n, 1);
    t.print(std::cout);
    std::cout << "disks >50% standby: " << above_half << " / " << rows.size()
              << "\n\n";
  }
}

}  // namespace eas::bench
