// Shared per-disk state-time breakdown (Fig 9 / Fig 17): for each scheduler
// at rf=3, report the percentage of time every disk spends in standby /
// idle / active / spin-up+down, disks sorted by standby share descending —
// exactly the series those figures plot, condensed to every Nth disk plus
// fleet aggregates. The four scheduler cells run concurrently on the
// SweepRunner; the per-scheduler tables are printed afterwards in roster
// order, so output is independent of EAS_THREADS.
#pragma once

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "runner/emit.hpp"
#include "runner/sweep.hpp"

namespace eas::bench {

inline void print_breakdown(runner::Workload workload,
                            const std::vector<std::string>& schedulers) {
  const auto params = runner::ExperimentBuilder(workload)
                          .requests(runner::requests_from_env())
                          .replication(3)
                          .build();
  std::cerr << "# " << runner::describe(params) << "\n";

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto cells = runner::SweepRunner(opts).run(
      runner::product_grid(params, schedulers, {"rf3"}, nullptr));

  const auto format = runner::emit_format_from_env();
  for (const auto& name : schedulers) {
    const auto& result = runner::find_cell(cells, "rf3", name).result;

    struct Row {
      double standby, idle, active, spin;
    };
    std::vector<Row> rows;
    rows.reserve(result.disk_stats.size());
    for (const auto& ds : result.disk_stats) {
      const double total = ds.total_seconds();
      if (total <= 0.0) continue;
      rows.push_back(Row{
          100.0 * ds.seconds(disk::DiskState::Standby) / total,
          100.0 * ds.seconds(disk::DiskState::Idle) / total,
          100.0 * ds.seconds(disk::DiskState::Active) / total,
          100.0 *
              (ds.seconds(disk::DiskState::SpinningUp) +
               ds.seconds(disk::DiskState::SpinningDown)) /
              total,
      });
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.standby > b.standby; });

    runner::ResultTable t(
        "scheduler: " + name + " (disks sorted by standby share, every 15th " +
            "of " + std::to_string(rows.size()) + ")",
        {"disk_rank", "standby%", "idle%", "active%", "spin%"});
    for (std::size_t i = 0; i < rows.size(); i += 15) {
      t.row()
          .cell(i)
          .cell(rows[i].standby, 1)
          .cell(rows[i].idle, 1)
          .cell(rows[i].active, 2)
          .cell(rows[i].spin, 1);
    }
    Row mean{0, 0, 0, 0};
    std::size_t above_half = 0;
    for (const auto& r : rows) {
      mean.standby += r.standby;
      mean.idle += r.idle;
      mean.active += r.active;
      mean.spin += r.spin;
      if (r.standby > 50.0) ++above_half;
    }
    const auto n = static_cast<double>(rows.size());
    t.row()
        .cell(std::string("fleet-mean"))
        .cell(mean.standby / n, 1)
        .cell(mean.idle / n, 1)
        .cell(mean.active / n, 2)
        .cell(mean.spin / n, 1);
    t.emit(std::cout, format);
    std::cout << "disks >50% standby: " << above_half << " / " << rows.size()
              << "\n\n";
  }
}

}  // namespace eas::bench
