// Micro-benchmarks: combinatorial kernels (set cover, GWMIN, conflict-graph
// construction, Zipf sampling).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <utility>

#include "core/conflict_graph.hpp"
#include "graph/mwis.hpp"
#include "graph/set_cover.hpp"
#include "placement/placement.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

using namespace eas;

namespace {

graph::SetCoverInstance random_cover(std::size_t elements, std::size_t sets,
                                     double density, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::SetCoverInstance inst;
  inst.num_elements = elements;
  inst.sets.resize(sets);
  for (auto& s : inst.sets) {
    s.weight = rng.uniform(0.5, 10.0);
    for (std::size_t e = 0; e < elements; ++e) {
      if (rng.bernoulli(density)) s.elements.push_back(e);
    }
  }
  // One universal set guarantees feasibility.
  inst.sets.push_back({100.0, {}});
  for (std::size_t e = 0; e < elements; ++e) {
    inst.sets.back().elements.push_back(e);
  }
  return inst;
}

void BM_GreedySetCover(benchmark::State& state) {
  const auto inst = random_cover(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(0)) / 2,
                                 0.05, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::greedy_weighted_set_cover(inst));
  }
}
BENCHMARK(BM_GreedySetCover)->Arg(64)->Arg(512)->Arg(4096);

/// Random edge list with expected average degree 8 (weights via `rng` too).
std::vector<std::pair<std::size_t, std::size_t>> random_edges(
    std::size_t n, util::Rng& rng, std::vector<double>& weights) {
  weights.clear();
  for (std::size_t v = 0; v < n; ++v) weights.push_back(rng.uniform(1, 10));
  const double density = 8.0 / static_cast<double>(n);  // avg degree ~8
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (rng.bernoulli(density)) edges.emplace_back(u, v);
    }
  }
  return edges;
}

graph::WeightedGraph random_graph(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> weights;
  const auto edges = random_edges(n, rng, weights);
  graph::WeightedGraphBuilder b(std::move(weights));
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

void BM_GwminExplicit(benchmark::State& state) {
  const auto g = random_graph(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::gwmin(g));
  }
}
BENCHMARK(BM_GwminExplicit)->Arg(256)->Arg(1024);

/// CSR construction from a pre-generated edge list: items/sec should stay
/// flat as n grows (linear counting-sort build — the old representation's
/// per-insertion O(deg) duplicate probe made this superlinear).
void BM_WeightedGraphBuild(benchmark::State& state) {
  util::Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> weights;
  for (std::size_t v = 0; v < n; ++v) weights.push_back(rng.uniform(1, 10));
  // ~4n distinct edges sampled directly (a density sweep would be O(n^2)).
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t e = 0; e < 4 * n; ++e) {
    const auto u = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (u < v) edges.emplace_back(u, v);
    if (v < u) edges.emplace_back(v, u);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (auto _ : state) {
    graph::WeightedGraphBuilder b(weights);
    for (const auto& [u, v] : edges) b.add_edge(u, v);
    benchmark::DoNotOptimize(b.build());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_WeightedGraphBuild)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_ConflictGraphBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  trace::SyntheticTraceConfig tc;
  tc.num_requests = n;
  tc.num_data = static_cast<DataId>(n / 2);
  tc.mean_rate = 35.0;
  const auto t = trace::make_synthetic_trace(tc);
  placement::ZipfPlacementConfig pc;
  pc.num_disks = 60;
  pc.num_data = static_cast<DataId>(n / 2);
  pc.replication_factor = 3;
  const auto placement = placement::make_zipf_placement(pc);
  const disk::DiskPowerParams power;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_conflict_graph(t, placement, power, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConflictGraphBuild)->Arg(2000)->Arg(10000);

void BM_SolveGwminConflict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  trace::SyntheticTraceConfig tc;
  tc.num_requests = n;
  tc.num_data = static_cast<DataId>(n / 2);
  tc.mean_rate = 35.0;
  const auto t = trace::make_synthetic_trace(tc);
  placement::ZipfPlacementConfig pc;
  pc.num_disks = 60;
  pc.num_data = static_cast<DataId>(n / 2);
  pc.replication_factor = 3;
  const auto placement = placement::make_zipf_placement(pc);
  const auto g =
      core::build_conflict_graph(t, placement, disk::DiskPowerParams{}, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_gwmin(g));
  }
}
BENCHMARK(BM_SolveGwminConflict)->Arg(2000)->Arg(10000);

void BM_ZipfSample(benchmark::State& state) {
  util::ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 0.9);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(180)->Arg(32768);

}  // namespace

BENCHMARK_MAIN();
