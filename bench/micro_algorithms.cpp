// Micro-benchmarks: combinatorial kernels (set cover, GWMIN, conflict-graph
// construction, Zipf sampling).
#include <benchmark/benchmark.h>

#include "core/conflict_graph.hpp"
#include "graph/mwis.hpp"
#include "graph/set_cover.hpp"
#include "placement/placement.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

using namespace eas;

namespace {

graph::SetCoverInstance random_cover(std::size_t elements, std::size_t sets,
                                     double density, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::SetCoverInstance inst;
  inst.num_elements = elements;
  inst.sets.resize(sets);
  for (auto& s : inst.sets) {
    s.weight = rng.uniform(0.5, 10.0);
    for (std::size_t e = 0; e < elements; ++e) {
      if (rng.bernoulli(density)) s.elements.push_back(e);
    }
  }
  // One universal set guarantees feasibility.
  inst.sets.push_back({100.0, {}});
  for (std::size_t e = 0; e < elements; ++e) {
    inst.sets.back().elements.push_back(e);
  }
  return inst;
}

void BM_GreedySetCover(benchmark::State& state) {
  const auto inst = random_cover(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(0)) / 2,
                                 0.05, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::greedy_weighted_set_cover(inst));
  }
}
BENCHMARK(BM_GreedySetCover)->Arg(64)->Arg(512)->Arg(4096);

void BM_GwminExplicit(benchmark::State& state) {
  util::Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> weights;
  for (std::size_t v = 0; v < n; ++v) weights.push_back(rng.uniform(1, 10));
  graph::WeightedGraph g(std::move(weights));
  const double density = 8.0 / static_cast<double>(n);  // avg degree ~8
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (rng.bernoulli(density)) g.add_edge(u, v);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::gwmin(g));
  }
}
BENCHMARK(BM_GwminExplicit)->Arg(256)->Arg(1024);

void BM_ConflictGraphBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  trace::SyntheticTraceConfig tc;
  tc.num_requests = n;
  tc.num_data = static_cast<DataId>(n / 2);
  tc.mean_rate = 35.0;
  const auto t = trace::make_synthetic_trace(tc);
  placement::ZipfPlacementConfig pc;
  pc.num_disks = 60;
  pc.num_data = static_cast<DataId>(n / 2);
  pc.replication_factor = 3;
  const auto placement = placement::make_zipf_placement(pc);
  const disk::DiskPowerParams power;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_conflict_graph(t, placement, power, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConflictGraphBuild)->Arg(2000)->Arg(10000);

void BM_SolveGwminConflict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  trace::SyntheticTraceConfig tc;
  tc.num_requests = n;
  tc.num_data = static_cast<DataId>(n / 2);
  tc.mean_rate = 35.0;
  const auto t = trace::make_synthetic_trace(tc);
  placement::ZipfPlacementConfig pc;
  pc.num_disks = 60;
  pc.num_data = static_cast<DataId>(n / 2);
  pc.replication_factor = 3;
  const auto placement = placement::make_zipf_placement(pc);
  const auto g =
      core::build_conflict_graph(t, placement, disk::DiskPowerParams{}, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_gwmin(g));
  }
}
BENCHMARK(BM_SolveGwminConflict)->Arg(2000)->Arg(10000);

void BM_ZipfSample(benchmark::State& state) {
  util::ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 0.9);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(180)->Arg(32768);

}  // namespace

BENCHMARK_MAIN();
