// Ablation: the §3.3 prediction extension ("assign lower cost to a more
// frequently used disk"). Sweeps the popularity-discount gamma on both
// workloads at rf=3 and compares against the plain heuristic.
#include <iostream>

#include "common/experiment.hpp"
#include "core/cost_scheduler.hpp"
#include "core/predictive_scheduler.hpp"
#include "power/fixed_threshold.hpp"
#include "util/table.hpp"

using namespace eas;

int main() {
  std::cout << "=== Ablation: predictive (EWMA popularity) scheduler, rf=3 "
               "===\n";
  util::Table t({"workload", "gamma", "norm_energy", "mean_resp_s",
                 "p90_resp_ms", "spin_up+down"});
  for (auto workload : {bench::Workload::kCello, bench::Workload::kFinancial}) {
    bench::ExperimentParams params;
    params.workload = workload;
    params.replication_factor = 3;
    params.num_requests = bench::requests_from_env(30000);
    const auto trace = bench::make_workload(workload, params.trace_seed,
                                            params.num_requests);
    const auto placement = bench::make_placement(params);
    const auto cfg = bench::paper_system_config();
    std::cerr << "# " << bench::describe(params) << "\n";

    auto report = [&](const char* label, const storage::RunResult& r) {
      t.row()
          .cell(std::string(bench::to_string(workload)))
          .cell(label)
          .cell(r.normalized_energy(cfg.power))
          .cell(r.mean_response(), 4)
          .cell(r.response_times.p90() * 1e3, 1)
          .cell(static_cast<unsigned long long>(r.total_spin_ups() +
                                                r.total_spin_downs()));
    };

    {
      core::CostFunctionScheduler base(params.cost);
      power::FixedThresholdPolicy policy;
      report("baseline",
             storage::run_online(cfg, placement, trace, base, policy));
    }
    for (double gamma : {0.5, 1.0, 2.0, 5.0}) {
      core::PredictiveParams pp;
      pp.cost = params.cost;
      pp.gamma = gamma;
      core::PredictiveCostScheduler sched(pp);
      power::FixedThresholdPolicy policy;
      report(std::to_string(gamma).substr(0, 3).c_str(),
             storage::run_online(cfg, placement, trace, sched, policy));
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: a mild popularity discount concentrates "
               "ties onto already-hot disks (slightly lower energy at equal "
               "response); large gamma over-concentrates and buys energy "
               "with queueing delay.\n";
  return 0;
}
