// Ablation: the §3.3 prediction extension ("assign lower cost to a more
// frequently used disk"). Sweeps the popularity-discount gamma on both
// workloads at rf=3 and compares against the plain heuristic. The baseline
// rows come from the registry; the gamma rows build a PredictiveCostScheduler
// per cell via CellSpec::run (the EWMA rate table is mutable scheduler
// state, so each cell must own its instance).
#include <iostream>

#include "core/predictive_scheduler.hpp"
#include "power/fixed_threshold.hpp"
#include "runner/emit.hpp"
#include "runner/sweep.hpp"

using namespace eas;

int main() {
  const double gammas[] = {0.5, 1.0, 2.0, 5.0};
  std::vector<runner::CellSpec> cells;
  for (auto workload :
       {runner::Workload::kCello, runner::Workload::kFinancial}) {
    const auto params = runner::ExperimentBuilder(workload)
                            .requests(runner::requests_from_env(30000))
                            .replication(3)
                            .build();
    std::cerr << "# " << runner::describe(params) << "\n";

    {
      runner::CellSpec cell;
      cell.scheduler = "heuristic";
      cell.params = params;
      cell.tag = std::string(runner::to_string(workload)) + "/baseline";
      cells.push_back(std::move(cell));
    }
    for (double gamma : gammas) {
      runner::CellSpec cell;
      cell.params = params;
      cell.tag = std::string(runner::to_string(workload)) + "/" +
                 std::to_string(gamma).substr(0, 3);
      cell.run = [gamma](const runner::ExperimentParams& p,
                         const trace::Trace& trace,
                         const placement::PlacementMap& placement) {
        const auto config = runner::system_config_for(p);
        core::PredictiveParams pp;
        pp.cost = p.cost;
        pp.gamma = gamma;
        core::PredictiveCostScheduler sched(pp);
        power::FixedThresholdPolicy policy;
        return storage::run_online(config, placement, trace, sched, policy);
      };
      cells.push_back(std::move(cell));
    }
  }

  runner::SweepOptions opts;
  opts.progress = &std::cerr;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));

  const auto power = runner::paper_system_config().power;
  runner::ResultTable t(
      "Ablation: predictive (EWMA popularity) scheduler, rf=3",
      {"workload", "gamma", "norm_energy", "mean_resp_s", "p90_resp_ms",
       "spin_up+down"});
  for (const auto& cell : results) {
    const auto& r = cell.result;
    const auto slash = cell.spec.tag.find('/');
    t.row()
        .cell(cell.spec.tag.substr(0, slash))
        .cell(cell.spec.tag.substr(slash + 1))
        .cell(r.normalized_energy(power))
        .cell(r.mean_response(), 4)
        .cell(r.response_times.p90() * 1e3, 1)
        .cell(static_cast<unsigned long long>(r.total_spin_ups() +
                                              r.total_spin_downs()));
  }
  t.emit(std::cout, runner::emit_format_from_env());
  std::cout << "\nExpected shape: a mild popularity discount concentrates "
               "ties onto already-hot disks (slightly lower energy at equal "
               "response); large gamma over-concentrates and buys energy "
               "with queueing delay.\n";
  return 0;
}
