// Micro-benchmarks: cache-tier hot paths. A lookup sits on every request's
// dispatch path and a destage batch runs inside the disk idle callback, so
// both must stay cheap and allocation-free in the steady state (the
// counting-allocator test in test_cache pins the latter literally; these
// benches track the constant factors).
#include <benchmark/benchmark.h>

#include <vector>

#include "cache/block_cache.hpp"
#include "cache/cache.hpp"
#include "cache/write_back.hpp"

using namespace eas;

namespace {

constexpr std::size_t kCapacity = 4096;

void BM_CacheLookup(benchmark::State& state,
                    cache::CachePolicy policy) {
  auto c = cache::BlockCache::make(policy, kCapacity);
  for (DataId b = 0; b < kCapacity; ++b) {
    c->insert(b);
    c->lookup(b);  // seat ARC's working set in T2
  }
  DataId b = 0;
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += c->lookup(b) ? 1 : 0;
    b = (b + 7) & (kCapacity - 1);  // stride through the resident set
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_CacheMissInsert(benchmark::State& state,
                        cache::CachePolicy policy) {
  // Cold-miss insert + eviction churn: the worst-case per-request cost.
  auto c = cache::BlockCache::make(policy, kCapacity);
  DataId b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c->insert(b++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_DestageBatch(benchmark::State& state) {
  // One put -> begin_destage -> complete cycle per iteration, batched at
  // the default size over a 64-disk group spread.
  constexpr std::size_t kDisks = 64;
  constexpr std::size_t kBatch = 8;
  cache::WriteBackBuffer wb(kCapacity, kDisks);
  std::vector<DataId> batch;
  batch.reserve(kBatch);
  DataId b = 0;
  double now = 0.0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      wb.put(static_cast<DataId>(b + i), static_cast<DiskId>(b % kDisks), now);
    }
    batch.clear();
    wb.begin_destage(static_cast<DiskId>(b % kDisks), kBatch, batch);
    for (const DataId d : batch) wb.complete(d);
    b += kBatch;
    now += 1.0;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatch));
}

}  // namespace

BENCHMARK_CAPTURE(BM_CacheLookup, lru, cache::CachePolicy::kLru);
BENCHMARK_CAPTURE(BM_CacheLookup, arc, cache::CachePolicy::kArc);
BENCHMARK_CAPTURE(BM_CacheMissInsert, lru, cache::CachePolicy::kLru);
BENCHMARK_CAPTURE(BM_CacheMissInsert, arc, cache::CachePolicy::kArc);
BENCHMARK(BM_DestageBatch);

BENCHMARK_MAIN();
