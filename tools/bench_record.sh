#!/usr/bin/env bash
# Records a micro-benchmark trajectory point: runs the micro_* google
# benchmarks with --benchmark_format=json and normalizes the output into one
# compact JSON document (items/sec per benchmark plus the commit hash), so
# speedups across PRs are *recorded*, not asserted from memory.
#
# Usage: tools/bench_record.sh [build-dir] [output.json]
#   build-dir     defaults to build        (must already contain the binaries)
#   output.json   defaults to BENCH_micro.json at the repo root
#
# Environment:
#   EAS_BENCH_FILTER        --benchmark_filter value (default: all)
#   EAS_BENCH_MIN_TIME      --benchmark_min_time value (default: benchmark's)
#
# The output schema is intentionally small and stable:
#   {
#     "commit": "<git hash>[-dirty]",
#     "benchmarks": { "<name>": {"items_per_second": N, "real_time_ns": N}, … }
#   }
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
out="${2:-$root/BENCH_micro.json}"

benches=(bench_micro_kernel bench_micro_algorithms bench_micro_schedulers
  bench_micro_cache bench_micro_reliability)
for b in "${benches[@]}"; do
  if [[ ! -x "$build/bench/$b" ]]; then
    echo "bench_record: $build/bench/$b not built (cmake --build $build --target $b)" >&2
    exit 2
  fi
done

commit="$(git -C "$root" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
if ! git -C "$root" diff --quiet HEAD -- src bench 2>/dev/null; then
  commit="${commit}-dirty"
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

extra_args=()
[[ -n "${EAS_BENCH_FILTER:-}" ]] && extra_args+=("--benchmark_filter=${EAS_BENCH_FILTER}")
[[ -n "${EAS_BENCH_MIN_TIME:-}" ]] && extra_args+=("--benchmark_min_time=${EAS_BENCH_MIN_TIME}")

for b in "${benches[@]}"; do
  echo "bench_record: running $b" >&2
  "$build/bench/$b" --benchmark_format=json \
    ${extra_args[@]+"${extra_args[@]}"} > "$tmpdir/$b.json"
done

commit="$commit" python3 - "$out" "$tmpdir"/*.json <<'PY'
import json, os, sys

out_path, inputs = sys.argv[1], sys.argv[2:]
doc = {"commit": os.environ["commit"], "benchmarks": {}}
for path in inputs:
    with open(path) as f:
        report = json.load(f)
    for bm in report.get("benchmarks", []):
        if bm.get("run_type") == "aggregate":
            continue
        entry = {"real_time_ns": round(bm["real_time"], 1)}
        if "items_per_second" in bm:
            entry["items_per_second"] = round(bm["items_per_second"])
        doc["benchmarks"][bm["name"]] = entry
doc["benchmarks"] = dict(sorted(doc["benchmarks"].items()))
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"bench_record: wrote {out_path} ({len(doc['benchmarks'])} benchmarks)")
PY
