// Token scanner: the accuracy core of eascheck. Comments and string/char
// literals are consumed (so their contents can never trigger a rule), raw
// strings honor their delimiter, digit separators don't start char literals,
// and #include targets become dedicated tokens carrying the header path.
// Preprocessor directives other than #include are *not* skipped: their
// replacement text is lexed like ordinary code, so a macro body calling
// rand() is still visible to the rules (the grep lint saw it; so do we).

#include "eascheck.hpp"

namespace eascheck {
namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool is_ident_char(char c) {
  return is_ident_start(c) || (c >= '0' && c <= '9');
}
bool is_digit(char c) { return c >= '0' && c <= '9'; }

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

class Lexer {
 public:
  Lexer(std::string rel_path, const std::string& src) : src_(src) {
    out_.path = std::move(rel_path);
  }

  TokenFile run() {
    while (i_ < src_.size()) step();
    return std::move(out_);
  }

 private:
  char cur() const { return src_[i_]; }
  char peek(std::size_t k = 1) const {
    return i_ + k < src_.size() ? src_[i_ + k] : '\0';
  }
  void bump() {
    const char c = src_[i_];
    if (c == '\n') {
      ++line_;
      at_line_start_ = true;
    } else if (c != ' ' && c != '\t' && c != '\r' && c != '\v' && c != '\f') {
      at_line_start_ = false;
    }
    ++i_;
  }

  void emit(Tok kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void step() {
    const char c = cur();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      bump();
      return;
    }
    if (c == '\\' && peek() == '\n') {  // line continuation
      bump();
      bump();
      return;
    }
    if (c == '/' && peek() == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek() == '*') {
      block_comment();
      return;
    }
    if (c == '#' && at_line_start_) {
      directive();
      return;
    }
    if (is_ident_start(c)) {
      identifier();
      return;
    }
    if (is_digit(c) || (c == '.' && is_digit(peek()))) {
      number();
      return;
    }
    if (c == '"') {
      string_lit();
      return;
    }
    if (c == '\'') {
      char_lit();
      return;
    }
    punct();
  }

  /// A `// det-ok: <reason>` comment is the waiver syntax inherited from the
  /// grep lint: it suppresses findings on its own line. Block comments are
  /// deliberately not waivers — a waiver should be visible at the end of the
  /// offending line, not buried in prose.
  void line_comment() {
    const int line = line_;
    std::string text;
    while (i_ < src_.size() && cur() != '\n') {
      text.push_back(cur());
      bump();
    }
    const std::size_t pos = text.find("det-ok:");
    if (pos != std::string::npos) {
      out_.waivers[line] = Waiver{trim(text.substr(pos + 7)), false};
    }
  }

  void block_comment() {
    bump();  // '/'
    bump();  // '*'
    while (i_ < src_.size()) {
      if (cur() == '*' && peek() == '/') {
        bump();
        bump();
        return;
      }
      bump();
    }
  }

  /// #include targets become tokens; every other directive introducer is
  /// dropped and its payload lexed as ordinary tokens (see file comment).
  void directive() {
    bump();  // '#'
    while (i_ < src_.size() && (cur() == ' ' || cur() == '\t')) bump();
    std::string name;
    while (i_ < src_.size() && is_ident_char(cur())) {
      name.push_back(cur());
      bump();
    }
    if (name != "include" && name != "include_next") return;
    while (i_ < src_.size() && (cur() == ' ' || cur() == '\t')) bump();
    if (i_ >= src_.size()) return;
    const int line = line_;
    if (cur() == '"' || cur() == '<') {
      const char close = cur() == '"' ? '"' : '>';
      bump();
      std::string path;
      while (i_ < src_.size() && cur() != close && cur() != '\n') {
        path.push_back(cur());
        bump();
      }
      if (i_ < src_.size() && cur() == close) bump();
      emit(close == '"' ? Tok::kIncludeQuote : Tok::kIncludeAngle,
           std::move(path), line);
    }
    // Computed includes (#include MACRO) fall through: the macro name was
    // already consumed as the directive payload ends here anyway.
  }

  void identifier() {
    const int line = line_;
    std::string text;
    while (i_ < src_.size() && is_ident_char(cur())) {
      text.push_back(cur());
      bump();
    }
    // Encoding prefixes glue onto literals: R"(raw)", u8"s", L'c', ...
    if (i_ < src_.size() && cur() == '"') {
      const bool raw = !text.empty() && text.back() == 'R' &&
                       (text == "R" || text == "u8R" || text == "uR" ||
                        text == "UR" || text == "LR");
      if (raw) {
        raw_string_lit(line);
        return;
      }
      if (text == "u8" || text == "u" || text == "U" || text == "L") {
        string_lit();
        return;
      }
    }
    if (i_ < src_.size() && cur() == '\'' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      char_lit();
      return;
    }
    emit(Tok::kIdent, std::move(text), line);
  }

  void number() {
    const int line = line_;
    bump();
    while (i_ < src_.size()) {
      const char c = cur();
      if (is_ident_char(c) || c == '.') {
        bump();
      } else if (c == '\'' && is_ident_char(peek())) {
        bump();  // digit separator, not a char literal
      } else if ((c == '+' || c == '-') && i_ > 0 &&
                 (src_[i_ - 1] == 'e' || src_[i_ - 1] == 'E' ||
                  src_[i_ - 1] == 'p' || src_[i_ - 1] == 'P')) {
        bump();  // exponent sign
      } else {
        break;
      }
    }
    emit(Tok::kNumber, "", line);
  }

  void string_lit() {
    const int line = line_;
    bump();  // opening quote
    while (i_ < src_.size()) {
      if (cur() == '\\' && i_ + 1 < src_.size()) {
        bump();
        bump();
        continue;
      }
      if (cur() == '"') {
        bump();
        break;
      }
      if (cur() == '\n') break;  // unterminated — don't eat the file
      bump();
    }
    emit(Tok::kString, "", line);
  }

  void raw_string_lit(int line) {
    bump();  // '"'
    std::string delim;
    while (i_ < src_.size() && cur() != '(' && cur() != '\n') {
      delim.push_back(cur());
      bump();
    }
    if (i_ < src_.size() && cur() == '(') bump();
    const std::string close = ")" + delim + "\"";
    while (i_ < src_.size()) {
      if (cur() == ')' && src_.compare(i_, close.size(), close) == 0) {
        for (std::size_t k = 0; k < close.size(); ++k) bump();
        break;
      }
      bump();
    }
    emit(Tok::kString, "", line);
  }

  void char_lit() {
    const int line = line_;
    bump();  // opening quote
    while (i_ < src_.size()) {
      if (cur() == '\\' && i_ + 1 < src_.size()) {
        bump();
        bump();
        continue;
      }
      if (cur() == '\'') {
        bump();
        break;
      }
      if (cur() == '\n') break;
      bump();
    }
    emit(Tok::kChar, "", line);
  }

  /// `::` and `->` matter to the rules (member access / qualification), so
  /// they are fused; every other operator is fine as single characters.
  void punct() {
    const int line = line_;
    const char c = cur();
    if (c == ':' && peek() == ':') {
      bump();
      bump();
      emit(Tok::kPunct, "::", line);
      return;
    }
    if (c == '-' && peek() == '>') {
      bump();
      bump();
      emit(Tok::kPunct, "->", line);
      return;
    }
    bump();
    emit(Tok::kPunct, std::string(1, c), line);
  }

  const std::string& src_;
  TokenFile out_;
  std::size_t i_ = 0;
  int line_ = 1;
  // True while only whitespace has been consumed on the current line
  // (maintained by bump()). Only used to recognize directives.
  bool at_line_start_ = true;
};

}  // namespace

std::string TokenFile::top_dir() const {
  const std::size_t s = path.find('/');
  return s == std::string::npos ? path : path.substr(0, s);
}

std::string TokenFile::src_module() const {
  if (path.rfind("src/", 0) != 0) return {};
  const std::size_t s = path.find('/', 4);
  return s == std::string::npos ? std::string{} : path.substr(4, s - 4);
}

bool TokenFile::under(const std::string& prefix) const {
  if (path.rfind(prefix, 0) != 0) return false;
  return path.size() == prefix.size() || prefix.back() == '/' ||
         path[prefix.size()] == '/';
}

TokenFile lex_file(std::string rel_path, const std::string& content) {
  Lexer lx(std::move(rel_path), content);
  TokenFile f = lx.run();
  return f;
}

void Report::add(TokenFile& f, int line, const std::string& rule,
                 const std::string& message) {
  auto it = f.waivers.find(line);
  if (it != f.waivers.end()) {
    it->second.used = true;
    ++suppressed;
    return;
  }
  add_raw(f.path, line, rule, message);
}

void Report::add_raw(std::string file, int line, std::string rule,
                     std::string message) {
  findings.push_back(
      Finding{std::move(file), line, std::move(rule), std::move(message)});
}

}  // namespace eascheck
