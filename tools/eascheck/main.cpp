// eascheck CLI. See eascheck.hpp for the engine overview.
//
//   eascheck [--root DIR] [--rules LIST|all] [--manifest FILE]
//            [--compile-commands FILE] [--scan DIRS] [--exclude PREFIXES]
//            [--report FILE] [--require-tidy]
//
// Exit codes match the old grep lint: 0 clean, 1 findings, 2 environment /
// usage error. An empty scan (zero source files) is an environment error,
// never a pass — the grep script's unquoted `$files` could silently scan
// nothing and exit 0; that failure mode is structurally impossible here.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "eascheck.hpp"

namespace fs = std::filesystem;

namespace {

struct Options {
  std::string root = ".";
  std::set<std::string> rules;  // determinism, layering, hotpath, contracts, tidy
  std::string manifest;         // default: <root>/tools/eascheck/layers.toml
  std::string compile_commands; // default: <root>/build/compile_commands.json
  std::vector<std::string> scan_dirs = {"src", "bench", "examples", "tests"};
  std::vector<std::string> excludes = {"tests/eascheck_fixtures"};
  std::string report;
  bool require_tidy = false;
};

const std::set<std::string> kScanRules = {"determinism", "layering", "hotpath",
                                          "contracts"};

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string item = comma == std::string::npos
                                 ? s.substr(pos)
                                 : s.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --root DIR             tree to analyze (default .)\n"
      << "  --rules LIST           comma list of determinism,layering,hotpath,\n"
      << "                         contracts,tidy — or 'all' (the four scan\n"
      << "                         engines; tidy stays opt-in). Default: all\n"
      << "  --manifest FILE        layer/hotpath manifest (default\n"
      << "                         ROOT/tools/eascheck/layers.toml)\n"
      << "  --compile-commands FILE compile database for --rules tidy\n"
      << "                         (default ROOT/build/compile_commands.json)\n"
      << "  --scan DIRS            comma list of dirs under ROOT to scan\n"
      << "                         (default src,bench,examples,tests)\n"
      << "  --exclude PREFIXES     comma list of ROOT-relative path prefixes\n"
      << "                         to skip (default tests/eascheck_fixtures)\n"
      << "  --report FILE          also write findings + summary to FILE\n"
      << "  --require-tidy         missing clang-tidy/compile db is an error\n";
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--root" && (v = need_value(i)) != nullptr) {
      opt.root = v;
    } else if (a == "--rules" && (v = need_value(i)) != nullptr) {
      for (const std::string& r : split_commas(v)) {
        if (r == "all") {
          opt.rules.insert(kScanRules.begin(), kScanRules.end());
        } else if (kScanRules.count(r) != 0 || r == "tidy") {
          opt.rules.insert(r);
        } else {
          std::cerr << "eascheck: unknown rule set '" << r << "'\n";
          return false;
        }
      }
    } else if (a == "--manifest" && (v = need_value(i)) != nullptr) {
      opt.manifest = v;
    } else if (a == "--compile-commands" && (v = need_value(i)) != nullptr) {
      opt.compile_commands = v;
    } else if (a == "--scan" && (v = need_value(i)) != nullptr) {
      opt.scan_dirs = split_commas(v);
    } else if (a == "--exclude" && (v = need_value(i)) != nullptr) {
      opt.excludes = split_commas(v);
    } else if (a == "--report" && (v = need_value(i)) != nullptr) {
      opt.report = v;
    } else if (a == "--require-tidy") {
      opt.require_tidy = true;
    } else {
      std::cerr << "eascheck: bad argument '" << a << "'\n";
      return false;
    }
  }
  if (opt.rules.empty()) {
    opt.rules.insert(kScanRules.begin(), kScanRules.end());
  }
  if (opt.manifest.empty()) {
    opt.manifest = opt.root + "/tools/eascheck/layers.toml";
  }
  if (opt.compile_commands.empty()) {
    opt.compile_commands = opt.root + "/build/compile_commands.json";
  }
  return true;
}

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".hpp" || e == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  const bool scanning =
      std::any_of(kScanRules.begin(), kScanRules.end(),
                  [&](const std::string& r) { return opt.rules.count(r); });
  const bool full_scan =
      std::all_of(kScanRules.begin(), kScanRules.end(),
                  [&](const std::string& r) { return opt.rules.count(r); });

  std::vector<eascheck::TokenFile> files;
  if (scanning) {
    std::vector<std::string> rel_paths;
    for (const std::string& dir : opt.scan_dirs) {
      const fs::path base = fs::path(opt.root) / dir;
      std::error_code ec;
      if (!fs::is_directory(base, ec)) continue;
      for (fs::recursive_directory_iterator it(base, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file() || !has_source_ext(it->path())) continue;
        const std::string rel =
            it->path().lexically_relative(opt.root).generic_string();
        const bool excluded = std::any_of(
            opt.excludes.begin(), opt.excludes.end(),
            [&](const std::string& x) { return rel.rfind(x, 0) == 0; });
        if (!excluded) rel_paths.push_back(rel);
      }
    }
    std::sort(rel_paths.begin(), rel_paths.end());
    if (rel_paths.empty()) {
      std::cerr << "eascheck: no source files found under " << opt.root
                << " (scan dirs:";
      for (const std::string& d : opt.scan_dirs) std::cerr << " " << d;
      std::cerr << ") — refusing a vacuous pass\n";
      return 2;
    }
    files.reserve(rel_paths.size());
    for (const std::string& rel : rel_paths) {
      std::ifstream in(fs::path(opt.root) / rel, std::ios::binary);
      if (!in) {
        std::cerr << "eascheck: cannot read " << rel << "\n";
        return 2;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      files.push_back(eascheck::lex_file(rel, ss.str()));
    }
  }

  eascheck::Manifest manifest;
  if (opt.rules.count("layering") != 0 || opt.rules.count("hotpath") != 0) {
    std::ifstream in(opt.manifest, std::ios::binary);
    if (!in) {
      std::cerr << "eascheck: manifest " << opt.manifest << " not found\n";
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string error;
    // Findings are anchored to the manifest with a root-relative path so
    // test expectations don't depend on where --root points.
    std::string manifest_rel = opt.manifest;
    const std::string prefix = opt.root + "/";
    if (manifest_rel.rfind(prefix, 0) == 0) {
      manifest_rel = manifest_rel.substr(prefix.size());
    }
    if (!eascheck::parse_manifest(manifest_rel, ss.str(), manifest, error)) {
      std::cerr << "eascheck: " << error << "\n";
      return 2;
    }
  }

  eascheck::Report rep;
  if (opt.rules.count("determinism") != 0) {
    eascheck::run_determinism(files, rep);
  }
  if (opt.rules.count("layering") != 0) {
    eascheck::run_layering(files, manifest, rep);
  }
  if (opt.rules.count("hotpath") != 0) {
    eascheck::run_hotpath(files, manifest, rep);
  }
  if (opt.rules.count("contracts") != 0) {
    eascheck::run_contracts(files, rep);
  }

  // Waiver accounting. An empty reason is always an error — the reason is
  // the reviewable artifact. Staleness (a waiver that suppressed nothing)
  // is only decidable when every scan engine ran, so partial runs (e.g. the
  // determinism wrapper) skip it rather than mis-flag a hotpath waiver.
  std::size_t waivers = 0;
  std::size_t stale = 0;
  for (eascheck::TokenFile& f : files) {
    for (const auto& [line, w] : f.waivers) {
      ++waivers;
      if (w.reason.empty()) {
        rep.add_raw(f.path, line, "waiver-empty-reason",
                    "det-ok waiver without a reason — write down why the "
                    "finding is acceptable");
      } else if (full_scan && !w.used) {
        ++stale;
        rep.add_raw(f.path, line, "waiver-stale",
                    "stale det-ok waiver: no finding on this line any more — "
                    "delete the waiver");
      }
    }
  }

  std::sort(rep.findings.begin(), rep.findings.end(),
            [](const eascheck::Finding& a, const eascheck::Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  std::ostringstream body;
  for (const eascheck::Finding& fnd : rep.findings) {
    body << fnd.file << ":" << fnd.line << ": [" << fnd.rule << "] "
         << fnd.message << "\n";
  }

  std::size_t tidy_findings = 0;
  bool env_error = false;
  if (opt.rules.count("tidy") != 0) {
    tidy_findings = eascheck::run_tidy(opt.root, opt.compile_commands,
                                       opt.require_tidy, env_error);
  }

  const std::size_t total = rep.findings.size() + tidy_findings;
  std::ostringstream summary;
  summary << "eascheck: files=" << files.size() << " findings=" << total
          << " suppressed=" << rep.suppressed << " waivers=" << waivers
          << " stale=" << stale << "\n";

  std::cout << body.str() << summary.str();
  if (!opt.report.empty()) {
    std::ofstream out(opt.report, std::ios::trunc);
    if (!out) {
      std::cerr << "eascheck: cannot write report " << opt.report << "\n";
      return 2;
    }
    out << body.str() << summary.str();
  }
  if (env_error) return 2;
  return total == 0 ? 0 : 1;
}
