// clang-tidy stage: drives the repo's .clang-tidy over the TUs recorded in
// compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS=ON). Gated like the
// CMake lint preset: when clang-tidy is not installed the stage is a notice
// locally, but CI passes --require-tidy, which turns a missing toolchain or
// database into an environment error (exit 2) instead of a vacuous pass.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "eascheck.hpp"

namespace eascheck {
namespace {

/// Runs `cmd` capturing stdout+stderr; returns false if the process could
/// not be started. `exit_code` is the process exit status (or -1).
bool run_capture(const std::string& cmd, std::string& out, int& exit_code) {
  out.clear();
  FILE* p = ::popen((cmd + " 2>&1").c_str(), "r");
  if (p == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  while ((n = ::fread(buf, 1, sizeof buf, p)) > 0) out.append(buf, n);
  const int status = ::pclose(p);
  exit_code = status < 0 ? -1 : status;
  return true;
}

/// Pulls every "file" value out of compile_commands.json. A full JSON parser
/// is overkill for a machine-written database: we scan string literals with
/// escape handling and record the value following a "file" key.
std::vector<std::string> compile_db_files(const std::string& json) {
  std::vector<std::string> out;
  std::string last_string;
  bool last_was_file_key = false;
  std::size_t i = 0;
  while (i < json.size()) {
    const char c = json[i];
    if (c == '"') {
      std::string s;
      ++i;
      while (i < json.size() && json[i] != '"') {
        if (json[i] == '\\' && i + 1 < json.size()) {
          const char e = json[i + 1];
          s.push_back(e == 'n' ? '\n' : e == 't' ? '\t' : e);
          i += 2;
        } else {
          s.push_back(json[i]);
          ++i;
        }
      }
      ++i;  // closing quote
      if (last_was_file_key) {
        out.push_back(s);
        last_was_file_key = false;
      }
      last_string = std::move(s);
      continue;
    }
    if (c == ':') {
      last_was_file_key = last_string == "file";
    } else if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
      last_was_file_key = false;
    }
    ++i;
  }
  return out;
}

}  // namespace

std::size_t run_tidy(const std::string& root,
                     const std::string& compile_commands, bool required,
                     bool& env_error) {
  env_error = false;

  std::string ver;
  int code = 0;
  const bool have_tidy =
      run_capture("clang-tidy --version", ver, code) && code == 0 &&
      ver.find("LLVM") != std::string::npos;
  if (!have_tidy) {
    if (required) {
      std::cerr << "eascheck: clang-tidy not found but --require-tidy was "
                   "given\n";
      env_error = true;
    } else {
      std::cout << "eascheck: clang-tidy not installed; tidy stage skipped "
                   "(install clang-tidy or run in CI, which requires it)\n";
    }
    return 0;
  }

  std::ifstream db(compile_commands, std::ios::binary);
  if (!db) {
    if (required) {
      std::cerr << "eascheck: --require-tidy but " << compile_commands
                << " is missing — configure with "
                   "CMAKE_EXPORT_COMPILE_COMMANDS=ON first\n";
      env_error = true;
    } else {
      std::cout << "eascheck: " << compile_commands
                << " not found; tidy stage skipped (configure a build first)\n";
    }
    return 0;
  }
  std::stringstream ss;
  ss << db.rdbuf();

  // Only first-party TUs: the database also lists generated/test-framework
  // sources in some configurations.
  std::set<std::string> tus;
  const std::string prefix = root.empty() || root == "." ? "" : root + "/";
  for (const std::string& f : compile_db_files(ss.str())) {
    std::string rel = f;
    const std::size_t at = f.find("/src/");
    for (const char* top : {"/src/", "/tests/", "/bench/", "/examples/"}) {
      const std::size_t p = f.rfind(top);
      if (p != std::string::npos) {
        rel = f.substr(p + 1);
        break;
      }
    }
    (void)at;
    const std::string top = rel.substr(0, rel.find('/'));
    if (top == "src" || top == "tests" || top == "bench" || top == "examples") {
      tus.insert(f);
    }
  }
  if (tus.empty()) {
    std::cerr << "eascheck: no first-party TUs in " << compile_commands
              << " — refusing a vacuous tidy pass\n";
    env_error = true;
    return 0;
  }

  std::string build_dir = compile_commands;
  const std::size_t slash = build_dir.find_last_of('/');
  build_dir = slash == std::string::npos ? "." : build_dir.substr(0, slash);

  std::ostringstream cmd;
  cmd << "clang-tidy --quiet -p '" << build_dir << "'";
  for (const std::string& f : tus) cmd << " '" << f << "'";

  std::string out;
  if (!run_capture(cmd.str(), out, code)) {
    std::cerr << "eascheck: failed to launch clang-tidy\n";
    env_error = true;
    return 0;
  }
  std::size_t findings = 0;
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find(" warning: ") != std::string::npos ||
        line.find(" error: ") != std::string::npos) {
      ++findings;
    }
  }
  if (findings > 0 || code != 0) std::cout << out;
  if (findings == 0 && code != 0) findings = 1;  // crash/parse error gates too
  std::cout << "eascheck: tidy ran over " << tus.size() << " TUs, "
            << findings << " finding(s)\n";
  return findings;
}

}  // namespace eascheck
