// Parser for the TOML subset layers.toml uses:
//
//   [layers]                      # module -> allowed include targets
//   sim = ["util"]
//
//   [[hotpath]]                   # per-file hot function lists
//   file = "src/sim/simulator.cpp"
//   functions = ["cancel", "fire_top"]
//
//   [nothrow]                     # path prefixes with a throw ban
//   paths = ["src/sim"]
//
// Anything outside that shape (nested tables, non-string arrays, multi-line
// arrays) is a parse error: the manifest is a checked input, and a silently
// ignored rule would be exactly the vacuous-pass failure mode this tool
// exists to remove.

#include <sstream>

#include "eascheck.hpp"

namespace eascheck {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Strips a trailing comment that is not inside a string literal.
std::string strip_comment(const std::string& s) {
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') in_str = !in_str;
    if (s[i] == '#' && !in_str) return s.substr(0, i);
  }
  return s;
}

bool parse_string(const std::string& v, std::string& out) {
  const std::string t = trim(v);
  if (t.size() < 2 || t.front() != '"' || t.back() != '"') return false;
  out = t.substr(1, t.size() - 2);
  return out.find('"') == std::string::npos;
}

bool parse_string_array(const std::string& v, std::vector<std::string>& out) {
  const std::string t = trim(v);
  if (t.size() < 2 || t.front() != '[' || t.back() != ']') return false;
  const std::string body = trim(t.substr(1, t.size() - 2));
  out.clear();
  if (body.empty()) return true;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    std::size_t comma = body.find(',', pos);
    const std::string item =
        comma == std::string::npos ? body.substr(pos) : body.substr(pos, comma - pos);
    std::string s;
    if (!parse_string(item, s)) return false;
    out.push_back(std::move(s));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

}  // namespace

bool Manifest::has_module(const std::string& m) const {
  return layer_lines.count(m) != 0;
}

const std::vector<std::string>* Manifest::deps(const std::string& m) const {
  for (const auto& [mod, d] : layers) {
    if (mod == m) return &d;
  }
  return nullptr;
}

bool parse_manifest(const std::string& file_path, const std::string& content,
                    Manifest& out, std::string& error) {
  out = Manifest{};
  out.path = file_path;
  enum class Section { kNone, kLayers, kHotpath, kNothrow } section =
      Section::kNone;
  std::istringstream in(content);
  std::string raw;
  int line = 0;
  auto fail = [&](const std::string& why) {
    std::ostringstream os;
    os << file_path << ":" << line << ": " << why;
    error = os.str();
    return false;
  };
  while (std::getline(in, raw)) {
    ++line;
    const std::string s = trim(strip_comment(raw));
    if (s.empty()) continue;
    if (s == "[layers]") {
      section = Section::kLayers;
      continue;
    }
    if (s == "[[hotpath]]") {
      section = Section::kHotpath;
      out.hotpaths.push_back(HotPathSpec{{}, {}, line});
      continue;
    }
    if (s == "[nothrow]") {
      section = Section::kNothrow;
      continue;
    }
    if (s.front() == '[') return fail("unknown section " + s);
    const std::size_t eq = s.find('=');
    if (eq == std::string::npos) return fail("expected key = value");
    const std::string key = trim(s.substr(0, eq));
    const std::string val = s.substr(eq + 1);
    switch (section) {
      case Section::kNone:
        return fail("key outside any section");
      case Section::kLayers: {
        std::vector<std::string> deps;
        if (!parse_string_array(val, deps)) {
          return fail("layer value must be an array of module strings");
        }
        if (out.layer_lines.count(key) != 0) {
          return fail("duplicate layer entry for " + key);
        }
        out.layers.emplace_back(key, std::move(deps));
        out.layer_lines[key] = line;
        break;
      }
      case Section::kHotpath: {
        HotPathSpec& hp = out.hotpaths.back();
        if (key == "file") {
          if (!parse_string(val, hp.file)) return fail("file must be a string");
        } else if (key == "functions") {
          if (!parse_string_array(val, hp.functions)) {
            return fail("functions must be an array of strings");
          }
        } else {
          return fail("unknown hotpath key " + key);
        }
        break;
      }
      case Section::kNothrow: {
        if (key != "paths") return fail("unknown nothrow key " + key);
        if (!parse_string_array(val, out.nothrow_paths)) {
          return fail("paths must be an array of strings");
        }
        break;
      }
    }
  }
  for (const HotPathSpec& hp : out.hotpaths) {
    line = hp.line;
    if (hp.file.empty()) return fail("[[hotpath]] entry missing file");
    if (hp.functions.empty()) {
      return fail("[[hotpath]] entry missing functions");
    }
  }
  if (out.layers.empty()) {
    line = 0;
    return fail("manifest has no [layers] entries");
  }
  return true;
}

}  // namespace eascheck
