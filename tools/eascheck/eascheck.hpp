// eascheck — compiled static analyzer for the easched tree.
//
// Replaces the old grep lint (tools/lint_determinism.sh) with a token-accurate
// C++ scanner plus an include-layering enforcer and a clang-tidy driver. The
// grep version could not see comments, strings or include edges: it flagged
// `SimTime time()` declarations and prose mentioning rand(), and it could
// never prove the layer diagram (sim -> disk/power -> storage -> runner/obs)
// from the real include graph. eascheck lexes every file once and runs rule
// engines over the token stream, so a banned identifier inside a comment or
// string literal is simply not a token.
//
// Engines (selected with --rules, see main.cpp):
//   determinism  token-accurate bans on hidden-nondeterminism sources
//   layering     include graph vs the tools/eascheck/layers.toml manifest
//   hotpath      heap-allocation / throw bans inside manifest-listed kernel
//                functions
//   contracts    public out-of-line mutators must carry an EAS_* contract
//   tidy         clang-tidy over compile_commands.json (find_program-gated)
//
// Waivers: a `// det-ok: <reason>` line comment suppresses any finding on
// that line. Every waiver must carry a non-empty reason, and a waiver that
// suppresses nothing under the full scan set is itself a finding (stale).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace eascheck {

// ---------------------------------------------------------------------------
// Tokens

enum class Tok {
  kIdent,         // identifiers and keywords
  kNumber,        // numeric literal (incl. digit separators, hex, suffixes)
  kString,        // string literal (raw, prefixed, escaped) — text dropped
  kChar,          // character literal — text dropped
  kPunct,         // operators/punctuation; `::` and `->` are single tokens
  kIncludeQuote,  // #include "path" — text is the path
  kIncludeAngle,  // #include <path> — text is the path
};

struct Token {
  Tok kind;
  std::string text;
  int line;
};

struct Waiver {
  std::string reason;
  bool used = false;
};

/// One lexed source file. `path` is the forward-slash path relative to the
/// scan root (e.g. "src/sim/simulator.cpp") — every finding and waiver is
/// anchored with it.
struct TokenFile {
  std::string path;
  std::vector<Token> tokens;
  std::map<int, Waiver> waivers;  // line -> waiver

  /// First path component ("src", "tests", ...).
  std::string top_dir() const;
  /// Second path component for files under src/ ("sim", "disk", ...);
  /// empty otherwise.
  std::string src_module() const;
  bool under(const std::string& prefix) const;  // path prefix test
};

/// Lexes `content` (the bytes of the file at `rel_path`). Never fails:
/// malformed trailing constructs degrade to punctuation tokens.
TokenFile lex_file(std::string rel_path, const std::string& content);

// ---------------------------------------------------------------------------
// Findings

struct Finding {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

class Report {
 public:
  /// Adds a finding unless a waiver on (f.path, line) suppresses it; a
  /// suppressing waiver is marked used.
  void add(TokenFile& f, int line, const std::string& rule,
           const std::string& message);
  /// Adds a finding with no waiver lookup (manifest-anchored findings,
  /// waiver bookkeeping findings).
  void add_raw(std::string file, int line, std::string rule,
               std::string message);

  std::vector<Finding> findings;
  std::size_t suppressed = 0;
};

// ---------------------------------------------------------------------------
// Layer manifest (tools/eascheck/layers.toml)

struct HotPathSpec {
  std::string file;                    // repo-relative, e.g. "src/disk/disk.cpp"
  std::vector<std::string> functions;  // unqualified function names
  int line = 0;                        // manifest line, for anchoring
};

struct Manifest {
  std::string path;  // manifest path as given, for anchoring findings
  /// module -> modules it may include (itself always allowed). Order
  /// preserved from the file.
  std::vector<std::pair<std::string, std::vector<std::string>>> layers;
  std::map<std::string, int> layer_lines;  // module -> manifest line
  std::vector<HotPathSpec> hotpaths;
  std::vector<std::string> nothrow_paths;  // path prefixes with a throw ban

  bool has_module(const std::string& m) const;
  const std::vector<std::string>* deps(const std::string& m) const;
};

/// Parses the TOML subset the manifest uses ([layers] table of string
/// arrays, [[hotpath]] tables, [nothrow] paths). Returns false and sets
/// `error` on malformed input.
bool parse_manifest(const std::string& file_path, const std::string& content,
                    Manifest& out, std::string& error);

// ---------------------------------------------------------------------------
// Engines

/// Determinism bans (libc rand/time seeding, random_device, system_clock,
/// std::function in src/sim/, stdlib RNG in src/fault/, wall clocks in
/// src/obs/, unordered-container range-for in decision modules).
void run_determinism(std::vector<TokenFile>& files, Report& rep);

/// Include-layering enforcement: every src-to-src include edge must be
/// allowed by the manifest, the realized module graph must be acyclic, and
/// every manifest edge must be exercised somewhere in the tree.
void run_layering(std::vector<TokenFile>& files, const Manifest& m,
                  Report& rep);

/// Hot-path bans inside manifest-listed function bodies (non-placement new,
/// allocator calls, heap-allocating std:: types) and the throw ban under
/// [nothrow] paths.
void run_hotpath(std::vector<TokenFile>& files, const Manifest& m,
                 Report& rep);

/// Contract coverage: out-of-line member definitions in src/*.cpp whose name
/// marks them as public mutators (set_/add_/insert_/register_ prefixes,
/// submit) must contain at least one EAS_* contract macro.
void run_contracts(std::vector<TokenFile>& files, Report& rep);

/// Runs clang-tidy over the TUs listed in `compile_commands` (filtered to
/// src/tests/bench/examples). Returns the number of findings; sets
/// `env_error` (exit 2) when the toolchain or database is missing and
/// `required` is set. When not required, a missing toolchain is a notice and
/// zero findings.
std::size_t run_tidy(const std::string& root,
                     const std::string& compile_commands, bool required,
                     bool& env_error);

/// Token index ranges [begin, end) of the bodies of every *definition* of
/// `name` in `f` (declarations and call sites are skipped). `begin` is the
/// token index just after the opening brace.
std::vector<std::pair<std::size_t, std::size_t>> find_function_bodies(
    const TokenFile& f, const std::string& name);

}  // namespace eascheck
