// Token-level rule engines: determinism bans, hot-path allocation/throw
// bans, and contract-coverage heuristics. All of them consume the lexer's
// token stream, so comments, strings and #if-0 prose can neither trigger
// nor hide a finding, and call sites are distinguished from declarations
// (the grep lint flagged `SimTime time() const` as a libc time() call; the
// token rules know a callee is preceded by an operator, not a type name).

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "eascheck.hpp"

namespace eascheck {
namespace {

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// Modules whose iteration order feeds scheduling/power/placement decisions.
const std::set<std::string> kDecisionModules = {
    "core",  "power", "graph", "placement",
    "runner", "fault", "cache", "reliability"};

/// stdlib RNG engines banned in src/fault/ (variates must come from the
/// seeded util::Rng streams keyed off FaultProfile::seed).
const std::set<std::string> kStdlibEngines = {
    "mt19937",      "mt19937_64",    "minstd_rand", "minstd_rand0",
    "ranlux24",     "ranlux48",      "ranlux24_base", "ranlux48_base",
    "knuth_b",      "default_random_engine"};

/// Wall-clock identifiers banned in src/obs/ (trace time is simulated time,
/// passed in by the caller; obs has nothing legitimate to time).
const std::set<std::string> kWallClockIdents = {
    "chrono",        "steady_clock",  "high_resolution_clock",
    "gettimeofday",  "clock_gettime", "timespec_get",
    "localtime",     "gmtime"};

/// Allocation entry points banned inside hot-path bodies.
const std::set<std::string> kAllocCalls = {
    "make_shared", "make_unique", "malloc",        "calloc",
    "realloc",     "strdup",      "aligned_alloc"};

/// std:: types whose construction implies (or usually implies) a heap
/// allocation — banned inside hot-path bodies when spelled std::X.
const std::set<std::string> kHeapStdTypes = {
    "string",        "basic_string", "vector",       "deque",
    "list",          "map",          "set",          "multimap",
    "multiset",      "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "function", "any",         "ostringstream",
    "istringstream", "stringstream", "shared_ptr",   "unique_ptr"};

/// Keywords that legitimately precede a call expression. An identifier
/// before `name(` that is NOT one of these marks a declaration
/// (`SimTime time()`), not a call.
const std::set<std::string> kExprKeywords = {
    "return", "else", "do", "case", "co_return", "co_yield",
    "throw", "and", "or", "not"};

bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}

const Token* at(const std::vector<Token>& v, std::size_t i) {
  return i < v.size() ? &v[i] : nullptr;
}

/// Call-context test for a free-function ban on tokens[i] (the callee name):
///  * member access (`x.time()`, `p->rand()`) is never the libc function;
///  * `std::time`, `::time` are; `other_ns::time` is not;
///  * an identifier before the name means a declaration, unless it is a
///    keyword like `return` that can precede an expression.
bool is_banned_free_call(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (is_punct(prev, ".") || is_punct(prev, "->")) return false;
  if (is_punct(prev, "::")) {
    if (i < 2) return true;  // ::time(...) — global scope
    const Token& before = toks[i - 2];
    if (before.kind == Tok::kIdent) return before.text == "std";
    return true;  // operator before `::` — global-scope call
  }
  if (prev.kind == Tok::kIdent) return kExprKeywords.count(prev.text) != 0;
  return true;
}

// ---------------------------------------------------------------------------
// Shared definition/body location

/// Index of the token after the body's opening brace for a parameter list
/// opening at `lparen`, or npos when the construct is not a definition.
/// Walks: `( params ) const noexcept(...) -> trailing::type {`.
std::size_t body_begin_after_params(const std::vector<Token>& toks,
                                    std::size_t lparen) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t depth = 0;
  std::size_t k = lparen;
  for (; k < toks.size(); ++k) {
    if (is_punct(toks[k], "(")) ++depth;
    if (is_punct(toks[k], ")") && --depth == 0) break;
  }
  if (k >= toks.size()) return npos;
  for (++k; k < toks.size(); ++k) {
    const Token& t = toks[k];
    if (is_punct(t, "{")) return k + 1;
    if (t.kind == Tok::kIdent || t.kind == Tok::kPunct) {
      if (is_punct(t, "(")) {  // noexcept(...) — skip the balanced group
        std::size_t d = 0;
        for (; k < toks.size(); ++k) {
          if (is_punct(toks[k], "(")) ++d;
          if (is_punct(toks[k], ")") && --d == 0) break;
        }
        if (k >= toks.size()) return npos;
        continue;
      }
      if (t.kind == Tok::kIdent || t.text == "->" || t.text == "::" ||
          t.text == "&" || t.text == "*" || t.text == "<" || t.text == ">" ||
          t.text == ",") {
        continue;  // qualifiers / trailing return type
      }
      return npos;  // `;` (declaration), `=`, or an operator after a call
    }
    return npos;
  }
  return npos;
}

/// Index of the `}` closing the body whose first token is `begin`.
std::size_t body_end(const std::vector<Token>& toks, std::size_t begin) {
  std::size_t depth = 1;
  for (std::size_t k = begin; k < toks.size(); ++k) {
    if (is_punct(toks[k], "{")) ++depth;
    if (is_punct(toks[k], "}") && --depth == 0) return k;
  }
  return toks.size();
}

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> find_function_bodies(
    const TokenFile& f, const std::string& name) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || toks[i].text != name) continue;
    if (!is_punct(toks[i + 1], "(")) continue;
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      continue;  // member call on an object, not a definition
    }
    const std::size_t begin = body_begin_after_params(toks, i + 1);
    if (begin == npos) continue;
    out.emplace_back(begin, body_end(toks, begin));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Determinism

namespace {

/// Per-module names of variables/members declared with an unordered
/// container type. Shared across a module's files so a member declared in
/// the .hpp is recognized when the .cpp iterates it (the grep lint was
/// per-file and missed exactly that).
std::set<std::string> collect_unordered_vars(
    const std::vector<TokenFile*>& module_files) {
  std::set<std::string> vars;
  for (const TokenFile* f : module_files) {
    const std::vector<Token>& toks = f->tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent || kUnorderedTypes.count(toks[i].text) == 0)
        continue;
      if (!is_punct(toks[i + 1], "<")) continue;
      std::size_t depth = 1;
      std::size_t k = i + 2;
      for (; k < toks.size() && depth != 0; ++k) {
        if (is_punct(toks[k], "<")) ++depth;
        if (is_punct(toks[k], ">")) --depth;
      }
      // Skip refs/cv between the closing `>` and the declared name.
      while (k < toks.size() &&
             (is_punct(toks[k], "&") || is_punct(toks[k], "*") ||
              (toks[k].kind == Tok::kIdent && toks[k].text == "const"))) {
        ++k;
      }
      if (k < toks.size() && toks[k].kind == Tok::kIdent) {
        const Token* after = at(toks, k + 1);
        // `(` marks a function returning the container; `::` a nested type.
        if (after == nullptr ||
            (!is_punct(*after, "(") && !is_punct(*after, "::"))) {
          vars.insert(toks[k].text);
        }
      }
    }
  }
  return vars;
}

void check_range_fors(TokenFile& f, const std::set<std::string>& unordered_vars,
                      Report& rep) {
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || toks[i].text != "for") continue;
    if (!is_punct(toks[i + 1], "(")) continue;
    // Find the `:` at parenthesis depth 1 (range-for), then the closing `)`.
    std::size_t depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t k = i + 1; k < toks.size(); ++k) {
      if (is_punct(toks[k], "(")) ++depth;
      if (is_punct(toks[k], ")") && --depth == 0) {
        close = k;
        break;
      }
      if (is_punct(toks[k], ";") && depth == 1) break;  // classic for
      if (is_punct(toks[k], ":") && depth == 1 && colon == 0) colon = k;
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (toks[k].kind != Tok::kIdent) continue;
      const bool is_type = kUnorderedTypes.count(toks[k].text) != 0;
      const bool is_var = unordered_vars.count(toks[k].text) != 0 &&
                          !(k > 0 && (is_punct(toks[k - 1], ".") ||
                                      is_punct(toks[k - 1], "->")));
      if (is_type || (is_var && (at(toks, k + 1) == nullptr ||
                                 !is_punct(toks[k + 1], "(")))) {
        rep.add(f, toks[i].line, "determinism-unordered-iter",
                "range-for over unordered container '" + toks[k].text +
                    "' in decision module src/" + f.src_module() +
                    " — iteration order is implementation-defined and would "
                    "leak into scheduling; iterate a sorted/indexed view");
        break;
      }
    }
  }
}

}  // namespace

void run_determinism(std::vector<TokenFile>& files, Report& rep) {
  // Module-wide unordered declarations for the range-for rule.
  std::map<std::string, std::vector<TokenFile*>> decision_files;
  for (TokenFile& f : files) {
    const std::string mod = f.src_module();
    if (kDecisionModules.count(mod) != 0) decision_files[mod].push_back(&f);
  }
  std::map<std::string, std::set<std::string>> unordered_vars;
  for (const auto& [mod, mfiles] : decision_files) {
    unordered_vars[mod] = collect_unordered_vars(mfiles);
  }

  for (TokenFile& f : files) {
    const bool in_src = f.top_dir() == "src";
    const bool in_sim = f.under("src/sim");
    const bool in_fault = f.under("src/fault");
    const bool in_obs = f.under("src/obs");
    const std::vector<Token>& toks = f.tokens;

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];

      if (t.kind == Tok::kIncludeAngle) {
        if (in_fault && t.text == "random") {
          rep.add(f, t.line, "determinism-fault-stdlib-rng",
                  "#include <random> in src/fault/ — failure timelines must "
                  "draw from the per-disk util::Rng streams");
        }
        if (in_obs && t.text == "chrono") {
          rep.add(f, t.line, "determinism-obs-wallclock",
                  "#include <chrono> in src/obs/ — trace time is the "
                  "simulated clock passed in by the caller");
        }
        continue;
      }
      if (t.kind != Tok::kIdent) continue;
      const Token* nxt = at(toks, i + 1);
      const Token* nxt2 = at(toks, i + 2);

      // libc RNG / wall-clock seeding -------------------------------------
      if ((t.text == "rand" || t.text == "random") && nxt != nullptr &&
          is_punct(*nxt, "(") && nxt2 != nullptr && is_punct(*nxt2, ")") &&
          is_banned_free_call(toks, i)) {
        rep.add(f, t.line, "determinism-libc-rand",
                "libc " + t.text + "() is banned — use util::Rng with an "
                "explicit seed from ExperimentParams");
      }
      if (t.text == "srand" && nxt != nullptr && is_punct(*nxt, "(") &&
          is_banned_free_call(toks, i)) {
        rep.add(f, t.line, "determinism-libc-rand",
                "srand() is banned — seeds flow through ExperimentParams");
      }
      if (t.text == "time" && nxt != nullptr && is_punct(*nxt, "(") &&
          is_banned_free_call(toks, i)) {
        // Only the libc spellings: time(), time(0), time(NULL/nullptr).
        const bool empty_call = nxt2 != nullptr && is_punct(*nxt2, ")");
        const Token* nxt3 = at(toks, i + 3);
        const bool null_arg =
            nxt2 != nullptr && nxt3 != nullptr && is_punct(*nxt3, ")") &&
            (nxt2->kind == Tok::kNumber ||
             (nxt2->kind == Tok::kIdent &&
              (nxt2->text == "NULL" || nxt2->text == "nullptr")));
        if (empty_call || null_arg) {
          rep.add(f, t.line, "determinism-time-seed",
                  "wall-clock time() is banned — simulated time comes from "
                  "sim::Simulator::now(), seeds from ExperimentParams");
        }
      }
      if (t.text == "random_device") {
        rep.add(f, t.line, "determinism-random-device",
                "std::random_device defeats seed reproducibility");
      }
      if (t.text == "system_clock" && in_src) {
        rep.add(f, t.line, "determinism-system-clock",
                "system_clock in library code — steady_clock for spans, "
                "never any wall clock for decisions");
      }

      // Module-scoped bans ------------------------------------------------
      if (in_sim && t.text == "function" && i >= 2 &&
          is_punct(toks[i - 1], "::") && toks[i - 2].kind == Tok::kIdent &&
          toks[i - 2].text == "std" && nxt != nullptr && is_punct(*nxt, "<")) {
        rep.add(f, t.line, "determinism-std-function-sim",
                "std::function in src/sim/ — use sim::InlineCallback (48B "
                "SBO; std::function heap-allocates per event)");
      }
      if (in_fault &&
          (kStdlibEngines.count(t.text) != 0 ||
           (t.text.size() > 13 &&
            t.text.compare(t.text.size() - 13, 13, "_distribution") == 0))) {
        rep.add(f, t.line, "determinism-fault-stdlib-rng",
                "stdlib RNG '" + t.text + "' in src/fault/ — use the seeded "
                "util::Rng stream for disk k");
      }
      if (in_obs) {
        if (kWallClockIdents.count(t.text) != 0) {
          rep.add(f, t.line, "determinism-obs-wallclock",
                  "wall-clock identifier '" + t.text + "' in src/obs/ — "
                  "recorded time must be the simulated clock");
        }
        if (t.text == "time" && nxt != nullptr && is_punct(*nxt, "(") &&
            i > 0 && !is_punct(toks[i - 1], ".") &&
            !is_punct(toks[i - 1], "->") &&
            is_banned_free_call(toks, i)) {
          rep.add(f, t.line, "determinism-obs-wallclock",
                  "time() call in src/obs/ — obs has nothing legitimate to "
                  "time");
        }
      }
    }

    const std::string mod = f.src_module();
    if (kDecisionModules.count(mod) != 0) {
      check_range_fors(f, unordered_vars[mod], rep);
    }
  }
}

// ---------------------------------------------------------------------------
// Hot paths

void run_hotpath(std::vector<TokenFile>& files, const Manifest& m,
                 Report& rep) {
  for (const HotPathSpec& hp : m.hotpaths) {
    TokenFile* file = nullptr;
    for (TokenFile& f : files) {
      if (f.path == hp.file) {
        file = &f;
        break;
      }
    }
    if (file == nullptr) {
      rep.add_raw(m.path, hp.line, "hotpath-missing-file",
                  "[[hotpath]] names " + hp.file +
                      " which is not in the scanned tree — update the "
                      "manifest to follow the rename");
      continue;
    }
    const std::vector<Token>& toks = file->tokens;
    for (const std::string& fn : hp.functions) {
      const auto bodies = find_function_bodies(*file, fn);
      if (bodies.empty()) {
        rep.add_raw(m.path, hp.line, "hotpath-missing-function",
                    "[[hotpath]] lists " + fn + " but " + hp.file +
                        " no longer defines it — update the manifest");
        continue;
      }
      for (const auto& [begin, end] : bodies) {
        for (std::size_t k = begin; k < end; ++k) {
          const Token& t = toks[k];
          if (t.kind != Tok::kIdent) continue;
          if (t.text == "new") {
            const bool op_new =
                k > begin && toks[k - 1].kind == Tok::kIdent &&
                toks[k - 1].text == "operator";
            const bool placement =
                k + 1 < end && is_punct(toks[k + 1], "(");
            if (!op_new && !placement) {
              rep.add(*file, t.line, "hotpath-heap-alloc",
                      "heap allocation (new) in hot path " + fn +
                          " — the kernel contract is allocation-free "
                          "steady state");
            }
          } else if (kAllocCalls.count(t.text) != 0) {
            rep.add(*file, t.line, "hotpath-heap-alloc",
                    "allocating call " + t.text + "() in hot path " + fn);
          } else if (kHeapStdTypes.count(t.text) != 0 && k >= begin + 2 &&
                     is_punct(toks[k - 1], "::") &&
                     toks[k - 2].kind == Tok::kIdent &&
                     toks[k - 2].text == "std") {
            rep.add(*file, t.line, "hotpath-std-heap-type",
                    "heap-allocating std::" + t.text + " in hot path " + fn);
          }
        }
      }
    }
  }

  for (TokenFile& f : files) {
    bool banned = false;
    for (const std::string& p : m.nothrow_paths) {
      if (f.under(p)) banned = true;
    }
    if (!banned) continue;
    for (const Token& t : f.tokens) {
      if (t.kind == Tok::kIdent && t.text == "throw") {
        rep.add(f, t.line, "hotpath-throw",
                "throw in the event kernel (" + f.path +
                    ") — kernel errors go through EAS_* contracts, which "
                    "keep the throw out of line in util/check.hpp");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Contract coverage

namespace {

bool is_mutator_name(const std::string& name) {
  for (const char* prefix : {"set_", "add_", "insert_", "register_"}) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return name == "submit";
}

/// Only the contract macro families satisfy the rule — EAS_OBS is
/// instrumentation, not a precondition.
bool is_contract_macro(const std::string& name) {
  for (const char* prefix :
       {"EAS_REQUIRE", "EAS_ENSURE", "EAS_CHECK", "EAS_ASSERT", "EAS_AUDIT",
        "EAS_DCHECK"}) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

}  // namespace

void run_contracts(std::vector<TokenFile>& files, Report& rep) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  for (TokenFile& f : files) {
    if (f.top_dir() != "src") continue;
    if (f.path.size() < 4 || f.path.compare(f.path.size() - 4, 4, ".cpp") != 0)
      continue;
    const std::vector<Token>& toks = f.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      // Out-of-line member definition: Class :: name ( ... ) ... {
      if (toks[i].kind != Tok::kIdent || !is_punct(toks[i + 1], "::") ||
          toks[i + 2].kind != Tok::kIdent || !is_punct(toks[i + 3], "(")) {
        continue;
      }
      const std::string& name = toks[i + 2].text;
      if (!is_mutator_name(name)) continue;
      const std::size_t begin = body_begin_after_params(toks, i + 3);
      if (begin == npos) continue;  // declaration or qualified call
      const std::size_t end = body_end(toks, begin);
      bool has_contract = false;
      for (std::size_t k = begin; k < end; ++k) {
        if (toks[k].kind == Tok::kIdent && is_contract_macro(toks[k].text)) {
          has_contract = true;
          break;
        }
      }
      if (!has_contract) {
        rep.add(f, toks[i + 2].line, "contracts-missing",
                "public mutator " + toks[i].text + "::" + name +
                    " has no EAS_REQUIRE/EAS_ENSURE/EAS_ASSERT — state a "
                    "precondition (or waive with // det-ok: <why none holds>)");
      }
    }
  }
}

}  // namespace eascheck
