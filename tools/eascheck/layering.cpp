// Include-layering enforcer. The "real include graph" is read from the
// lexer's preprocessor tokens (every #include directive that survives
// comment/string stripping), so an include edge mentioned in prose or a
// commented-out include can never create or mask a violation.
//
// Three checks, all against tools/eascheck/layers.toml:
//   1. every src-module -> src-module include edge must be allowed by the
//      manifest (a module may always include itself);
//   2. the *realized* module graph must be acyclic — even a cycle the
//      manifest would permit is an error, because link order and layered
//      reasoning both die with the first cycle;
//   3. every manifest edge must be exercised by at least one include in the
//      tree — an unused allow-rule is latent permission nobody asked for,
//      the manifest-level analogue of a stale waiver.
// Checks 1+3 together make the manifest exact: deleting any rule breaks a
// real edge, adding any rule trips the unused-rule check.

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "eascheck.hpp"

namespace eascheck {
namespace {

/// Module of a quoted include target like "sim/simulator.hpp" -> "sim".
std::string include_module(const std::string& target) {
  const std::size_t s = target.find('/');
  return s == std::string::npos ? std::string{} : target.substr(0, s);
}

struct Edge {
  std::string from, to;
  bool operator<(const Edge& o) const {
    return from != o.from ? from < o.from : to < o.to;
  }
};

struct Witness {
  TokenFile* file;
  int line;
};

/// Depth-first cycle search over the realized module graph; returns the
/// first cycle found as a module path (front == back), or empty.
std::vector<std::string> find_cycle(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::vector<std::string> cycle;

  auto dfs = [&](auto&& self, const std::string& u) -> bool {
    state[u] = 1;
    stack.push_back(u);
    auto it = adj.find(u);
    if (it != adj.end()) {
      for (const std::string& v : it->second) {
        if (state[v] == 1) {
          const auto at = std::find(stack.begin(), stack.end(), v);
          cycle.assign(at, stack.end());
          cycle.push_back(v);
          return true;
        }
        if (state[v] == 0 && self(self, v)) return true;
      }
    }
    stack.pop_back();
    state[u] = 2;
    return false;
  };

  for (const auto& [u, vs] : adj) {
    if (state[u] == 0 && dfs(dfs, u)) return cycle;
  }
  return {};
}

}  // namespace

void run_layering(std::vector<TokenFile>& files, const Manifest& m,
                  Report& rep) {
  std::map<Edge, Witness> edges;  // first witness per realized edge
  std::map<std::string, std::set<std::string>> adj;

  for (TokenFile& f : files) {
    const std::string from = f.src_module();
    if (from.empty()) continue;  // layering governs src/ only
    if (!m.has_module(from)) {
      rep.add(f, 1, "layering-unknown-module",
              "module src/" + from + " is not declared in " + m.path +
                  " — add a [layers] entry with its allowed dependencies");
      continue;
    }
    for (const Token& t : f.tokens) {
      if (t.kind != Tok::kIncludeQuote) continue;
      const std::string to = include_module(t.text);
      if (to.empty() || !m.has_module(to)) continue;  // not a project module
      if (to != from) {
        adj[from].insert(to);
        edges.emplace(Edge{from, to}, Witness{&f, t.line});
      }
      if (to == from) continue;
      const std::vector<std::string>* allowed = m.deps(from);
      if (std::find(allowed->begin(), allowed->end(), to) == allowed->end()) {
        rep.add(f, t.line, "layering-forbidden-include",
                "src/" + from + " may not include \"" + t.text + "\" — " +
                    m.path + " does not allow the edge " + from + " -> " + to);
      }
    }
  }

  const std::vector<std::string> cycle = find_cycle(adj);
  if (!cycle.empty()) {
    std::ostringstream os;
    os << "include cycle between src modules: ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i != 0) os << " -> ";
      os << cycle[i];
    }
    const Witness& w = edges.at(Edge{cycle[0], cycle[1]});
    rep.add(*w.file, w.line, "layering-cycle", os.str());
  }

  for (const auto& [mod, deps] : m.layers) {
    for (const std::string& dep : deps) {
      if (!m.has_module(dep)) {
        rep.add_raw(m.path, m.layer_lines.at(mod), "layering-unknown-module",
                    "layer " + mod + " allows unknown module " + dep);
        continue;
      }
      if (edges.count(Edge{mod, dep}) == 0) {
        rep.add_raw(m.path, m.layer_lines.at(mod), "layering-unused-rule",
                    "manifest allows " + mod + " -> " + dep +
                        " but no include in the tree uses that edge — "
                        "delete the rule or the code that needed it");
      }
    }
  }
}

}  // namespace eascheck
