#!/usr/bin/env bash
# Full correctness gate, runnable locally or from CI:
#
#   1. determinism lint (eascheck --rules determinism via the wrapper;
#      needs a compiler once to build the analyzer, nothing else)
#   2. eascheck: all four scan engines (determinism, layering, hotpath,
#      contracts) over the whole tree, findings written to
#      build/eascheck-findings.txt for CI artifact upload
#   3. default build + full test suite, warnings fatal
#   4. fault smoke (fault-smoke label + the availability ablation end to
#      end: the degraded-mode surface on its own, attributable stage)
#   4b. obs smoke (obs-smoke label + the allocation-counting binary: the
#      tracing/metrics surface and its zero-overhead-when-off proof)
#   4c. cache smoke (cache-smoke label + the cache-tier ablation: the
#      power-aware cache & destage surface on its own, attributable stage)
#   5. audit build (EASCHED_AUDIT=ON): every EAS_ASSERT/EAS_AUDIT compiled
#      into the release binary, full suite again
#   6. ASan+UBSan smoke (sanitize-smoke preset, reduced request counts)
#   7. TSan sweep smoke (sweep-smoke preset: the concurrency surface)
#   8. clang-tidy over all TUs via eascheck's tidy engine (skipped with a
#      notice when clang-tidy is not installed; EAS_CI=1 makes a missing
#      clang-tidy an error so the hosted runners cannot silently skip it)
#   9. format report (clang-format conformance, non-gating)
#
# Any stage failing fails the script. Stages can be skipped by name:
#   tools/ci.sh --skip tsan,lint
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

skip=","
if [[ "${1:-}" == "--skip" && -n "${2:-}" ]]; then
  skip=",$2,"
elif [[ "${1:-}" == --skip=* ]]; then
  skip=",${1#--skip=},"
fi
jobs="${EAS_CI_JOBS:-$(nproc 2>/dev/null || echo 2)}"

run_stage() { # run_stage <name> <cmd...>
  local name="$1"
  shift
  if [[ "$skip" == *",$name,"* ]]; then
    echo "=== [$name] skipped by request"
    return 0
  fi
  echo "=== [$name] $*"
  "$@"
}

stage_determinism() { tools/lint_determinism.sh; }

# Builds the analyzer inside the normal tree and gates on zero findings
# across all four scan engines. The findings report survives as a build
# artifact so a red CI run shows the violations without re-running.
stage_eascheck() {
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target eascheck
  ./build/tools/eascheck/eascheck --rules all \
    --report build/eascheck-findings.txt
}

stage_default() {
  cmake --preset default -DEASCHED_WERROR=ON
  cmake --build --preset default -j "$jobs"
  ctest --preset default -j "$jobs"
}

stage_audit() {
  cmake --preset audit -DEASCHED_WERROR=ON
  cmake --build --preset audit -j "$jobs"
  ctest --preset audit -j "$jobs"
}

stage_asan() {
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --preset sanitize-smoke -j "$jobs"
}

stage_tsan() {
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ctest --preset sweep-smoke -j "$jobs"
}

# Degraded-mode surface on its own label so a failover regression is
# attributable at a glance (the default stage runs these tests too; this
# stage re-runs just them, plus the availability ablation end to end).
stage_fault() {
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  ctest --preset fault-smoke -j "$jobs"
  EAS_REQUESTS=3000 ./build/bench/bench_ablation_fault_availability > /dev/null
}

# Observability surface on its own label: recorder/metrics/sink goldens and
# the paper-example trace replay, plus the allocation-counting binary that
# proves tracing (compiled in but off) adds nothing to the kernel hot path.
stage_obs() {
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  ctest --preset obs-smoke -j "$jobs"
  ./build/tests/test_sim_alloc > /dev/null
}

# Cache & destage tier on its own label: replacement-policy goldens, the
# write-back lifecycle, the piggyback/watermark/deadline destage paths and
# the cache-off bit-identity contract, plus the cache ablation end to end.
stage_cache() {
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  ctest --preset cache-smoke -j "$jobs"
  EAS_REQUESTS=3000 ./build/bench/bench_ablation_cache_tier > /dev/null
}

# Reliability tier under sanitizers: deadlines/retries/hedges/shedding churn
# timers and queue surgery harder than any other surface, so its label runs
# in the ASan+UBSan build (timer use-after-cancel or a leaked in-flight
# entry shows up here first), plus the overload ablation end to end.
stage_chaos() {
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --preset chaos-smoke -j "$jobs"
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target bench_ablation_reliability
  EAS_REQUESTS=3000 ./build/bench/bench_ablation_reliability > /dev/null
}

stage_lint() {
  if ! command -v clang-tidy > /dev/null 2>&1; then
    if [[ "${EAS_CI:-0}" == "1" ]]; then
      echo "clang-tidy required in CI but not installed" >&2
      return 2
    fi
    echo "clang-tidy not installed; skipping lint stage"
    return 0
  fi
  # The lint preset compiles with clang-tidy attached (fatal warnings);
  # eascheck's tidy engine then re-drives clang-tidy off the exported
  # compile database so the same entry point gates both locally and in CI.
  cmake --preset lint
  cmake --build --preset lint -j "$jobs"
  local tidy_flags=(--rules tidy --compile-commands build-lint/compile_commands.json)
  [[ "${EAS_CI:-0}" == "1" ]] && tidy_flags+=(--require-tidy)
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target eascheck
  ./build/tools/eascheck/eascheck "${tidy_flags[@]}"
}

stage_format() { tools/format_check.sh; }

run_stage determinism stage_determinism
run_stage eascheck stage_eascheck
run_stage default stage_default
run_stage fault stage_fault
run_stage obs stage_obs
run_stage cache stage_cache
run_stage chaos stage_chaos
run_stage audit stage_audit
run_stage asan stage_asan
run_stage tsan stage_tsan
run_stage lint stage_lint
run_stage format stage_format

echo "=== all CI stages passed"
