#!/usr/bin/env python3
"""Diff two bench_record.sh outputs and flag regressions.

Usage: tools/bench_compare.py [--baseline BENCH_micro.baseline.json]
                              [--current BENCH_micro.json]
                              [--threshold 0.25]
                              [--output delta.md]

Prints a markdown delta table (new/removed benchmarks included) and exits 1
when any benchmark's real_time regressed by more than the threshold. The
footer summary counts new and removed benchmarks so a rename that silently
drops a bench from the baseline shows up even when nothing regressed. Wall
clock on shared runners is noisy, so CI runs this job non-gating
(continue-on-error) and publishes the table as an artifact — the exit code is
a signal for humans reading the job summary, not a merge gate. Local runs on
a quiet machine can treat it as a real check.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if "benchmarks" not in doc:
        sys.exit(f"bench_compare: {path} has no 'benchmarks' key")
    return doc


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} us"
    return f"{ns:.0f} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="BENCH_micro.baseline.json")
    ap.add_argument("--current", default="BENCH_micro.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative real_time slowdown that counts as a "
                         "regression (default 0.25 = +25%%)")
    ap.add_argument("--output", help="also write the markdown table here")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    base_bm = base["benchmarks"]
    cur_bm = cur["benchmarks"]

    lines = [
        f"Baseline `{base.get('commit', '?')}` vs current "
        f"`{cur.get('commit', '?')}` (threshold +{args.threshold:.0%})",
        "",
        "| benchmark | baseline | current | delta | |",
        "|---|---:|---:|---:|---|",
    ]
    regressions = []
    for name in sorted(set(base_bm) | set(cur_bm)):
        b = base_bm.get(name)
        c = cur_bm.get(name)
        if b is None:
            lines.append(f"| {name} | — | {fmt_ns(c['real_time_ns'])} | new | |")
            continue
        if c is None:
            lines.append(f"| {name} | {fmt_ns(b['real_time_ns'])} | — | removed | |")
            continue
        bt, ct = b["real_time_ns"], c["real_time_ns"]
        delta = (ct - bt) / bt if bt > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            flag = "improved"
        lines.append(f"| {name} | {fmt_ns(bt)} | {fmt_ns(ct)} "
                     f"| {delta:+.1%} | {flag} |")

    table = "\n".join(lines) + "\n"
    print(table, end="")
    if args.output:
        with open(args.output, "w") as f:
            f.write(table)

    new = len(set(cur_bm) - set(base_bm))
    removed = len(set(base_bm) - set(cur_bm))
    churn = f"{new} new, {removed} removed vs baseline"
    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"\nbench_compare: {len(regressions)} regression(s) beyond "
              f"+{args.threshold:.0%}; worst: {worst[0]} ({worst[1]:+.1%}); "
              f"{churn}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: no regressions beyond +{args.threshold:.0%} "
          f"({len(cur_bm)} benchmarks; {churn})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
