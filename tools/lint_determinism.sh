#!/usr/bin/env bash
# Determinism lint: the whole repro story rests on bit-identical reruns
# (same seeds -> same figures, any EAS_THREADS -> same sweep results), so
# sources of hidden nondeterminism are banned from library code:
#
#   * libc rand()/srand()/random() and time()-seeded anything
#   * std::random_device (non-deterministic by definition)
#   * argument-less srand() spellings
#   * range-for iteration over unordered containers inside decision modules
#     (iteration order is implementation-defined and would leak into
#     scheduling choices)
#
# Wall-clock reads (steady_clock) are fine for *reporting* but never for
# decisions; they are allowed only outside decision modules or on lines
# carrying an explicit `// det-ok: <reason>` waiver, which is also the
# escape hatch for any false positive.
#
# Usage: tools/lint_determinism.sh [repo-root]   (exit 0 = clean)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

fail=0
report() { # report <label> <grep-output>
  local label="$1" hits="$2"
  if [[ -n "$hits" ]]; then
    echo "determinism lint: $label"
    echo "$hits" | sed 's/^/  /'
    fail=1
  fi
}

# Library + bench sources. Tests may use whatever they like for inputs, but
# keeping them deterministic too costs nothing, so they are scanned as well.
scan_dirs=(src bench examples tests)
files=$(find "${scan_dirs[@]}" -name '*.cpp' -o -name '*.hpp' -o -name '*.h' 2>/dev/null)

grep_src() { # grep_src <pattern>
  # shellcheck disable=SC2086
  grep -nE "$1" $files 2>/dev/null | grep -v 'det-ok:'
}

report "libc rand()/random() is banned — use util::Rng with an explicit seed" \
  "$(grep_src '(^|[^_[:alnum:]])(rand|random)[[:space:]]*\(\)')"

report "srand() is banned — seeds flow through ExperimentParams" \
  "$(grep_src '(^|[^_[:alnum:]])srand[[:space:]]*\(')"

# Member calls (`x.time()`, `p->time()`) are simulated-clock accessors, not
# libc time(); only the free function is banned.
report "time()/clock() wall-clock seeding is banned" \
  "$(grep_src '(^|[^_.>[:alnum:]])time[[:space:]]*\([[:space:]]*(NULL|nullptr|0)?[[:space:]]*\)')"

report "std::random_device is banned — it defeats seed reproducibility" \
  "$(grep_src 'random_device')"

report "system_clock in library code is banned (steady_clock for spans; never for decisions)" \
  "$(grep_src 'system_clock' | grep -E '^src/')"

# The event kernel's hot path is allocation-free by contract: callbacks live
# in sim::InlineCallback's 48-byte buffer, and a std::function would silently
# reintroduce a heap allocation (and allocator-dependent timing) per event.
# Type *usage* is matched (`std::function<`), so prose in comments is fine;
# a deliberate exception still takes a `// det-ok: <reason>` waiver.
report "std::function in src/sim/ is banned — use sim::InlineCallback (48B SBO)" \
  "$(grep_src 'std::function<' | grep -E '^src/sim/')"

# Fault injection must draw every random variate from the seeded util::Rng
# streams (one per disk) or the failure timeline would change across reruns
# and EAS_THREADS values. Ban <random> engines/distributions outright in
# src/fault/ — rand()/random_device are already banned globally above.
fault_files=$(find src/fault -name '*.cpp' -o -name '*.hpp' 2>/dev/null)
if [[ -n "$fault_files" ]]; then
  # shellcheck disable=SC2086
  hits=$(grep -nE 'std::(mt19937|minstd_rand|ranlux|knuth_b|default_random_engine|(uniform|normal|exponential|weibull|gamma|poisson|bernoulli|binomial|geometric|discrete)[a-z_]*_distribution)|#include[[:space:]]*<random>' \
    $fault_files 2>/dev/null | grep -v 'det-ok:')
  report "non-seeded/stdlib RNG in src/fault/ is banned — use util::Rng streams keyed off FaultProfile::seed" \
    "$hits"
fi

# The observability layer records *simulated* time only: every TraceEvent
# timestamp is passed in by the caller from sim::Simulator::now(), which is
# what makes a recorded trace bit-reproducible across reruns and thread
# counts. Any wall-clock read in src/obs/ would silently break that, so
# <chrono> and the OS clock syscalls are banned there outright (no
# reporting exemption — obs has nothing legitimate to time).
obs_files=$(find src/obs -name '*.cpp' -o -name '*.hpp' 2>/dev/null)
if [[ -n "$obs_files" ]]; then
  # shellcheck disable=SC2086
  hits=$(grep -nE '#include[[:space:]]*<chrono>|std::chrono|steady_clock|system_clock|high_resolution_clock|gettimeofday|clock_gettime|time\(' \
    $obs_files 2>/dev/null | grep -v 'det-ok:')
  report "wall-clock read in src/obs/ is banned — trace time is the simulated clock" \
    "$hits"
fi

# Unordered-container iteration inside decision modules: any range-for whose
# range expression names an unordered container, in the modules that make
# scheduling/power/placement decisions. The fault module decides failure
# timelines and rebuild targets, so it is held to the same bar.
decision_files=$(find src/core src/power src/graph src/placement src/runner src/fault \
  -name '*.cpp' -o -name '*.hpp' 2>/dev/null)
if [[ -n "$decision_files" ]]; then
  # shellcheck disable=SC2086
  hits=$(grep -nE 'for[[:space:]]*\(.*:[^:)]*unordered' $decision_files 2>/dev/null \
    | grep -v 'det-ok:')
  report "range-for over an unordered container in a decision module (order feeds scheduling)" \
    "$hits"
  # Also catch iteration over locals *declared* unordered earlier in the file:
  # any file that both declares an unordered container variable and range-fors
  # over that variable name.
  for f in $decision_files; do
    vars=$(grep -oE 'unordered_(map|set|multimap|multiset)<[^;]*>[[:space:]]+[a-zA-Z_][a-zA-Z0-9_]*' "$f" 2>/dev/null \
      | sed -E 's/.*>[[:space:]]+([a-zA-Z_][a-zA-Z0-9_]*)$/\1/' | sort -u)
    for v in $vars; do
      hits=$(grep -nE "for[[:space:]]*\(.*:[[:space:]]*${v}[[:space:]]*\)" "$f" | grep -v 'det-ok:')
      [[ -n "$hits" ]] && report "range-for over unordered container '$v' in $f" \
        "$(echo "$hits" | sed "s|^|$f:|")"
    done
  done
fi

if [[ $fail -eq 0 ]]; then
  echo "determinism lint: clean"
fi
exit $fail
