#!/usr/bin/env bash
# Determinism lint — thin wrapper over the eascheck analyzer.
#
# The original incarnation of this script was ~400 lines of grep patterns.
# That approach had two real failure modes, both fixed by delegating to the
# token-accurate analyzer in tools/eascheck/:
#
#   * an unquoted $files expansion word-split every path, so a path with a
#     space silently truncated the scan list;
#   * when the file list came up empty (wrong cwd, bad find expression) the
#     greps matched nothing and the lint reported "clean" — a vacuous pass.
#     eascheck treats an empty scan as a broken invocation and exits 2.
#
# Grep also could not tell `SimTime time()` (a declaration) from libc
# time(), nor skip banned spellings inside comments and string literals;
# the lexer-based rules can. The rule set itself is unchanged — see
# `eascheck --help` and DESIGN.md §11.
#
# Usage: tools/lint_determinism.sh [repo-root]
# Exit codes: 0 clean, 1 findings, 2 environment/usage error.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
[[ -d "$root" ]] || { echo "lint_determinism: no such root: $root" >&2; exit 2; }

# Prefer a binary from the normal build tree, then a standalone build; only
# compile one ourselves as a last resort (CI's lint job takes this path —
# it needs a compiler but not the full GTest toolchain).
bin=""
for candidate in "$root/build/tools/eascheck/eascheck" \
                 "$root/build-eascheck/eascheck"; do
  if [[ -x "$candidate" ]]; then
    bin="$candidate"
    break
  fi
done

if [[ -z "$bin" ]]; then
  command -v cmake > /dev/null 2>&1 || {
    echo "lint_determinism: no eascheck binary and no cmake to build one" >&2
    exit 2
  }
  echo "lint_determinism: building eascheck (one-time standalone build)"
  cmake -S "$root/tools/eascheck" -B "$root/build-eascheck" \
        -DCMAKE_BUILD_TYPE=Release > /dev/null || exit 2
  cmake --build "$root/build-eascheck" -j > /dev/null || exit 2
  bin="$root/build-eascheck/eascheck"
  [[ -x "$bin" ]] || { echo "lint_determinism: build produced no binary" >&2; exit 2; }
fi

exec "$bin" --root "$root" --rules determinism
