#!/usr/bin/env bash
# clang-format conformance report over the scanned tree.
#
# Report-only by default: prints the files that would be reformatted and
# always exits 0, so it can run in CI as a non-gating signal while the tree
# converges. Pass --gate to exit 1 on any diff (the eventual end state).
#
# Usage: tools/format_check.sh [--gate] [repo-root]
# Exit codes: 0 clean (or report-only), 1 diffs found (--gate), 2 env error.
set -u

gate=0
if [[ "${1:-}" == "--gate" ]]; then
  gate=1
  shift
fi
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

if ! command -v clang-format > /dev/null 2>&1; then
  echo "format_check: clang-format not installed; skipping (report-only)"
  exit 0
fi

# Same scan set as eascheck, minus the deliberately-odd lint fixtures.
mapfile -t files < <(find src bench examples tests tools/eascheck \
  \( -name '*.cpp' -o -name '*.hpp' -o -name '*.h' \) \
  -not -path 'tests/eascheck_fixtures/*' | sort)

if [[ ${#files[@]} -eq 0 ]]; then
  echo "format_check: no files found — refusing a vacuous pass" >&2
  exit 2
fi

dirty=0
for f in "${files[@]}"; do
  if ! clang-format --style=file --dry-run --Werror "$f" > /dev/null 2>&1; then
    echo "format_check: would reformat $f"
    dirty=$((dirty + 1))
  fi
done

echo "format_check: ${#files[@]} files checked, $dirty need formatting"
if [[ $gate -eq 1 && $dirty -gt 0 ]]; then
  exit 1
fi
exit 0
