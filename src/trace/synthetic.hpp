// Synthetic trace generation calibrated to the paper's workloads.
//
// The evaluation traces (HP Cello, UMass Financial1) are not redistributable,
// so we synthesise streams that match the properties the paper identifies as
// load-bearing:
//
//  * scale — 70,000 requests over > 30,000 distinct data items (§4.1);
//  * popularity skew — Zipf-like access popularity (§4.2, citing [2]);
//  * burstiness — Cello has "much higher burstness and variation" in
//    inter-arrival times than Financial1 (§A.4), which is exactly what moves
//    mean response time (~1 s vs ~300 ms) while leaving every ranking intact.
//
// Arrivals come from a 2-state Markov-modulated Poisson process (MMPP):
// exponentially-dwelling CALM/BURST states with different Poisson rates.
// With burst_rate_multiplier = 1 this degenerates to a plain Poisson stream.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace eas::trace {

struct SyntheticTraceConfig {
  std::size_t num_requests = 70000;
  DataId num_data = 32768;
  double popularity_z = 0.8;  ///< Zipf exponent of data popularity

  /// Long-run average arrival rate (requests / second).
  double mean_rate = 20.0;
  /// BURST-state rate = multiplier × CALM-state rate; 1 = Poisson.
  double burst_rate_multiplier = 1.0;
  /// Long-run fraction of time spent in the BURST state.
  double burst_time_fraction = 0.1;
  /// Mean dwell time of one burst, seconds.
  double mean_burst_seconds = 2.0;

  unsigned long block_bytes = 512 * 1024;  ///< §2.1 file-block size
  /// Fraction of records marked as writes (0 = read-only, the §2.1 model;
  /// positive values exercise the write off-loading extension).
  double write_fraction = 0.0;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Generates a read-only trace per the config. Deterministic in the seed.
Trace make_synthetic_trace(const SyntheticTraceConfig& cfg);

/// Cello-like preset: strongly bursty time-sharing workload (interarrival
/// CV >> 1, Zipf-skewed popularity).
SyntheticTraceConfig cello_like_config(std::uint64_t seed = 1);
Trace make_cello_like(std::uint64_t seed = 1);

/// Financial1-like preset: smoother OLTP arrivals (CV ≈ 1), same scale.
SyntheticTraceConfig financial_like_config(std::uint64_t seed = 1);
Trace make_financial_like(std::uint64_t seed = 1);

}  // namespace eas::trace
