#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "stats/summary.hpp"
#include "util/check.hpp"

namespace eas::trace {

Trace::Trace(std::vector<TraceRecord> records) : records_(std::move(records)) {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.time < b.time;
                   });
  for (const auto& r : records_) {
    EAS_REQUIRE_MSG(r.time >= 0.0, "negative record time " << r.time);
    EAS_REQUIRE_MSG(r.data != kInvalidData, "record without data id");
  }
}

DataId Trace::data_universe_size() const {
  DataId max_id = 0;
  bool any = false;
  for (const auto& r : records_) {
    max_id = std::max(max_id, r.data);
    any = true;
  }
  return any ? max_id + 1 : 0;
}

Trace Trace::reads_only() const {
  std::vector<TraceRecord> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    if (r.is_read) out.push_back(r);
  }
  return Trace(std::move(out));
}

Trace Trace::prefix(std::size_t n) const {
  std::vector<TraceRecord> out(records_.begin(),
                               records_.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       std::min(n, records_.size())));
  return Trace(std::move(out));
}

Trace Trace::rebased() const {
  if (empty()) return {};
  const double t0 = records_.front().time;
  std::vector<TraceRecord> out = records_;
  for (auto& r : out) r.time -= t0;
  return Trace(std::move(out));
}

Trace Trace::densified() const {
  std::unordered_map<DataId, DataId> remap;
  remap.reserve(records_.size());
  std::vector<TraceRecord> out = records_;
  for (auto& r : out) {
    auto [it, inserted] =
        remap.try_emplace(r.data, static_cast<DataId>(remap.size()));
    r.data = it->second;
  }
  return Trace(std::move(out));
}

TraceStats Trace::compute_stats() const {
  TraceStats s;
  s.num_records = records_.size();
  if (records_.empty()) return s;

  std::unordered_map<DataId, std::size_t> access_counts;
  stats::SummaryStats gaps;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    ++access_counts[records_[i].data];
    if (i > 0) gaps.add(records_[i].time - records_[i - 1].time);
  }
  s.num_distinct_data = access_counts.size();
  s.duration_seconds = duration();
  s.mean_interarrival = gaps.mean();
  s.interarrival_cv = gaps.cv();
  s.mean_rate =
      s.duration_seconds > 0.0
          ? static_cast<double>(records_.size()) / s.duration_seconds
          : 0.0;

  std::vector<std::size_t> counts;
  counts.reserve(access_counts.size());
  for (const auto& [data, n] : access_counts) counts.push_back(n);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, counts.size() / 100);
  std::size_t top_total = 0;
  for (std::size_t i = 0; i < top; ++i) top_total += counts[i];
  s.top1pct_access_share =
      static_cast<double>(top_total) / static_cast<double>(records_.size());
  return s;
}

}  // namespace eas::trace
