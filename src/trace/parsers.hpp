// Trace file parsers.
//
// Three on-disk formats are supported:
//
//  * SPC / UMass repository format (Financial1): CSV lines
//        ASU,LBA,size_bytes,opcode,timestamp_seconds
//    with opcode in {r,R,w,W}. Each distinct (ASU, LBA) pair becomes one
//    DataId — the paper's "unique combination of disk id and block address".
//
//  * Cello text form: whitespace-separated
//        timestamp_seconds device_id block_offset size_bytes r|w
//    ('#'-prefixed comment lines allowed). The original HP Cello trace ships
//    in binary SRT; this is the common post-processed textual export, and
//    each distinct (device, block_offset) pair becomes one DataId.
//
//  * Generic CSV with the header "time,data,size,op" for round-tripping the
//    library's own traces.
//
// Parsers are strict: a malformed line raises TraceParseError with the line
// number, unless ParseOptions::lenient is set, in which case bad lines are
// counted and skipped.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace/trace.hpp"

namespace eas::trace {

class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(const std::string& message, std::size_t line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct ParseOptions {
  bool lenient = false;        ///< skip malformed lines instead of throwing
  bool reads_only = true;      ///< drop write records (§2.1)
  double time_scale = 1.0;     ///< multiply timestamps (e.g. ms -> s)
  std::size_t max_records = 0; ///< 0 = unlimited
};

struct ParseReport {
  std::size_t parsed = 0;
  std::size_t skipped_malformed = 0;
  std::size_t skipped_writes = 0;
  /// First malformed line seen in lenient mode (0 = none), plus its error
  /// text, so callers can surface *why* records were dropped instead of
  /// just counting them.
  std::size_t first_error_line = 0;
  std::string first_error;
};

/// Parses UMass/SPC CSV (Financial1 format). Data ids are densified in
/// first-appearance order; the result is time-sorted and rebased to 0.
Trace parse_spc(std::istream& in, const ParseOptions& opts = {},
                ParseReport* report = nullptr);

/// Parses the Cello textual export format.
Trace parse_cello_text(std::istream& in, const ParseOptions& opts = {},
                       ParseReport* report = nullptr);

/// Parses the library's own CSV ("time,data,size,op" header required).
Trace parse_csv(std::istream& in, const ParseOptions& opts = {},
                ParseReport* report = nullptr);

/// Writes the library CSV format (round-trips through parse_csv).
void write_csv(std::ostream& out, const Trace& trace);

/// Loads a trace from a path, dispatching on extension: ".spc"/".csv-spc"
/// -> SPC, ".cello" -> Cello text, ".csv" -> library CSV.
Trace load_trace_file(const std::string& path, const ParseOptions& opts = {});

}  // namespace eas::trace
