#include "trace/parsers.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <unordered_map>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace eas::trace {

namespace {

// Key for (device/ASU, block) -> dense DataId interning.
struct BlockKey {
  long long device;
  long long block;
  bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    const auto h1 = std::hash<long long>{}(k.device);
    const auto h2 = std::hash<long long>{}(k.block);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

using Interner = std::unordered_map<BlockKey, DataId, BlockKeyHash>;

DataId intern(Interner& map, long long device, long long block) {
  auto [it, inserted] = map.try_emplace(BlockKey{device, block},
                                        static_cast<DataId>(map.size()));
  return it->second;
}

// strtod happily parses "inf"/"nan" (and overflowing literals become +inf),
// but a non-finite timestamp would blow up far away, inside the simulator's
// schedule_at contract. Reject it here with the offending line number.
bool finite_time(const std::optional<double>& t) {
  return t.has_value() && std::isfinite(*t) && *t >= 0.0;
}

// Device ids are interned, so any value fits; direct DataId fields must fit
// the 32-bit id type (whose max is the kInvalidData sentinel) or the cast
// would silently wrap / forge the sentinel.
bool fits_data_id(long long v) {
  return v >= 0 && static_cast<unsigned long long>(v) <
                       std::numeric_limits<DataId>::max();
}

bool parse_opcode(std::string_view field, bool& is_read) {
  field = util::trim(field);
  if (field == "r" || field == "R" || field == "read" || field == "Read") {
    is_read = true;
    return true;
  }
  if (field == "w" || field == "W" || field == "write" || field == "Write") {
    is_read = false;
    return true;
  }
  return false;
}

/// Shared line-pump: `parse_line` returns true when it produced a record.
template <typename LineParser>
Trace pump(std::istream& in, const ParseOptions& opts, ParseReport* report,
           LineParser parse_line) {
  std::vector<TraceRecord> records;
  ParseReport local;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view sv = util::trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    TraceRecord rec;
    bool ok = false;
    std::string error;
    try {
      ok = parse_line(sv, rec, error);
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    }
    if (!ok) {
      if (error.empty()) error = "malformed record";
      if (!opts.lenient) throw TraceParseError(error, line_no);
      if (local.first_error_line == 0) {
        local.first_error_line = line_no;
        local.first_error = error;
      }
      ++local.skipped_malformed;
      continue;
    }
    rec.time *= opts.time_scale;
    if (opts.reads_only && !rec.is_read) {
      ++local.skipped_writes;
      continue;
    }
    records.push_back(rec);
    ++local.parsed;
    if (opts.max_records != 0 && local.parsed >= opts.max_records) break;
  }
  if (report) *report = local;
  return Trace(std::move(records)).rebased();
}

}  // namespace

Trace parse_spc(std::istream& in, const ParseOptions& opts,
                ParseReport* report) {
  Interner interner;
  return pump(in, opts, report,
              [&interner](std::string_view sv, TraceRecord& rec,
                          std::string& error) {
                const auto fields = util::split(sv, ',');
                if (fields.size() < 5) {
                  error = "expected 5 comma-separated fields (ASU,LBA,size,op,time)";
                  return false;
                }
                const auto asu = util::parse_int(fields[0]);
                const auto lba = util::parse_int(fields[1]);
                const auto size = util::parse_int(fields[2]);
                const auto time = util::parse_double(fields[4]);
                bool is_read = false;
                if (!asu || !lba) {
                  error = "unparseable SPC ASU/LBA";
                  return false;
                }
                if (!size || *size < 0) {
                  error = "bad SPC size field";
                  return false;
                }
                if (!parse_opcode(fields[3], is_read)) {
                  error = "bad SPC opcode (expected r/R/w/W)";
                  return false;
                }
                if (!finite_time(time)) {
                  error = "bad SPC timestamp (must be finite and >= 0)";
                  return false;
                }
                rec.time = *time;
                rec.data = intern(interner, *asu, *lba);
                rec.size_bytes = static_cast<unsigned long>(*size);
                rec.is_read = is_read;
                return true;
              });
}

Trace parse_cello_text(std::istream& in, const ParseOptions& opts,
                       ParseReport* report) {
  Interner interner;
  return pump(
      in, opts, report,
      [&interner](std::string_view sv, TraceRecord& rec, std::string& error) {
        // Collapse arbitrary whitespace into fields.
        std::vector<std::string_view> fields;
        std::size_t i = 0;
        while (i < sv.size()) {
          while (i < sv.size() && std::isspace(static_cast<unsigned char>(sv[i]))) ++i;
          std::size_t start = i;
          while (i < sv.size() && !std::isspace(static_cast<unsigned char>(sv[i]))) ++i;
          if (i > start) fields.push_back(sv.substr(start, i - start));
        }
        if (fields.size() < 5) {
          error = "expected 5 whitespace-separated fields (time dev block size r|w)";
          return false;
        }
        const auto time = util::parse_double(fields[0]);
        const auto dev = util::parse_int(fields[1]);
        const auto block = util::parse_int(fields[2]);
        const auto size = util::parse_int(fields[3]);
        bool is_read = false;
        if (!dev || !block) {
          error = "unparseable Cello device/block";
          return false;
        }
        if (!size || *size < 0) {
          error = "bad Cello size field";
          return false;
        }
        if (!parse_opcode(fields[4], is_read)) {
          error = "bad Cello opcode (expected r/R/w/W)";
          return false;
        }
        if (!finite_time(time)) {
          error = "bad Cello timestamp (must be finite and >= 0)";
          return false;
        }
        rec.time = *time;
        rec.data = intern(interner, *dev, *block);
        rec.size_bytes = static_cast<unsigned long>(*size);
        rec.is_read = is_read;
        return true;
      });
}

Trace parse_csv(std::istream& in, const ParseOptions& opts,
                ParseReport* report) {
  std::string header;
  if (!std::getline(in, header) ||
      util::trim(header) != "time,data,size,op") {
    throw TraceParseError("missing 'time,data,size,op' header", 1);
  }
  return pump(in, opts, report,
              [](std::string_view sv, TraceRecord& rec, std::string& error) {
                const auto fields = util::split(sv, ',');
                if (fields.size() != 4) {
                  error = "expected 4 comma-separated fields";
                  return false;
                }
                const auto time = util::parse_double(fields[0]);
                const auto data = util::parse_int(fields[1]);
                const auto size = util::parse_int(fields[2]);
                bool is_read = false;
                if (!data || !fits_data_id(*data)) {
                  error = "bad CSV data id (must fit 32-bit id)";
                  return false;
                }
                if (!size || *size < 0) {
                  error = "bad CSV size field";
                  return false;
                }
                if (!parse_opcode(fields[3], is_read)) {
                  error = "bad CSV opcode (expected r/R/w/W)";
                  return false;
                }
                if (!finite_time(time)) {
                  error = "bad CSV timestamp (must be finite and >= 0)";
                  return false;
                }
                rec.time = *time;
                rec.data = static_cast<DataId>(*data);
                rec.size_bytes = static_cast<unsigned long>(*size);
                rec.is_read = is_read;
                return true;
              });
}

void write_csv(std::ostream& out, const Trace& trace) {
  out << "time,data,size,op\n";
  for (const auto& r : trace.records()) {
    out << r.time << ',' << r.data << ',' << r.size_bytes << ','
        << (r.is_read ? 'r' : 'w') << '\n';
  }
}

Trace load_trace_file(const std::string& path, const ParseOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  const auto dot = path.find_last_of('.');
  const std::string ext =
      dot == std::string::npos ? "" : util::to_lower(path.substr(dot + 1));
  if (ext == "spc" || ext == "csv-spc") return parse_spc(in, opts);
  if (ext == "cello") return parse_cello_text(in, opts);
  if (ext == "csv") return parse_csv(in, opts);
  throw std::runtime_error("unknown trace extension ." + ext +
                           " (expected .spc, .cello or .csv): " + path);
}

}  // namespace eas::trace
