// Block-level I/O traces: the workload input of the evaluation (§4.1).
//
// A trace is an ordered stream of block read records over dense DataIds.
// The paper evaluates on HP Cello and UMass Financial1; this module loads
// those formats (see parsers.hpp) and generates calibrated synthetic
// equivalents (see synthetic.hpp) when the originals are unavailable.
#pragma once

#include <cstddef>
#include <vector>

#include "util/ids.hpp"

namespace eas::trace {

struct TraceRecord {
  double time = 0.0;  ///< disk access time, seconds from trace start
  DataId data = kInvalidData;
  unsigned long size_bytes = 512 * 1024;
  bool is_read = true;
};

/// Aggregate properties used for calibration and sanity tests.
struct TraceStats {
  std::size_t num_records = 0;
  std::size_t num_distinct_data = 0;
  double duration_seconds = 0.0;
  double mean_interarrival = 0.0;
  double interarrival_cv = 0.0;  ///< burstiness: ~1 Poisson, >> 1 bursty
  double mean_rate = 0.0;        ///< records per second
  /// Fraction of accesses going to the most popular 1% of data items.
  double top1pct_access_share = 0.0;
};

/// An immutable, time-sorted request stream.
class Trace {
 public:
  Trace() = default;
  /// Sorts by time (stable) and validates: non-negative times, known data.
  explicit Trace(std::vector<TraceRecord> records);

  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const TraceRecord& operator[](std::size_t i) const { return records_[i]; }

  double start_time() const { return empty() ? 0.0 : records_.front().time; }
  double end_time() const { return empty() ? 0.0 : records_.back().time; }
  double duration() const { return end_time() - start_time(); }

  /// Largest data id referenced + 1 (0 when empty).
  DataId data_universe_size() const;

  /// Keeps only reads (the scheduler's input per §2.1; writes are assumed
  /// handled by write off-loading).
  Trace reads_only() const;

  /// First `n` records (the paper uses 70,000-request prefixes).
  Trace prefix(std::size_t n) const;

  /// Shifts times so the trace starts at 0.
  Trace rebased() const;

  /// Remaps data ids to a dense [0, k) range preserving first-appearance
  /// order; returns the remapped trace.
  Trace densified() const;

  TraceStats compute_stats() const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace eas::trace
