#include "trace/synthetic.hpp"

#include <limits>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace eas::trace {

void SyntheticTraceConfig::validate() const {
  EAS_REQUIRE(num_requests > 0);
  EAS_REQUIRE(num_data > 0);
  EAS_REQUIRE(popularity_z >= 0.0);
  EAS_REQUIRE(mean_rate > 0.0);
  EAS_REQUIRE(burst_rate_multiplier >= 1.0);
  EAS_REQUIRE(burst_time_fraction >= 0.0 && burst_time_fraction < 1.0);
  EAS_REQUIRE(mean_burst_seconds > 0.0);
  EAS_REQUIRE(block_bytes > 0);
  EAS_REQUIRE(write_fraction >= 0.0 && write_fraction <= 1.0);
}

Trace make_synthetic_trace(const SyntheticTraceConfig& cfg) {
  cfg.validate();
  util::Rng rng(cfg.seed);
  util::Rng popularity_rng = rng.split();  // independent streams: changing
  util::Rng arrival_rng = rng.split();     // one knob leaves the other fixed
  util::Rng op_rng = rng.split();

  // Rank -> data id mapping randomised so popular items are spread across
  // the id space (ids carry no popularity meaning downstream).
  std::vector<DataId> rank_to_data(cfg.num_data);
  for (DataId b = 0; b < cfg.num_data; ++b) rank_to_data[b] = b;
  popularity_rng.shuffle(rank_to_data);
  util::ZipfSampler zipf(cfg.num_data, cfg.popularity_z);

  // MMPP rates: mean_rate = f·λ_burst + (1-f)·λ_calm, λ_burst = m·λ_calm.
  const double f = cfg.burst_time_fraction;
  const double m = cfg.burst_rate_multiplier;
  const double calm_rate = cfg.mean_rate / (f * m + (1.0 - f));
  const double burst_rate = m * calm_rate;
  // Dwell times: burst mean given; calm mean chosen so the long-run burst
  // fraction matches f ( f = E[burst] / (E[burst] + E[calm]) ).
  const double mean_calm_seconds =
      f > 0.0 ? cfg.mean_burst_seconds * (1.0 - f) / f
              : 1.0;  // unused when f == 0

  std::vector<TraceRecord> records;
  records.reserve(cfg.num_requests);

  double now = 0.0;
  bool in_burst = false;
  double state_ends =
      f > 0.0 ? arrival_rng.exponential(1.0 / mean_calm_seconds)
              : std::numeric_limits<double>::infinity();

  while (records.size() < cfg.num_requests) {
    const double rate = in_burst ? burst_rate : calm_rate;
    const double gap = arrival_rng.exponential(rate);
    if (now + gap >= state_ends) {
      // State switch happens before the candidate arrival; restart the
      // (memoryless) arrival draw from the switch instant.
      now = state_ends;
      in_burst = !in_burst;
      const double mean_dwell =
          in_burst ? cfg.mean_burst_seconds : mean_calm_seconds;
      state_ends = now + arrival_rng.exponential(1.0 / mean_dwell);
      continue;
    }
    now += gap;
    TraceRecord r;
    r.time = now;
    r.data = rank_to_data[zipf.sample(popularity_rng)];
    r.size_bytes = cfg.block_bytes;
    r.is_read = cfg.write_fraction <= 0.0 || !op_rng.bernoulli(cfg.write_fraction);
    records.push_back(r);
  }
  return Trace(std::move(records));
}

SyntheticTraceConfig cello_like_config(std::uint64_t seed) {
  SyntheticTraceConfig cfg;
  cfg.seed = seed;
  cfg.num_requests = 70000;
  cfg.num_data = 32768;
  cfg.popularity_z = 0.9;  // time-sharing workloads show strong skew [2]
  // Calibrated against the paper's Cello anchors (see EXPERIMENTS.md):
  // rf=1 normalized energy ~0.9, Static mean response ~1.1 s, <15 s worst
  // case spin-up penalties, interarrival CV ~3.
  cfg.mean_rate = 35.0;
  cfg.burst_rate_multiplier = 60.0;  // heavy bursts: compile/sim storms
  cfg.burst_time_fraction = 0.04;
  cfg.mean_burst_seconds = 2.0;
  return cfg;
}

Trace make_cello_like(std::uint64_t seed) {
  return make_synthetic_trace(cello_like_config(seed));
}

SyntheticTraceConfig financial_like_config(std::uint64_t seed) {
  SyntheticTraceConfig cfg;
  cfg.seed = seed;
  cfg.num_requests = 70000;
  cfg.num_data = 32768;
  cfg.popularity_z = 0.9;
  // Calibrated to Financial1's signature (§A.4): same scale as Cello but
  // much smoother arrivals (CV ~1.1), giving the paper's ~3x lower mean
  // response times at identical energy-ranking behaviour.
  cfg.mean_rate = 45.0;
  cfg.burst_rate_multiplier = 3.0;  // mild diurnal-style modulation
  cfg.burst_time_fraction = 0.15;
  cfg.mean_burst_seconds = 5.0;
  return cfg;
}

Trace make_financial_like(std::uint64_t seed) {
  return make_synthetic_trace(financial_like_config(seed));
}

}  // namespace eas::trace
