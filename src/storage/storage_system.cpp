#include "storage/storage_system.hpp"

#include <algorithm>
#include <sstream>

#include "core/basic_schedulers.hpp"
#include "power/oracle.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace eas::storage {

double RunResult::total_energy() const {
  double e = 0.0;
  for (const auto& s : disk_stats) e += s.total_joules();
  return e;
}

std::uint64_t RunResult::total_spin_ups() const {
  std::uint64_t n = 0;
  for (const auto& s : disk_stats) n += s.spin_ups;
  return n;
}

std::uint64_t RunResult::total_spin_downs() const {
  std::uint64_t n = 0;
  for (const auto& s : disk_stats) n += s.spin_downs;
  return n;
}

double RunResult::mean_response() const { return response_times.mean(); }

double RunResult::always_on_energy(const disk::DiskPowerParams& p) const {
  return static_cast<double>(disk_stats.size()) * p.idle_watts * horizon;
}

double RunResult::normalized_energy(const disk::DiskPowerParams& p) const {
  const double base = always_on_energy(p);
  return base > 0.0 ? total_energy() / base : 0.0;
}

std::vector<double> RunResult::state_time_fractions(
    disk::DiskState state) const {
  std::vector<double> fractions;
  fractions.reserve(disk_stats.size());
  for (const auto& s : disk_stats) {
    const double total = s.total_seconds();
    fractions.push_back(total > 0.0 ? s.seconds(state) / total : 0.0);
  }
  return fractions;
}

std::string RunResult::to_json(bool include_disks) const {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.field("scheduler", scheduler_name);
  w.field("policy", policy_name);
  w.field("horizon_seconds", horizon);
  w.field("num_disks", static_cast<std::uint64_t>(disk_stats.size()));
  w.field("total_requests", total_requests);
  w.field("requests_waited_spinup", requests_waited_spinup);
  w.field("total_energy_joules", total_energy());
  w.field("spin_ups", total_spin_ups());
  w.field("spin_downs", total_spin_downs());

  w.key("response_seconds");
  w.begin_object();
  w.field("count", static_cast<std::uint64_t>(response_times.count()));
  if (!response_times.empty()) {
    w.field("mean", response_times.mean());
    w.field("p50", response_times.median());
    w.field("p90", response_times.p90());
    w.field("p99", response_times.p99());
    w.field("max", response_times.sorted().back());
  }
  w.end_object();

  w.key("fleet_state_seconds");
  w.begin_object();
  for (int s = 0; s < disk::kNumDiskStates; ++s) {
    double secs = 0.0;
    for (const auto& ds : disk_stats) secs += ds.seconds_in_state[s];
    w.field(disk::to_string(static_cast<disk::DiskState>(s)), secs);
  }
  w.end_object();

  if (include_disks) {
    w.key("disks");
    w.begin_array();
    for (const auto& ds : disk_stats) {
      w.begin_object();
      w.field("requests_served", ds.requests_served);
      w.field("spin_ups", ds.spin_ups);
      w.field("spin_downs", ds.spin_downs);
      w.field("energy_joules", ds.total_joules());
      w.key("state_seconds");
      w.begin_object();
      for (int s = 0; s < disk::kNumDiskStates; ++s) {
        w.field(disk::to_string(static_cast<disk::DiskState>(s)),
                ds.seconds_in_state[s]);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return os.str();
}

namespace {

/// The live system: Fig 1's component wiring around the event kernel.
class System final : public core::SystemView {
 public:
  System(const SystemConfig& config, const placement::PlacementMap& placement,
         power::PowerPolicy& policy)
      : config_(config), placement_(placement), policy_(policy) {
    config_.power.validate();
    config_.perf.validate();
    disks_.reserve(placement.num_disks());
    disk_ptrs_.reserve(placement.num_disks());
    for (DiskId k = 0; k < placement.num_disks(); ++k) {
      disks_.push_back(std::make_unique<disk::Disk>(
          k, sim_, config_.power, config_.perf, config_.initial_state));
      disk_ptrs_.push_back(disks_.back().get());
      disks_.back()->set_completion_callback(
          [this](const disk::Completion& c) { on_completion(c); });
      disks_.back()->set_idle_callback(
          [this](disk::Disk& d) { policy_.on_disk_idle(sim_, d); });
    }
  }

  // ---- core::SystemView ----
  double now() const override { return sim_.now(); }
  const placement::PlacementMap& placement() const override {
    return placement_;
  }
  core::DiskSnapshot snapshot(DiskId k) const override {
    return core::snapshot_of(*disks_.at(k));
  }
  const disk::DiskPowerParams& power_params() const override {
    return config_.power;
  }

  sim::Simulator& simulator() { return sim_; }
  const std::vector<disk::Disk*>& disk_ptrs() const { return disk_ptrs_; }

  void start() { policy_.on_run_start(sim_, disk_ptrs_); }

  /// Routes a request to disk k, notifying the power policy first so stale
  /// spin-down timers are cancelled before the disk sees the work.
  void dispatch(disk::Request r, DiskId k) {
    EAS_REQUIRE_MSG(placement_.stores(r.data, k),
                  "scheduler sent data " << r.data << " to disk " << k
                                         << " which does not store it");
    dispatch_unchecked(r, k);
  }

  /// Like dispatch() but without the placement-membership check: write
  /// off-loading legitimately parks blocks on foreign disks.
  void dispatch_unchecked(disk::Request r, DiskId k) {
    EAS_REQUIRE_MSG(k < disks_.size(), "dispatch to unknown disk " << k);
    r.dispatch_time = sim_.now();
    policy_.on_disk_activity(sim_, *disks_[k]);
    disks_[k]->submit(r);
  }

  /// Drains the event queue, finalizes accounting, and harvests the result.
  RunResult finish(const std::string& scheduler_name) {
    sim_.run();
    const double horizon = std::max(sim_.now(), last_completion_);
    RunResult r;
    r.scheduler_name = scheduler_name;
    r.policy_name = policy_.name();
    r.horizon = horizon;
    r.disk_stats.reserve(disks_.size());
    for (auto& d : disks_) {
      d->finalize(horizon);
      r.disk_stats.push_back(d->stats());
    }
    r.response_times = std::move(responses_);
    r.total_requests = completed_;
    r.requests_waited_spinup = waited_spinup_;
    return r;
  }

 private:
  void on_completion(const disk::Completion& c) {
    ++completed_;
    if (c.waited_for_spinup) ++waited_spinup_;
    responses_.add(c.response_seconds());
    last_completion_ = std::max(last_completion_, c.completion_time);
  }

  SystemConfig config_;
  const placement::PlacementMap& placement_;
  power::PowerPolicy& policy_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<disk::Disk>> disks_;
  std::vector<disk::Disk*> disk_ptrs_;

  stats::SampleStore responses_;
  std::uint64_t completed_ = 0;
  std::uint64_t waited_spinup_ = 0;
  double last_completion_ = 0.0;
};

disk::Request make_request(RequestId id, const trace::TraceRecord& rec) {
  disk::Request r;
  r.id = id;
  r.data = rec.data;
  r.size_bytes = rec.size_bytes;
  r.arrival_time = rec.time;
  r.dispatch_time = rec.time;
  return r;
}

}  // namespace

RunResult run_online(const SystemConfig& config,
                     const placement::PlacementMap& placement,
                     const trace::Trace& trace, core::OnlineScheduler& sched,
                     power::PowerPolicy& policy) {
  System system(config, placement, policy);
  auto& sim = system.simulator();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sim.schedule_at(trace[i].time, [&system, &sched, &trace, i] {
      const disk::Request r = make_request(i, trace[i]);
      system.dispatch(r, sched.pick(r, system));
    });
  }
  system.start();
  return system.finish(sched.name());
}

RunResult run_batch(const SystemConfig& config,
                    const placement::PlacementMap& placement,
                    const trace::Trace& trace, core::BatchScheduler& sched,
                    power::PowerPolicy& policy) {
  System system(config, placement, policy);
  auto& sim = system.simulator();
  const double interval = sched.batch_interval_seconds();
  EAS_REQUIRE(interval > 0.0);

  // Arrivals accumulate in `pending`; a tick chain drains them. The chain
  // keeps running while arrivals remain so an empty interval cannot strand
  // later requests.
  auto pending = std::make_shared<std::vector<disk::Request>>();
  auto remaining = std::make_shared<std::size_t>(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sim.schedule_at(trace[i].time, [pending, remaining, &trace, i] {
      pending->push_back(make_request(i, trace[i]));
      --*remaining;
    });
  }

  // std::function must be copyable, hence the shared recursive thunk. It
  // re-arms itself through a weak self-reference: capturing `tick` by value
  // would make the function own itself and leak the whole chain. The owning
  // pointer outlives the run (the simulation completes inside system.start()
  // below), so the lock always succeeds while events can still fire.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [pending, remaining,
           self = std::weak_ptr<std::function<void()>>(tick), interval,
           &system, &sched, &sim] {
    if (!pending->empty()) {
      std::vector<disk::Request> batch;
      batch.swap(*pending);
      const std::vector<DiskId> assignment = sched.assign(batch, system);
      EAS_ENSURE_MSG(assignment.size() == batch.size(),
                    "batch scheduler returned " << assignment.size()
                                                << " picks for "
                                                << batch.size() << " requests");
      for (std::size_t b = 0; b < batch.size(); ++b) {
        system.dispatch(batch[b], assignment[b]);
      }
    }
    if (*remaining > 0 || !pending->empty()) {
      const auto t = self.lock();
      EAS_ASSERT_MSG(t != nullptr, "batch tick outlived its owner");
      sim.schedule_in(interval, *t);
    }
  };
  if (!trace.empty()) sim.schedule_at(trace.start_time() + interval, *tick);

  system.start();
  return system.finish(sched.name());
}

RunResult run_offline(const SystemConfig& config,
                      const placement::PlacementMap& placement,
                      const trace::Trace& trace,
                      const core::OfflineAssignment& assignment,
                      const std::string& scheduler_name) {
  assignment.validate(trace, placement);
  power::OraclePolicy policy(
      assignment.arrivals_by_disk(trace, placement.num_disks()));
  System system(config, placement, policy);
  auto& sim = system.simulator();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const DiskId k = assignment.disk_of_request[i];
    sim.schedule_at(trace[i].time, [&system, &trace, i, k] {
      system.dispatch(make_request(i, trace[i]), k);
    });
  }
  system.start();
  return system.finish(scheduler_name);
}

RunResult run_always_on(const SystemConfig& config,
                        const placement::PlacementMap& placement,
                        const trace::Trace& trace) {
  SystemConfig cfg = config;
  cfg.initial_state = disk::DiskState::Idle;
  power::AlwaysOnPolicy policy;
  core::StaticScheduler sched;
  return run_online(cfg, placement, trace, sched, policy);
}

RunResult run_online_mixed(const SystemConfig& config,
                           const placement::PlacementMap& placement,
                           const trace::Trace& trace,
                           core::OnlineScheduler& sched,
                           power::PowerPolicy& policy,
                           core::WriteOffloadManager& offloader) {
  System system(config, placement, policy);
  auto& sim = system.simulator();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sim.schedule_at(trace[i].time, [&system, &sched, &offloader, &trace, i] {
      const disk::Request r = make_request(i, trace[i]);
      if (!trace[i].is_read) {
        system.dispatch_unchecked(r, offloader.route_write(r, system));
        return;
      }
      // A freshly written block may live away from placement until
      // reclaimed; such reads bypass the scheduler (there is exactly one
      // valid location).
      if (const auto diverted = offloader.read_override(r.data, system)) {
        system.dispatch_unchecked(r, *diverted);
        return;
      }
      system.dispatch(r, sched.pick(r, system));
    });
  }
  system.start();
  return system.finish(sched.name() + "+write-offload");
}

}  // namespace eas::storage
