#include "storage/storage_system.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "cache/block_cache.hpp"
#include "cache/write_back.hpp"
#include "core/basic_schedulers.hpp"
#include "power/oracle.hpp"
#include "reliability/request_state.hpp"
#include "reliability/retry_policy.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace eas::storage {

double RunResult::total_energy() const {
  double e = 0.0;
  for (const auto& s : disk_stats) e += s.total_joules();
  return e;
}

std::uint64_t RunResult::total_spin_ups() const {
  std::uint64_t n = 0;
  for (const auto& s : disk_stats) n += s.spin_ups;
  return n;
}

std::uint64_t RunResult::total_spin_downs() const {
  std::uint64_t n = 0;
  for (const auto& s : disk_stats) n += s.spin_downs;
  return n;
}

double RunResult::mean_response() const { return response_times.mean(); }

double RunResult::always_on_energy(const disk::DiskPowerParams& p) const {
  return static_cast<double>(disk_stats.size()) * p.idle_watts * horizon;
}

double RunResult::normalized_energy(const disk::DiskPowerParams& p) const {
  const double base = always_on_energy(p);
  return base > 0.0 ? total_energy() / base : 0.0;
}

std::vector<double> RunResult::state_time_fractions(
    disk::DiskState state) const {
  std::vector<double> fractions;
  fractions.reserve(disk_stats.size());
  for (const auto& s : disk_stats) {
    const double total = s.total_seconds();
    fractions.push_back(total > 0.0 ? s.seconds(state) / total : 0.0);
  }
  return fractions;
}

std::string RunResult::to_json(bool include_disks) const {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.field("scheduler", scheduler_name);
  w.field("policy", policy_name);
  w.field("horizon_seconds", horizon);
  w.field("num_disks", static_cast<std::uint64_t>(disk_stats.size()));
  w.field("total_requests", total_requests);
  w.field("requests_waited_spinup", requests_waited_spinup);
  w.field("total_energy_joules", total_energy());
  w.field("spin_ups", total_spin_ups());
  w.field("spin_downs", total_spin_downs());

  w.key("response_seconds");
  w.begin_object();
  w.field("count", static_cast<std::uint64_t>(response_times.count()));
  if (!response_times.empty()) {
    w.field("mean", response_times.mean());
    w.field("p50", response_times.median());
    w.field("p90", response_times.p90());
    w.field("p99", response_times.p99());
    w.field("max", response_times.sorted().back());
  }
  w.end_object();

  w.key("fleet_state_seconds");
  w.begin_object();
  for (int s = 0; s < disk::kNumDiskStates; ++s) {
    double secs = 0.0;
    for (const auto& ds : disk_stats) secs += ds.seconds_in_state[s];
    w.field(disk::to_string(static_cast<disk::DiskState>(s)), secs);
  }
  w.end_object();

  // Only fault-injected runs carry the faults object; the fault-free schema
  // stays byte-identical to what it was before the subsystem existed.
  if (faults_enabled) {
    w.key("faults");
    w.begin_object();
    w.field("disk_failures", fault_stats.disk_failures);
    w.field("transient_timeouts", fault_stats.transient_timeouts);
    w.field("latent_sector_events", fault_stats.latent_sector_events);
    w.field("repairs", fault_stats.repairs);
    w.field("unavailable_requests", fault_stats.unavailable_requests);
    w.field("failovers", fault_stats.failovers);
    w.field("rebuilds_completed", fault_stats.rebuilds_completed);
    w.field("rebuild_bytes", fault_stats.rebuild_bytes);
    w.field("rebuild_items_lost", fault_stats.rebuild_items_lost);
    w.field("degraded_seconds", fault_stats.degraded_seconds);
    w.field("degraded_episodes", fault_stats.degraded_episodes);
    w.field("mean_time_in_degraded", fault_stats.mean_time_in_degraded());
    w.end_object();
  }

  // Same rule for the cache tier and write off-loading: their objects exist
  // only in runs that enabled them, so everything else keeps the old schema
  // byte for byte.
  if (cache_enabled) {
    w.key("cache");
    w.begin_object();
    w.field("lookups", cache_stats.lookups);
    w.field("hits_clean", cache_stats.hits_clean);
    w.field("hits_dirty", cache_stats.hits_dirty);
    w.field("misses", cache_stats.misses);
    w.field("hit_ratio", cache_stats.hit_ratio());
    w.field("insertions", cache_stats.insertions);
    w.field("evictions", cache_stats.evictions);
    w.field("writes_buffered", cache_stats.writes_buffered);
    w.field("writes_through", cache_stats.writes_through);
    w.field("destage_batches", cache_stats.destage_batches);
    w.field("destaged_blocks", cache_stats.destaged_blocks);
    w.field("destage_piggyback", cache_stats.destage_piggyback);
    w.field("destage_forced", cache_stats.destage_forced);
    w.field("dirty_redirected", cache_stats.dirty_redirected);
    w.field("dirty_lost", cache_stats.dirty_lost);
    w.field("lost_copies_dropped", cache_stats.lost_copies_dropped);
    w.field("memory_energy_joules", cache_stats.memory_energy_joules);
    w.end_object();
  }
  if (reliability_enabled) {
    w.key("reliability");
    w.begin_object();
    w.field("deadline_misses", reliability_stats.deadline_misses);
    w.field("retries", reliability_stats.retries);
    w.field("hedges_issued", reliability_stats.hedges_issued);
    w.field("hedge_wins", reliability_stats.hedge_wins);
    w.field("shed", reliability_stats.shed);
    w.field("writes_degraded", reliability_stats.writes_degraded);
    w.field("abandoned", reliability_stats.abandoned);
    w.end_object();
  }
  if (write_offload_enabled) {
    w.key("write_offload");
    w.begin_object();
    w.field("writes_total", write_offload_stats.writes_total);
    w.field("writes_home", write_offload_stats.writes_home);
    w.field("writes_diverted", write_offload_stats.writes_diverted);
    w.field("writes_woke_home", write_offload_stats.writes_woke_home);
    w.field("reads_redirected", write_offload_stats.reads_redirected);
    w.field("reclaims", write_offload_stats.reclaims);
    w.end_object();
  }

  if (include_disks) {
    w.key("disks");
    w.begin_array();
    for (const auto& ds : disk_stats) {
      w.begin_object();
      w.field("requests_served", ds.requests_served);
      w.field("spin_ups", ds.spin_ups);
      w.field("spin_downs", ds.spin_downs);
      w.field("energy_joules", ds.total_joules());
      w.key("state_seconds");
      w.begin_object();
      for (int s = 0; s < disk::kNumDiskStates; ++s) {
        w.field(disk::to_string(static_cast<disk::DiskState>(s)),
                ds.seconds_in_state[s]);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return os.str();
}

namespace {

/// The live system: Fig 1's component wiring around the event kernel, plus
/// (when the config carries a fault profile) the degraded-mode machinery:
/// queue drain + failover on disk death, unavailability accounting, and a
/// rebuild driver that synthesizes internal re-replication I/O competing
/// with the foreground stream.
class System final : public core::SystemView {
 public:
  System(const SystemConfig& config, const placement::PlacementMap& placement,
         power::PowerPolicy& policy)
      : config_(config), placement_(placement), policy_(policy) {
    config_.power.validate();
    config_.perf.validate();
    config_.obs.validate();
    config_.cache.validate();
    config_.reliability.validate();
    if (config_.obs.trace.enabled) {
      recorder_ = std::make_shared<obs::TraceRecorder>(config_.obs.trace);
      sim_.set_recorder(recorder_.get());
    }
    if (config_.obs.metrics) {
      metrics_ = std::make_shared<obs::MetricRegistry>();
      // Registered up front in one fixed order so the registry's JSON (and
      // any merge across sweep cells) is schema-stable.
      m_completed_ = metrics_->counter("requests_completed");
      m_waited_ = metrics_->counter("requests_waited_spinup");
      m_failovers_ = metrics_->counter("failovers");
      m_unavailable_ = metrics_->counter("unavailable_requests");
      m_batches_ = metrics_->counter("batches_formed");
      m_batch_size_ = metrics_->summary("batch_size");
      m_queue_depth_ = metrics_->summary("queue_depth");
      m_response_ = metrics_->histogram("response_seconds", 1e-4, 100.0, 10);
      metrics_->counter("spin_ups");
      metrics_->counter("spin_downs");
      metrics_->gauge("total_energy_joules");
      metrics_->gauge("energy_per_request_joules");
      for (int s = 0; s < disk::kNumDiskStates; ++s) {
        metrics_->summary(std::string("disk_seconds_") +
                          disk::to_string(static_cast<disk::DiskState>(s)));
      }
      // Cache metrics come after the fixed prelude and only exist for
      // cache-enabled runs, so the cache-off registry stays schema-stable.
      if (config_.cache.enabled) {
        m_cache_hits_ = metrics_->counter("cache_hits");
        m_cache_misses_ = metrics_->counter("cache_misses");
        m_writes_buffered_ = metrics_->counter("cache_writes_buffered");
        m_destage_batches_ = metrics_->counter("destage_batches");
        m_destaged_blocks_ = metrics_->counter("destaged_blocks");
        m_dirty_occupancy_ = metrics_->summary("dirty_occupancy");
        metrics_->gauge("cache_hit_ratio");
        metrics_->gauge("cache_memory_energy_joules");
      }
      // Reliability metrics follow the same enabled-only rule, after the
      // cache block, so existing registries stay schema-stable.
      if (config_.reliability.enabled) {
        m_deadline_misses_ = metrics_->counter("deadline_misses");
        m_retries_ = metrics_->counter("retries");
        m_hedges_issued_ = metrics_->counter("hedges_issued");
        m_hedge_wins_ = metrics_->counter("hedge_wins");
        m_shed_ = metrics_->counter("shed_requests");
        m_abandoned_ = metrics_->counter("abandoned_requests");
      }
    }
    if (config_.cache.enabled) {
      if (config_.cache.capacity_blocks > 0) {
        read_cache_ = cache::BlockCache::make(config_.cache.policy,
                                              config_.cache.capacity_blocks);
      }
      if (config_.cache.dirty_capacity_blocks > 0) {
        wb_ = std::make_unique<cache::WriteBackBuffer>(
            config_.cache.dirty_capacity_blocks, placement.num_disks());
        // Force-destage thresholds in blocks; high is clamped to >= 1 so a
        // tiny buffer still destages under pressure.
        high_blocks_ = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   config_.cache.high_watermark *
                   static_cast<double>(config_.cache.dirty_capacity_blocks)));
        low_blocks_ = static_cast<std::size_t>(
            config_.cache.low_watermark *
            static_cast<double>(config_.cache.dirty_capacity_blocks));
        policy_.set_destage_probe(
            [this](DiskId k) { return wb_->pending(k); });
      }
    }
    if (config_.reliability.enabled) {
      retry_ = std::make_unique<reliability::RetryPolicy>(
          config_.reliability.backoff_base_seconds,
          config_.reliability.backoff_cap_seconds,
          config_.reliability.jitter_fraction, config_.reliability.seed);
      if (config_.reliability.max_queue_depth > 0) {
        watermark_depth_ = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   config_.reliability.backpressure_watermark *
                   static_cast<double>(config_.reliability.max_queue_depth)));
      }
      hedge_pins_.assign(placement.num_disks(), 0);
      policy_.set_hedge_probe([this](DiskId k) { return hedge_pins_[k]; });
    }
    disks_.reserve(placement.num_disks());
    disk_ptrs_.reserve(placement.num_disks());
    for (DiskId k = 0; k < placement.num_disks(); ++k) {
      disks_.push_back(std::make_unique<disk::Disk>(
          k, sim_, config_.power, config_.perf, config_.initial_state));
      disk_ptrs_.push_back(disks_.back().get());
      disks_.back()->set_completion_callback(
          [this](const disk::Completion& c) { on_completion(c); });
      disks_.back()->set_idle_callback([this](disk::Disk& d) {
        // Destage piggyback: the disk just went Idle, i.e. it is spinning
        // with an empty queue — the cheapest possible moment to flush its
        // dirty group. Issuing the batch drives it back to Active, so the
        // policy is not consulted until the next (destage-free) idle.
        if (wb_ != nullptr && wb_->pending(d.id()) > 0 &&
            (view_ == nullptr || view_->accepts_io(d.id()))) {
          destage_batch(d.id(), cache::DestageReason::kPiggyback);
          return;
        }
        policy_.on_disk_idle(sim_, d);
      });
    }
    if (config_.fault.enabled()) {
      view_ = std::make_unique<fault::FailureView>(placement.num_disks());
      injector_ = std::make_unique<fault::FaultInjector>(sim_, *view_,
                                                         config_.fault);
      injector_->set_on_disk_down(
          [this](DiskId k, fault::ScriptedFault::Kind kind) {
            on_disk_down(k, kind);
          });
      injector_->set_on_disk_back([this](DiskId k, bool needs_rebuild) {
        EAS_OBS(sim_.recorder(),
                record(sim_.now(), obs::Ev::kDiskBack, k, needs_rebuild));
        if (needs_rebuild) start_rebuild(k);
      });
      injector_->set_on_blocks_lost(
          [this](DiskId k, DataId lo, DataId hi, double scrub_delay) {
            if (scrub_delay > 0.0) {
              sim_.schedule_in(scrub_delay,
                               [this, k, lo, hi] { start_scrub(k, lo, hi); });
            }
          });
      policy_.set_failure_view(view_.get());
    }
  }

  // ---- core::SystemView ----
  double now() const override { return sim_.now(); }
  const placement::PlacementMap& placement() const override {
    return placement_;
  }
  core::DiskSnapshot snapshot(DiskId k) const override {
    return core::snapshot_of(*disks_.at(k));
  }
  const disk::DiskPowerParams& power_params() const override {
    return config_.power;
  }
  const fault::FailureView* failure_view() const override {
    return view_.get();
  }
  std::uint64_t pending_destage(DiskId k) const override {
    return wb_ != nullptr ? wb_->pending(k) : 0;
  }
  bool backpressured(DiskId k) const override {
    // Computed lazily from the live queue depth; identically false without
    // the reliability tier (watermark_depth_ stays 0), so scheduler picks
    // are bit-identical to pre-reliability builds.
    return watermark_depth_ > 0 &&
           disks_[k]->queued_requests() >= watermark_depth_;
  }

  sim::Simulator& simulator() { return sim_; }
  const std::vector<disk::Disk*>& disk_ptrs() const { return disk_ptrs_; }

  /// Called by the run_* drivers when a request enters the system (before
  /// any scheduling decision).
  void note_arrival(const disk::Request& r) {
    EAS_OBS(sim_.recorder(),
            request_event(sim_.now(), obs::Ev::kArrive, r.id, r.data));
  }

  /// Called by the batch driver each time a non-empty batch is assigned.
  void note_batch(std::size_t size) {
    EAS_OBS(sim_.recorder(),
            batch_formed(sim_.now(), batch_seq_, size));
    ++batch_seq_;
    if (metrics_ != nullptr) {
      ++*m_batches_;
      m_batch_size_->add(static_cast<double>(size));
    }
  }

  /// Cache tier front-end, consulted by every driver after note_arrival and
  /// before any scheduling decision. Returns true when the tier absorbed
  /// the request (it completes at DRAM latency and must not be routed);
  /// false sends it down the ordinary disk path. With the tier disabled
  /// this is a single branch and the disk path is untouched — bit-identical
  /// to pre-cache behavior.
  bool cache_absorb(const disk::Request& r) {
    if (!config_.cache.enabled) return false;
    if (r.is_read) return absorb_read(r);
    return absorb_write(r);
  }

  /// `horizon` bounds fault injection (typically trace.end_time()): no
  /// failure or repair event is scheduled past it, so the run terminates.
  void start(double horizon) {
    if (injector_) injector_->start(horizon);
    policy_.on_run_start(sim_, disk_ptrs_);
  }

  /// Fault-aware dispatch of a *foreground* request: verifies the
  /// scheduler's pick against the live failure view, fails over to the
  /// first readable replica when the pick is stale (the disk died after the
  /// decision), and counts the request unavailable when no live replica of
  /// its data remains. kInvalidDisk from the scheduler means it already
  /// established unavailability. Fault-free runs fall straight through.
  void route(const disk::Request& r, DiskId k) {
    if (view_ == nullptr) {
      dispatch_foreground(r, k);
      return;
    }
    if (k != kInvalidDisk && !view_->replica_readable(r.data, k)) {
      const DiskId alt = view_->first_live(placement_, r.data);
      if (alt != kInvalidDisk) note_failover();
      k = alt;
    } else if (k != kInvalidDisk && view_->degraded()) {
      // The degraded-aware schedulers route around dead replicas before the
      // pick reaches us; that is still a failover event — the request was
      // served from a fault-shrunk candidate set.
      for (const DiskId loc : placement_.locations(r.data)) {
        if (!view_->replica_readable(r.data, loc)) {
          note_failover();
          break;
        }
      }
    }
    if (k == kInvalidDisk) {
      note_unavailable();
      return;
    }
    EAS_AUDIT_MSG(view_->replica_readable(r.data, k),
                  "foreground request for data " << r.data
                                                 << " routed to unreadable disk "
                                                 << k);
    dispatch_foreground(r, k);
  }

  /// Foreground tail of route(): with the reliability tier disabled this is
  /// exactly dispatch(); enabled, the request gets an in-flight entry and
  /// goes through attempt() (admission control, deadline, hedge arming).
  void dispatch_foreground(const disk::Request& r, DiskId k) {
    if (!config_.reliability.enabled) {
      dispatch(r, k);
      return;
    }
    // Foreground ids must leave the top three bits clear — the internal /
    // destage / hedge tags live there.
    EAS_REQUIRE_MSG((r.id & (kInternalBit | kDestageBit | kHedgeBit)) == 0,
                    "foreground request id " << r.id << " collides with tags");
    auto [it, inserted] = inflight_.try_emplace(r.id, InFlight{r, {}});
    EAS_ASSERT_MSG(inserted, "duplicate foreground request id");
    attempt(r.id, it->second, k);
  }

  /// Routes a request to disk k, notifying the power policy first so stale
  /// spin-down timers are cancelled before the disk sees the work.
  void dispatch(disk::Request r, DiskId k) {
    EAS_REQUIRE_MSG(placement_.stores(r.data, k),
                  "scheduler sent data " << r.data << " to disk " << k
                                         << " which does not store it");
    dispatch_unchecked(r, k);
  }

  /// Like dispatch() but without the placement-membership check: write
  /// off-loading legitimately parks blocks on foreign disks.
  void dispatch_unchecked(disk::Request r, DiskId k) {
    EAS_REQUIRE_MSG(k < disks_.size(), "dispatch to unknown disk " << k);
    // A dead disk must never receive a request — foreground or rebuild.
    // route() and the rebuild driver both filter on the view, so tripping
    // this means a caller bypassed them.
    EAS_REQUIRE_MSG(view_ == nullptr || view_->accepts_io(k),
                    "dispatch to failed disk " << k);
    r.dispatch_time = sim_.now();
    EAS_OBS(sim_.recorder(),
            request_event(sim_.now(), obs::Ev::kDispatch, r.id, k));
    policy_.on_disk_activity(sim_, *disks_[k]);
    disks_[k]->submit(r);
    // Depth including the new request: the backlog this dispatch joined.
    if (m_queue_depth_ != nullptr) {
      m_queue_depth_->add(static_cast<double>(disks_[k]->queued_requests()));
    }
  }

  /// Drains the event queue, finalizes accounting, and harvests the result.
  RunResult finish(const std::string& scheduler_name) {
    sim_.run();
    const double horizon = std::max(sim_.now(), last_completion_);
    RunResult r;
    r.scheduler_name = scheduler_name;
    r.policy_name = policy_.name();
    r.horizon = horizon;
    r.disk_stats.reserve(disks_.size());
    for (auto& d : disks_) {
      d->finalize(horizon);
      r.disk_stats.push_back(d->stats());
    }
    r.response_times = std::move(responses_);
    r.total_requests = completed_;
    r.requests_waited_spinup = waited_spinup_;
    if (injector_) {
      const auto [secs, episodes] = view_->finalize_degraded(horizon);
      stats().degraded_seconds = secs;
      stats().degraded_episodes = episodes;
      r.faults_enabled = true;
      r.fault_stats = injector_->stats();
    }
    if (config_.cache.enabled) {
      // The tier's DRAM/NVRAM is powered for the whole run regardless of
      // traffic; charging it here keeps the energy story honest.
      cache_stats_.memory_energy_joules =
          config_.cache.memory_energy_joules(horizon);
      r.cache_enabled = true;
      r.cache_stats = cache_stats_;
      if (metrics_ != nullptr) {
        *metrics_->gauge("cache_hit_ratio") = cache_stats_.hit_ratio();
        *metrics_->gauge("cache_memory_energy_joules") =
            cache_stats_.memory_energy_joules;
      }
    }
    if (config_.reliability.enabled) {
      r.reliability_enabled = true;
      r.reliability_stats = rel_stats_;
    }
    if (metrics_ != nullptr) {
      // End-of-run aggregates: per-disk state-time summaries and the energy
      // gauges. Disks are folded in id order, so the Welford state is a pure
      // function of the run.
      std::uint64_t ups = 0;
      std::uint64_t downs = 0;
      for (int s = 0; s < disk::kNumDiskStates; ++s) {
        stats::SummaryStats* per_state = metrics_->summary(
            std::string("disk_seconds_") +
            disk::to_string(static_cast<disk::DiskState>(s)));
        for (const auto& ds : r.disk_stats) {
          per_state->add(ds.seconds_in_state[s]);
        }
      }
      for (const auto& ds : r.disk_stats) {
        ups += ds.spin_ups;
        downs += ds.spin_downs;
      }
      *metrics_->counter("spin_ups") = ups;
      *metrics_->counter("spin_downs") = downs;
      *metrics_->gauge("total_energy_joules") = r.total_energy();
      *metrics_->gauge("energy_per_request_joules") =
          completed_ > 0 ? r.total_energy() / static_cast<double>(completed_)
                         : 0.0;
    }
    r.trace_recorder = recorder_;
    r.metrics = metrics_;
    return r;
  }

 private:
  /// One in-progress re-replication: a serial copy pipeline onto `target`
  /// (scrub == false: whole-disk rebuild after a replacement; scrub == true:
  /// latent-sector repair on a live disk). Items move one at a time —
  /// internal read on the first surviving replica, then internal write on
  /// the target — so rebuild traffic interleaves with, rather than starves,
  /// the foreground stream.
  struct RebuildState {
    std::vector<DataId> items;
    std::size_t next = 0;
    std::uint32_t epoch = 0;   ///< guards against stale completions
    bool scrub = false;
    bool writing = false;      ///< current item's phase
  };

  static constexpr RequestId kInternalBit = RequestId{1} << 63;
  /// Distinguishes destage writes from rebuild traffic inside the internal
  /// id space; both carry the target disk in bits [32,62). The target field
  /// is exactly 30 bits wide so it can never bleed into kDestageBit.
  static constexpr RequestId kDestageBit = RequestId{1} << 62;
  /// Tags the hedge copy of a foreground read. Hedge copies are *not*
  /// internal (their completion is a real foreground completion), so this
  /// bit only ever appears with kInternalBit clear and cannot collide with
  /// the internal target field, which occupies bits [32,62) of internal ids
  /// only. Foreground ids are trace indices, far below bit 61.
  static constexpr RequestId kHedgeBit = RequestId{1} << 61;
  static constexpr RequestId kTargetMask = (RequestId{1} << 30) - 1;
  static RequestId internal_id(DiskId target, std::uint32_t epoch) {
    EAS_REQUIRE((target & ~kTargetMask) == 0);
    return kInternalBit | (static_cast<RequestId>(target) << 32) | epoch;
  }
  static RequestId destage_id(DiskId target, std::uint32_t seq) {
    EAS_REQUIRE((target & ~kTargetMask) == 0);
    return kInternalBit | kDestageBit |
           (static_cast<RequestId>(target) << 32) | seq;
  }
  static bool is_destage(RequestId id) { return (id & kDestageBit) != 0; }
  static DiskId internal_target(RequestId id) {
    return static_cast<DiskId>((id >> 32) & kTargetMask);
  }

  // ---- cache tier ----

  bool absorb_read(const disk::Request& r) {
    ++cache_stats_.lookups;
    // Dirty hit: the buffer holds the authoritative copy (the disk's is
    // stale until destage), so it always serves — even degraded.
    if (wb_ != nullptr && wb_->contains(r.data)) {
      ++cache_stats_.hits_dirty;
      if (m_cache_hits_ != nullptr) ++*m_cache_hits_;
      EAS_OBS(sim_.recorder(), cache_event(sim_.now(), obs::Ev::kCacheHit,
                                           r.id, r.data, /*dirty=*/1));
      complete_from_cache(r);
      return true;
    }
    if (read_cache_ != nullptr && read_cache_->contains(r.data)) {
      // The cache must never mask a lost block: when the last disk replica
      // is gone, drop the cached copy and let the ordinary path count the
      // request unavailable — exactly as it would without a cache.
      if (view_ != nullptr && view_->degraded() &&
          view_->first_live(placement_, r.data) == kInvalidDisk) {
        read_cache_->erase(r.data);
        ++cache_stats_.lost_copies_dropped;
        ++cache_stats_.misses;
        if (m_cache_misses_ != nullptr) ++*m_cache_misses_;
        return false;
      }
      read_cache_->lookup(r.data);  // promote
      ++cache_stats_.hits_clean;
      if (m_cache_hits_ != nullptr) ++*m_cache_hits_;
      EAS_OBS(sim_.recorder(), cache_event(sim_.now(), obs::Ev::kCacheHit,
                                           r.id, r.data, /*dirty=*/0));
      complete_from_cache(r);
      return true;
    }
    ++cache_stats_.misses;
    if (m_cache_misses_ != nullptr) ++*m_cache_misses_;
    EAS_OBS(sim_.recorder(),
            cache_event(sim_.now(), obs::Ev::kCacheMiss, r.id, r.data));
    return false;
  }

  bool absorb_write(const disk::Request& r) {
    // Write-through fallback: no buffer configured, or the buffer is full.
    if (wb_ == nullptr) {
      ++cache_stats_.writes_through;
      return false;
    }
    // Home = first replica location accepting I/O; deterministic, and the
    // destage lands on a disk that stores the block by construction. All
    // replicas dead => the write is unavailable (cache must not hide it).
    DiskId home = kInvalidDisk;
    for (const DiskId loc : placement_.locations(r.data)) {
      if (view_ == nullptr || view_->accepts_io(loc)) {
        home = loc;
        break;
      }
    }
    if (home == kInvalidDisk) {
      note_unavailable();
      return true;  // absorbed: there is no disk to route it to
    }
    // A block not currently pending (new, or reactivated from in-flight)
    // gets a fresh admission time from put() and needs its own deadline.
    const bool fresh = !wb_->is_pending(r.data);
    if (!wb_->put(r.data, home, sim_.now())) {
      ++cache_stats_.writes_through;
      return false;
    }
    ++cache_stats_.writes_buffered;
    if (m_writes_buffered_ != nullptr) ++*m_writes_buffered_;
    if (m_dirty_occupancy_ != nullptr) {
      m_dirty_occupancy_->add(static_cast<double>(wb_->size()));
    }
    EAS_OBS(sim_.recorder(), cache_event(sim_.now(), obs::Ev::kWriteBuffered,
                                         r.id, r.data, home));
    // The buffered copy supersedes any clean cached one.
    if (read_cache_ != nullptr) read_cache_->erase(r.data);
    complete_from_cache(r);
    if (fresh) {
      // Deadline backstop for this admission. The admission time doubles as
      // an incarnation token: if the block destages and is re-admitted, the
      // stale event no-ops and the fresh admission armed its own.
      const DataId b = r.data;
      const double admit = sim_.now();
      sim_.schedule_in(config_.cache.destage_deadline_seconds,
                       [this, b, admit] {
                         if (wb_ == nullptr || !wb_->is_pending(b)) return;
                         if (wb_->buffered_at(b) != admit) return;
                         destage_batch(wb_->home_of(b),
                                       cache::DestageReason::kDeadline);
                       });
    }
    // Opportunistic flush: the home disk is spinning with an empty queue,
    // so the write-back costs no extra spin-up.
    if (disks_[home]->state() == disk::DiskState::Idle &&
        disks_[home]->queued_requests() == 0) {
      destage_batch(home, cache::DestageReason::kPiggyback);
    }
    if (wb_->size() >= high_blocks_) force_destage_to_low();
    return true;
  }

  /// Completes an absorbed request at DRAM latency: it never touches a
  /// disk, but it is a foreground completion like any other.
  void complete_from_cache(const disk::Request& r) {
    sim_.schedule_in(config_.cache.dram_latency_seconds, [this, r] {
      const double t = sim_.now();
      last_completion_ = std::max(last_completion_, t);
      ++completed_;
      responses_.add(t - r.arrival_time);
      if (metrics_ != nullptr) {
        ++*m_completed_;
        m_response_->add(t - r.arrival_time);
      }
    });
  }

  void insert_clean(DataId b) {
    ++cache_stats_.insertions;
    if (read_cache_->insert(b) != kInvalidData) ++cache_stats_.evictions;
  }

  /// Issues one batch (<= max_destage_batch) of disk k's pending dirty
  /// blocks as internal writes.
  void destage_batch(DiskId k, cache::DestageReason reason) {
    EAS_ASSERT(wb_ != nullptr);
    EAS_ASSERT(view_ == nullptr || view_->accepts_io(k));
    destage_buf_.clear();
    const std::size_t n = wb_->begin_destage(
        k, config_.cache.max_destage_batch, destage_buf_);
    if (n == 0) return;
    ++cache_stats_.destage_batches;
    cache_stats_.destaged_blocks += n;
    if (reason == cache::DestageReason::kPiggyback) {
      ++cache_stats_.destage_piggyback;
    } else {
      ++cache_stats_.destage_forced;
    }
    if (m_destage_batches_ != nullptr) ++*m_destage_batches_;
    if (m_destaged_blocks_ != nullptr) *m_destaged_blocks_ += n;
    EAS_OBS(sim_.recorder(),
            cache_event(sim_.now(), obs::Ev::kDestageBegin, k, n,
                        static_cast<std::uint32_t>(reason)));
    for (const DataId b : destage_buf_) {
      disk::Request w;
      w.id = destage_id(k, destage_seq_++);
      w.data = b;
      w.size_bytes = config_.cache.block_bytes;
      w.arrival_time = sim_.now();
      w.internal = true;
      w.is_read = false;
      dispatch_unchecked(w, k);
    }
  }

  /// Watermark pressure: drive the post-completion occupancy down to the
  /// low watermark, largest pending group first (lowest disk id ties).
  /// Occupancy counts in-flight blocks too, so the loop bounds what will
  /// *remain* after the issued writes land rather than waiting on them.
  void force_destage_to_low() {
    while (wb_->pending_total() > low_blocks_) {
      DiskId pick = kInvalidDisk;
      std::uint64_t best = 0;
      for (DiskId k = 0; k < static_cast<DiskId>(wb_->num_disks()); ++k) {
        if (wb_->pending(k) > best) {
          best = wb_->pending(k);
          pick = k;
        }
      }
      if (pick == kInvalidDisk) break;
      destage_batch(pick, cache::DestageReason::kWatermark);
    }
  }

  void on_destage_complete(const disk::Completion& c) {
    const DataId b = c.request.data;
    // Stale after a disk death drained and re-homed the block.
    if (wb_ == nullptr || !wb_->complete(b)) return;
    EAS_OBS(sim_.recorder(), cache_event(sim_.now(), obs::Ev::kDestageDone,
                                         c.disk, b));
    if (m_dirty_occupancy_ != nullptr) {
      m_dirty_occupancy_->add(static_cast<double>(wb_->size()));
    }
    // The block is clean on disk now and demonstrably warm: admit it.
    if (read_cache_ != nullptr) insert_clean(b);
  }

  // ---- reliability tier ----

  /// Per-request in-flight entry: the original request (arrival time and
  /// all) plus its reliability state. Lives from dispatch_foreground until
  /// the first completion, shed, or abandonment.
  struct InFlight {
    disk::Request request;
    reliability::RequestState st;
  };
  using InFlightMap = std::unordered_map<RequestId, InFlight>;

  /// First live replica of `data`, preferring one != `avoid`; falls back to
  /// `avoid` itself when it is the only live location. kInvalidDisk when no
  /// live replica remains (only possible with a failure view).
  DiskId pick_replica(DataId data, DiskId avoid) const {
    DiskId fallback = kInvalidDisk;
    for (const DiskId loc : placement_.locations(data)) {
      if (view_ != nullptr && !view_->replica_readable(data, loc)) continue;
      if (loc == avoid) {
        fallback = loc;
        continue;
      }
      return loc;
    }
    return fallback;
  }

  /// Releases one planned-hedge pin on `k`. If that was the last pin and
  /// the disk sits idle with nothing queued, the power policy is re-kicked
  /// — it skipped arming its spin-down timer while the pin was up, and no
  /// other idle notification would ever come.
  void release_hedge_pin(DiskId k) {
    EAS_ASSERT(hedge_pins_[k] > 0);
    --hedge_pins_[k];
    if (hedge_pins_[k] == 0 && disks_[k]->state() == disk::DiskState::Idle &&
        disks_[k]->queued_requests() == 0) {
      policy_.on_disk_idle(sim_, *disks_[k]);
    }
  }

  /// Cancels timers, releases any planned-hedge pin, pulls a still-queued
  /// hedge copy back from its disk (no-op when it already completed or its
  /// disk drained), and erases the entry. Every path that retires a request
  /// — completion, shed, abandonment — funnels through here, so no closed
  /// request can leave a stray copy in a queue.
  void close_entry(InFlightMap::iterator it) {
    InFlight& f = it->second;
    f.st.cancel_timers(sim_);
    if (f.st.hedge_planned != kInvalidDisk) {
      release_hedge_pin(f.st.hedge_planned);
      f.st.hedge_planned = kInvalidDisk;
    }
    if (f.st.hedge_disk != kInvalidDisk) {
      disks_[f.st.hedge_disk]->remove_pending(it->first | kHedgeBit);
      f.st.hedge_disk = kInvalidDisk;
    }
    inflight_.erase(it);
  }

  /// Admission-control eviction of one queued entry on disk `k` to make
  /// room. A hedge-copy victim just loses its copy (the primary races on);
  /// a primary victim is shed outright — both its copies leave the queues
  /// and the request is dropped, counted, and traced.
  void shed_victim(RequestId victim, DiskId k) {
    const bool removed = disks_[k]->remove_pending(victim);
    EAS_ASSERT_MSG(removed, "shed victim vanished from the queue");
    const RequestId base = victim & ~kHedgeBit;
    auto vit = inflight_.find(base);
    if (vit == inflight_.end()) return;
    InFlight& vf = vit->second;
    if ((victim & kHedgeBit) != 0) {
      vf.st.hedge_disk = kInvalidDisk;
      return;
    }
    if (vf.st.hedge_disk != kInvalidDisk) {
      disks_[vf.st.hedge_disk]->remove_pending(base | kHedgeBit);
      vf.st.hedge_disk = kInvalidDisk;
    }
    ++rel_stats_.shed;
    if (m_shed_ != nullptr) ++*m_shed_;
    EAS_OBS(sim_.recorder(),
            reliability_event(sim_.now(), obs::Ev::kShed, base, k));
    close_entry(vit);
  }

  /// One dispatch attempt of the entry for `id` onto disk `k`: admission
  /// control first (bounded queue: writes degrade to write-through and are
  /// always admitted; reads shed the oldest queued read — or themselves
  /// when the backlog is all writes), then attempt accounting, deadline and
  /// hedge arming, and the actual dispatch. The attempt counter is the
  /// *shared* budget: deadline retries and fault failovers both spend from
  /// it, so a fault during a retry can never double-dispatch past the cap.
  void attempt(RequestId id, InFlight& f, DiskId k) {
    EAS_ASSERT(k != kInvalidDisk);
    const std::uint32_t cap = config_.reliability.max_queue_depth;
    if (cap > 0 && disks_[k]->queued_requests() >= cap) {
      if (!f.request.is_read) {
        // Write-through degradation: bounded queues never drop writes, the
        // overflow is admitted and counted so the operator sees it.
        ++rel_stats_.writes_degraded;
      } else {
        const RequestId victim = disks_[k]->oldest_queued_read();
        if (victim == kInvalidRequest) {
          // The backlog is writes/in-service work: shed the incoming read.
          ++rel_stats_.shed;
          if (m_shed_ != nullptr) ++*m_shed_;
          EAS_OBS(sim_.recorder(),
                  reliability_event(sim_.now(), obs::Ev::kShed, id, k));
          close_entry(inflight_.find(id));
          return;
        }
        shed_victim(victim, k);
      }
    }
    ++f.st.attempts;
    f.st.primary = k;
    f.st.retry_scheduled = false;
    if (config_.reliability.deadline_seconds > 0.0) {
      sim_.cancel(f.st.deadline);
      f.st.deadline = sim_.schedule_in(config_.reliability.deadline_seconds,
                                       [this, id] { on_deadline(id); });
    }
    arm_hedge(id, f, k);
    dispatch(f.request, k);
  }

  /// Plans a hedge for a read attempt on `k`: pins the first alternate live
  /// replica (so the power policy keeps it warm through the delay window)
  /// and arms the hedge timer. Re-attempts release the previous plan first.
  void arm_hedge(RequestId id, InFlight& f, DiskId k) {
    if (config_.reliability.hedge_delay_seconds <= 0.0 || !f.request.is_read) {
      return;
    }
    sim_.cancel(f.st.hedge_timer);
    f.st.hedge_timer = {};
    if (f.st.hedge_planned != kInvalidDisk) {
      release_hedge_pin(f.st.hedge_planned);
      f.st.hedge_planned = kInvalidDisk;
    }
    if (f.st.hedge_disk != kInvalidDisk) return;  // a copy is already racing
    DiskId alt = kInvalidDisk;
    for (const DiskId loc : placement_.locations(f.request.data)) {
      if (loc == k) continue;
      if (view_ != nullptr && !view_->replica_readable(f.request.data, loc)) {
        continue;
      }
      alt = loc;
      break;
    }
    if (alt == kInvalidDisk) return;  // un-replicated (or all alternates dead)
    ++hedge_pins_[alt];
    f.st.hedge_planned = alt;
    f.st.hedge_timer =
        sim_.schedule_in(config_.reliability.hedge_delay_seconds,
                         [this, id] { on_hedge_fire(id); });
  }

  /// Hedge timer fired: the primary attempt is still in flight after the
  /// hedge delay, so dispatch a second copy to the planned alternate (or a
  /// repick when it died during the window). First completion wins; the
  /// loser is cancelled in on_completion / shed_victim.
  void on_hedge_fire(RequestId id) {
    auto it = inflight_.find(id);
    if (it == inflight_.end()) return;  // stale (entry closed under the timer)
    InFlight& f = it->second;
    f.st.hedge_timer = {};
    DiskId target = f.st.hedge_planned;
    EAS_ASSERT(target != kInvalidDisk);
    f.st.hedge_planned = kInvalidDisk;
    if (f.st.retry_scheduled) {
      // Between attempts (backoff wait): nothing is in flight to hedge. The
      // next attempt re-arms its own hedge.
      release_hedge_pin(target);
      return;
    }
    if (view_ != nullptr && !view_->replica_readable(f.request.data, target)) {
      --hedge_pins_[target];  // died during the window: no policy kick needed
      target = kInvalidDisk;
      for (const DiskId loc : placement_.locations(f.request.data)) {
        if (loc == f.st.primary) continue;
        if (!view_->replica_readable(f.request.data, loc)) continue;
        target = loc;
        break;
      }
      if (target == kInvalidDisk) return;  // no live alternate left
    } else {
      --hedge_pins_[target];  // dispatching to it this instant
    }
    const std::uint32_t cap = config_.reliability.max_queue_depth;
    if (cap > 0 && disks_[target]->queued_requests() >= cap) {
      return;  // full queue: skip the hedge rather than shed for a copy
    }
    ++rel_stats_.hedges_issued;
    if (m_hedges_issued_ != nullptr) ++*m_hedges_issued_;
    EAS_OBS(sim_.recorder(),
            reliability_event(sim_.now(), obs::Ev::kHedgeIssue, id, target));
    f.st.hedge_disk = target;
    disk::Request copy = f.request;
    copy.id = id | kHedgeBit;
    dispatch(copy, target);
  }

  /// Per-attempt deadline fired: pull the attempt's queued copies back (an
  /// in-service transfer completes regardless and simply wins the race if
  /// it lands before the retry), then retry with deterministic backoff or
  /// abandon once the budget is spent.
  void on_deadline(RequestId id) {
    auto it = inflight_.find(id);
    if (it == inflight_.end()) return;  // stale (entry closed under the timer)
    InFlight& f = it->second;
    f.st.deadline = {};
    ++rel_stats_.deadline_misses;
    if (m_deadline_misses_ != nullptr) ++*m_deadline_misses_;
    EAS_OBS(sim_.recorder(),
            reliability_event(sim_.now(), obs::Ev::kDeadlineMiss, id,
                              f.st.primary, f.st.attempts));
    disks_[f.st.primary]->remove_pending(id);
    sim_.cancel(f.st.hedge_timer);
    f.st.hedge_timer = {};
    if (f.st.hedge_planned != kInvalidDisk) {
      release_hedge_pin(f.st.hedge_planned);
      f.st.hedge_planned = kInvalidDisk;
    }
    if (f.st.hedge_disk != kInvalidDisk) {
      disks_[f.st.hedge_disk]->remove_pending(id | kHedgeBit);
      f.st.hedge_disk = kInvalidDisk;
    }
    if (f.st.attempts >= config_.reliability.max_attempts) {
      ++rel_stats_.abandoned;
      if (m_abandoned_ != nullptr) ++*m_abandoned_;
      EAS_OBS(sim_.recorder(),
              reliability_event(sim_.now(), obs::Ev::kAbandon, id,
                                f.st.primary, f.st.attempts));
      close_entry(it);
      return;
    }
    f.st.retry_scheduled = true;
    // Deterministic jittered backoff: a pure function of (seed, id,
    // attempt), so the retry timeline is bit-identical across EAS_THREADS
    // and repeated runs.
    sim_.schedule_in(retry_->backoff_delay(id, f.st.attempts + 1),
                     [this, id] { on_retry(id); });
  }

  /// Backoff elapsed: re-dispatch to the first live replica, preferring one
  /// that is not the attempt that just timed out.
  void on_retry(RequestId id) {
    auto it = inflight_.find(id);
    if (it == inflight_.end()) return;  // a late completion won the race
    InFlight& f = it->second;
    const DiskId pick = pick_replica(f.request.data, f.st.primary);
    if (pick == kInvalidDisk) {
      if (view_ != nullptr) note_unavailable();
      ++rel_stats_.abandoned;
      if (m_abandoned_ != nullptr) ++*m_abandoned_;
      EAS_OBS(sim_.recorder(),
              reliability_event(sim_.now(), obs::Ev::kAbandon, id,
                                f.st.primary, f.st.attempts));
      close_entry(it);
      return;
    }
    ++rel_stats_.retries;
    if (m_retries_ != nullptr) ++*m_retries_;
    EAS_OBS(sim_.recorder(),
            reliability_event(sim_.now(), obs::Ev::kRetry, id, pick,
                              f.st.attempts + 1));
    attempt(id, f, pick);
  }

  fault::FaultStats& stats() { return injector_->stats(); }

  void note_failover() {
    ++stats().failovers;
    if (m_failovers_ != nullptr) ++*m_failovers_;
  }
  void note_unavailable() {
    ++stats().unavailable_requests;
    if (m_unavailable_ != nullptr) ++*m_unavailable_;
  }

  void on_completion(const disk::Completion& c) {
    last_completion_ = std::max(last_completion_, c.completion_time);
    if (c.request.internal) {
      on_internal_completion(c);
      return;
    }
    if (config_.reliability.enabled) {
      const RequestId base = c.request.id & ~kHedgeBit;
      auto it = inflight_.find(base);
      if (it == inflight_.end()) {
        // Entry already closed: a shed/abandoned request's in-service copy
        // landing late, or the race's loser completing after the winner.
        // Not counted — the request's fate was already accounted.
        return;
      }
      InFlight& f = it->second;
      if ((c.request.id & kHedgeBit) != 0) {
        ++rel_stats_.hedge_wins;
        if (m_hedge_wins_ != nullptr) ++*m_hedge_wins_;
        EAS_OBS(sim_.recorder(), reliability_event(sim_.now(),
                                                   obs::Ev::kHedgeWin, base,
                                                   c.disk));
        disks_[f.st.primary]->remove_pending(base);
      }
      close_entry(it);  // cancels timers, pulls back a racing hedge copy
    }
    ++completed_;
    if (c.waited_for_spinup) ++waited_spinup_;
    responses_.add(c.response_seconds());
    EAS_OBS(sim_.recorder(), request_event(sim_.now(), obs::Ev::kComplete,
                                           c.request.id, c.disk));
    if (metrics_ != nullptr) {
      ++*m_completed_;
      if (c.waited_for_spinup) ++*m_waited_;
      m_response_->add(c.response_seconds());
    }
    // Miss path populates the read cache: the block was just fetched from
    // disk and is the most-recently-used thing in the system.
    if (read_cache_ != nullptr && c.request.is_read) {
      insert_clean(c.request.data);
    }
  }

  /// Fail-stop/transient handler: abort any rebuild targeting the disk,
  /// drain its queue, and fail the drained work over to live replicas.
  void on_disk_down(DiskId k, fault::ScriptedFault::Kind /*kind*/) {
    EAS_OBS(sim_.recorder(), record(sim_.now(), obs::Ev::kDiskDown, k));
    if (auto it = rebuilds_.find(k); it != rebuilds_.end()) {
      // The disk being repaired died again (scrub target): abort. Items not
      // yet restored stay in the lost set; a later full rebuild covers them.
      rebuilds_.erase(it);
      view_->set_rebuild_pin(sim_.now(), k, false);
    }
    for (const disk::Request& r : disks_[k]->take_pending()) {
      if (r.internal) {
        // Queued destage writes die with the disk; their blocks are still
        // safe in the buffer and get re-homed by the drain below.
        if (is_destage(r.id)) continue;
        const DiskId target = internal_target(r.id);
        if (target == k) continue;  // write onto the dying disk: dropped
        // A rebuild's source read was queued here; retry from another
        // surviving replica (or count the item lost).
        if (auto rit = rebuilds_.find(target); rit != rebuilds_.end() &&
                                               rit->second.epoch ==
                                                   static_cast<std::uint32_t>(r.id)) {
          rit->second.writing = false;
          advance_rebuild(target);
        }
        continue;
      }
      if (config_.reliability.enabled) {
        // Failover shares the reliability attempt budget: re-dispatch goes
        // through attempt() so a request bouncing between a dying disk and
        // its deadline can never exceed max_attempts or double-dispatch.
        const RequestId base = r.id & ~kHedgeBit;
        auto fit = inflight_.find(base);
        if (fit == inflight_.end()) continue;  // already closed elsewhere
        InFlight& f = fit->second;
        if ((r.id & kHedgeBit) != 0) {
          // The hedge copy died with the disk; the primary races on alone.
          f.st.hedge_disk = kInvalidDisk;
          continue;
        }
        if (f.st.attempts >= config_.reliability.max_attempts) {
          ++rel_stats_.abandoned;
          if (m_abandoned_ != nullptr) ++*m_abandoned_;
          EAS_OBS(sim_.recorder(),
                  reliability_event(sim_.now(), obs::Ev::kAbandon, base, k,
                                    f.st.attempts));
          close_entry(fit);
          continue;
        }
        const DiskId alt = view_->first_live(placement_, r.data);
        if (alt == kInvalidDisk) {
          note_unavailable();
          ++rel_stats_.abandoned;
          if (m_abandoned_ != nullptr) ++*m_abandoned_;
          EAS_OBS(sim_.recorder(),
                  reliability_event(sim_.now(), obs::Ev::kAbandon, base, k,
                                    f.st.attempts));
          close_entry(fit);
          continue;
        }
        note_failover();
        attempt(base, f, alt);
        continue;
      }
      const DiskId alt = view_->first_live(placement_, r.data);
      if (alt == kInvalidDisk) {
        note_unavailable();
      } else {
        note_failover();
        dispatch(r, alt);  // arrival_time kept: failover delay is visible
      }
    }
    // Dirty blocks homed on the dead disk are still safe in NVRAM, but
    // their destage target is gone: re-home each onto its first replica
    // location still accepting I/O (a forced redirect, counted as a
    // failover), or count the data unavailable when none is left. The
    // cache never masks a lost block.
    if (wb_ != nullptr) {
      drain_buf_.clear();
      if (wb_->drain(k, drain_buf_) > 0) {
        for (const DataId b : drain_buf_) {
          DiskId new_home = kInvalidDisk;
          for (const DiskId loc : placement_.locations(b)) {
            if (loc != k && view_->accepts_io(loc)) {
              new_home = loc;
              break;
            }
          }
          if (new_home == kInvalidDisk) {
            ++cache_stats_.dirty_lost;
            note_unavailable();
            continue;
          }
          const bool ok = wb_->put(b, new_home, sim_.now());
          EAS_ENSURE_MSG(ok, "re-homed dirty block " << b
                                                     << " no longer fits");
          ++cache_stats_.dirty_redirected;
          note_failover();
          const double admit = sim_.now();
          sim_.schedule_in(config_.cache.destage_deadline_seconds,
                           [this, b, admit] {
                             if (wb_ == nullptr || !wb_->is_pending(b)) return;
                             if (wb_->buffered_at(b) != admit) return;
                             destage_batch(wb_->home_of(b),
                                           cache::DestageReason::kDeadline);
                           });
        }
      }
    }
  }

  /// A replacement disk came online: replay every block placed on it from
  /// surviving replicas.
  void start_rebuild(DiskId k) {
    EAS_REQUIRE_MSG(view_->health(k) == fault::DiskHealth::kRebuilding,
                    "rebuild target " << k << " is not in rebuilding state");
    RebuildState st;
    st.epoch = ++rebuild_epoch_;
    for (DataId b = 0; b < placement_.num_data(); ++b) {
      if (placement_.stores(b, k)) st.items.push_back(b);
    }
    view_->set_rebuild_pin(sim_.now(), k, true);
    rebuilds_[k] = std::move(st);
    advance_rebuild(k);
  }

  /// Scrub detected latent sector errors: re-replicate the lost blocks onto
  /// the (still live) disk that holds them.
  void start_scrub(DiskId k, DataId lo, DataId hi) {
    if (!view_->disk_up(k)) return;       // disk died before the scrub ran
    if (rebuilds_.contains(k)) return;    // already repairing this disk
    RebuildState st;
    st.epoch = ++rebuild_epoch_;
    st.scrub = true;
    for (DataId b = lo; b <= hi && b != kInvalidData; ++b) {
      if (placement_.stores(b, k) && !view_->replica_readable(b, k)) {
        st.items.push_back(b);
      }
    }
    view_->set_rebuild_pin(sim_.now(), k, true);
    rebuilds_[k] = std::move(st);
    advance_rebuild(k);
  }

  /// Issues the next internal read of the rebuild on `target`, skipping
  /// items with no surviving replica; completes the rebuild when items run
  /// out.
  void advance_rebuild(DiskId target) {
    auto it = rebuilds_.find(target);
    EAS_ASSERT(it != rebuilds_.end());
    RebuildState& st = it->second;
    while (st.next < st.items.size()) {
      const DataId b = st.items[st.next];
      DiskId src = kInvalidDisk;
      for (DiskId s : placement_.locations(b)) {
        if (s != target && view_->replica_readable(b, s)) {
          src = s;
          break;
        }
      }
      if (src == kInvalidDisk) {
        ++stats().rebuild_items_lost;
        ++st.next;
        continue;
      }
      disk::Request rr;
      rr.id = internal_id(target, st.epoch);
      rr.data = b;
      rr.size_bytes = config_.fault.rebuild_bytes_per_item;
      rr.arrival_time = sim_.now();
      rr.internal = true;
      st.writing = false;
      EAS_OBS(sim_.recorder(), rebuild_event(sim_.now(), obs::Ev::kRebuildRead,
                                             target, b, src));
      dispatch(rr, src);
      return;
    }
    finish_rebuild(target, st.scrub);
  }

  void on_internal_completion(const disk::Completion& c) {
    if (is_destage(c.request.id)) {
      on_destage_complete(c);
      return;
    }
    const DiskId target = internal_target(c.request.id);
    auto it = rebuilds_.find(target);
    if (it == rebuilds_.end() ||
        it->second.epoch != static_cast<std::uint32_t>(c.request.id)) {
      return;  // rebuild was aborted while this transfer was in flight
    }
    RebuildState& st = it->second;
    if (!st.writing) {
      // Source read done; copy onto the target. The target is kRebuilding
      // (or kUp for a scrub) — never kDown: on_disk_down aborts first.
      EAS_REQUIRE_MSG(view_->accepts_io(target),
                      "rebuild write targets failed disk " << target);
      st.writing = true;
      disk::Request w = c.request;
      w.arrival_time = sim_.now();
      EAS_OBS(sim_.recorder(),
              rebuild_event(sim_.now(), obs::Ev::kRebuildWrite, target,
                            c.request.data));
      dispatch(w, target);
      return;
    }
    // Write landed: the item is restored.
    stats().rebuild_bytes += c.request.size_bytes;
    if (st.scrub) {
      view_->clear_lost_range(sim_.now(), target, c.request.data,
                              c.request.data);
    }
    ++st.next;
    advance_rebuild(target);
  }

  void finish_rebuild(DiskId target, bool scrub) {
    const double t = sim_.now();
    EAS_OBS(sim_.recorder(),
            rebuild_event(t, obs::Ev::kRebuildDone, target, 0, scrub));
    rebuilds_.erase(target);
    ++stats().rebuilds_completed;
    view_->set_rebuild_pin(t, target, false);
    if (!scrub) {
      // The replacement now holds every restorable block; any ranges lost
      // on the old incarnation are moot.
      if (view_->has_lost_ranges(target)) {
        view_->clear_lost_range(t, target, 0, kInvalidData);
      }
      view_->set_health(t, target, fault::DiskHealth::kUp);
    }
  }

  SystemConfig config_;
  const placement::PlacementMap& placement_;
  power::PowerPolicy& policy_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<disk::Disk>> disks_;
  std::vector<disk::Disk*> disk_ptrs_;

  /// Null in fault-free runs: zero overhead, bit-identical behavior.
  std::unique_ptr<fault::FailureView> view_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unordered_map<DiskId, RebuildState> rebuilds_;
  std::uint32_t rebuild_epoch_ = 0;

  /// Cache tier; both null (and every hook a single branch) when the config
  /// leaves the tier disabled.
  std::unique_ptr<cache::BlockCache> read_cache_;
  std::unique_ptr<cache::WriteBackBuffer> wb_;
  cache::CacheStats cache_stats_{};
  std::size_t high_blocks_ = 0;
  std::size_t low_blocks_ = 0;
  std::uint32_t destage_seq_ = 0;
  std::vector<DataId> destage_buf_;
  std::vector<DataId> drain_buf_;

  stats::SampleStore responses_;
  std::uint64_t completed_ = 0;
  std::uint64_t waited_spinup_ = 0;
  double last_completion_ = 0.0;

  /// Observability artifacts; null when the config leaves them off. The
  /// recorder is owned here (the simulator only borrows a raw pointer) and
  /// handed to the RunResult at finish() so sinks can export it.
  std::shared_ptr<obs::TraceRecorder> recorder_;
  std::shared_ptr<obs::MetricRegistry> metrics_;
  std::uint64_t batch_seq_ = 0;
  /// Cached registry slots (registration returns stable pointers), so hot
  /// paths never do a name lookup. All null when metrics are off.
  std::uint64_t* m_completed_ = nullptr;
  std::uint64_t* m_waited_ = nullptr;
  std::uint64_t* m_failovers_ = nullptr;
  std::uint64_t* m_unavailable_ = nullptr;
  std::uint64_t* m_batches_ = nullptr;
  stats::SummaryStats* m_batch_size_ = nullptr;
  stats::SummaryStats* m_queue_depth_ = nullptr;
  stats::Histogram* m_response_ = nullptr;
  std::uint64_t* m_cache_hits_ = nullptr;
  std::uint64_t* m_cache_misses_ = nullptr;
  std::uint64_t* m_writes_buffered_ = nullptr;
  std::uint64_t* m_destage_batches_ = nullptr;
  std::uint64_t* m_destaged_blocks_ = nullptr;
  stats::SummaryStats* m_dirty_occupancy_ = nullptr;

  /// Reliability tier; retry_ null (and every hook a single branch) when the
  /// config leaves the tier disabled. inflight_ is only ever accessed by
  /// key (find/erase/try_emplace) — never iterated — so the unordered map's
  /// traversal order cannot leak into results.
  std::unordered_map<RequestId, InFlight> inflight_;
  std::unique_ptr<reliability::RetryPolicy> retry_;
  reliability::ReliabilityStats rel_stats_{};
  /// Per-disk count of planned hedges whose timer is still running; the
  /// power policy probes this to keep the alternate warm through the window.
  std::vector<std::uint64_t> hedge_pins_;
  /// Queue depth at which schedulers see the disk as backpressured;
  /// 0 disables both the watermark and the bounded queue entirely.
  std::size_t watermark_depth_ = 0;
  std::uint64_t* m_deadline_misses_ = nullptr;
  std::uint64_t* m_retries_ = nullptr;
  std::uint64_t* m_hedges_issued_ = nullptr;
  std::uint64_t* m_hedge_wins_ = nullptr;
  std::uint64_t* m_shed_ = nullptr;
  std::uint64_t* m_abandoned_ = nullptr;
};

disk::Request make_request(RequestId id, const trace::TraceRecord& rec) {
  disk::Request r;
  r.id = id;
  r.data = rec.data;
  r.size_bytes = rec.size_bytes;
  r.is_read = rec.is_read;
  r.arrival_time = rec.time;
  r.dispatch_time = rec.time;
  return r;
}

}  // namespace

RunResult run_online(const SystemConfig& config,
                     const placement::PlacementMap& placement,
                     const trace::Trace& trace, core::OnlineScheduler& sched,
                     power::PowerPolicy& policy) {
  System system(config, placement, policy);
  auto& sim = system.simulator();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sim.schedule_at(trace[i].time, [&system, &sched, &trace, i] {
      const disk::Request r = make_request(i, trace[i]);
      system.note_arrival(r);
      if (system.cache_absorb(r)) return;
      system.route(r, sched.pick(r, system));
    });
  }
  system.start(trace.end_time());
  return system.finish(sched.name());
}

RunResult run_batch(const SystemConfig& config,
                    const placement::PlacementMap& placement,
                    const trace::Trace& trace, core::BatchScheduler& sched,
                    power::PowerPolicy& policy) {
  System system(config, placement, policy);
  auto& sim = system.simulator();
  const double interval = sched.batch_interval_seconds();
  EAS_REQUIRE(interval > 0.0);

  // Arrivals accumulate in `pending`; a tick chain drains them. The chain
  // keeps running while arrivals remain so an empty interval cannot strand
  // later requests.
  auto pending = std::make_shared<std::vector<disk::Request>>();
  auto remaining = std::make_shared<std::size_t>(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sim.schedule_at(trace[i].time, [pending, remaining, &system, &trace, i] {
      const disk::Request r = make_request(i, trace[i]);
      system.note_arrival(r);
      --*remaining;
      // The cache sits in front of the batch queue: absorbed requests
      // complete at DRAM latency instead of waiting for the next tick.
      if (system.cache_absorb(r)) return;
      pending->push_back(r);
    });
  }

  // std::function must be copyable, hence the shared recursive thunk. It
  // re-arms itself through a weak self-reference: capturing `tick` by value
  // would make the function own itself and leak the whole chain. The owning
  // pointer outlives the run (the simulation completes inside system.start()
  // below), so the lock always succeeds while events can still fire.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [pending, remaining,
           self = std::weak_ptr<std::function<void()>>(tick), interval,
           &system, &sched, &sim] {
    if (!pending->empty()) {
      std::vector<disk::Request> batch;
      batch.swap(*pending);
      system.note_batch(batch.size());
      const std::vector<DiskId> assignment = sched.assign(batch, system);
      EAS_ENSURE_MSG(assignment.size() == batch.size(),
                    "batch scheduler returned " << assignment.size()
                                                << " picks for "
                                                << batch.size() << " requests");
      for (std::size_t b = 0; b < batch.size(); ++b) {
        system.route(batch[b], assignment[b]);
      }
    }
    if (*remaining > 0 || !pending->empty()) {
      const auto t = self.lock();
      EAS_ASSERT_MSG(t != nullptr, "batch tick outlived its owner");
      sim.schedule_in(interval, *t);
    }
  };
  if (!trace.empty()) sim.schedule_at(trace.start_time() + interval, *tick);

  system.start(trace.end_time());
  return system.finish(sched.name());
}

RunResult run_offline(const SystemConfig& config,
                      const placement::PlacementMap& placement,
                      const trace::Trace& trace,
                      const core::OfflineAssignment& assignment,
                      const std::string& scheduler_name) {
  assignment.validate(trace, placement);
  power::OraclePolicy policy(
      assignment.arrivals_by_disk(trace, placement.num_disks()));
  System system(config, placement, policy);
  auto& sim = system.simulator();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const DiskId k = assignment.disk_of_request[i];
    sim.schedule_at(trace[i].time, [&system, &trace, i, k] {
      const disk::Request r = make_request(i, trace[i]);
      system.note_arrival(r);
      if (system.cache_absorb(r)) return;
      system.route(r, k);
    });
  }
  system.start(trace.end_time());
  return system.finish(scheduler_name);
}

RunResult run_always_on(const SystemConfig& config,
                        const placement::PlacementMap& placement,
                        const trace::Trace& trace) {
  SystemConfig cfg = config;
  cfg.initial_state = disk::DiskState::Idle;
  power::AlwaysOnPolicy policy;
  core::StaticScheduler sched;
  return run_online(cfg, placement, trace, sched, policy);
}

RunResult run_online_mixed(const SystemConfig& config,
                           const placement::PlacementMap& placement,
                           const trace::Trace& trace,
                           core::OnlineScheduler& sched,
                           power::PowerPolicy& policy,
                           core::WriteOffloadManager& offloader) {
  // The off-loader routes by its own log, blind to the failure view; wiring
  // it into degraded mode is future work, so fail loudly rather than run a
  // fault profile it would silently ignore.
  EAS_REQUIRE_MSG(!config.fault.enabled(),
                  "write-offload runs do not support fault injection");
  // The off-loader and the cache tier are alternative write paths; running
  // both would double-absorb writes. Pick one per experiment.
  EAS_REQUIRE_MSG(!config.cache.enabled,
                  "write-offload runs do not support the cache tier");
  // Mixed runs dispatch through dispatch_unchecked/dispatch directly, so
  // the reliability state machine would only cover part of the traffic;
  // refuse rather than half-protect.
  EAS_REQUIRE_MSG(!config.reliability.enabled,
                  "write-offload runs do not support the reliability tier");
  System system(config, placement, policy);
  auto& sim = system.simulator();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sim.schedule_at(trace[i].time, [&system, &sched, &offloader, &trace, i] {
      const disk::Request r = make_request(i, trace[i]);
      system.note_arrival(r);
      if (!trace[i].is_read) {
        system.dispatch_unchecked(r, offloader.route_write(r, system));
        return;
      }
      // A freshly written block may live away from placement until
      // reclaimed; such reads bypass the scheduler (there is exactly one
      // valid location).
      if (const auto diverted = offloader.read_override(r.data, system)) {
        system.dispatch_unchecked(r, *diverted);
        return;
      }
      system.dispatch(r, sched.pick(r, system));
    });
  }
  system.start(trace.end_time());
  RunResult result = system.finish(sched.name() + "+write-offload");
  result.write_offload_enabled = true;
  result.write_offload_stats = offloader.stats();
  return result;
}

}  // namespace eas::storage
