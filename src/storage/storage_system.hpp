// StorageSystem: wires the simulation kernel, disks, a power policy, a
// scheduler and the metrics collector into the Fig 1 architecture, and runs
// a trace through it under the online, batch or offline model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "core/scheduler.hpp"
#include "core/write_offload.hpp"
#include "disk/disk.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "obs/obs.hpp"
#include "placement/placement.hpp"
#include "power/policy.hpp"
#include "reliability/reliability.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"
#include "trace/trace.hpp"

namespace eas::storage {

struct SystemConfig {
  disk::DiskPowerParams power{};
  disk::DiskPerfParams perf{};
  /// Initial disk state. Standby matches the paper's experiments; the
  /// always-on baseline starts Idle (runners pick this automatically for
  /// AlwaysOnPolicy).
  disk::DiskState initial_state = disk::DiskState::Standby;
  /// Fault injection. Default-constructed (disabled) keeps the whole fault
  /// path dormant: no FailureView exists and results are bit-identical to
  /// builds without the subsystem.
  fault::FaultProfile fault{};
  /// Observability. Default-constructed (disabled) means no recorder or
  /// registry exists: every instrumentation site reduces to one null-pointer
  /// branch and results are bit-identical to pre-observability builds.
  obs::ObsConfig obs{};
  /// Cache & destage tier. Default-constructed (disabled) keeps the tier
  /// dormant — no cache objects exist and results are bit-identical to
  /// builds without the subsystem.
  cache::CacheConfig cache{};
  /// Request reliability tier (deadlines, deterministic retry, hedged
  /// reads, admission control). Default-constructed (disabled) keeps the
  /// tier dormant — no per-request state exists and results are
  /// bit-identical to builds without the subsystem.
  reliability::ReliabilityConfig reliability{};
};

/// Everything a run produces; the figures are all derived from this.
struct RunResult {
  std::string scheduler_name;
  std::string policy_name;
  double horizon = 0.0;  ///< accounting end time (seconds)
  std::vector<disk::DiskStats> disk_stats;
  stats::SampleStore response_times;
  std::uint64_t total_requests = 0;
  std::uint64_t requests_waited_spinup = 0;
  /// Set when the run's SystemConfig carried an enabled fault profile; the
  /// "faults" JSON object and availability columns exist only then, so
  /// fault-free output is byte-identical to the pre-fault schema.
  bool faults_enabled = false;
  fault::FaultStats fault_stats{};
  /// Same enabled-only emission rule for the cache tier: the "cache" JSON
  /// object and hit/destage/memory-energy columns exist only when the run's
  /// SystemConfig carried an enabled CacheConfig.
  bool cache_enabled = false;
  cache::CacheStats cache_stats{};
  /// Same enabled-only emission rule for the reliability tier: the
  /// "reliability" JSON object and deadline/retry/hedge/shed columns exist
  /// only when the run's SystemConfig carried an enabled ReliabilityConfig.
  bool reliability_enabled = false;
  reliability::ReliabilityStats reliability_stats{};
  /// And for §2.1 write off-loading: run_online_mixed sets this so diverted/
  /// reclaimed counters land in the same JSON as cache destage counters.
  bool write_offload_enabled = false;
  core::WriteOffloadStats write_offload_stats{};
  /// Present only when the run's ObsConfig asked for them; to_json() does
  /// not serialize either (the trace/metrics sinks own those formats), so
  /// the result schema is untouched by observability.
  std::shared_ptr<const obs::TraceRecorder> trace_recorder;
  std::shared_ptr<const obs::MetricRegistry> metrics;

  double total_energy() const;
  std::uint64_t total_spin_ups() const;
  std::uint64_t total_spin_downs() const;
  double mean_response() const;
  /// Energy of the always-on configuration over the same horizon and fleet.
  double always_on_energy(const disk::DiskPowerParams& p) const;
  double normalized_energy(const disk::DiskPowerParams& p) const;
  /// Per-disk fraction of time in `state`, one entry per disk.
  std::vector<double> state_time_fractions(disk::DiskState state) const;

  /// Serializes the result as a single JSON object so it survives process
  /// boundaries (plotting scripts, result archives). Aggregates are always
  /// present; `include_disks` additionally emits the per-disk stats array.
  /// Keys are schema-stable — downstream consumers rely on them.
  std::string to_json(bool include_disks = false) const;
};

/// Executes `trace` with an online scheduler: each request is dispatched to
/// a disk the moment it arrives (§2.2 online model).
RunResult run_online(const SystemConfig& config,
                     const placement::PlacementMap& placement,
                     const trace::Trace& trace, core::OnlineScheduler& sched,
                     power::PowerPolicy& policy);

/// Executes `trace` under the batch model: arrivals queue and the batch is
/// assigned every sched.batch_interval_seconds().
RunResult run_batch(const SystemConfig& config,
                    const placement::PlacementMap& placement,
                    const trace::Trace& trace, core::BatchScheduler& sched,
                    power::PowerPolicy& policy);

/// Executes a precomputed offline assignment through the event simulator
/// under OraclePolicy (pre-spun disks, 2CPM-shaped spin-downs). Response
/// times contain pure service time except for clipped initial pre-spins.
RunResult run_offline(const SystemConfig& config,
                      const placement::PlacementMap& placement,
                      const trace::Trace& trace,
                      const core::OfflineAssignment& assignment,
                      const std::string& scheduler_name);

/// Convenience: the always-on baseline (disks start idle, never spin down,
/// static routing — routing is irrelevant to its energy).
RunResult run_always_on(const SystemConfig& config,
                        const placement::PlacementMap& placement,
                        const trace::Trace& trace);

/// Executes a mixed read/write trace under the online model: reads go
/// through `sched` (honouring any diversion the off-loader recorded for
/// freshly written blocks); writes go through `offloader` (§2.1's write
/// off-loading extension — see core/write_offload.hpp). Off-load statistics
/// accumulate in `offloader`.
RunResult run_online_mixed(const SystemConfig& config,
                           const placement::PlacementMap& placement,
                           const trace::Trace& trace,
                           core::OnlineScheduler& sched,
                           power::PowerPolicy& policy,
                           core::WriteOffloadManager& offloader);

}  // namespace eas::storage
