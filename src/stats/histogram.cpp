#include "stats/histogram.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace eas::stats {

Histogram::Histogram(double min_value, double max_value, int bins_per_decade) {
  EAS_REQUIRE_MSG(min_value > 0.0, "log histogram needs positive min");
  EAS_REQUIRE_MSG(max_value > min_value, "max must exceed min");
  EAS_REQUIRE_MSG(bins_per_decade >= 1, "need at least one bin per decade");
  log_min_ = std::log10(min_value);
  log_step_ = 1.0 / bins_per_decade;
  const double decades = std::log10(max_value) - log_min_;
  const auto bins = static_cast<std::size_t>(std::ceil(decades / log_step_));
  counts_.assign(bins == 0 ? 1 : bins, 0);
}

std::size_t Histogram::bin_for(double value) const {
  if (!(value > 0.0)) return 0;  // clamp non-positive/NaN into first bin
  const double pos = (std::log10(value) - log_min_) / log_step_;
  if (pos < 0.0) return 0;
  const auto bin = static_cast<std::size_t>(pos);
  return bin >= counts_.size() ? counts_.size() - 1 : bin;
}

void Histogram::add(double value, std::uint64_t count) {
  counts_[bin_for(value)] += count;
  total_ += count;
}

Histogram& Histogram::operator+=(const Histogram& other) {
  EAS_REQUIRE_MSG(log_min_ == other.log_min_ && log_step_ == other.log_step_ &&
                      counts_.size() == other.counts_.size(),
                  "histogram merge requires identical binning");
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
  return *this;
}

double Histogram::bin_lower(std::size_t bin) const {
  EAS_REQUIRE(bin < counts_.size());
  return std::pow(10.0, log_min_ + log_step_ * static_cast<double>(bin));
}

double Histogram::bin_upper(std::size_t bin) const {
  EAS_REQUIRE(bin < counts_.size());
  return std::pow(10.0, log_min_ + log_step_ * static_cast<double>(bin + 1));
}

double Histogram::bin_mid(std::size_t bin) const {
  return std::sqrt(bin_lower(bin) * bin_upper(bin));
}

double Histogram::quantile_estimate(double q) const {
  EAS_REQUIRE_MSG(total_ > 0, "quantile of empty histogram");
  EAS_REQUIRE(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(total_);
  double acc = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    acc += static_cast<double>(counts_[b]);
    if (acc >= target) return bin_mid(b);
  }
  return bin_mid(counts_.size() - 1);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  double cum = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    cum += static_cast<double>(counts_[b]);
    os << bin_lower(b) << '\t' << bin_upper(b) << '\t' << counts_[b] << '\t'
       << (total_ ? cum / static_cast<double>(total_) : 0.0) << '\n';
  }
  return os.str();
}

}  // namespace eas::stats
