// Streaming summary statistics (Welford) and exact percentile stores.
//
// Response-time figures in the paper report means (Fig 8/16), tail
// percentiles (Fig 13) and full inverse CDFs (Fig 12); SummaryStats covers
// the former, SampleStore the latter two. At the paper's scale (70k requests)
// storing every sample exactly is cheaper than approximating.
#pragma once

#include <cstddef>
#include <vector>

namespace eas::stats {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class SummaryStats {
 public:
  void add(double x);
  void merge(const SummaryStats& other);
  /// Merge as an operator, so per-worker metric shards combine with the
  /// same spelling as counters: `total += shard;`.
  SummaryStats& operator+=(const SummaryStats& other) {
    merge(other);
    return *this;
  }

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }
  /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
  double cv() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample for exact quantiles and inverse-CDF dumps.
class SampleStore {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }
  /// Appends the other store's samples in their insertion order (so merging
  /// shards in a fixed order keeps mean() bit-reproducible).
  SampleStore& operator+=(const SampleStore& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;

  /// Exact quantile by linear interpolation between order statistics;
  /// q in [0, 1]. Must not be called on an empty store.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  /// Fraction of samples strictly greater than x — the paper's
  /// P[response time > x] inverse CDF (Fig 12).
  double fraction_above(double x) const;

  /// All samples in ascending order (lazily built, cached). The insertion
  /// order of `samples_` is never disturbed, so mean() sums in completion
  /// order and is reproducible bit-for-bit regardless of whether quantiles
  /// were queried first. The lazy build itself is not thread-safe: callers
  /// sharing a store across threads must materialize the cache once (call
  /// sorted()) while still single-threaded — SweepRunner does this before
  /// publishing a result.
  const std::vector<double>& sorted() const;

 private:
  std::vector<double> samples_;  ///< insertion (completion) order
  mutable std::vector<double> sorted_cache_;
  mutable bool sorted_valid_ = true;
};

}  // namespace eas::stats
