// Logarithmically-binned histogram for latency-style quantities.
//
// Response times in the evaluation span 5+ orders of magnitude (sub-ms disk
// hits up to ~15 s spin-up penalties, Fig 12), so bins grow geometrically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eas::stats {

/// Histogram with geometric bin edges between [min_value, max_value].
/// Values outside the range are clamped into the first/last bin, never lost.
class Histogram {
 public:
  /// @param min_value  lower edge of the first bin (> 0)
  /// @param max_value  upper edge of the last bin (> min_value)
  /// @param bins_per_decade  resolution; 10 gives ~26% wide bins
  Histogram(double min_value, double max_value, int bins_per_decade = 10);

  void add(double value, std::uint64_t count = 1);

  /// Bin-wise merge. Requires identical binning (same min/max/resolution);
  /// throws InvariantError otherwise — silently re-binning would corrupt
  /// quantile estimates.
  Histogram& operator+=(const Histogram& other);

  std::uint64_t total_count() const { return total_; }
  std::size_t num_bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t bin) const { return counts_[bin]; }

  /// Geometric midpoint of a bin, used as its representative value.
  double bin_mid(std::size_t bin) const;
  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const;

  /// Approximate quantile from bin midpoints; q in [0,1].
  double quantile_estimate(double q) const;

  /// Rows of "lower upper count cumulative_fraction" for dumping.
  std::string to_string() const;

 private:
  std::size_t bin_for(double value) const;

  double log_min_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace eas::stats
