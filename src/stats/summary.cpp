#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace eas::stats {

void SummaryStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void SummaryStats::merge(const SummaryStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SummaryStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double SummaryStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

double SummaryStats::min() const { return n_ == 0 ? 0.0 : min_; }
double SummaryStats::max() const { return n_ == 0 ? 0.0 : max_; }

double SummaryStats::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

void SampleStore::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

SampleStore& SampleStore::operator+=(const SampleStore& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_valid_ = samples_.empty();
  return *this;
}

double SampleStore::mean() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples_) acc += s;
  return acc / static_cast<double>(samples_.size());
}

const std::vector<double>& SampleStore::sorted() const {
  if (!sorted_valid_) {
    sorted_cache_ = samples_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    sorted_valid_ = true;
  }
  return sorted_cache_;
}

double SampleStore::quantile(double q) const {
  EAS_REQUIRE_MSG(!samples_.empty(), "quantile of empty store");
  EAS_REQUIRE_MSG(q >= 0.0 && q <= 1.0, "quantile out of range: " << q);
  const auto& s = sorted();
  if (s.size() == 1) return s.front();
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= s.size()) return s.back();
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

double SampleStore::fraction_above(double x) const {
  if (samples_.empty()) return 0.0;
  const auto& s = sorted();
  const auto it = std::upper_bound(s.begin(), s.end(), x);
  return static_cast<double>(s.end() - it) / static_cast<double>(s.size());
}

}  // namespace eas::stats
