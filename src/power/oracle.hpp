// Oracle power policy for the offline scheduling model.
//
// §2.2 offline assumptions: the scheduler knows all arrival times, so disks
// are spun up in advance (or kept idle) and requests never wait on a power
// transition. Spin-downs still follow the 2CPM shape — a disk waits the
// breakeven time and only then spins down (Lemma 1 case I) — and, when the
// next arrival falls inside the saving window T_B + T_up + T_down, the disk
// stays idle straight through (cases II/III).
//
// The policy is fed the per-disk dispatch times of an already-computed
// offline assignment before the run starts.
#pragma once

#include <unordered_map>
#include <vector>

#include "power/policy.hpp"

namespace eas::power {

class OraclePolicy final : public PowerPolicy {
 public:
  /// `arrivals_by_disk[k]` must be the ascending dispatch times of every
  /// request the offline schedule assigns to disk k. `pre_spin_margin` pads
  /// each advance spin-up so it completes strictly before the arrival
  /// (zero margin would tie with the arrival event and the request would
  /// momentarily observe a spinning-up disk).
  explicit OraclePolicy(std::vector<std::vector<sim::SimTime>> arrivals_by_disk,
                        double pre_spin_margin = 1e-3);

  std::string name() const override { return "oracle"; }

  void on_run_start(sim::Simulator& sim,
                    const std::vector<disk::Disk*>& disks) override;
  void on_disk_idle(sim::Simulator& sim, disk::Disk& d) override;
  void on_disk_activity(sim::Simulator& sim, disk::Disk& d) override;

 private:
  /// Next known arrival for disk k strictly after `now`, or +inf.
  sim::SimTime next_arrival(DiskId k, sim::SimTime now);

  std::vector<std::vector<sim::SimTime>> arrivals_;
  double pre_spin_margin_;
  std::vector<std::size_t> cursor_;
  std::unordered_map<DiskId, sim::EventHandle> spin_down_timers_;
};

}  // namespace eas::power
