// Disk power-management policies.
//
// A PowerPolicy owns the *spin-down* decision (and, for the oracle, advance
// spin-ups). Spin-up on request arrival is the disk's own job — hardware
// wakes when addressed — so policies only react to idle/activity
// notifications from the storage system.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "disk/disk.hpp"
#include "fault/failure_view.hpp"
#include "sim/simulator.hpp"

namespace eas::power {

class PowerPolicy {
 public:
  virtual ~PowerPolicy() = default;

  virtual std::string name() const = 0;

  /// Fault path: gives the policy visibility into rebuild pins. While a
  /// disk's rebuild_in_progress() is set the policy must not spin it down —
  /// re-replication traffic targets it and every spin-down would stall the
  /// repair behind a wake cycle. Null (the default) means fault-free.
  /// Composite policies forward the view to their delegates.
  virtual void set_failure_view(const fault::FailureView* fv) {
    failure_view_ = fv;
  }

  /// Cache path: lets the policy see dirty-set pressure (pending destage
  /// blocks per disk) without depending on the cache layer. A disk with
  /// pending destage work is about to receive internal writes, so spinning
  /// it down would waste a wake cycle; FixedThreshold defers its timer
  /// while the count is nonzero. Unset (the default) means no cache tier.
  /// Composite policies forward the probe to their delegates.
  using DestageProbe = std::function<std::uint64_t(DiskId)>;
  virtual void set_destage_probe(DestageProbe probe) {
    destage_probe_ = std::move(probe);
  }

  /// Reliability path: lets the policy see hedged in-flight pairs per disk
  /// without depending on the reliability layer. A disk holding the hedge
  /// copy of a still-racing read must not spin down — the cancel-the-loser
  /// bookkeeping assumes both copies stay dispatched until one completes.
  /// Unset (the default) means no reliability tier. Composite policies
  /// forward the probe to their delegates.
  using HedgeProbe = std::function<std::uint64_t(DiskId)>;
  virtual void set_hedge_probe(HedgeProbe probe) {
    hedge_probe_ = std::move(probe);
  }

  /// Called once before any request is injected. `disks` outlive the run.
  virtual void on_run_start(sim::Simulator& sim,
                            const std::vector<disk::Disk*>& disks) {
    (void)sim;
    (void)disks;
  }

  /// Called when `d` transitions into Idle (queue drained / woke up empty).
  virtual void on_disk_idle(sim::Simulator& sim, disk::Disk& d) {
    (void)sim;
    (void)d;
  }

  /// Called when a request is about to be submitted to `d`; policies cancel
  /// any pending spin-down decision for the disk here.
  virtual void on_disk_activity(sim::Simulator& sim, disk::Disk& d) {
    (void)sim;
    (void)d;
  }

 protected:
  /// True when the fault subsystem pins k active right now.
  bool spin_down_blocked(DiskId k) const {
    return failure_view_ != nullptr && failure_view_->rebuild_in_progress(k);
  }

  /// Dirty blocks awaiting destage onto k; 0 without a cache tier.
  std::uint64_t pending_destage(DiskId k) const {
    return destage_probe_ ? destage_probe_(k) : 0;
  }

  /// Hedged in-flight pairs touching k; 0 without a reliability tier.
  std::uint64_t pending_hedges(DiskId k) const {
    return hedge_probe_ ? hedge_probe_(k) : 0;
  }

 private:
  const fault::FailureView* failure_view_ = nullptr;
  DestageProbe destage_probe_;
  HedgeProbe hedge_probe_;
};

/// Baseline "always-on" configuration (the paper's normalisation target):
/// disks never spin down. The storage system starts disks in Idle when this
/// policy is selected, so they burn P_I for the whole run.
class AlwaysOnPolicy final : public PowerPolicy {
 public:
  std::string name() const override { return "always-on"; }
};

}  // namespace eas::power
