// Disk power-management policies.
//
// A PowerPolicy owns the *spin-down* decision (and, for the oracle, advance
// spin-ups). Spin-up on request arrival is the disk's own job — hardware
// wakes when addressed — so policies only react to idle/activity
// notifications from the storage system.
#pragma once

#include <string>
#include <vector>

#include "disk/disk.hpp"
#include "sim/simulator.hpp"

namespace eas::power {

class PowerPolicy {
 public:
  virtual ~PowerPolicy() = default;

  virtual std::string name() const = 0;

  /// Called once before any request is injected. `disks` outlive the run.
  virtual void on_run_start(sim::Simulator& sim,
                            const std::vector<disk::Disk*>& disks) {
    (void)sim;
    (void)disks;
  }

  /// Called when `d` transitions into Idle (queue drained / woke up empty).
  virtual void on_disk_idle(sim::Simulator& sim, disk::Disk& d) {
    (void)sim;
    (void)d;
  }

  /// Called when a request is about to be submitted to `d`; policies cancel
  /// any pending spin-down decision for the disk here.
  virtual void on_disk_activity(sim::Simulator& sim, disk::Disk& d) {
    (void)sim;
    (void)d;
  }
};

/// Baseline "always-on" configuration (the paper's normalisation target):
/// disks never spin down. The storage system starts disks in Idle when this
/// policy is selected, so they burn P_I for the whole run.
class AlwaysOnPolicy final : public PowerPolicy {
 public:
  std::string name() const override { return "always-on"; }
};

}  // namespace eas::power
