// 2CPM: the 2-competitive fixed-threshold power management scheme.
//
// A disk that stays idle for the breakeven time T_B = E_up/down / P_I is spun
// down (Irani et al.); this is provably within 2x of the offline-optimal
// energy for any arrival sequence. The threshold can be overridden (as a
// multiple of breakeven) for the power-policy ablation bench.
#pragma once

#include <unordered_map>

#include "power/policy.hpp"

namespace eas::power {

class FixedThresholdPolicy final : public PowerPolicy {
 public:
  /// @param threshold_seconds  idleness threshold; negative means "use each
  ///        disk's own breakeven time" (the 2CPM setting).
  explicit FixedThresholdPolicy(double threshold_seconds = -1.0)
      : threshold_(threshold_seconds) {}

  std::string name() const override;

  void on_disk_idle(sim::Simulator& sim, disk::Disk& d) override;
  void on_disk_activity(sim::Simulator& sim, disk::Disk& d) override;

  double threshold_for(const disk::Disk& d) const;

 private:
  double threshold_;
  std::unordered_map<DiskId, sim::EventHandle> timers_;
};

}  // namespace eas::power
