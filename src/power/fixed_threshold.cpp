#include "power/fixed_threshold.hpp"

#include <cmath>
#include <sstream>

#include "obs/trace_recorder.hpp"

namespace eas::power {

std::string FixedThresholdPolicy::name() const {
  if (threshold_ < 0.0) return "2cpm";
  std::ostringstream os;
  os << "threshold(" << threshold_ << "s)";
  return os.str();
}

double FixedThresholdPolicy::threshold_for(const disk::Disk& d) const {
  return threshold_ < 0.0 ? d.power_params().breakeven_seconds() : threshold_;
}

void FixedThresholdPolicy::on_disk_idle(sim::Simulator& sim, disk::Disk& d) {
  // A disk pinned by an in-progress rebuild stays spinning; the pin release
  // re-enters via on_disk_idle when the rebuild's last write completes.
  if (spin_down_blocked(d.id())) return;
  // A disk with dirty blocks awaiting destage is about to receive internal
  // writes (the cache tier piggybacks on this very idle transition);
  // arming a spin-down now would only race it. The destage's completion
  // re-enters via on_disk_idle once the group is flushed.
  if (pending_destage(d.id()) > 0) return;
  // A disk pinned by a hedged in-flight pair is about to receive (or is
  // racing) a hedge copy; spinning it down would price a full wake cycle
  // into the very tail latency the hedge exists to cut. The pin release
  // re-enters via on_disk_idle.
  if (pending_hedges(d.id()) > 0) return;
  // Replace any stale timer: the disk has begun a fresh idle period.
  auto it = timers_.find(d.id());
  if (it != timers_.end()) sim.cancel(it->second);
  EAS_OBS(sim.recorder(),
          policy_event(sim.now(), obs::Ev::kPolicyArm, d.id(),
                       static_cast<std::uint64_t>(
                           std::llround(threshold_for(d) * 1e6))));
  disk::Disk* dp = &d;
  timers_[d.id()] =
      sim.schedule_in(threshold_for(d), [this, dp] {
        // The activity hook cancels this event whenever work arrives, so the
        // disk must still be idle; the check is a cheap belt-and-braces. The
        // pin can appear between arming and firing, so it is re-checked.
        if (dp->state() == disk::DiskState::Idle &&
            dp->queued_requests() == 0 && !spin_down_blocked(dp->id()) &&
            pending_hedges(dp->id()) == 0) {
          dp->spin_down();
        }
      });
}

void FixedThresholdPolicy::on_disk_activity(sim::Simulator& sim,
                                            disk::Disk& d) {
  auto it = timers_.find(d.id());
  if (it != timers_.end()) {
    // Only report a cancel when one actually happened: the timer may have
    // already fired (disk spun down and is being woken).
    if (sim.cancel(it->second)) {
      EAS_OBS(sim.recorder(),
              policy_event(sim.now(), obs::Ev::kPolicyCancel, d.id()));
    }
    timers_.erase(it);
  }
}

}  // namespace eas::power
