// Covering-subset power management (after Leverich & Kozyrakis [16] and
// Lang & Patel [14], cited in §1 as composable with this paper's
// schedulers).
//
// A minimum set of disks that together hold at least one replica of every
// data item (computed with the greedy set-cover over the placement) is
// pinned always-on; every other disk runs the ordinary fixed-threshold
// (2CPM) policy. Availability is preserved by construction — any request
// can always be served without a spin-up — while the non-covering disks
// sleep whenever the scheduler steers load away from them.
#pragma once

#include <unordered_set>
#include <vector>

#include "placement/placement.hpp"
#include "power/fixed_threshold.hpp"

namespace eas::power {

class CoveringSubsetPolicy final : public PowerPolicy {
 public:
  /// Computes the covering subset from `placement` (greedy set cover with
  /// unit weights). `threshold_seconds` configures the 2CPM side for
  /// non-covering disks (negative = breakeven).
  explicit CoveringSubsetPolicy(const placement::PlacementMap& placement,
                                double threshold_seconds = -1.0);

  std::string name() const override;

  void on_run_start(sim::Simulator& sim,
                    const std::vector<disk::Disk*>& disks) override;
  void on_disk_idle(sim::Simulator& sim, disk::Disk& d) override;
  void on_disk_activity(sim::Simulator& sim, disk::Disk& d) override;

  /// The 2CPM delegate does the actual spin-downs, so it needs the view too.
  void set_failure_view(const fault::FailureView* fv) override {
    PowerPolicy::set_failure_view(fv);
    threshold_policy_.set_failure_view(fv);
  }

  /// Likewise for dirty-set pressure: the delegate arms the timers.
  void set_destage_probe(DestageProbe probe) override {
    PowerPolicy::set_destage_probe(probe);
    threshold_policy_.set_destage_probe(std::move(probe));
  }

  /// And for hedge pins — the delegate's timers must see them too.
  void set_hedge_probe(HedgeProbe probe) override {
    PowerPolicy::set_hedge_probe(probe);
    threshold_policy_.set_hedge_probe(std::move(probe));
  }

  bool is_covering(DiskId k) const { return covering_.contains(k); }
  std::size_t covering_size() const { return covering_.size(); }

 private:
  std::unordered_set<DiskId> covering_;
  FixedThresholdPolicy threshold_policy_;
};

}  // namespace eas::power
