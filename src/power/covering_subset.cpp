#include "power/covering_subset.hpp"

#include <sstream>

#include "graph/set_cover.hpp"

namespace eas::power {

CoveringSubsetPolicy::CoveringSubsetPolicy(
    const placement::PlacementMap& placement, double threshold_seconds)
    : threshold_policy_(threshold_seconds) {
  // Elements = data items, sets = disks, unit weights: the classic
  // covering-subset construction.
  graph::SetCoverInstance instance;
  instance.num_elements = placement.num_data();
  std::vector<DiskId> disk_of_set;
  std::vector<std::vector<std::size_t>> per_disk(placement.num_disks());
  for (DataId b = 0; b < placement.num_data(); ++b) {
    for (DiskId k : placement.locations(b)) per_disk[k].push_back(b);
  }
  for (DiskId k = 0; k < placement.num_disks(); ++k) {
    if (per_disk[k].empty()) continue;
    graph::SetCoverInstance::Set s;
    s.weight = 1.0;
    s.elements = std::move(per_disk[k]);
    instance.sets.push_back(std::move(s));
    disk_of_set.push_back(k);
  }
  const auto cover = graph::greedy_weighted_set_cover(instance);
  for (std::size_t s : cover.chosen_sets) covering_.insert(disk_of_set[s]);
}

std::string CoveringSubsetPolicy::name() const {
  std::ostringstream os;
  os << "covering-subset(" << covering_.size() << " pinned)";
  return os.str();
}

void CoveringSubsetPolicy::on_run_start(
    sim::Simulator& sim, const std::vector<disk::Disk*>& disks) {
  // The covering disks must be available from the start: wake them now.
  for (disk::Disk* d : disks) {
    if (covering_.contains(d->id()) &&
        d->state() == disk::DiskState::Standby) {
      d->spin_up();
    }
  }
  threshold_policy_.on_run_start(sim, disks);
}

void CoveringSubsetPolicy::on_disk_idle(sim::Simulator& sim, disk::Disk& d) {
  if (covering_.contains(d.id())) return;  // pinned: never spins down
  threshold_policy_.on_disk_idle(sim, d);
}

void CoveringSubsetPolicy::on_disk_activity(sim::Simulator& sim,
                                            disk::Disk& d) {
  if (covering_.contains(d.id())) return;
  threshold_policy_.on_disk_activity(sim, d);
}

}  // namespace eas::power
