#include "power/oracle.hpp"

#include <algorithm>

namespace eas::power {

OraclePolicy::OraclePolicy(
    std::vector<std::vector<sim::SimTime>> arrivals_by_disk,
    double pre_spin_margin)
    : arrivals_(std::move(arrivals_by_disk)),
      pre_spin_margin_(pre_spin_margin),
      cursor_(arrivals_.size(), 0) {
  EAS_REQUIRE(pre_spin_margin_ >= 0.0);
  for (const auto& v : arrivals_) {
    EAS_REQUIRE_MSG(std::is_sorted(v.begin(), v.end()),
                  "oracle arrivals must be sorted per disk");
  }
}

sim::SimTime OraclePolicy::next_arrival(DiskId k, sim::SimTime now) {
  if (k >= arrivals_.size()) return sim::kTimeInfinity;
  const auto& v = arrivals_[k];
  std::size_t& c = cursor_[k];
  while (c < v.size() && v[c] <= now) ++c;
  return c < v.size() ? v[c] : sim::kTimeInfinity;
}

void OraclePolicy::on_run_start(sim::Simulator& sim,
                                const std::vector<disk::Disk*>& disks) {
  for (disk::Disk* d : disks) {
    const DiskId k = d->id();
    if (k >= arrivals_.size() || arrivals_[k].empty()) continue;
    const double t_up = d->power_params().spinup_seconds;
    const sim::SimTime wake =
        std::max(0.0, arrivals_[k].front() - t_up - pre_spin_margin_);
    sim.schedule_at(wake, [d] {
      if (d->state() == disk::DiskState::Standby) d->spin_up();
    });
  }
}

void OraclePolicy::on_disk_idle(sim::Simulator& sim, disk::Disk& d) {
  const auto& p = d.power_params();
  const sim::SimTime now = sim.now();
  const sim::SimTime next = next_arrival(d.id(), now);

  // Lemma 1 cases II/III: the successor lands inside the saving window, so
  // the profitable move is to stay idle until it arrives.
  if (next - now < p.saving_window_seconds()) return;

  // Rebuild pin: the disk must stay spinning whatever the oracle says.
  if (spin_down_blocked(d.id())) return;

  // Case I: wait out the breakeven time, spin down, and (if there is a
  // successor) spin back up just in time for it.
  auto it = spin_down_timers_.find(d.id());
  if (it != spin_down_timers_.end()) sim.cancel(it->second);
  disk::Disk* dp = &d;
  spin_down_timers_[d.id()] =
      sim.schedule_in(p.breakeven_seconds(), [this, dp] {
        if (dp->state() == disk::DiskState::Idle &&
            dp->queued_requests() == 0 && !spin_down_blocked(dp->id())) {
          dp->spin_down();
        }
      });
  if (next < sim::kTimeInfinity) {
    const sim::SimTime wake =
        std::max(now, next - p.spinup_seconds - pre_spin_margin_);
    sim.schedule_at(wake, [dp] { dp->spin_up(); });
  }
}

void OraclePolicy::on_disk_activity(sim::Simulator& sim, disk::Disk& d) {
  auto it = spin_down_timers_.find(d.id());
  if (it != spin_down_timers_.end()) {
    sim.cancel(it->second);
    spin_down_timers_.erase(it);
  }
}

}  // namespace eas::power
