#include "core/predictive_scheduler.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "core/cost_scheduler.hpp"
#include "util/check.hpp"

namespace eas::core {

PredictiveCostScheduler::PredictiveCostScheduler(PredictiveParams params)
    : params_(params) {
  EAS_REQUIRE_MSG(params_.gamma >= 0.0, "gamma must be non-negative");
  EAS_REQUIRE_MSG(params_.rate_halflife_seconds > 0.0,
                "rate half-life must be positive");
  decay_lambda_ = std::log(2.0) / params_.rate_halflife_seconds;
}

std::string PredictiveCostScheduler::name() const {
  std::ostringstream os;
  os << "predictive(a=" << params_.cost.alpha << ",b=" << params_.cost.beta
     << ",g=" << params_.gamma << ")";
  return os.str();
}

double PredictiveCostScheduler::estimated_rate(DiskId k, double now) const {
  if (k >= rates_.size()) return 0.0;
  const RateState& s = rates_[k];
  EAS_DCHECK(now >= s.last_update);
  return s.value * std::exp(-decay_lambda_ * (now - s.last_update));
}

void PredictiveCostScheduler::note_dispatch(DiskId k, double now) {
  if (k >= rates_.size()) rates_.resize(k + 1);
  RateState& s = rates_[k];
  // Decay to `now`, then add one impulse of weight lambda: a steady stream
  // of r requests/second then converges to an estimate of r
  // (E[sum lambda*e^(-lambda*dt)] = lambda * r / lambda = r).
  s.value = s.value * std::exp(-decay_lambda_ * (now - s.last_update)) +
            decay_lambda_;
  s.last_update = now;
}

DiskId PredictiveCostScheduler::pick(const disk::Request& r,
                                     const SystemView& view) {
  const auto& locs = view.placement().locations(r.data);
  EAS_DCHECK(!locs.empty());
  const fault::FailureView* fv = view.degraded() ? view.failure_view() : nullptr;
  const double now = view.now();
  double best_cost = std::numeric_limits<double>::infinity();
  DiskId best = kInvalidDisk;
  for (DiskId k : locs) {
    if (fv != nullptr && !fv->replica_readable(r.data, k)) continue;
    const double base = composite_cost(view.snapshot(k), now,
                                       view.power_params(), params_.cost);
    // Backpressure penalty first (identity without a reliability tier),
    // then the predicted-load discount (gamma) and the same dirty-set
    // pressure discount the plain cost scheduler applies (see
    // cost_scheduler.hpp); all are exactly 1 when that state is absent.
    const double pressured =
        view.backpressured(k) ? base * kBackpressurePenalty : base;
    const double discount =
        (1.0 + params_.gamma * estimated_rate(k, now)) *
        (1.0 + kDestagePressureWeight *
                   static_cast<double>(view.pending_destage(k)));
    const double c = pressured / discount;
    if (c < best_cost) {
      best_cost = c;
      best = k;
    }
  }
  if (best == kInvalidDisk) return kInvalidDisk;  // all replicas unreadable
  note_dispatch(best, now);
  return best;
}

}  // namespace eas::core
