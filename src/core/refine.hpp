// Local-search refinement of offline assignments.
//
// §5.1 of the paper notes that "WSC and MWIS could achieve even lower energy
// by using more sophisticated set cover and independent set algorithms".
// This pass is that sophistication for the offline side: a hill-climb that
// repeatedly moves single requests between replica locations whenever the
// move lowers the schedule's Lemma-1 energy.
//
// Why single-request deltas are exact: under the offline evaluator, total
// energy equals the sum of per-request consumptions plus standby floor —
// each used disk's initial spin-up is exactly offset by the final request's
// ceiling charge — so moving one request only perturbs the consumptions of
// its old/new disk neighbours, which is O(replication factor · log n) to
// evaluate.
#pragma once

#include "core/scheduler.hpp"

namespace eas::core {

struct RefineStats {
  std::size_t passes = 0;
  std::size_t moves = 0;       ///< single-request relocations
  std::size_t pair_moves = 0;  ///< adjacent-pair relocations
  double energy_delta = 0.0;   ///< total (negative = improvement)
};

/// Greedily reassigns requests to lower-energy replica locations, sweeping
/// the trace in time order until a pass makes no move or `max_passes` is
/// reached. Each pass combines single-request moves with adjacent-pair
/// moves: relocating two consecutive requests of one disk together escapes
/// the plateaus where the first single move alone is energy-neutral (e.g.
/// migrating an isolated saving pair onto an otherwise-unused replica).
/// The assignment is modified in place and stays valid.
RefineStats refine_offline_assignment(OfflineAssignment& assignment,
                                      const trace::Trace& trace,
                                      const placement::PlacementMap& placement,
                                      const disk::DiskPowerParams& power,
                                      std::size_t max_passes = 3);

}  // namespace eas::core
