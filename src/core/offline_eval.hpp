// Closed-form evaluation of an offline schedule (Lemma 1).
//
// Under the §2.2 offline assumptions (disks pre-spun, 2CPM-shaped
// spin-downs) a disk's entire power timeline is determined by the arrival
// times assigned to it, so energy, state residency and spin counts can be
// computed analytically — no event simulation. This is the second,
// independent implementation of the disk power physics; tests cross-validate
// it against a DES run under OraclePolicy.
//
// Accounting conventions:
//  * Active (I/O) time is treated as zero, as in the paper's analysis where
//    millisecond transfers vanish next to second-scale power transitions.
//  * The timeline is clamped to [0, horizon]; a first arrival earlier than
//    T_up simply clips its pre-spin-up (the paper's examples start serving
//    at t=0 regardless).
#pragma once

#include <cstdint>
#include <vector>

#include "core/scheduler.hpp"
#include "disk/disk.hpp"

namespace eas::core {

struct OfflineReport {
  double horizon = 0.0;
  std::vector<disk::DiskStats> disk_stats;
  /// Lemma 1 energy consumption per request (index-aligned with the trace).
  std::vector<double> request_energy;

  double total_energy() const;
  double total_saving(const disk::DiskPowerParams& p) const;
  std::uint64_t total_spin_ups() const;
  std::uint64_t total_spin_downs() const;
  /// Energy of the always-on configuration over the same horizon.
  double always_on_energy(const disk::DiskPowerParams& p) const;
};

/// Reusable scratch for evaluate_offline: the per-disk request buckets
/// dominate its transient allocations, and schedulers evaluating candidate
/// assignments in a loop (the kBest seed comparison, ablation sweeps) reuse
/// them at high-water capacity.
struct OfflineEvalWorkspace {
  std::vector<std::vector<std::uint32_t>> per_disk;
};

/// Evaluates `assignment` analytically. `horizon` < 0 selects the natural
/// horizon: last arrival + T_B + T_down (every disk settled back to
/// standby).
OfflineReport evaluate_offline(const trace::Trace& trace,
                               const OfflineAssignment& assignment,
                               DiskId num_disks,
                               const disk::DiskPowerParams& power,
                               double horizon = -1.0);

/// As above, reusing `ws` buffers across calls.
OfflineReport evaluate_offline(const trace::Trace& trace,
                               const OfflineAssignment& assignment,
                               DiskId num_disks,
                               const disk::DiskPowerParams& power,
                               OfflineEvalWorkspace& ws,
                               double horizon = -1.0);

}  // namespace eas::core
