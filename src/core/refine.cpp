#include "core/refine.hpp"

#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "core/energy_model.hpp"
#include "util/check.hpp"

namespace eas::core {

namespace {

/// (time, request index): a strict total order even under timestamp ties.
using Key = std::pair<double, std::uint32_t>;

/// Lemma-1 consumption between a request at `ti` and its successor at `tj`;
/// tj = +inf denotes "no successor" and yields the ceiling.
double cons(double ti, double tj, const disk::DiskPowerParams& p) {
  return pairwise_energy_consumption(ti, tj, p);
}

}  // namespace

RefineStats refine_offline_assignment(OfflineAssignment& assignment,
                                      const trace::Trace& trace,
                                      const placement::PlacementMap& placement,
                                      const disk::DiskPowerParams& power,
                                      std::size_t max_passes) {
  assignment.validate(trace, placement);
  const double inf = std::numeric_limits<double>::infinity();

  std::vector<std::set<Key>> on_disk(placement.num_disks());
  for (std::uint32_t r = 0; r < trace.size(); ++r) {
    on_disk[assignment.disk_of_request[r]].insert({trace[r].time, r});
  }

  // Consumption of the gap around an iterator position, treating missing
  // neighbours as "no successor" / "no predecessor".
  auto succ_time = [&](const std::set<Key>& s,
                       std::set<Key>::iterator it) {
    auto nx = std::next(it);
    return nx == s.end() ? inf : nx->first;
  };

  RefineStats stats;

  // Adjacent-pair move: relocate request r (at t1) together with the disk's
  // immediately following request s (at t2) onto a destination disk that
  // stores both and has no element inside (t1, t2). The shared cons(t1,t2)
  // term cancels between removal and insertion.
  auto try_pair_move = [&](std::uint32_t r) -> bool {
    const double t1 = trace[r].time;
    const DiskId from = assignment.disk_of_request[r];
    auto& src = on_disk[from];
    const auto it = src.find({t1, r});
    EAS_DCHECK(it != src.end());
    const auto it_s = std::next(it);
    if (it_s == src.end()) return false;
    const auto [t2, s] = *it_s;

    // Source-side delta (minus the cancelling cons(t1, t2) term).
    const double t_q = succ_time(src, it_s);
    double delta_remove = -cons(t2, t_q, power);
    if (it != src.begin()) {
      const double t_p = std::prev(it)->first;
      delta_remove += cons(t_p, t_q, power) - cons(t_p, t1, power);
    }

    double best_delta = -1e-9;
    DiskId best_disk = from;
    for (DiskId k : placement.locations(trace[r].data)) {
      if (k == from || !placement.stores(trace[s].data, k)) continue;
      auto& dst = on_disk[k];
      const auto pos1 = dst.lower_bound({t1, r});
      // Require the destination gap to be empty so both insertions stay
      // adjacent and the delta stays closed-form.
      if (pos1 != dst.end() && pos1->first < t2) continue;
      const double t_next = pos1 == dst.end() ? inf : pos1->first;
      double delta_insert = cons(t2, t_next, power);
      if (pos1 != dst.begin()) {
        const double t_p = std::prev(pos1)->first;
        delta_insert += cons(t_p, t1, power) - cons(t_p, t_next, power);
      }
      const double delta = delta_remove + delta_insert;
      if (delta < best_delta) {
        best_delta = delta;
        best_disk = k;
      }
    }
    if (best_disk == from) return false;
    src.erase(src.find({t2, s}));
    src.erase(src.find({t1, r}));
    on_disk[best_disk].insert({t1, r});
    on_disk[best_disk].insert({t2, s});
    assignment.disk_of_request[r] = best_disk;
    assignment.disk_of_request[s] = best_disk;
    stats.energy_delta += best_delta;
    return true;
  };

  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    std::size_t moves_this_pass = 0;
    for (std::uint32_t r = 0; r < trace.size(); ++r) {
      if (try_pair_move(r)) {
        ++stats.pair_moves;
        ++moves_this_pass;
      }
    }
    for (std::uint32_t r = 0; r < trace.size(); ++r) {
      const double t = trace[r].time;
      const auto& locs = placement.locations(trace[r].data);
      if (locs.size() < 2) continue;
      const DiskId from = assignment.disk_of_request[r];
      auto& src = on_disk[from];
      const auto it = src.find({t, r});
      EAS_DCHECK(it != src.end());

      // Cost change on the source disk if r leaves.
      const double t_next_src = succ_time(src, it);
      double delta_remove = -cons(t, t_next_src, power);
      if (it != src.begin()) {
        const double t_prev = std::prev(it)->first;
        delta_remove +=
            cons(t_prev, t_next_src, power) - cons(t_prev, t, power);
      }

      double best_delta = -1e-9;  // strict improvement only
      DiskId best_disk = from;
      for (DiskId k : locs) {
        if (k == from) continue;
        auto& dst = on_disk[k];
        const auto pos = dst.lower_bound({t, r});
        const double t_next = pos == dst.end() ? inf : pos->first;
        double delta_insert = cons(t, t_next, power);
        if (pos != dst.begin()) {
          const double t_prev = std::prev(pos)->first;
          delta_insert +=
              cons(t_prev, t, power) - cons(t_prev, t_next, power);
        }
        const double delta = delta_remove + delta_insert;
        if (delta < best_delta) {
          best_delta = delta;
          best_disk = k;
        }
      }
      if (best_disk != from) {
        src.erase(it);
        on_disk[best_disk].insert({t, r});
        assignment.disk_of_request[r] = best_disk;
        ++moves_this_pass;
        stats.energy_delta += best_delta;
      }
    }
    ++stats.passes;
    stats.moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }
  assignment.validate(trace, placement);
  return stats;
}

}  // namespace eas::core
