#include "core/basic_schedulers.hpp"

namespace eas::core {

DiskId StaticScheduler::pick(const disk::Request& r, const SystemView& view) {
  const DiskId home = view.placement().original(r.data);
  if (view.degraded()) {
    const fault::FailureView& fv = *view.failure_view();
    if (!fv.replica_readable(r.data, home)) {
      return fv.first_live(view.placement(), r.data);  // may be kInvalidDisk
    }
  }
  return home;
}

OfflineAssignment StaticScheduler::schedule(
    const trace::Trace& trace, const placement::PlacementMap& placement,
    const disk::DiskPowerParams& /*power*/) {
  OfflineAssignment a;
  a.disk_of_request.reserve(trace.size());
  for (const auto& rec : trace.records()) {
    a.disk_of_request.push_back(placement.original(rec.data));
  }
  return a;
}

DiskId RandomScheduler::pick(const disk::Request& r, const SystemView& view) {
  if (view.degraded()) {
    // Draw among live replicas only. The RNG is consumed iff a pick happens,
    // so the stream stays a pure function of the decision sequence.
    if (!view.failure_view()->live_locations(view.placement(), r.data,
                                             live_ws_)) {
      return kInvalidDisk;
    }
    return live_ws_[rng_.next_below(live_ws_.size())];
  }
  const auto& locs = view.placement().locations(r.data);
  return locs[rng_.next_below(locs.size())];
}

OfflineAssignment RandomScheduler::schedule(
    const trace::Trace& trace, const placement::PlacementMap& placement,
    const disk::DiskPowerParams& /*power*/) {
  OfflineAssignment a;
  a.disk_of_request.reserve(trace.size());
  for (const auto& rec : trace.records()) {
    const auto& locs = placement.locations(rec.data);
    a.disk_of_request.push_back(locs[rng_.next_below(locs.size())]);
  }
  return a;
}

}  // namespace eas::core
