#include "core/basic_schedulers.hpp"

namespace eas::core {

DiskId StaticScheduler::pick(const disk::Request& r, const SystemView& view) {
  return view.placement().original(r.data);
}

OfflineAssignment StaticScheduler::schedule(
    const trace::Trace& trace, const placement::PlacementMap& placement,
    const disk::DiskPowerParams& /*power*/) {
  OfflineAssignment a;
  a.disk_of_request.reserve(trace.size());
  for (const auto& rec : trace.records()) {
    a.disk_of_request.push_back(placement.original(rec.data));
  }
  return a;
}

DiskId RandomScheduler::pick(const disk::Request& r, const SystemView& view) {
  const auto& locs = view.placement().locations(r.data);
  return locs[rng_.next_below(locs.size())];
}

OfflineAssignment RandomScheduler::schedule(
    const trace::Trace& trace, const placement::PlacementMap& placement,
    const disk::DiskPowerParams& /*power*/) {
  OfflineAssignment a;
  a.disk_of_request.reserve(trace.size());
  for (const auto& rec : trace.records()) {
    const auto& locs = placement.locations(rec.data);
    a.disk_of_request.push_back(locs[rng_.next_below(locs.size())]);
  }
  return a;
}

}  // namespace eas::core
