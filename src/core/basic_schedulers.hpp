// The two energy-oblivious baselines of §4.3.
//
//  * StaticScheduler — always sends a request to the original data location.
//  * RandomScheduler — sends a request to a uniformly random replica.
//
// Both are also offered as OfflineSchedulers (they ignore future knowledge)
// so that the offline evaluator and the MWIS schedule can be compared on an
// identical execution path.
#pragma once

#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace eas::core {

class StaticScheduler final : public OnlineScheduler, public OfflineScheduler {
 public:
  std::string name() const override { return "static"; }

  DiskId pick(const disk::Request& r, const SystemView& view) override;

  OfflineAssignment schedule(const trace::Trace& trace,
                             const placement::PlacementMap& placement,
                             const disk::DiskPowerParams& power) override;
};

class RandomScheduler final : public OnlineScheduler, public OfflineScheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed = 7) : rng_(seed) {}

  std::string name() const override { return "random"; }

  DiskId pick(const disk::Request& r, const SystemView& view) override;

  OfflineAssignment schedule(const trace::Trace& trace,
                             const placement::PlacementMap& placement,
                             const disk::DiskPowerParams& power) override;

 private:
  util::Rng rng_;
  std::vector<DiskId> live_ws_;  ///< degraded-path scratch
};

}  // namespace eas::core
