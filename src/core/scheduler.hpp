// Scheduler interfaces for the three §2.2 models.
//
// The information each interface receives enforces the paper's model at the
// type level: an OnlineScheduler sees one request and the live system state;
// a BatchScheduler sees the interval's queued requests and the live state;
// an OfflineScheduler sees the entire trace up front (and nothing live —
// its run is evaluated afterwards).
#pragma once

#include <string>
#include <vector>

#include "core/energy_model.hpp"
#include "disk/params.hpp"
#include "disk/request.hpp"
#include "fault/failure_view.hpp"
#include "placement/placement.hpp"
#include "trace/trace.hpp"
#include "util/ids.hpp"

namespace eas::core {

/// Read-only view of the running storage system offered to online/batch
/// schedulers: placement, the clock, and per-disk snapshots.
class SystemView {
 public:
  virtual ~SystemView() = default;

  virtual double now() const = 0;
  virtual const placement::PlacementMap& placement() const = 0;
  virtual DiskSnapshot snapshot(DiskId k) const = 0;
  /// Power model shared by all disks in the system.
  virtual const disk::DiskPowerParams& power_params() const = 0;
  /// Live health overlay, or nullptr in a fault-free run. Schedulers must
  /// restrict candidate replica sets to readable ones when the view exists
  /// and reports degraded(); when it is null or healthy the raw placement
  /// lists are authoritative (and the fast path keeps fault-capable runs
  /// bit-identical to fault-free ones).
  virtual const fault::FailureView* failure_view() const { return nullptr; }
  /// True when replica filtering is required right now.
  bool degraded() const {
    const fault::FailureView* fv = failure_view();
    return fv != nullptr && fv->degraded();
  }
  /// Dirty blocks buffered in the cache tier awaiting destage onto disk
  /// `k` (0 when no cache tier exists). Cost-based schedulers use this to
  /// bias replica choice toward disks with pending destage work: waking
  /// such a disk pays for the foreground read *and* flushes its dirty
  /// group on the same spin-up. Kept as a plain count so core never
  /// depends on the cache layer.
  virtual std::uint64_t pending_destage(DiskId k) const {
    (void)k;
    return 0;
  }
  /// True while the reliability tier's admission control reports disk `k`
  /// above its backpressure watermark (false when no reliability tier
  /// exists). Cost-based schedulers multiply a penalty into backpressured
  /// candidates so load drains toward disks with queue headroom; with the
  /// tier disabled this is identically false and scheduling is untouched.
  virtual bool backpressured(DiskId k) const {
    (void)k;
    return false;
  }
  DiskId num_disks() const { return placement().num_disks(); }
};

/// §2.2 online model: one request, immediate decision.
class OnlineScheduler {
 public:
  virtual ~OnlineScheduler() = default;
  virtual std::string name() const = 0;

  /// Returns the disk the request should be sent to. Must be one of the
  /// request's data locations (the runner enforces this), and a readable one
  /// when the view is degraded. Returns kInvalidDisk when no live replica of
  /// the data exists — the runner counts the request unavailable.
  virtual DiskId pick(const disk::Request& r, const SystemView& view) = 0;
};

/// §2.2 batch model: requests queue up and are assigned together every
/// scheduling interval.
class BatchScheduler {
 public:
  virtual ~BatchScheduler() = default;
  virtual std::string name() const = 0;
  virtual double batch_interval_seconds() const = 0;

  /// Returns one disk per request (same order as `batch`); each must hold
  /// the respective request's data (a readable replica when the view is
  /// degraded). An entry is kInvalidDisk when no live replica of that
  /// request's data exists — the runner counts it unavailable.
  virtual std::vector<DiskId> assign(const std::vector<disk::Request>& batch,
                                     const SystemView& view) = 0;
};

/// A complete offline assignment: disk_of_request[i] is the disk serving the
/// i-th trace record.
struct OfflineAssignment {
  std::vector<DiskId> disk_of_request;

  /// Throws InvariantError unless every request is assigned to a disk that
  /// stores its data.
  void validate(const trace::Trace& trace,
                const placement::PlacementMap& placement) const;

  /// Dispatch times grouped per disk (sorted), as OraclePolicy expects.
  std::vector<std::vector<double>> arrivals_by_disk(
      const trace::Trace& trace, DiskId num_disks) const;
};

/// §2.2 offline model: full a-priori knowledge of the request stream.
class OfflineScheduler {
 public:
  virtual ~OfflineScheduler() = default;
  virtual std::string name() const = 0;

  virtual OfflineAssignment schedule(const trace::Trace& trace,
                                     const placement::PlacementMap& placement,
                                     const disk::DiskPowerParams& power) = 0;
};

}  // namespace eas::core
