#include "core/offline_eval.hpp"

#include <algorithm>

#include "core/energy_model.hpp"
#include "util/check.hpp"

namespace eas::core {

double OfflineReport::total_energy() const {
  double e = 0.0;
  for (const auto& s : disk_stats) e += s.total_joules();
  return e;
}

double OfflineReport::total_saving(const disk::DiskPowerParams& p) const {
  double saving = 0.0;
  for (double consumed : request_energy) {
    saving += p.max_request_energy() - consumed;
  }
  return saving;
}

std::uint64_t OfflineReport::total_spin_ups() const {
  std::uint64_t n = 0;
  for (const auto& s : disk_stats) n += s.spin_ups;
  return n;
}

std::uint64_t OfflineReport::total_spin_downs() const {
  std::uint64_t n = 0;
  for (const auto& s : disk_stats) n += s.spin_downs;
  return n;
}

double OfflineReport::always_on_energy(const disk::DiskPowerParams& p) const {
  return static_cast<double>(disk_stats.size()) * p.idle_watts * horizon;
}

namespace {

/// Adds the [start, end) residency of `state` to `stats`, clamped to
/// [0, horizon].
void add_interval(disk::DiskStats& stats, disk::DiskState state, double start,
                  double end, double horizon, double watts) {
  start = std::max(0.0, start);
  end = std::min(end, horizon);
  if (end <= start) return;
  const double dt = end - start;
  stats.seconds_in_state[static_cast<int>(state)] += dt;
  stats.joules_in_state[static_cast<int>(state)] += dt * watts;
}

}  // namespace

OfflineReport evaluate_offline(const trace::Trace& trace,
                               const OfflineAssignment& assignment,
                               DiskId num_disks,
                               const disk::DiskPowerParams& power,
                               double horizon) {
  OfflineEvalWorkspace ws;
  return evaluate_offline(trace, assignment, num_disks, power, ws, horizon);
}

OfflineReport evaluate_offline(const trace::Trace& trace,
                               const OfflineAssignment& assignment,
                               DiskId num_disks,
                               const disk::DiskPowerParams& power,
                               OfflineEvalWorkspace& ws, double horizon) {
  EAS_REQUIRE(assignment.disk_of_request.size() == trace.size());
  power.validate();
  const double t_b = power.breakeven_seconds();
  const double t_up = power.spinup_seconds;
  const double t_down = power.spindown_seconds;
  const double window = power.saving_window_seconds();

  if (horizon < 0.0) {
    horizon = (trace.empty() ? 0.0 : trace.end_time()) + t_b + t_down;
  }

  OfflineReport report;
  report.horizon = horizon;
  report.disk_stats.assign(num_disks, {});
  report.request_energy.assign(trace.size(), 0.0);

  // Group request indices per disk (trace order == time order), reusing the
  // workspace buckets' capacity across evaluations.
  auto& per_disk = ws.per_disk;
  if (per_disk.size() < num_disks) per_disk.resize(num_disks);
  for (auto& bucket : per_disk) bucket.clear();
  for (std::uint32_t r = 0; r < trace.size(); ++r) {
    const DiskId k = assignment.disk_of_request[r];
    EAS_REQUIRE_MSG(k < num_disks, "assignment names unknown disk " << k);
    per_disk[k].push_back(r);
  }

  for (DiskId k = 0; k < num_disks; ++k) {
    disk::DiskStats& st = report.disk_stats[k];
    const auto& reqs = per_disk[k];
    if (reqs.empty()) {
      add_interval(st, disk::DiskState::Standby, 0.0, horizon, horizon,
                   power.standby_watts);
      continue;
    }

    // Initial stretch: standby, then pre-spin-up finishing at the first
    // arrival (clipped if the trace starts too early).
    const double t0 = trace[reqs.front()].time;
    add_interval(st, disk::DiskState::Standby, 0.0, t0 - t_up, horizon,
                 power.standby_watts);
    add_interval(st, disk::DiskState::SpinningUp, t0 - t_up, t0, horizon,
                 power.spinup_watts);
    ++st.spin_ups;

    for (std::size_t p = 0; p < reqs.size(); ++p) {
      const double t_i = trace[reqs[p]].time;
      ++st.requests_served;
      const bool last = p + 1 == reqs.size();
      const double t_next = last ? sim::kTimeInfinity : trace[reqs[p + 1]].time;
      const double gap = t_next - t_i;

      if (!last && gap < window) {
        // Lemma 1 cases II/III: stay idle straight through to the successor.
        add_interval(st, disk::DiskState::Idle, t_i, t_next, horizon,
                     power.idle_watts);
        report.request_energy[reqs[p]] =
            pairwise_energy_consumption(t_i, t_next, power);
        continue;
      }

      // Case I (and the tail after the final request): breakeven idle, spin
      // down, standby until the next pre-spin-up (or the horizon).
      add_interval(st, disk::DiskState::Idle, t_i, t_i + t_b, horizon,
                   power.idle_watts);
      add_interval(st, disk::DiskState::SpinningDown, t_i + t_b,
                   t_i + t_b + t_down, horizon, power.spindown_watts);
      ++st.spin_downs;
      const double standby_end = last ? horizon : t_next - t_up;
      add_interval(st, disk::DiskState::Standby, t_i + t_b + t_down,
                   standby_end, horizon, power.standby_watts);
      if (!last) {
        add_interval(st, disk::DiskState::SpinningUp, t_next - t_up, t_next,
                     horizon, power.spinup_watts);
        ++st.spin_ups;
        report.request_energy[reqs[p]] = power.max_request_energy();
      } else {
        // The paper's convention: the final request on a disk is charged the
        // full ceiling (its cycle completes "off the books").
        report.request_energy[reqs[p]] = power.max_request_energy();
      }
    }
  }
  return report;
}

}  // namespace eas::core
