// The paper's energy accounting: Eq. 3 (pairwise energy saving X(i,j,k)),
// Eq. 5 (marginal disk energy E(d_k)) and Eq. 6 (composite cost C(d_k)).
//
// Conventions (§3.1.1): a request's energy consumption is the energy its
// scheduled disk burns from the request's service time until the successor
// request arrives on that disk; its energy *saving* is the per-request
// ceiling E_up + E_down + T_B·P_I minus that consumption. All three worked
// cases of Lemma 1 collapse into the closed form implemented here.
#pragma once

#include <cstddef>

#include "disk/disk.hpp"
#include "disk/params.hpp"
#include "util/ids.hpp"

namespace eas::core {

/// Eq. 3: energy saving X(i,j,k) when request at time `ti` is scheduled on a
/// disk whose next request arrives at `tj` (>= ti).
///
///   X = E_up + E_down + (T_B - (tj - ti)) * P_I   if tj - ti < T_B+T_up+T_down
///   X = 0                                          otherwise
///
/// The value is clamped at 0: the paper's footnote 4 notes X >= 0 whenever
/// spin power >= idle power, and clamping keeps degenerate power models safe.
double pairwise_energy_saving(double ti, double tj,
                              const disk::DiskPowerParams& p);

/// Lemma 1 counterpart: the energy *consumed* by a request whose successor
/// arrives dt seconds later (the ceiling minus the saving).
double pairwise_energy_consumption(double ti, double tj,
                                   const disk::DiskPowerParams& p);

/// What a scheduler may know about one disk at decision time — exactly the
/// §2.2 online information model: power state, queue depth and the time the
/// disk last received a request (T_last of Eq. 5).
struct DiskSnapshot {
  disk::DiskState state = disk::DiskState::Standby;
  double state_since = 0.0;
  /// T_last; negative if the disk has not received any request yet.
  double last_request_time = -1.0;
  std::size_t queued_requests = 0;
};

/// Takes a consistent snapshot of a live disk.
DiskSnapshot snapshot_of(const disk::Disk& d);

/// Eq. 5: the additional energy E(d_k) incurred by routing a request to the
/// disk right now:
///   active / spin-up  -> 0                 (rides on already-sunk energy)
///   standby/spin-down -> E_up/down + T_B·P_I   (a full wake cycle)
///   idle              -> (T_now - T_last)·P_I  (idle window extension)
/// For an idle disk that has never served a request, the start of the idle
/// period stands in for T_last.
double marginal_energy_cost(const DiskSnapshot& s, double now,
                            const disk::DiskPowerParams& p);

/// Eq. 6/7 parameters. alpha = 1 optimises energy only; alpha = 0 response
/// time only; beta scales joules against queue depth. The paper settles on
/// (0.2, 100) as the balanced operating point (Appendix A.2).
struct CostParams {
  double alpha = 0.2;
  double beta = 100.0;
};

/// Eq. 6: C(d_k) = E(d_k)·alpha/beta + P(d_k)·(1-alpha), with P(d_k) the
/// disk's current queue depth (Eq. 7).
double composite_cost(const DiskSnapshot& s, double now,
                      const disk::DiskPowerParams& p, const CostParams& cp);

}  // namespace eas::core
