// The §3.2 weighted-set-cover batch scheduler.
//
// Requests queue for one scheduling interval (0.1 s in the paper) and the
// whole batch is assigned at once: elements are the queued requests, sets
// are candidate disks, and a set's weight is what waking/extending that disk
// costs. Theorem 2 proves minimum-weight cover == minimum-energy batch when
// pure Eq. 5 weights are used; §4.3 runs it with the Heuristic's composite
// cost function instead, so both weight modes are provided.
#pragma once

#include <cstdint>

#include "core/scheduler.hpp"
#include "graph/set_cover.hpp"

namespace eas::core {

class WscBatchScheduler final : public BatchScheduler {
 public:
  enum class WeightMode {
    kCompositeCost,  ///< Eq. 6 cost (the paper's §4.3 configuration)
    kPureEnergy,     ///< Eq. 5 energy only (the Theorem 2 reduction)
  };

  explicit WscBatchScheduler(double interval_seconds = 0.1,
                             CostParams cost = {},
                             WeightMode mode = WeightMode::kCompositeCost)
      : interval_(interval_seconds), cost_(cost), mode_(mode) {
    EAS_REQUIRE_MSG(interval_ > 0.0, "batch interval must be positive");
  }

  std::string name() const override;
  double batch_interval_seconds() const override { return interval_; }

  std::vector<DiskId> assign(const std::vector<disk::Request>& batch,
                             const SystemView& view) override;

  /// Builds the weighted-set-cover instance for a batch (exposed so tests
  /// and the greedy-vs-exact ablation can inspect/solve it directly).
  /// `candidate_disks` receives the disk id behind each instance set.
  graph::SetCoverInstance build_instance(
      const std::vector<disk::Request>& batch, const SystemView& view,
      std::vector<DiskId>& candidate_disks) const {
    return build_instance_into(batch, view, candidate_disks);  // copies
  }

 private:
  /// Fills the reusable workspace instance and returns a reference to it.
  /// The reference stays valid until the next build_instance_into call; the
  /// hot path (assign) solves it before that can happen.
  const graph::SetCoverInstance& build_instance_into(
      const std::vector<disk::Request>& batch, const SystemView& view,
      std::vector<DiskId>& candidate_disks) const;

  double interval_;
  CostParams cost_;
  WeightMode mode_;

  // Scratch reused across batches: the scheduler runs one assign() per
  // scheduling interval (0.1 s of simulated time), so in steady state a
  // batch allocates nothing beyond the returned assignment vector.
  /// Dense DiskId -> set-index map; entries are restored to the sentinel
  /// after every build, so only touched disks cost anything per batch.
  mutable std::vector<std::uint32_t> set_of_disk_;
  /// Workspace instance handed out by build_instance_into.
  mutable graph::SetCoverInstance inst_ws_;
  /// Element vectors retired from previous instances, kept to preserve
  /// their capacity for the next build.
  mutable std::vector<std::vector<std::size_t>> spare_elements_;
  mutable graph::SetCoverWorkspace cover_ws_;
  std::vector<DiskId> candidates_ws_;
  /// Instance element -> batch index. Identity on the healthy path; under a
  /// degraded view, requests with no readable replica are skipped so the
  /// set-cover universe stays feasible.
  mutable std::vector<std::size_t> elem_req_;
};

}  // namespace eas::core
