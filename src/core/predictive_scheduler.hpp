// Prediction-augmented online scheduler (§3.3's suggested extension).
//
// "A prediction technique could be used to estimate the access probability
// of a disk and assign lower cost to a more frequently used disk." This
// scheduler implements that idea: it tracks an exponentially-weighted
// moving average of each disk's request rate and discounts the Eq. 6 cost
// of disks that are likely to be hit again soon anyway — concentrating load
// on disks whose idleness windows would be cut short regardless, and
// keeping genuinely cold disks asleep.
//
//   C'(d) = C(d) · (1 + gamma · rate(d))^-1
//
// gamma = 0 reduces exactly to CostFunctionScheduler. The rate estimate
// decays with time constant `rate_halflife_seconds` and is updated from the
// scheduler's own dispatch decisions (no extra instrumentation needed).
#pragma once

#include <vector>

#include "core/scheduler.hpp"

namespace eas::core {

struct PredictiveParams {
  CostParams cost{};
  /// Strength of the popularity discount; 0 disables prediction.
  double gamma = 1.0;
  /// Half-life of the per-disk rate EWMA, seconds.
  double rate_halflife_seconds = 60.0;
};

class PredictiveCostScheduler final : public OnlineScheduler {
 public:
  explicit PredictiveCostScheduler(PredictiveParams params = {});

  std::string name() const override;
  const PredictiveParams& params() const { return params_; }

  DiskId pick(const disk::Request& r, const SystemView& view) override;

  /// Current smoothed request rate estimate (requests/second) for disk k;
  /// exposed for tests and diagnostics.
  double estimated_rate(DiskId k, double now) const;

 private:
  void note_dispatch(DiskId k, double now);

  PredictiveParams params_;
  double decay_lambda_;  ///< ln 2 / half-life
  // Lazily grown per-disk EWMA state: value at `last_update` time.
  struct RateState {
    double value = 0.0;
    double last_update = 0.0;
  };
  mutable std::vector<RateState> rates_;
};

}  // namespace eas::core
