// The §3.1 MWIS offline scheduler.
//
// Pipeline (Fig 4): build the conflict graph over X(i,j,k) opportunities,
// solve maximum-weight independent set, then read the schedule off the
// selected nodes (request i and its successor j both go to disk k). Requests
// that appear in no selected node cannot save energy anywhere and default to
// their original location (Step 4's "any of its data locations").
//
// Solvers: GWMIN (the paper's choice, [22]), GWMIN2, or exact
// branch-and-bound for small instances.
#pragma once

#include <cstdint>
#include <vector>

#include "core/conflict_graph.hpp"
#include "core/offline_eval.hpp"
#include "core/scheduler.hpp"

namespace eas::core {

struct MwisOptions {
  enum class Algorithm { kGwmin, kGwmin2, kExact };
  Algorithm algorithm = Algorithm::kGwmin;
  ConflictGraphOptions graph;
  /// Safety bound for the exact solver.
  std::size_t exact_vertex_limit = 48;
  /// Local-search passes applied to the derived assignment (see refine.hpp);
  /// 0 reproduces the paper's plain GWMIN pipeline. GWMIN's score biases it
  /// toward low-conflict (cold-disk) opportunities, and the refinement is
  /// the "more sophisticated algorithm" §5.1 alludes to.
  std::size_t refine_passes = 3;

  /// Which initial assignment feeds the refinement:
  ///  * kSolverOnly — the paper's pipeline: MWIS selection + Step-4 fallback;
  ///  * kPileOnly   — Step 4's densest-pile greedy applied to *every*
  ///                  request (a forward sweep maximising each predecessor's
  ///                  realised Eq. 3 saving);
  ///  * kBest       — run both, keep whichever refines to less Lemma-1
  ///                  energy. Default: on smooth (low-burstiness) workloads
  ///                  the pile seed escapes GWMIN's cold-disk bias.
  enum class Seed { kSolverOnly, kPileOnly, kBest };
  Seed seed = Seed::kBest;
};

class MwisOfflineScheduler final : public OfflineScheduler {
 public:
  explicit MwisOfflineScheduler(MwisOptions options = {})
      : options_(options) {}

  std::string name() const override;

  OfflineAssignment schedule(const trace::Trace& trace,
                             const placement::PlacementMap& placement,
                             const disk::DiskPowerParams& power) override;

  /// Diagnostics from the most recent schedule() call.
  double last_selected_saving() const { return last_saving_; }
  std::size_t last_graph_nodes() const { return last_nodes_; }
  std::size_t last_graph_edges() const { return last_edges_; }
  std::size_t last_selected_count() const { return last_selected_; }
  /// True when the kBest comparison kept the pile seed.
  bool last_used_pile_seed() const { return last_used_pile_; }

 private:
  MwisOptions options_;
  double last_saving_ = 0.0;
  std::size_t last_nodes_ = 0;
  std::size_t last_edges_ = 0;
  std::size_t last_selected_ = 0;
  bool last_used_pile_ = false;
  /// Scratch reused across schedule() calls (one scheduler instance often
  /// runs many traces in an ablation loop).
  ConflictGraphWorkspace graph_ws_;
  GwminWorkspace gwmin_ws_;
  std::vector<std::uint32_t> selected_;
  OfflineEvalWorkspace eval_ws_;
};

}  // namespace eas::core
