// The §3.3 energy-aware online heuristic.
//
// On each arrival the request goes to the replica location with the minimum
// composite cost C(d_k) = E(d_k)·alpha/beta + P(d_k)·(1-alpha). With the
// paper's balanced setting (alpha=0.2, beta=100) this trades a small
// response-time penalty for large energy savings; alpha=1/alpha=0 recover
// the pure-energy and pure-performance extremes swept in Appendix A.2.
#pragma once

#include "core/scheduler.hpp"

namespace eas::core {

class CostFunctionScheduler final : public OnlineScheduler {
 public:
  explicit CostFunctionScheduler(CostParams params = {}) : params_(params) {}

  std::string name() const override;
  const CostParams& params() const { return params_; }

  DiskId pick(const disk::Request& r, const SystemView& view) override;

 private:
  CostParams params_;
};

}  // namespace eas::core
