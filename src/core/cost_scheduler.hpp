// The §3.3 energy-aware online heuristic.
//
// On each arrival the request goes to the replica location with the minimum
// composite cost C(d_k) = E(d_k)·alpha/beta + P(d_k)·(1-alpha). With the
// paper's balanced setting (alpha=0.2, beta=100) this trades a small
// response-time penalty for large energy savings; alpha=1/alpha=0 recover
// the pure-energy and pure-performance extremes swept in Appendix A.2.
#pragma once

#include "core/scheduler.hpp"

namespace eas::core {

/// Per-pending-block cost discount applied by the cost-based schedulers when
/// a replica's disk has dirty blocks awaiting destage (SystemView::
/// pending_destage). A disk with n pending blocks has its composite cost
/// divided by (1 + w·n): waking it flushes its dirty group on the same
/// spin-up, so the wake energy is shared. w = 0.05 means ~20 pending blocks
/// halve the effective cost; with no cache tier the factor is exactly 1 and
/// picks are unchanged (bit-for-bit).
inline constexpr double kDestagePressureWeight = 0.05;

/// Multiplicative cost penalty applied by the cost-based schedulers to a
/// replica whose disk the reliability tier reports as backpressured
/// (SystemView::backpressured): its queue is above the admission-control
/// watermark, so sending more work there risks shedding. 4x means a
/// backpressured disk only wins when every alternative is at least that
/// much worse; with no reliability tier the predicate is identically false
/// and picks are unchanged (bit-for-bit).
inline constexpr double kBackpressurePenalty = 4.0;

class CostFunctionScheduler final : public OnlineScheduler {
 public:
  explicit CostFunctionScheduler(CostParams params = {}) : params_(params) {}

  std::string name() const override;
  const CostParams& params() const { return params_; }

  DiskId pick(const disk::Request& r, const SystemView& view) override;

 private:
  CostParams params_;
};

}  // namespace eas::core
