#include "core/conflict_graph.hpp"

#include <algorithm>

#include "core/energy_model.hpp"
#include "util/check.hpp"
#include "util/epoch_marker.hpp"

namespace eas::core {

double ConflictGraph::selection_weight(
    const std::vector<std::uint32_t>& selected) const {
  thread_local util::EpochMarker in;
  in.begin(nodes.size());
  double total = 0.0;
  for (std::uint32_t v : selected) {
    EAS_REQUIRE_MSG(v < nodes.size(), "selected node out of range");
    EAS_REQUIRE_MSG(!in.marked(v), "node " << v << " selected twice");
    in.mark(v);
    total += nodes[v].weight;
  }
  for (std::uint32_t v : selected) {
    for (std::uint32_t u : neighbors(v)) {
      EAS_REQUIRE_MSG(!in.marked(u),
                      "selection is not independent: " << v << " ~ " << u);
    }
  }
  return total;
}

graph::WeightedGraph ConflictGraph::to_weighted_graph() const {
  // Hand the existing CSR straight to the graph layer — no per-vertex
  // vector round-trip, no re-insertion of m edges through a builder. The
  // WeightedGraph constructor audits the structure in bulk under
  // EASCHED_AUDIT.
  std::vector<double> weights;
  weights.reserve(nodes.size());
  for (const auto& n : nodes) weights.push_back(n.weight);
  return graph::WeightedGraph(std::move(weights), adj_offsets, adj_data);
}

namespace {

/// Invokes `fn(u, v)` exactly once per conflicting node pair. Conflicts are
/// found through per-request buckets; a pair sharing *both* endpoints (the
/// same (i,j) on two disks) appears in two buckets and is emitted only from
/// bucket i, so no hashed dedup is needed.
template <typename Fn>
void for_each_conflict(const ConflictGraph& g,
                       const std::vector<std::vector<std::uint32_t>>& bucket,
                       Fn fn) {
  for (std::uint32_t r = 0; r < bucket.size(); ++r) {
    const auto& members = bucket[r];
    for (std::size_t a = 0; a < members.size(); ++a) {
      const SavingNode& u = g.nodes[members[a]];
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        const SavingNode& v = g.nodes[members[b]];
        if (u.i != v.i && u.k == v.k) continue;  // compatible
        if (u.i == v.i && u.j == v.j && u.j == r) continue;  // seen at bucket i
        fn(members[a], members[b]);
      }
    }
  }
}

/// Grows `vecs` to `n` outer entries and clears each inner vector without
/// releasing its capacity — the reuse primitive behind the workspace.
void reset_nested(std::vector<std::vector<std::uint32_t>>& vecs,
                  std::size_t n) {
  if (vecs.size() < n) vecs.resize(n);
  for (auto& v : vecs) v.clear();
}

void fill_buckets(const ConflictGraph& g, std::size_t num_requests,
                  std::vector<std::vector<std::uint32_t>>& bucket) {
  reset_nested(bucket, num_requests);
  for (std::uint32_t v = 0; v < g.nodes.size(); ++v) {
    bucket[g.nodes[v].i].push_back(v);
    bucket[g.nodes[v].j].push_back(v);
  }
}

}  // namespace

ConflictGraph build_conflict_graph(const trace::Trace& trace,
                                   const placement::PlacementMap& placement,
                                   const disk::DiskPowerParams& power,
                                   const ConflictGraphOptions& options) {
  ConflictGraphWorkspace ws;
  return build_conflict_graph(trace, placement, power, options, ws);
}

ConflictGraph build_conflict_graph(const trace::Trace& trace,
                                   const placement::PlacementMap& placement,
                                   const disk::DiskPowerParams& power,
                                   const ConflictGraphOptions& options,
                                   ConflictGraphWorkspace& ws) {
  EAS_REQUIRE_MSG(options.successor_horizon >= 1, "horizon must be >= 1");
  ConflictGraph g;

  // Per-disk time-ordered lists of requests whose data lives there.
  auto& on_disk = ws.on_disk;
  reset_nested(on_disk, placement.num_disks());
  for (std::uint32_t i = 0; i < trace.size(); ++i) {
    for (DiskId k : placement.locations(trace[i].data)) {
      on_disk[k].push_back(i);  // trace is time-sorted, so lists are too
    }
  }

  // Step 1: nodes for every in-window candidate pair within the horizon.
  // The node count is data-dependent, so the workspace remembers the last
  // call's count as the reservation estimate: repeated builds over
  // similar-sized cells (the sweep and scheduler hot path) size the vector
  // in one allocation instead of a geometric growth chain. (A counting
  // pre-pass and the total_entries * horizon bound were both measurably
  // slower: the former re-walks every candidate pair, the latter cold-faults
  // megabytes it never uses.)
  g.nodes.reserve(ws.last_node_count);
  const double window = power.saving_window_seconds();
  for (DiskId k = 0; k < placement.num_disks(); ++k) {
    const auto& list = on_disk[k];
    for (std::size_t p = 0; p < list.size(); ++p) {
      const std::uint32_t i = list[p];
      for (std::size_t h = 1;
           h <= options.successor_horizon && p + h < list.size(); ++h) {
        const std::uint32_t j = list[p + h];
        const double dt = trace[j].time - trace[i].time;
        if (dt >= window) break;  // later candidates are even farther
        const double w =
            pairwise_energy_saving(trace[i].time, trace[j].time, power);
        if (w > 0.0) g.nodes.push_back(SavingNode{i, j, k, w});
      }
    }
  }

  ws.last_node_count = g.nodes.size();

  // Step 2: CSR adjacency in two passes over the conflict pairs — count
  // degrees, then place. Each conflicting pair is visited exactly once.
  fill_buckets(g, trace.size(), ws.bucket);
  const auto& bucket = ws.bucket;
  g.adj_offsets.assign(g.nodes.size() + 1, 0);
  for_each_conflict(g, bucket, [&](std::uint32_t u, std::uint32_t v) {
    ++g.adj_offsets[u + 1];
    ++g.adj_offsets[v + 1];
  });
  for (std::size_t v = 0; v < g.nodes.size(); ++v) {
    g.adj_offsets[v + 1] += g.adj_offsets[v];
  }
  g.adj_data.resize(g.adj_offsets.back());
  ws.cursor.assign(g.adj_offsets.begin(), g.adj_offsets.end() - 1);
  auto& cursor = ws.cursor;
  for_each_conflict(g, bucket, [&](std::uint32_t u, std::uint32_t v) {
    g.adj_data[cursor[u]++] = v;
    g.adj_data[cursor[v]++] = u;
  });
  return g;
}

namespace {

/// Hot selection loop ([[hotpath]]: no allocation, no throw). Pops the
/// (score, highest-id) maximum — the exact order the historical lazy
/// pair-heap produced, since a live node's freshest entry always dominated
/// its stale ones — deletes its closed neighbourhood from the heap, then
/// re-keys each survivor adjacent to a kill. Heap membership doubles as the
/// alive set; the two-phase kill keeps the historical update order: all of
/// N[v] leaves the heap before any survivor is re-scored, and degree /
/// nbr_weight decrements land in the same doomed-major, CSR-minor order as
/// before, so every score is the bit-identical double.
void gwmin_select_loop(const ConflictGraph& g, bool use_gwmin2,
                       GwminWorkspace& ws,
                       std::vector<std::uint32_t>& selected) {
  auto& heap = ws.heap;
  auto& doomed = ws.doomed;
  auto& degree = ws.degree;
  const auto& weight = ws.weight;
  auto& nbr_weight = ws.nbr_weight;
  auto& touch_list = ws.touch_list;
  while (!heap.empty()) {
    const auto top = heap.top();
    heap.pop_top();
    selected.push_back(top.v);

    doomed.clear();
    doomed.push_back(top.v);
    for (const std::uint32_t u : g.neighbors(top.v)) {
      if (heap.contains(u)) {
        heap.remove(u);
        doomed.push_back(u);
      }
    }
    // Apply every degree / nbr_weight decrement first (same doomed-major,
    // CSR-minor order as always — the nbr_weight rounding sequence is
    // pinned), then re-key each touched survivor once with its final
    // post-round score. A survivor adjacent to several kills would
    // otherwise pay one sift-up per kill for intermediate keys nothing
    // ever reads.
    ws.touched.begin(g.size());
    touch_list.clear();
    for (const std::uint32_t u : doomed) {
      const double uw = weight[u];
      for (const std::uint32_t w : g.neighbors(u)) {
        if (!heap.contains(w)) continue;
        --degree[w];
        if (use_gwmin2) nbr_weight[w] -= uw;
        if (!ws.touched.marked(w)) {
          ws.touched.mark(w);
          touch_list.push_back(w);
        }
      }
    }
    for (const std::uint32_t w : touch_list) {
      double s;
      if (use_gwmin2) {
        const double denom = weight[w] + nbr_weight[w];
        s = denom == 0.0 ? 1.0 : weight[w] / denom;
      } else {
        s = weight[w] / static_cast<double>(degree[w] + 1);
      }
      heap.increase(w, s);
    }
  }
}

}  // namespace

std::vector<std::uint32_t> solve_gwmin(const ConflictGraph& g,
                                       bool use_gwmin2) {
  GwminWorkspace ws;
  return solve_gwmin(g, use_gwmin2, ws);
}

std::vector<std::uint32_t> solve_gwmin(const ConflictGraph& g, bool use_gwmin2,
                                       GwminWorkspace& ws) {
  std::vector<std::uint32_t> selected;
  solve_gwmin(g, use_gwmin2, ws, selected);
  return selected;
}

void solve_gwmin(const ConflictGraph& g, bool use_gwmin2, GwminWorkspace& ws,
                 std::vector<std::uint32_t>& selected) {
  selected.clear();
  const auto n = static_cast<std::uint32_t>(g.size());
  ws.degree.resize(n);
  ws.weight.resize(n);
  auto& degree = ws.degree;
  auto& weight = ws.weight;
  auto& nbr_weight = ws.nbr_weight;
  for (std::uint32_t v = 0; v < n; ++v) weight[v] = g.nodes[v].weight;
  if (use_gwmin2) nbr_weight.assign(n, 0.0);
  std::size_t max_deg = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.degree(v));
    max_deg = std::max(max_deg, g.degree(v));
    if (use_gwmin2) {
      for (std::uint32_t u : g.neighbors(v)) nbr_weight[v] += weight[u];
    }
  }
  ws.doomed.clear();
  ws.doomed.reserve(max_deg + 1);

  ws.heap.assign(n, [&](std::uint32_t v) {
    if (use_gwmin2) {
      const double denom = weight[v] + nbr_weight[v];
      return denom == 0.0 ? 1.0 : weight[v] / denom;
    }
    return weight[v] / static_cast<double>(degree[v] + 1);
  });

  gwmin_select_loop(g, use_gwmin2, ws, selected);
  std::sort(selected.begin(), selected.end());
}

}  // namespace eas::core
