#include "core/conflict_graph.hpp"

#include <algorithm>
#include <queue>

#include "core/energy_model.hpp"
#include "util/check.hpp"

namespace eas::core {

double ConflictGraph::selection_weight(
    const std::vector<std::uint32_t>& selected) const {
  std::vector<bool> in(nodes.size(), false);
  double total = 0.0;
  for (std::uint32_t v : selected) {
    EAS_REQUIRE_MSG(v < nodes.size(), "selected node out of range");
    EAS_REQUIRE_MSG(!in[v], "node " << v << " selected twice");
    in[v] = true;
    total += nodes[v].weight;
  }
  for (std::uint32_t v : selected) {
    for (std::uint32_t u : neighbors(v)) {
      EAS_REQUIRE_MSG(!in[u], "selection is not independent: " << v << " ~ " << u);
    }
  }
  return total;
}

graph::WeightedGraph ConflictGraph::to_weighted_graph() const {
  std::vector<double> weights;
  weights.reserve(nodes.size());
  for (const auto& n : nodes) weights.push_back(n.weight);
  graph::WeightedGraph g(std::move(weights));
  for (std::uint32_t v = 0; v < nodes.size(); ++v) {
    for (std::uint32_t u : neighbors(v)) {
      if (v < u) g.add_edge(v, u);
    }
  }
  return g;
}

namespace {

/// Invokes `fn(u, v)` exactly once per conflicting node pair. Conflicts are
/// found through per-request buckets; a pair sharing *both* endpoints (the
/// same (i,j) on two disks) appears in two buckets and is emitted only from
/// bucket i, so no hashed dedup is needed.
template <typename Fn>
void for_each_conflict(const ConflictGraph& g,
                       const std::vector<std::vector<std::uint32_t>>& bucket,
                       Fn fn) {
  for (std::uint32_t r = 0; r < bucket.size(); ++r) {
    const auto& members = bucket[r];
    for (std::size_t a = 0; a < members.size(); ++a) {
      const SavingNode& u = g.nodes[members[a]];
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        const SavingNode& v = g.nodes[members[b]];
        if (u.i != v.i && u.k == v.k) continue;  // compatible
        if (u.i == v.i && u.j == v.j && u.j == r) continue;  // seen at bucket i
        fn(members[a], members[b]);
      }
    }
  }
}

std::vector<std::vector<std::uint32_t>> build_buckets(const ConflictGraph& g,
                                                      std::size_t num_requests) {
  std::vector<std::vector<std::uint32_t>> bucket(num_requests);
  for (std::uint32_t v = 0; v < g.nodes.size(); ++v) {
    bucket[g.nodes[v].i].push_back(v);
    bucket[g.nodes[v].j].push_back(v);
  }
  return bucket;
}

}  // namespace

ConflictGraph build_conflict_graph(const trace::Trace& trace,
                                   const placement::PlacementMap& placement,
                                   const disk::DiskPowerParams& power,
                                   const ConflictGraphOptions& options) {
  EAS_REQUIRE_MSG(options.successor_horizon >= 1, "horizon must be >= 1");
  ConflictGraph g;

  // Per-disk time-ordered lists of requests whose data lives there.
  std::vector<std::vector<std::uint32_t>> on_disk(placement.num_disks());
  for (std::uint32_t i = 0; i < trace.size(); ++i) {
    for (DiskId k : placement.locations(trace[i].data)) {
      on_disk[k].push_back(i);  // trace is time-sorted, so lists are too
    }
  }

  // Step 1: nodes for every in-window candidate pair within the horizon.
  const double window = power.saving_window_seconds();
  for (DiskId k = 0; k < placement.num_disks(); ++k) {
    const auto& list = on_disk[k];
    for (std::size_t p = 0; p < list.size(); ++p) {
      const std::uint32_t i = list[p];
      for (std::size_t h = 1;
           h <= options.successor_horizon && p + h < list.size(); ++h) {
        const std::uint32_t j = list[p + h];
        const double dt = trace[j].time - trace[i].time;
        if (dt >= window) break;  // later candidates are even farther
        const double w =
            pairwise_energy_saving(trace[i].time, trace[j].time, power);
        if (w > 0.0) g.nodes.push_back(SavingNode{i, j, k, w});
      }
    }
  }

  // Step 2: CSR adjacency in two passes over the conflict pairs — count
  // degrees, then place. Each conflicting pair is visited exactly once.
  const auto bucket = build_buckets(g, trace.size());
  g.adj_offsets.assign(g.nodes.size() + 1, 0);
  for_each_conflict(g, bucket, [&](std::uint32_t u, std::uint32_t v) {
    ++g.adj_offsets[u + 1];
    ++g.adj_offsets[v + 1];
  });
  for (std::size_t v = 0; v < g.nodes.size(); ++v) {
    g.adj_offsets[v + 1] += g.adj_offsets[v];
  }
  g.adj_data.resize(g.adj_offsets.back());
  std::vector<std::size_t> cursor(g.adj_offsets.begin(),
                                  g.adj_offsets.end() - 1);
  for_each_conflict(g, bucket, [&](std::uint32_t u, std::uint32_t v) {
    g.adj_data[cursor[u]++] = v;
    g.adj_data[cursor[v]++] = u;
  });
  return g;
}

std::vector<std::uint32_t> solve_gwmin(const ConflictGraph& g,
                                       bool use_gwmin2) {
  const std::size_t n = g.size();
  std::vector<bool> alive(n, true);
  std::vector<std::uint32_t> degree(n);
  std::vector<double> nbr_weight;
  if (use_gwmin2) nbr_weight.assign(n, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.degree(v));
    if (use_gwmin2) {
      for (std::uint32_t u : g.neighbors(v)) nbr_weight[v] += g.nodes[u].weight;
    }
  }

  auto score = [&](std::uint32_t v) {
    if (use_gwmin2) {
      const double denom = g.nodes[v].weight + nbr_weight[v];
      return denom == 0.0 ? 1.0 : g.nodes[v].weight / denom;
    }
    return g.nodes[v].weight / static_cast<double>(degree[v] + 1);
  };

  // Lazy max-heap: scores only grow as neighbours die, and every growth
  // pushes a fresh entry, so an alive node popped from the top always
  // carries its current (maximal) score.
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry> heap;
  for (std::uint32_t v = 0; v < n; ++v) heap.emplace(score(v), v);

  std::vector<std::uint32_t> selected;
  std::vector<std::uint32_t> doomed;
  while (!heap.empty()) {
    const auto [s, v] = heap.top();
    heap.pop();
    if (!alive[v]) continue;
    selected.push_back(v);

    // Remove the closed neighbourhood N[v] in two phases: mark everything
    // dead first so that survivor updates are only pushed for nodes that
    // actually remain in the graph.
    doomed.clear();
    doomed.push_back(v);
    alive[v] = false;
    for (std::uint32_t u : g.neighbors(v)) {
      if (alive[u]) {
        alive[u] = false;
        doomed.push_back(u);
      }
    }
    for (std::uint32_t u : doomed) {
      for (std::uint32_t w : g.neighbors(u)) {
        if (!alive[w]) continue;
        --degree[w];
        if (use_gwmin2) nbr_weight[w] -= g.nodes[u].weight;
        heap.emplace(score(w), w);
      }
    }
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

}  // namespace eas::core
