// Conflict-graph construction for offline scheduling (§3.1.2, Fig 4).
//
// Step 1 creates a node for every energy-saving opportunity X(i,j,k) > 0:
// request i scheduled on disk k with request j as its successor, both of
// whose data live on k (Eq. 4), with j arriving inside the saving window
// (Eq. 3). Step 2 adds an edge between nodes that cannot coexist in a valid
// schedule:
//   * energy-constraint: same first request i (a request has one successor);
//   * schedule-constraint: the nodes share a request but name different
//     disks (a request is served by exactly one disk).
//
// Scale control: the paper's formulation enumerates *all* co-located pairs
// (i,j); on a 70k-request trace that is quadratic in burst length. Because
// X(i,j,k) strictly decreases as the gap grows, far successors are strictly
// worse choices, so we enumerate only the next `successor_horizon`
// co-located requests per (request, disk). horizon=1 keeps the densest
// chain; the Fig 4 instance needs horizon >= 2 to contain every node the
// paper draws. This is a documented approximation knob of the *candidate
// set*, not of the solver.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "disk/params.hpp"
#include "graph/mwis.hpp"
#include "placement/placement.hpp"
#include "trace/trace.hpp"
#include "util/epoch_marker.hpp"
#include "util/ids.hpp"

namespace eas::core {

/// One energy-saving opportunity X(i,j,k).
struct SavingNode {
  std::uint32_t i = 0;  ///< earlier request (trace index)
  std::uint32_t j = 0;  ///< candidate successor (trace index), t_j >= t_i
  DiskId k = kInvalidDisk;
  double weight = 0.0;  ///< X(i,j,k) > 0
};

struct ConflictGraphOptions {
  /// Candidate successors considered per (request, disk); >= 1.
  std::size_t successor_horizon = 2;
};

/// The §3.1.2 graph. Adjacency is stored in CSR form (offsets + flat
/// neighbour array) because production instances reach tens of millions of
/// edges, where per-vertex vectors and hashed dedup dominate runtime.
struct ConflictGraph {
  std::vector<SavingNode> nodes;
  /// CSR: neighbours of v are adj_data[adj_offsets[v] .. adj_offsets[v+1]).
  std::vector<std::size_t> adj_offsets;
  std::vector<std::uint32_t> adj_data;

  std::size_t size() const { return nodes.size(); }
  std::size_t num_edges() const { return adj_data.size() / 2; }

  /// Neighbours of node v.
  std::span<const std::uint32_t> neighbors(std::uint32_t v) const {
    return {adj_data.data() + adj_offsets[v],
            adj_offsets[v + 1] - adj_offsets[v]};
  }
  std::size_t degree(std::uint32_t v) const {
    return adj_offsets[v + 1] - adj_offsets[v];
  }

  /// Total weight of a node subset; also verifies independence + validity
  /// invariants under EAS_CHECK (used by tests and the scheduler).
  double selection_weight(const std::vector<std::uint32_t>& selected) const;

  /// Materialises an explicit graph::WeightedGraph (small instances only —
  /// tests, exact solves, ablations).
  graph::WeightedGraph to_weighted_graph() const;
};

/// Reusable scratch for build_conflict_graph: a sweep builds one graph per
/// cell, and the per-disk request lists, per-request node buckets, and CSR
/// cursor array dominate its transient allocations. Keeping one workspace
/// alive across cells reuses those buffers at their high-water capacity.
struct ConflictGraphWorkspace {
  std::vector<std::vector<std::uint32_t>> on_disk;
  std::vector<std::vector<std::uint32_t>> bucket;
  std::vector<std::size_t> cursor;
  /// Node count of the previous build — the reservation estimate for the
  /// next one (cells in a sweep are similar-sized).
  std::size_t last_node_count = 0;
};

ConflictGraph build_conflict_graph(const trace::Trace& trace,
                                   const placement::PlacementMap& placement,
                                   const disk::DiskPowerParams& power,
                                   const ConflictGraphOptions& options = {});

/// As above, reusing `ws` buffers across calls.
ConflictGraph build_conflict_graph(const trace::Trace& trace,
                                   const placement::PlacementMap& placement,
                                   const disk::DiskPowerParams& power,
                                   const ConflictGraphOptions& options,
                                   ConflictGraphWorkspace& ws);

/// Reusable scratch for solve_gwmin (the indexed selection heap,
/// incremental degrees, neighbourhood weights, and the per-selection doomed
/// list). Liveness is the heap's membership set — no separate alive array.
struct GwminWorkspace {
  graph::IndexedScoreHeap<graph::TieOrder::kHighIndexWins> heap;
  std::vector<std::uint32_t> degree;
  /// nodes[v].weight copied dense: the select loop indexes weights at
  /// random, and an 8-byte-stride array stays cache-resident where the
  /// 24-byte SavingNode array does not. Same doubles, same rounding.
  std::vector<double> weight;
  std::vector<double> nbr_weight;
  std::vector<std::uint32_t> doomed;
  /// Survivors adjacent to this round's kills, deduplicated — each gets one
  /// heap re-key with its final post-round score.
  util::EpochMarker touched;
  std::vector<std::uint32_t> touch_list;
};

/// Scalable GWMIN/GWMIN2 over a ConflictGraph: indexed max-heap keyed by
/// (score, node id), degrees and neighbourhood weights maintained
/// incrementally, O((V+E) log V) with no tombstone traffic. Selection order
/// (including the higher-id tie-break the historical lazy pair-heap had) is
/// pinned by the sweep fingerprints and test_graph_diff.
/// Returns selected node ids.
std::vector<std::uint32_t> solve_gwmin(const ConflictGraph& g,
                                       bool use_gwmin2 = false);

/// As above, reusing `ws` buffers across calls (no steady-state allocation
/// beyond the returned selection).
std::vector<std::uint32_t> solve_gwmin(const ConflictGraph& g, bool use_gwmin2,
                                       GwminWorkspace& ws);

/// Out-parameter form: with a warmed workspace and a reused `selected`
/// buffer, a solve performs no heap allocation at all (pinned by the
/// counting-allocator test in test_graph_diff).
void solve_gwmin(const ConflictGraph& g, bool use_gwmin2, GwminWorkspace& ws,
                 std::vector<std::uint32_t>& selected);

}  // namespace eas::core
