#include "core/energy_model.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace eas::core {

double pairwise_energy_saving(double ti, double tj,
                              const disk::DiskPowerParams& p) {
  EAS_REQUIRE_MSG(tj >= ti, "successor precedes request: " << tj << " < " << ti);
  const double dt = tj - ti;
  if (dt >= p.saving_window_seconds()) return 0.0;
  const double x =
      p.transition_energy() + (p.breakeven_seconds() - dt) * p.idle_watts;
  return std::max(0.0, x);
}

double pairwise_energy_consumption(double ti, double tj,
                                   const disk::DiskPowerParams& p) {
  return p.max_request_energy() - pairwise_energy_saving(ti, tj, p);
}

DiskSnapshot snapshot_of(const disk::Disk& d) {
  DiskSnapshot s;
  s.state = d.state();
  s.state_since = d.state_since();
  s.last_request_time = d.has_served_any() ? d.last_request_time() : -1.0;
  s.queued_requests = d.queued_requests();
  return s;
}

double marginal_energy_cost(const DiskSnapshot& s, double now,
                            const disk::DiskPowerParams& p) {
  switch (s.state) {
    case disk::DiskState::Active:
    case disk::DiskState::SpinningUp:
      return 0.0;
    case disk::DiskState::Standby:
    case disk::DiskState::SpinningDown:
      return p.transition_energy() + p.breakeven_seconds() * p.idle_watts;
    case disk::DiskState::Idle: {
      const double t_last =
          s.last_request_time >= 0.0 ? s.last_request_time : s.state_since;
      const double extension = std::max(0.0, (now - t_last) * p.idle_watts);
      // Theorem 2 derives the idle weight under 2CPM, where an idle period
      // never exceeds T_B — so the extension is implicitly bounded by one
      // full wake cycle. Disks kept idle past breakeven by other policies
      // (oracle case II, covering-subset pinning) must not look more
      // expensive than waking a sleeping disk, hence the explicit cap.
      return std::min(extension,
                      p.transition_energy() +
                          p.breakeven_seconds() * p.idle_watts);
    }
  }
  return 0.0;
}

double composite_cost(const DiskSnapshot& s, double now,
                      const disk::DiskPowerParams& p, const CostParams& cp) {
  EAS_REQUIRE_MSG(cp.beta > 0.0, "beta must be positive");
  EAS_REQUIRE_MSG(cp.alpha >= 0.0 && cp.alpha <= 1.0,
                "alpha must lie in [0,1], got " << cp.alpha);
  const double energy = marginal_energy_cost(s, now, p);
  const double perf = static_cast<double>(s.queued_requests);
  return energy * cp.alpha / cp.beta + perf * (1.0 - cp.alpha);
}

}  // namespace eas::core
