// Write off-loading (§2.1, after Narayanan et al. [17]).
//
// The paper's scheduler handles reads only, assuming writes "can be assigned
// to one or more idle disks in the system using techniques such as write
// off-loading". This module implements that substrate so mixed read/write
// traces can be evaluated end to end:
//
//  * a write whose home disk is spinning goes home (no diversion);
//  * otherwise it is diverted — preferably to a spinning *replica* location
//    (the data lands somewhere it already belongs), else to the cheapest
//    spinning disk anywhere in the system;
//  * if nothing is spinning the home disk must be woken (cold-system case);
//  * subsequent reads of a diverted block are served from the diversion
//    target until the block is reclaimed;
//  * reclamation is lazy: the first time the block is touched while its
//    home disk happens to be spinning anyway, the diversion is retired
//    (the write-back rides on an already-paid spin-up).
//
// The manager is deliberately scheduler-agnostic: it only consults the
// SystemView the §2.2 online model already exposes.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "core/scheduler.hpp"

namespace eas::core {

struct WriteOffloadOptions {
  /// Divert writes away from sleeping home disks at all; false reproduces a
  /// naive system that wakes the home disk for every write.
  bool enabled = true;
  /// Cost weighting used when choosing among spinning diversion targets.
  CostParams cost{};
};

struct WriteOffloadStats {
  std::uint64_t writes_total = 0;
  std::uint64_t writes_home = 0;        ///< home disk was spinning
  std::uint64_t writes_diverted = 0;    ///< landed on a foreign spinning disk
  std::uint64_t writes_woke_home = 0;   ///< nothing spinning: paid a wake
  std::uint64_t reads_redirected = 0;   ///< served from a diversion target
  std::uint64_t reclaims = 0;           ///< diversions retired lazily
};

class WriteOffloadManager {
 public:
  explicit WriteOffloadManager(WriteOffloadOptions options = {})
      : options_(options) {}

  /// Chooses the disk for a write request and updates the diversion table.
  DiskId route_write(const disk::Request& r, const SystemView& view);

  /// Where a read of `data` must go if the latest version lives off-site;
  /// also performs lazy reclamation (see header comment), so a non-empty
  /// result is always a disk that must be used *instead of* placement.
  std::optional<DiskId> read_override(DataId data, const SystemView& view);

  /// Number of blocks currently living away from their placement.
  std::size_t diverted_blocks() const { return diverted_.size(); }
  const WriteOffloadStats& stats() const { return stats_; }

 private:
  static bool is_spinning(const DiskSnapshot& s) {
    return s.state == disk::DiskState::Idle ||
           s.state == disk::DiskState::Active ||
           s.state == disk::DiskState::SpinningUp;
  }

  WriteOffloadOptions options_;
  std::unordered_map<DataId, DiskId> diverted_;
  WriteOffloadStats stats_;
};

}  // namespace eas::core
