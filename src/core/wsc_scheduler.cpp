#include "core/wsc_scheduler.hpp"

#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace eas::core {

std::string WscBatchScheduler::name() const {
  std::ostringstream os;
  os << "wsc(batch=" << interval_ << "s"
     << (mode_ == WeightMode::kPureEnergy ? ",energy" : "") << ")";
  return os.str();
}

graph::SetCoverInstance WscBatchScheduler::build_instance(
    const std::vector<disk::Request>& batch, const SystemView& view,
    std::vector<DiskId>& candidate_disks) const {
  graph::SetCoverInstance instance;
  instance.num_elements = batch.size();

  // One set per disk that stores at least one batched request's data.
  std::unordered_map<DiskId, std::size_t> set_of_disk;
  candidate_disks.clear();
  for (std::size_t e = 0; e < batch.size(); ++e) {
    for (DiskId k : view.placement().locations(batch[e].data)) {
      auto [it, inserted] = set_of_disk.try_emplace(k, instance.sets.size());
      if (inserted) {
        instance.sets.emplace_back();
        candidate_disks.push_back(k);
        const DiskSnapshot snap = view.snapshot(k);
        instance.sets.back().weight =
            mode_ == WeightMode::kPureEnergy
                ? marginal_energy_cost(snap, view.now(), view.power_params())
                : composite_cost(snap, view.now(), view.power_params(),
                                 cost_);
      }
      instance.sets[it->second].elements.push_back(e);
    }
  }
  return instance;
}

std::vector<DiskId> WscBatchScheduler::assign(
    const std::vector<disk::Request>& batch, const SystemView& view) {
  if (batch.empty()) return {};

  std::vector<DiskId> candidate_disks;
  const graph::SetCoverInstance instance =
      build_instance(batch, view, candidate_disks);
  const graph::SetCoverSolution cover =
      graph::greedy_weighted_set_cover(instance);
  // Theorem 2 only holds if the chosen disks actually cover the batch.
  if constexpr (audit_enabled()) graph::check_cover(cover, instance);

  // Each request goes to the first chosen set (in greedy order) holding its
  // data — the set that "paid" for covering it.
  std::vector<DiskId> assignment(batch.size(), kInvalidDisk);
  for (std::size_t s : cover.chosen_sets) {
    for (std::size_t e : instance.sets[s].elements) {
      if (assignment[e] == kInvalidDisk) assignment[e] = candidate_disks[s];
    }
  }
  for (std::size_t e = 0; e < batch.size(); ++e) {
    EAS_ENSURE_MSG(assignment[e] != kInvalidDisk,
                   "set cover left request " << e << " unassigned");
    // The assigned disk must hold a replica of the requested data, or the
    // "serviced from a replica" premise of the whole model is broken.
    EAS_AUDIT_MSG(view.placement().stores(batch[e].data, assignment[e]),
                  "request " << e << " assigned to disk " << assignment[e]
                             << " which does not store data "
                             << batch[e].data);
  }
  return assignment;
}

}  // namespace eas::core
