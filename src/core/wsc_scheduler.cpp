#include "core/wsc_scheduler.hpp"

#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace eas::core {

std::string WscBatchScheduler::name() const {
  std::ostringstream os;
  os << "wsc(batch=" << interval_ << "s"
     << (mode_ == WeightMode::kPureEnergy ? ",energy" : "") << ")";
  return os.str();
}

const graph::SetCoverInstance& WscBatchScheduler::build_instance_into(
    const std::vector<disk::Request>& batch, const SystemView& view,
    std::vector<DiskId>& candidate_disks) const {
  graph::SetCoverInstance& instance = inst_ws_;
  // Retire the previous instance's element vectors into the spare pool so
  // their capacity survives sets.clear().
  for (auto& set : instance.sets) {
    set.elements.clear();
    spare_elements_.push_back(std::move(set.elements));
  }
  instance.sets.clear();

  // Under a degraded view only readable replicas become set members, and a
  // request whose replicas are all gone is excluded from the universe
  // entirely (it cannot be covered; assign() reports it as unavailable).
  // elem_req_ maps instance element -> batch index; on the healthy path it
  // is the identity.
  const fault::FailureView* fv =
      view.degraded() ? view.failure_view() : nullptr;
  elem_req_.clear();

  // One set per disk that stores at least one batched request's data. The
  // dense map assigns set indices in first-encounter order, exactly as the
  // hashed try_emplace it replaces did.
  constexpr std::uint32_t kNoSet = std::numeric_limits<std::uint32_t>::max();
  if (set_of_disk_.size() < view.placement().num_disks()) {
    set_of_disk_.resize(view.placement().num_disks(), kNoSet);
  }
  candidate_disks.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::size_t e = elem_req_.size();  // tentative element id
    bool coverable = false;
    for (DiskId k : view.placement().locations(batch[i].data)) {
      if (fv != nullptr && !fv->replica_readable(batch[i].data, k)) continue;
      std::uint32_t idx = set_of_disk_[k];
      if (idx == kNoSet) {
        idx = static_cast<std::uint32_t>(instance.sets.size());
        set_of_disk_[k] = idx;
        auto& set = instance.sets.emplace_back();
        if (!spare_elements_.empty()) {
          set.elements = std::move(spare_elements_.back());
          spare_elements_.pop_back();
        }
        candidate_disks.push_back(k);
        const DiskSnapshot snap = view.snapshot(k);
        set.weight =
            mode_ == WeightMode::kPureEnergy
                ? marginal_energy_cost(snap, view.now(), view.power_params())
                : composite_cost(snap, view.now(), view.power_params(),
                                 cost_);
      }
      instance.sets[idx].elements.push_back(e);
      coverable = true;
    }
    if (coverable) elem_req_.push_back(i);  // claims element id e
  }
  instance.num_elements = elem_req_.size();
  // Restore the sentinel for the next batch; only touched entries cost.
  for (DiskId k : candidate_disks) set_of_disk_[k] = kNoSet;
  return instance;
}

std::vector<DiskId> WscBatchScheduler::assign(
    const std::vector<disk::Request>& batch, const SystemView& view) {
  if (batch.empty()) return {};

  std::vector<DiskId>& candidate_disks = candidates_ws_;
  const graph::SetCoverInstance& instance =
      build_instance_into(batch, view, candidate_disks);
  const graph::SetCoverSolution cover =
      graph::greedy_weighted_set_cover(instance, cover_ws_);
  // Theorem 2 only holds if the chosen disks actually cover the batch.
  if constexpr (audit_enabled()) graph::check_cover(cover, instance);

  // Each request goes to the first chosen set (in greedy order) holding its
  // data — the set that "paid" for covering it. Batch entries outside the
  // universe (no live replica) stay kInvalidDisk: reported, not asserted.
  std::vector<DiskId> assignment(batch.size(), kInvalidDisk);
  for (std::size_t s : cover.chosen_sets) {
    for (std::size_t e : instance.sets[s].elements) {
      const std::size_t i = elem_req_[e];
      if (assignment[i] == kInvalidDisk) assignment[i] = candidate_disks[s];
    }
  }
  for (std::size_t e = 0; e < instance.num_elements; ++e) {
    const std::size_t i = elem_req_[e];
    EAS_ENSURE_MSG(assignment[i] != kInvalidDisk,
                   "set cover left request " << i << " unassigned");
    // The assigned disk must hold a replica of the requested data, or the
    // "serviced from a replica" premise of the whole model is broken.
    EAS_AUDIT_MSG(view.placement().stores(batch[i].data, assignment[i]),
                  "request " << i << " assigned to disk " << assignment[i]
                             << " which does not store data "
                             << batch[i].data);
  }
  return assignment;
}

}  // namespace eas::core
