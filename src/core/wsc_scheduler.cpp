#include "core/wsc_scheduler.hpp"

#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace eas::core {

std::string WscBatchScheduler::name() const {
  std::ostringstream os;
  os << "wsc(batch=" << interval_ << "s"
     << (mode_ == WeightMode::kPureEnergy ? ",energy" : "") << ")";
  return os.str();
}

const graph::SetCoverInstance& WscBatchScheduler::build_instance_into(
    const std::vector<disk::Request>& batch, const SystemView& view,
    std::vector<DiskId>& candidate_disks) const {
  graph::SetCoverInstance& instance = inst_ws_;
  // Retire the previous instance's element vectors into the spare pool so
  // their capacity survives sets.clear().
  for (auto& set : instance.sets) {
    set.elements.clear();
    spare_elements_.push_back(std::move(set.elements));
  }
  instance.sets.clear();
  instance.num_elements = batch.size();

  // One set per disk that stores at least one batched request's data. The
  // dense map assigns set indices in first-encounter order, exactly as the
  // hashed try_emplace it replaces did.
  constexpr std::uint32_t kNoSet = std::numeric_limits<std::uint32_t>::max();
  if (set_of_disk_.size() < view.placement().num_disks()) {
    set_of_disk_.resize(view.placement().num_disks(), kNoSet);
  }
  candidate_disks.clear();
  for (std::size_t e = 0; e < batch.size(); ++e) {
    for (DiskId k : view.placement().locations(batch[e].data)) {
      std::uint32_t idx = set_of_disk_[k];
      if (idx == kNoSet) {
        idx = static_cast<std::uint32_t>(instance.sets.size());
        set_of_disk_[k] = idx;
        auto& set = instance.sets.emplace_back();
        if (!spare_elements_.empty()) {
          set.elements = std::move(spare_elements_.back());
          spare_elements_.pop_back();
        }
        candidate_disks.push_back(k);
        const DiskSnapshot snap = view.snapshot(k);
        set.weight =
            mode_ == WeightMode::kPureEnergy
                ? marginal_energy_cost(snap, view.now(), view.power_params())
                : composite_cost(snap, view.now(), view.power_params(),
                                 cost_);
      }
      instance.sets[idx].elements.push_back(e);
    }
  }
  // Restore the sentinel for the next batch; only touched entries cost.
  for (DiskId k : candidate_disks) set_of_disk_[k] = kNoSet;
  return instance;
}

std::vector<DiskId> WscBatchScheduler::assign(
    const std::vector<disk::Request>& batch, const SystemView& view) {
  if (batch.empty()) return {};

  std::vector<DiskId>& candidate_disks = candidates_ws_;
  const graph::SetCoverInstance& instance =
      build_instance_into(batch, view, candidate_disks);
  const graph::SetCoverSolution cover =
      graph::greedy_weighted_set_cover(instance, cover_ws_);
  // Theorem 2 only holds if the chosen disks actually cover the batch.
  if constexpr (audit_enabled()) graph::check_cover(cover, instance);

  // Each request goes to the first chosen set (in greedy order) holding its
  // data — the set that "paid" for covering it.
  std::vector<DiskId> assignment(batch.size(), kInvalidDisk);
  for (std::size_t s : cover.chosen_sets) {
    for (std::size_t e : instance.sets[s].elements) {
      if (assignment[e] == kInvalidDisk) assignment[e] = candidate_disks[s];
    }
  }
  for (std::size_t e = 0; e < batch.size(); ++e) {
    EAS_ENSURE_MSG(assignment[e] != kInvalidDisk,
                   "set cover left request " << e << " unassigned");
    // The assigned disk must hold a replica of the requested data, or the
    // "serviced from a replica" premise of the whole model is broken.
    EAS_AUDIT_MSG(view.placement().stores(batch[e].data, assignment[e]),
                  "request " << e << " assigned to disk " << assignment[e]
                             << " which does not store data "
                             << batch[e].data);
  }
  return assignment;
}

}  // namespace eas::core
