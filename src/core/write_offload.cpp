#include "core/write_offload.hpp"

#include <limits>

namespace eas::core {

DiskId WriteOffloadManager::route_write(const disk::Request& r,
                                        const SystemView& view) {
  ++stats_.writes_total;
  const auto& placement = view.placement();
  const DiskId home = placement.original(r.data);

  // A spinning home disk absorbs the write directly; this also retires any
  // stale diversion (the fresh version now lives at home again).
  if (is_spinning(view.snapshot(home))) {
    ++stats_.writes_home;
    if (diverted_.erase(r.data) > 0) ++stats_.reclaims;
    return home;
  }

  if (!options_.enabled) {
    ++stats_.writes_woke_home;
    diverted_.erase(r.data);
    return home;
  }

  // Preferred diversion: a spinning replica location — the block already
  // belongs there, so a later reclaim is free.
  DiskId best = kInvalidDisk;
  double best_cost = std::numeric_limits<double>::infinity();
  for (DiskId k : placement.locations(r.data)) {
    const auto snap = view.snapshot(k);
    if (!is_spinning(snap)) continue;
    const double c =
        composite_cost(snap, view.now(), view.power_params(), options_.cost);
    if (c < best_cost) {
      best_cost = c;
      best = k;
    }
  }
  if (best != kInvalidDisk) {
    // Version lives on a replica that is not the original: reads must not
    // consult stale copies elsewhere, so record the diversion.
    if (best != home) {
      diverted_[r.data] = best;
    } else if (diverted_.erase(r.data) > 0) {
      ++stats_.reclaims;
    }
    ++stats_.writes_diverted;
    return best;
  }

  // Any spinning disk in the data centre will do (write off-loading's core
  // move): pick the cheapest one.
  for (DiskId k = 0; k < view.num_disks(); ++k) {
    const auto snap = view.snapshot(k);
    if (!is_spinning(snap)) continue;
    const double c =
        composite_cost(snap, view.now(), view.power_params(), options_.cost);
    if (c < best_cost) {
      best_cost = c;
      best = k;
    }
  }
  if (best != kInvalidDisk) {
    diverted_[r.data] = best;
    ++stats_.writes_diverted;
    return best;
  }

  // Cold system: every disk is asleep, someone must wake up.
  ++stats_.writes_woke_home;
  diverted_.erase(r.data);
  return home;
}

std::optional<DiskId> WriteOffloadManager::read_override(
    DataId data, const SystemView& view) {
  const auto it = diverted_.find(data);
  if (it == diverted_.end()) return std::nullopt;

  // Lazy reclamation: if the home disk is spinning anyway, ship the block
  // back now (the write-back rides on already-paid energy) and serve reads
  // from placement again.
  const DiskId home = view.placement().original(data);
  if (is_spinning(view.snapshot(home))) {
    diverted_.erase(it);
    ++stats_.reclaims;
    return std::nullopt;
  }
  ++stats_.reads_redirected;
  return it->second;
}

}  // namespace eas::core
