#include "core/mwis_scheduler.hpp"

#include <sstream>

#include "core/energy_model.hpp"
#include "core/offline_eval.hpp"
#include "core/refine.hpp"
#include "util/check.hpp"

namespace eas::core {

namespace {

/// Step 4's fallback generalised: sweep the trace in time order and place
/// every still-unassigned request on the replica whose most recent request
/// is closest — maximising the *predecessor's* realised Eq. 3 saving.
/// Already-assigned requests keep their disk and contribute to the piles.
void densest_pile_fill(OfflineAssignment& a, const trace::Trace& trace,
                       const placement::PlacementMap& placement,
                       const disk::DiskPowerParams& power) {
  // The sentinel initial value puts never-used disks outside the saving
  // window, so they score 0 without special-casing.
  std::vector<double> last_on_disk(placement.num_disks(),
                                   -power.saving_window_seconds() - 1.0);
  for (std::size_t r = 0; r < trace.size(); ++r) {
    DiskId chosen = a.disk_of_request[r];
    if (chosen == kInvalidDisk) {
      chosen = placement.original(trace[r].data);
      double best_saving = 0.0;
      for (DiskId k : placement.locations(trace[r].data)) {
        const double s =
            pairwise_energy_saving(last_on_disk[k], trace[r].time, power);
        if (s > best_saving) {
          best_saving = s;
          chosen = k;
        }
      }
      a.disk_of_request[r] = chosen;
    }
    last_on_disk[chosen] = trace[r].time;
  }
}

}  // namespace

std::string MwisOfflineScheduler::name() const {
  std::ostringstream os;
  os << "mwis(";
  switch (options_.algorithm) {
    case MwisOptions::Algorithm::kGwmin: os << "gwmin"; break;
    case MwisOptions::Algorithm::kGwmin2: os << "gwmin2"; break;
    case MwisOptions::Algorithm::kExact: os << "exact"; break;
  }
  os << ",h=" << options_.graph.successor_horizon << ")";
  return os.str();
}

OfflineAssignment MwisOfflineScheduler::schedule(
    const trace::Trace& trace, const placement::PlacementMap& placement,
    const disk::DiskPowerParams& power) {
  last_saving_ = 0.0;
  last_nodes_ = 0;
  last_edges_ = 0;
  last_selected_ = 0;
  last_used_pile_ = false;

  auto refine = [&](OfflineAssignment& a) {
    if (options_.refine_passes > 0) {
      refine_offline_assignment(a, trace, placement, power,
                                options_.refine_passes);
    }
  };

  // --- solver seed: the §3.1.2 pipeline (Steps 1-4) ----------------------
  OfflineAssignment solver_seed;
  const bool want_solver = options_.seed != MwisOptions::Seed::kPileOnly;
  if (want_solver) {
    const ConflictGraph graph =
        build_conflict_graph(trace, placement, power, options_.graph,
                             graph_ws_);
    last_nodes_ = graph.size();
    last_edges_ = graph.num_edges();

    std::vector<std::uint32_t>& selected = selected_;
    selected.clear();
    switch (options_.algorithm) {
      case MwisOptions::Algorithm::kGwmin:
        solve_gwmin(graph, /*use_gwmin2=*/false, gwmin_ws_, selected);
        break;
      case MwisOptions::Algorithm::kGwmin2:
        solve_gwmin(graph, /*use_gwmin2=*/true, gwmin_ws_, selected);
        break;
      case MwisOptions::Algorithm::kExact: {
        const auto wg = graph.to_weighted_graph();
        const auto sol = graph::exact_mwis(wg, options_.exact_vertex_limit);
        selected.assign(sol.vertices.begin(), sol.vertices.end());
        break;
      }
    }
    // Verifies independence as a side effect.
    last_saving_ = graph.selection_weight(selected);
    last_selected_ = selected.size();

    // Step 4: read the assignment off the selected opportunities.
    solver_seed.disk_of_request.assign(trace.size(), kInvalidDisk);
    for (std::uint32_t v : selected) {
      const SavingNode& n = graph.nodes[v];
      for (std::uint32_t r : {n.i, n.j}) {
        // Independence guarantees agreement: any two selected nodes sharing
        // a request name the same disk (schedule-constraint).
        EAS_CHECK_MSG(solver_seed.disk_of_request[r] == kInvalidDisk ||
                          solver_seed.disk_of_request[r] == n.k,
                      "conflicting assignment for request " << r);
        solver_seed.disk_of_request[r] = n.k;
      }
    }
    densest_pile_fill(solver_seed, trace, placement, power);
    solver_seed.validate(trace, placement);
    refine(solver_seed);
    if (options_.seed == MwisOptions::Seed::kSolverOnly) return solver_seed;
  }

  // --- pile seed ----------------------------------------------------------
  OfflineAssignment pile_seed;
  pile_seed.disk_of_request.assign(trace.size(), kInvalidDisk);
  densest_pile_fill(pile_seed, trace, placement, power);
  pile_seed.validate(trace, placement);
  refine(pile_seed);
  if (options_.seed == MwisOptions::Seed::kPileOnly) {
    last_used_pile_ = true;
    return pile_seed;
  }

  // --- kBest: keep whichever refined seed costs less (Lemma 1) ------------
  const double solver_energy =
      evaluate_offline(trace, solver_seed, placement.num_disks(), power,
                       eval_ws_)
          .total_energy();
  const double pile_energy =
      evaluate_offline(trace, pile_seed, placement.num_disks(), power,
                       eval_ws_)
          .total_energy();
  if (pile_energy < solver_energy) {
    last_used_pile_ = true;
    return pile_seed;
  }
  return solver_seed;
}

}  // namespace eas::core
