#include "core/scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace eas::core {

void OfflineAssignment::validate(
    const trace::Trace& trace,
    const placement::PlacementMap& placement) const {
  EAS_ENSURE_MSG(disk_of_request.size() == trace.size(),
                "assignment covers " << disk_of_request.size() << " of "
                                     << trace.size() << " requests");
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const DiskId k = disk_of_request[i];
    EAS_ENSURE_MSG(placement.stores(trace[i].data, k),
                  "request " << i << " assigned to disk " << k
                             << " which lacks data " << trace[i].data);
  }
}

std::vector<std::vector<double>> OfflineAssignment::arrivals_by_disk(
    const trace::Trace& trace, DiskId num_disks) const {
  EAS_REQUIRE(disk_of_request.size() == trace.size());
  std::vector<std::vector<double>> by_disk(num_disks);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EAS_REQUIRE_MSG(disk_of_request[i] < num_disks,
                  "assignment references disk " << disk_of_request[i]);
    by_disk[disk_of_request[i]].push_back(trace[i].time);
  }
  for (auto& v : by_disk) std::sort(v.begin(), v.end());
  return by_disk;
}

}  // namespace eas::core
