#include "core/cost_scheduler.hpp"

#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace eas::core {

std::string CostFunctionScheduler::name() const {
  std::ostringstream os;
  os << "heuristic(a=" << params_.alpha << ",b=" << params_.beta << ")";
  return os.str();
}

DiskId CostFunctionScheduler::pick(const disk::Request& r,
                                   const SystemView& view) {
  const auto& locs = view.placement().locations(r.data);
  EAS_DCHECK(!locs.empty());
  const fault::FailureView* fv = view.degraded() ? view.failure_view() : nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  bool best_sleeping = true;
  DiskId best = kInvalidDisk;
  for (DiskId k : locs) {
    if (fv != nullptr && !fv->replica_readable(r.data, k)) continue;
    const auto snap = view.snapshot(k);
    const double base =
        composite_cost(snap, view.now(), view.power_params(), params_);
    // Dirty-set pressure discount: a disk holding pending destage work
    // amortizes its wake cost across the foreground read *and* the flush,
    // so its effective cost shrinks. Exactly the identity when no cache
    // tier exists (pending_destage == 0 everywhere).
    // Backpressure penalty: an admission-control-saturated disk is priced
    // up so load drains toward replicas with queue headroom. Identity when
    // no reliability tier exists (backpressured is identically false).
    const double pressured =
        view.backpressured(k) ? base * kBackpressurePenalty : base;
    const double c =
        pressured / (1.0 + kDestagePressureWeight *
                               static_cast<double>(view.pending_destage(k)));
    const bool sleeping = snap.state == disk::DiskState::Standby ||
                          snap.state == disk::DiskState::SpinningDown;
    // Lexicographic (cost, sleeping?, replica order): equal-cost ties go to
    // a spinning disk — same joules, but no multi-second wake delay — and
    // then to the earliest replica for reproducibility.
    if (c < best_cost || (c == best_cost && best_sleeping && !sleeping)) {
      best_cost = c;
      best_sleeping = sleeping;
      best = k;
    }
  }
  return best;
}

}  // namespace eas::core
