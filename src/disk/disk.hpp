// Disk entity: five-state power machine + FCFS service queue + energy meter.
//
// This is the DiskSim substitute. A disk is driven entirely by simulator
// events; the storage system submits requests, a power policy calls
// spin_down()/spin_up(), and the disk reports completions and idle
// transitions through callbacks.
//
// State machine:
//
//   Standby --spin_up()--> SpinningUp --(T_up)--> Active (queue non-empty)
//                                             \-> Idle   (queue empty)
//   Idle --submit()--> Active --(queue drains)--> Idle [on_idle fires]
//   Idle --spin_down()--> SpinningDown --(T_down)--> Standby
//   Standby/SpinningDown --submit()--> spin-up is started (after the
//       in-flight spin-down completes; hardware cannot abort a spin-down)
//
// Energy accounting integrates power over the time spent in each state and
// is flushed on every transition, so stats are exact at any finalize() time.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "disk/params.hpp"
#include "disk/request.hpp"
#include "sim/simulator.hpp"
#include "util/ids.hpp"

namespace eas::disk {

enum class DiskState : int {
  Standby = 0,
  SpinningUp = 1,
  Idle = 2,
  Active = 3,
  SpinningDown = 4,
};

inline constexpr int kNumDiskStates = 5;
const char* to_string(DiskState s);

/// Per-disk counters; all times/energies are cumulative since construction
/// and exact as of the last flush (finalize() flushes to a horizon).
struct DiskStats {
  std::array<double, kNumDiskStates> seconds_in_state{};
  std::array<double, kNumDiskStates> joules_in_state{};
  std::uint64_t spin_ups = 0;
  std::uint64_t spin_downs = 0;
  std::uint64_t requests_served = 0;

  double total_seconds() const;
  double total_joules() const;
  double seconds(DiskState s) const {
    return seconds_in_state[static_cast<int>(s)];
  }
  double joules(DiskState s) const {
    return joules_in_state[static_cast<int>(s)];
  }
};

class Disk {
 public:
  using CompletionCallback = std::function<void(const Completion&)>;
  /// Fired when the disk transitions Active -> Idle (queue drained) or
  /// SpinningUp -> Idle (spun up with nothing to do). Power policies hang
  /// their spin-down timers off this.
  using IdleCallback = std::function<void(Disk&)>;

  Disk(DiskId id, sim::Simulator& sim, DiskPowerParams power,
       DiskPerfParams perf, DiskState initial_state = DiskState::Standby);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  DiskId id() const { return id_; }
  DiskState state() const { return state_; }
  const DiskPowerParams& power_params() const { return power_; }
  const DiskPerfParams& perf_params() const { return perf_; }

  void set_completion_callback(CompletionCallback cb) {
    on_completion_ = std::move(cb);
  }
  void set_idle_callback(IdleCallback cb) { on_idle_ = std::move(cb); }

  /// Submits a request. Wakes the disk if necessary; the request is serviced
  /// FCFS once the platters are spinning.
  void submit(const Request& r);

  /// Fault path: removes and returns every queued (not yet in service)
  /// request, in queue order, so the storage system can fail them over to a
  /// surviving replica. The in-service transfer, if any, still completes —
  /// the head already reached the data (documented simplification: a real
  /// fail-stop would lose it). Any pending wake-after-spin-down is dropped
  /// with the queue.
  std::vector<Request> take_pending();

  /// Reliability path: removes the first queued (not yet in service) request
  /// with this id. Returns false when no queued entry matches — the request
  /// is in service (it will complete regardless; the head already moved) or
  /// was never here. Queue order of the survivors is preserved.
  bool remove_pending(RequestId id);

  /// Reliability path: id of the oldest queued foreground read (FCFS order —
  /// front of the queue first), or kInvalidRequest when no queued entry is a
  /// non-internal read. The in-service request is never a candidate.
  RequestId oldest_queued_read() const;

  /// Power-policy entry point: begin spinning down. Only legal from Idle;
  /// calling in any other state is an invariant violation (policies must
  /// check state(), which the bundled policies do via cancelled timers).
  void spin_down();

  /// Power-policy entry point: begin spinning up (e.g. oracle pre-spin).
  /// Legal from Standby; a no-op in SpinningUp/Idle/Active; from
  /// SpinningDown it marks a wake-up so the disk bounces back afterwards.
  void spin_up();

  /// Queue depth including the in-service request — the paper's P(d_k)
  /// performance cost (Eq. 7).
  std::size_t queued_requests() const {
    return queue_.size() + (in_service_ ? 1 : 0);
  }

  /// Arrival time of the most recent request submitted to this disk, or a
  /// negative sentinel if none yet — the paper's T_last (Eq. 5).
  sim::SimTime last_request_time() const { return last_request_time_; }
  bool has_served_any() const { return last_request_time_ >= 0.0; }

  /// Time the disk entered its current state.
  sim::SimTime state_since() const { return state_since_; }

  /// Current head cylinder (position model only; otherwise the initial
  /// mid-stroke position).
  unsigned head_cylinder() const { return head_cylinder_; }

  /// Deterministic data-to-cylinder mapping used by the position model.
  static unsigned cylinder_of(DataId data, unsigned num_cylinders);

  /// Flushes accounting up to `horizon` (>= the last transition). Call once
  /// at the end of a run before reading stats.
  void finalize(sim::SimTime horizon);

  const DiskStats& stats() const { return stats_; }

 private:
  void transition_to(DiskState next);
  void flush_accounting();
  double power_of(DiskState s) const;
  void start_service();
  void complete_service();
  void on_spinup_done();
  void on_spindown_done();

  DiskId id_;
  sim::Simulator& sim_;
  DiskPowerParams power_;
  DiskPerfParams perf_;

  DiskState state_;
  sim::SimTime state_since_ = 0.0;
  sim::SimTime accounted_until_ = 0.0;

  struct Pending {
    Request request;
    // Whether the request arrived while the platters were not spinning (it
    // will have waited on a power transition when serviced).
    bool waited_for_spin = false;
  };
  /// Index into queue_ of the next request to serve under the configured
  /// discipline (0 for FCFS; nearest cylinder for SPTF).
  std::size_t next_to_serve() const;

  std::deque<Pending> queue_;
  bool in_service_ = false;
  Request current_{};
  sim::SimTime current_started_ = 0.0;
  bool current_waited_spinup_ = false;
  bool wake_after_spindown_ = false;

  sim::SimTime last_request_time_ = -1.0;
  unsigned head_cylinder_;

  DiskStats stats_;
  CompletionCallback on_completion_;
  IdleCallback on_idle_;
};

}  // namespace eas::disk
