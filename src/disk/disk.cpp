#include "disk/disk.hpp"

#include "obs/trace_recorder.hpp"

namespace eas::disk {

const char* to_string(DiskState s) {
  switch (s) {
    case DiskState::Standby: return "standby";
    case DiskState::SpinningUp: return "spin-up";
    case DiskState::Idle: return "idle";
    case DiskState::Active: return "active";
    case DiskState::SpinningDown: return "spin-down";
  }
  return "?";
}

double DiskStats::total_seconds() const {
  double t = 0.0;
  for (double s : seconds_in_state) t += s;
  return t;
}

double DiskStats::total_joules() const {
  double j = 0.0;
  for (double e : joules_in_state) j += e;
  return j;
}

Disk::Disk(DiskId id, sim::Simulator& sim, DiskPowerParams power,
           DiskPerfParams perf, DiskState initial_state)
    : id_(id),
      sim_(sim),
      power_(power),
      perf_(perf),
      state_(initial_state),
      state_since_(sim.now()),
      accounted_until_(sim.now()),
      head_cylinder_(perf.num_cylinders / 2) {
  power_.validate();
  perf_.validate();
  EAS_CHECK_MSG(initial_state == DiskState::Standby ||
                    initial_state == DiskState::Idle,
                "disks must start settled (standby or idle)");
}

double Disk::power_of(DiskState s) const {
  switch (s) {
    case DiskState::Standby: return power_.standby_watts;
    case DiskState::SpinningUp: return power_.spinup_watts;
    case DiskState::Idle: return power_.idle_watts;
    case DiskState::Active: return power_.active_watts;
    case DiskState::SpinningDown: return power_.spindown_watts;
  }
  return 0.0;
}

void Disk::flush_accounting() {
  const sim::SimTime now = sim_.now();
  EAS_ASSERT_MSG(now >= accounted_until_,
                 "accounting horizon ahead of the clock");
  const double dt = now - accounted_until_;
  if (dt > 0.0) {
    const int s = static_cast<int>(state_);
    stats_.seconds_in_state[s] += dt;
    stats_.joules_in_state[s] += dt * power_of(state_);
    // Powers and dt are non-negative, so the meters can only grow; a
    // negative reading means the accounting itself is corrupt.
    EAS_ASSERT_MSG(stats_.joules_in_state[s] >= 0.0,
                   "negative energy meter in state " << to_string(state_));
  }
  accounted_until_ = now;
}

namespace {

/// Legal edges of the §2 power-state machine (row = from, col = to). Any
/// transition outside this table is a scheduler/policy bug, not a modelling
/// choice: hardware cannot e.g. abort a spin-down or jump Standby->Active.
constexpr bool kLegalTransition[kNumDiskStates][kNumDiskStates] = {
    //                to: Standby SpinUp Idle  Active SpinDown
    /* from Standby  */ {false, true, false, false, false},
    /* from SpinUp   */ {false, false, true, true, false},
    /* from Idle     */ {false, false, false, true, true},
    /* from Active   */ {false, false, true, false, false},
    /* from SpinDown */ {true, false, false, false, false},
};

}  // namespace

void Disk::transition_to(DiskState next) {
  EAS_CHECK_MSG(
      kLegalTransition[static_cast<int>(state_)][static_cast<int>(next)],
      "illegal power transition " << to_string(state_) << " -> "
                                  << to_string(next) << " on disk " << id_);
  flush_accounting();
  EAS_OBS(sim_.recorder(),
          power_transition(sim_.now(), id_, static_cast<std::uint32_t>(state_),
                           static_cast<std::uint32_t>(next)));
  state_ = next;
  state_since_ = sim_.now();
}

unsigned Disk::cylinder_of(DataId data, unsigned num_cylinders) {
  // splitmix-style scramble so adjacent data ids land on unrelated tracks.
  std::uint64_t z = static_cast<std::uint64_t>(data) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<unsigned>((z ^ (z >> 31)) % num_cylinders);
}

std::size_t Disk::next_to_serve() const {
  EAS_DCHECK(!queue_.empty());
  if (perf_.discipline == QueueDiscipline::kFcfs ||
      !perf_.use_position_model || queue_.size() == 1) {
    return 0;
  }
  // SPTF: nearest cylinder to the current head position.
  std::size_t best = 0;
  unsigned best_dist = ~0u;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const unsigned cyl =
        cylinder_of(queue_[i].request.data, perf_.num_cylinders);
    const unsigned dist =
        cyl > head_cylinder_ ? cyl - head_cylinder_ : head_cylinder_ - cyl;
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

void Disk::submit(const Request& r) {
  // A zero-byte request would give the service-time model nothing to do and
  // silently skew per-request metrics; rejecting it here keeps every queue
  // entry meaningful.
  EAS_REQUIRE_MSG(r.size_bytes > 0,
                  "zero-size request " << r.id << " submitted to disk " << id_);
  last_request_time_ = sim_.now();
  // A request submitted while the platters are not spinning will have waited
  // on a power transition by the time it is serviced.
  const bool disk_was_down = state_ == DiskState::Standby ||
                             state_ == DiskState::SpinningUp ||
                             state_ == DiskState::SpinningDown;
  queue_.push_back(Pending{r, disk_was_down});
  EAS_OBS(sim_.recorder(),
          request_event(sim_.now(), obs::Ev::kQueue, r.id, id_,
                        static_cast<std::uint32_t>(queued_requests())));

  switch (state_) {
    case DiskState::Idle:
      start_service();
      break;
    case DiskState::Active:
      if (!in_service_) start_service();  // re-entrant submit from callback
      break;
    case DiskState::Standby:
      spin_up();
      break;
    case DiskState::SpinningUp:
      break;  // serviced when the spin-up completes
    case DiskState::SpinningDown:
      wake_after_spindown_ = true;
      break;
  }
}

std::vector<Request> Disk::take_pending() {
  std::vector<Request> drained;
  drained.reserve(queue_.size());
  for (const Pending& p : queue_) drained.push_back(p.request);
  queue_.clear();
  // The only reason to bounce back from a spin-down was the queued work
  // that just left.
  wake_after_spindown_ = false;
  return drained;
}

bool Disk::remove_pending(RequestId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->request.id == id) {
      queue_.erase(it);
      // Mirror take_pending(): if the removed entry was the only reason to
      // bounce back from an in-flight spin-down, drop the wake.
      if (queue_.empty()) wake_after_spindown_ = false;
      return true;
    }
  }
  return false;
}

RequestId Disk::oldest_queued_read() const {
  for (const Pending& p : queue_) {
    if (p.request.is_read && !p.request.internal) return p.request.id;
  }
  return kInvalidRequest;
}

void Disk::spin_up() {
  switch (state_) {
    case DiskState::Standby: {
      transition_to(DiskState::SpinningUp);
      ++stats_.spin_ups;
      sim_.schedule_in(power_.spinup_seconds, [this] { on_spinup_done(); });
      break;
    }
    case DiskState::SpinningDown:
      wake_after_spindown_ = true;
      break;
    case DiskState::SpinningUp:
    case DiskState::Idle:
    case DiskState::Active:
      break;  // already spinning (or about to be)
  }
}

void Disk::spin_down() {
  EAS_REQUIRE_MSG(state_ == DiskState::Idle,
                  "spin_down from " << to_string(state_) << " on disk "
                                    << id_);
  EAS_REQUIRE_MSG(queue_.empty() && !in_service_,
                  "spin_down with queued work on disk " << id_);
  transition_to(DiskState::SpinningDown);
  ++stats_.spin_downs;
  sim_.schedule_in(power_.spindown_seconds, [this] { on_spindown_done(); });
}

void Disk::on_spinup_done() {
  EAS_CHECK(state_ == DiskState::SpinningUp);
  if (!queue_.empty()) {
    start_service();
  } else {
    transition_to(DiskState::Idle);
    if (on_idle_) on_idle_(*this);
  }
}

void Disk::on_spindown_done() {
  EAS_CHECK(state_ == DiskState::SpinningDown);
  transition_to(DiskState::Standby);
  if (wake_after_spindown_) {
    wake_after_spindown_ = false;
    spin_up();
  }
}

void Disk::start_service() {
  EAS_CHECK(!in_service_);
  EAS_CHECK(!queue_.empty());
  if (state_ != DiskState::Active) transition_to(DiskState::Active);
  const std::size_t pick = next_to_serve();
  current_ = queue_[pick].request;
  current_waited_spinup_ = queue_[pick].waited_for_spin;
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
  in_service_ = true;
  current_started_ = sim_.now();
  EAS_OBS(sim_.recorder(), request_event(sim_.now(), obs::Ev::kServiceBegin,
                                         current_.id, id_));
  double service;
  if (perf_.use_position_model) {
    const unsigned target = cylinder_of(current_.data, perf_.num_cylinders);
    service = perf_.service_seconds_positional(head_cylinder_, target,
                                               current_.size_bytes);
    head_cylinder_ = target;
  } else {
    service = perf_.service_seconds(current_.size_bytes);
  }
  sim_.schedule_in(service, [this] { complete_service(); });
}

void Disk::complete_service() {
  EAS_CHECK(state_ == DiskState::Active);
  EAS_CHECK(in_service_);
  in_service_ = false;
  ++stats_.requests_served;
  EAS_OBS(sim_.recorder(), request_event(sim_.now(), obs::Ev::kServiceEnd,
                                         current_.id, id_));

  Completion c;
  c.request = current_;
  c.disk = id_;
  c.service_start = current_started_;
  c.completion_time = sim_.now();
  c.waited_for_spinup = current_waited_spinup_;
  if (on_completion_) on_completion_(c);

  // The completion callback may have submitted more work re-entrantly.
  if (!in_service_) {
    if (!queue_.empty()) {
      start_service();
    } else if (state_ == DiskState::Active) {
      transition_to(DiskState::Idle);
      if (on_idle_) on_idle_(*this);
    }
  }
}

void Disk::finalize(sim::SimTime horizon) {
  EAS_REQUIRE_MSG(horizon >= accounted_until_,
                  "finalize horizon precedes accounted time");
  const double dt = horizon - accounted_until_;
  if (dt > 0.0) {
    const int s = static_cast<int>(state_);
    stats_.seconds_in_state[s] += dt;
    stats_.joules_in_state[s] += dt * power_of(state_);
  }
  accounted_until_ = horizon;
  EAS_ENSURE_MSG(stats_.total_joules() >= 0.0 && stats_.total_seconds() >= 0.0,
                 "negative cumulative accounting on disk " << id_);
}

}  // namespace eas::disk
