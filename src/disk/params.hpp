// Disk power and performance parameterisation (the paper's Fig 5).
//
// The evaluation models a Seagate Cheetah 15K.5 enterprise disk for service
// times and, because the Cheetah datasheet omits power-management figures,
// takes power numbers from the Seagate Barracuda specification — exactly the
// hybrid the paper describes in §4. Every quantity is a plain field so other
// disk models can be expressed without code changes.
#pragma once

#include <cmath>

#include "util/check.hpp"

namespace eas::disk {

/// Power model and spin-transition costs. Defaults follow the public
/// Barracuda 7200.10 SATA datasheet values commonly used in the
/// energy-management literature.
struct DiskPowerParams {
  double idle_watts = 9.3;      ///< P_I: platters spinning, no transfer
  double active_watts = 12.8;   ///< seeking / transferring
  double standby_watts = 0.8;   ///< spun down, electronics alive
  double spinup_watts = 24.0;   ///< mean draw during spin-up
  double spindown_watts = 9.3;  ///< mean draw during spin-down
  double spinup_seconds = 10.0;   ///< T_up (paper: 5–15 s observed penalty)
  double spindown_seconds = 5.0;  ///< T_down

  /// When >= 0 this forces T_B instead of deriving it from the energy model.
  /// The paper's worked examples (§2.3) use T_B = 5 s with zero transition
  /// costs, which is only expressible as an override.
  double breakeven_override_seconds = -1.0;

  double spinup_energy() const { return spinup_watts * spinup_seconds; }
  double spindown_energy() const { return spindown_watts * spindown_seconds; }

  /// E_up/down of the paper: energy of one full down+up cycle.
  double transition_energy() const {
    return spinup_energy() + spindown_energy();
  }

  /// T_up + T_down.
  double transition_seconds() const {
    return spinup_seconds + spindown_seconds;
  }

  /// The 2CPM breakeven time (idleness threshold): T_B = E_up/down / P_I
  /// per Irani et al. — the point at which staying idle costs as much as a
  /// full spin cycle. With the defaults this is ≈ 30.8 s.
  double breakeven_seconds() const {
    if (breakeven_override_seconds >= 0.0) return breakeven_override_seconds;
    return transition_energy() / idle_watts;
  }

  /// The paper's per-request energy ceiling under 2CPM:
  /// E_up + E_down + T_B · P_I (reached when the successor arrives after the
  /// disk has fully spun down — Lemma 1, case I).
  double max_request_energy() const {
    return transition_energy() + breakeven_seconds() * idle_watts;
  }

  /// Eq. 3 window: a successor arriving within T_B + T_up + T_down of its
  /// predecessor can still yield positive energy saving.
  double saving_window_seconds() const {
    return breakeven_seconds() + transition_seconds();
  }

  /// Throws InvariantError on physically meaningless configurations.
  void validate() const {
    EAS_REQUIRE(idle_watts > 0.0);
    EAS_REQUIRE(active_watts >= idle_watts);
    EAS_REQUIRE(standby_watts >= 0.0 && standby_watts < idle_watts);
    EAS_REQUIRE(spinup_watts >= 0.0 && spindown_watts >= 0.0);
    EAS_REQUIRE(spinup_seconds >= 0.0 && spindown_seconds >= 0.0);
  }
};

/// Queue discipline for requests waiting at one disk.
enum class QueueDiscipline {
  kFcfs,  ///< arrival order (the evaluation default)
  kSptf,  ///< shortest-positioning-time-first: serve the nearest cylinder
};

/// First-order service-time model for a 15k RPM enterprise disk (Cheetah
/// 15K.5 class). The paper stresses that I/O time (milliseconds) is dwarfed
/// by power transitions (seconds); this model preserves that separation while
/// still producing realistic sub-100 ms response times for queue-free hits.
///
/// Two fidelity levels:
///  * default — every request costs the average seek + rotational latency
///    (deterministic, what the calibrated experiments use);
///  * position model (`use_position_model = true`) — data ids map to
///    cylinders, seek time follows the usual a + b·sqrt(distance) curve, and
///    the disk tracks its head position, enabling the SPTF discipline.
struct DiskPerfParams {
  double avg_seek_seconds = 0.0035;      ///< average read seek, 3.5 ms
  double full_stroke_seek_seconds = 0.008;
  double rpm = 15000.0;
  double transfer_mb_per_sec = 125.0;    ///< sustained outer-zone rate
  double controller_overhead_seconds = 0.0002;

  bool use_position_model = false;
  unsigned num_cylinders = 50000;
  /// Fixed head-settle component of any non-zero seek.
  double seek_settle_seconds = 0.0008;
  QueueDiscipline discipline = QueueDiscipline::kFcfs;

  /// Half a rotation at the configured RPM.
  double avg_rotational_latency_seconds() const { return 30.0 / rpm; }

  /// Deterministic expected service time for a transfer of `bytes`
  /// (average-seek model; used whenever the position model is off).
  double service_seconds(unsigned long bytes) const {
    const double xfer =
        static_cast<double>(bytes) / (transfer_mb_per_sec * 1e6);
    return controller_overhead_seconds + avg_seek_seconds +
           avg_rotational_latency_seconds() + xfer;
  }

  /// Seek time for a cylinder distance under the position model: the
  /// classic settle + b·sqrt(distance) curve, with b chosen so a
  /// full-stroke seek costs full_stroke_seek_seconds.
  double seek_seconds(unsigned distance) const {
    if (distance == 0) return 0.0;
    const double b =
        (full_stroke_seek_seconds - seek_settle_seconds) /
        std::sqrt(static_cast<double>(num_cylinders));
    return seek_settle_seconds + b * std::sqrt(static_cast<double>(distance));
  }

  /// Position-model service time from head cylinder `from` to `to`.
  double service_seconds_positional(unsigned from, unsigned to,
                                    unsigned long bytes) const {
    const double xfer =
        static_cast<double>(bytes) / (transfer_mb_per_sec * 1e6);
    const unsigned dist = from > to ? from - to : to - from;
    return controller_overhead_seconds + seek_seconds(dist) +
           avg_rotational_latency_seconds() + xfer;
  }

  void validate() const {
    EAS_REQUIRE(avg_seek_seconds >= 0.0);
    EAS_REQUIRE(full_stroke_seek_seconds >= avg_seek_seconds);
    EAS_REQUIRE(rpm > 0.0);
    EAS_REQUIRE(transfer_mb_per_sec > 0.0);
    EAS_REQUIRE(controller_overhead_seconds >= 0.0);
    EAS_REQUIRE(num_cylinders > 0);
    EAS_REQUIRE(seek_settle_seconds >= 0.0);
  }
};

/// A pedagogical power model matching the paper's worked examples (§2.3):
/// 1 W in idle/active, no spin-up/down time or energy penalty, breakeven
/// forced to 5 s via the override. The examples' energy figures then count
/// idle joules only (schedule B of Fig 2 = 10 = 2 disks × T_B × 1 W), which
/// matches the paper's arithmetic. Used by tests and paper_walkthrough.
inline DiskPowerParams example_power_params() {
  DiskPowerParams p;
  p.idle_watts = 1.0;
  p.active_watts = 1.0;
  p.standby_watts = 0.0;
  p.spinup_watts = 0.0;
  p.spindown_watts = 0.0;
  p.spinup_seconds = 0.0;
  p.spindown_seconds = 0.0;
  p.breakeven_override_seconds = 5.0;
  return p;
}

}  // namespace eas::disk
