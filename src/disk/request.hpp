// I/O request records exchanged between scheduler, disks and metrics.
#pragma once

#include "sim/simulator.hpp"
#include "util/ids.hpp"

namespace eas::disk {

/// A read request for one data block (the paper: ~512 KB file block).
struct Request {
  RequestId id = 0;
  DataId data = kInvalidData;
  unsigned long size_bytes = 512 * 1024;
  /// Direction. Disks serve both identically (the paper's service model is
  /// symmetric); the cache tier branches on it — reads probe the block
  /// cache, writes may be absorbed by the write-back buffer.
  bool is_read = true;
  /// When the request entered the storage system.
  sim::SimTime arrival_time = 0.0;
  /// When the scheduler dispatched it to a disk (>= arrival under batching).
  sim::SimTime dispatch_time = 0.0;
  /// Internal traffic (rebuild/scrub re-replication) synthesized by the
  /// storage system itself: competes for disk time like any request but is
  /// excluded from the foreground response-time and availability metrics.
  bool internal = false;
};

/// Completion record emitted by a disk.
struct Completion {
  Request request;
  DiskId disk = kInvalidDisk;
  sim::SimTime service_start = 0.0;  ///< transfer began
  sim::SimTime completion_time = 0.0;
  bool waited_for_spinup = false;  ///< any part of the wait was spin-up/down

  /// End-to-end response time as the paper measures it: completion minus
  /// system arrival (includes batching queue delay and spin-up delay).
  double response_seconds() const { return completion_time - request.arrival_time; }
};

}  // namespace eas::disk
