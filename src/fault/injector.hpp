// FaultInjector: turns a FaultProfile into simulator events.
//
// The injector owns *when* faults happen; the storage system owns *what*
// they do to traffic (queue drain, failover, rebuild I/O). It mutates the
// shared FailureView and notifies the owner through three callbacks:
//
//   on_disk_down(k, kind)        — health just became kDown
//   on_disk_back(k, rebuild)     — repair finished; rebuild says whether the
//                                  returning disk needs re-replication
//   on_blocks_lost(k, lo, hi, scrub_delay)
//                                — latent sector errors surfaced; caller
//                                  schedules the scrub/re-replication
//
// Determinism: each disk gets its own util::Rng stream derived from
// (profile.seed, disk id), so the stochastic failure/repair timeline of disk
// k is a pure function of the profile — independent of event interleaving,
// other disks, and thread count. Events beyond the horizon passed to
// start() are never scheduled, so runs still terminate.
#pragma once

#include <functional>
#include <vector>

#include "fault/failure_view.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace eas::fault {

class FaultInjector {
 public:
  using DownCallback = std::function<void(DiskId, ScriptedFault::Kind)>;
  using BackCallback = std::function<void(DiskId, bool needs_rebuild)>;
  using BlocksLostCallback =
      std::function<void(DiskId, DataId lo, DataId hi, double scrub_delay)>;

  FaultInjector(sim::Simulator& sim, FailureView& view, FaultProfile profile);

  void set_on_disk_down(DownCallback cb) { on_down_ = std::move(cb); }
  void set_on_disk_back(BackCallback cb) { on_back_ = std::move(cb); }
  void set_on_blocks_lost(BlocksLostCallback cb) {
    on_blocks_lost_ = std::move(cb);
  }

  /// Schedules every scripted entry and arms the stochastic lifetime chain
  /// of each disk. Faults strictly after `horizon` (typically the trace end
  /// time) are suppressed so the event queue drains.
  void start(double horizon);

  const FaultProfile& profile() const { return profile_; }
  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

  /// Weibull(shape, scale) variate by inverse transform on `rng`.
  static double weibull(util::Rng& rng, double shape, double scale);

 private:
  void fail_disk(DiskId k, ScriptedFault::Kind kind, double repair_delay,
                 bool rebuild_on_return);
  void arm_stochastic(DiskId k, double from_time);

  sim::Simulator& sim_;
  FailureView& view_;
  FaultProfile profile_;
  double horizon_ = 0.0;
  std::vector<util::Rng> disk_rng_;
  FaultStats stats_;

  DownCallback on_down_;
  BackCallback on_back_;
  BlocksLostCallback on_blocks_lost_;
};

}  // namespace eas::fault
