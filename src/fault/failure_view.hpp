// FailureView: the live health overlay the placement consumers consult.
//
// PlacementMap stays immutable (the paper's non-interference claim); what
// changes under faults is *visibility*: a replica is readable only while its
// disk is up and no latent sector error covers its block. Schedulers filter
// candidate replica sets through this view, the storage system enforces at
// dispatch time that a dead disk never receives a request, and the power
// manager pins rebuilding disks active.
//
// The view also owns the degraded-time accounting: every mutation carries
// the simulated timestamp, and the view integrates the span during which
// any disk is down/rebuilding or any block range is lost.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "placement/placement.hpp"
#include "util/ids.hpp"

namespace eas::fault {

enum class DiskHealth : std::uint8_t {
  kUp = 0,          ///< serving foreground I/O
  kDown = 1,        ///< fail-stopped or timed out: receives nothing
  kRebuilding = 2,  ///< back online, replaying lost data: internal I/O only
};

const char* to_string(DiskHealth h);

class FailureView {
 public:
  explicit FailureView(DiskId num_disks);

  DiskId num_disks() const { return static_cast<DiskId>(health_.size()); }
  DiskHealth health(DiskId k) const { return health_.at(k); }
  bool disk_up(DiskId k) const { return health_.at(k) == DiskHealth::kUp; }

  /// True while any fault is visible (disk not up, or a lost block range).
  /// Schedulers use this as the fast path: when false they read the raw
  /// placement lists, so a fault-capable run with no active fault makes
  /// identical decisions to a fault-free one.
  bool degraded() const { return not_up_ != 0 || lost_ranges_ != 0; }

  /// True when a foreground read of data b from disk k can succeed now:
  /// the disk is up and no lost range covers b.
  bool replica_readable(DataId b, DiskId k) const;

  /// True when disk k may receive *any* request (foreground or rebuild):
  /// everything except kDown. Rebuild writes target kRebuilding disks.
  bool accepts_io(DiskId k) const { return health_.at(k) != DiskHealth::kDown; }

  /// Fills `out` with the readable replicas of b in placement order.
  /// Returns false when none survive.
  bool live_locations(const placement::PlacementMap& pm, DataId b,
                      std::vector<DiskId>& out) const;

  /// First readable replica of b in placement order, or kInvalidDisk.
  DiskId first_live(const placement::PlacementMap& pm, DataId b) const;

  /// True while a rebuild/scrub is re-replicating onto k; the power policy
  /// must not spin such a disk down (pinned-active).
  bool rebuild_in_progress(DiskId k) const { return pinned_.at(k); }

  // --- mutation (fault injector / storage system only) -------------------
  // Every mutator takes the simulated time so degraded-span accounting is
  // exact; `now` must be monotone across calls.

  void set_health(double now, DiskId k, DiskHealth h);
  void set_rebuild_pin(double now, DiskId k, bool pinned);
  /// Marks blocks [lo, hi] on k unreadable. Overlapping ranges coalesce.
  void add_lost_range(double now, DiskId k, DataId lo, DataId hi);
  /// Restores blocks [lo, hi] on k (scrub/rebuild finished).
  void clear_lost_range(double now, DiskId k, DataId lo, DataId hi);
  bool has_lost_ranges(DiskId k) const { return !lost_.at(k).empty(); }

  /// Closes the open degraded episode (if any) at `horizon` and returns the
  /// accumulated (seconds, episodes). Call once when the run finishes.
  std::pair<double, std::uint64_t> finalize_degraded(double horizon);

  double degraded_seconds() const { return degraded_seconds_; }
  std::uint64_t degraded_episodes() const { return degraded_episodes_; }

 private:
  void note_mutation(double now, bool was_degraded);

  std::vector<DiskHealth> health_;
  std::vector<std::uint8_t> pinned_;
  /// Per-disk sorted, disjoint inclusive [lo, hi] lost block ranges. Tiny in
  /// practice (a handful of scripted LSEs), so linear scans are fine.
  std::vector<std::vector<std::pair<DataId, DataId>>> lost_;
  std::size_t not_up_ = 0;
  std::size_t lost_ranges_ = 0;

  double degraded_since_ = 0.0;
  double degraded_seconds_ = 0.0;
  std::uint64_t degraded_episodes_ = 0;
};

}  // namespace eas::fault
