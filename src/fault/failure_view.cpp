#include "fault/failure_view.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace eas::fault {

const char* to_string(DiskHealth h) {
  switch (h) {
    case DiskHealth::kUp: return "up";
    case DiskHealth::kDown: return "down";
    case DiskHealth::kRebuilding: return "rebuilding";
  }
  return "?";
}

const char* to_string(ScriptedFault::Kind k) {
  switch (k) {
    case ScriptedFault::Kind::kFailStop: return "fail-stop";
    case ScriptedFault::Kind::kTransient: return "transient";
    case ScriptedFault::Kind::kLatentSector: return "latent-sector";
  }
  return "?";
}

void FaultProfile::validate(DiskId num_disks) const {
  EAS_REQUIRE_MSG(mttf_seconds >= 0.0, "negative mttf " << mttf_seconds);
  EAS_REQUIRE_MSG(mttr_seconds >= 0.0, "negative mttr " << mttr_seconds);
  EAS_REQUIRE_MSG(weibull_shape > 0.0,
                  "weibull shape must be positive, got " << weibull_shape);
  EAS_REQUIRE_MSG(rebuild_bytes_per_item > 0,
                  "rebuild_bytes_per_item must be positive");
  for (const ScriptedFault& f : script) {
    EAS_REQUIRE_MSG(f.time >= 0.0, "scripted fault at negative time "
                                       << f.time);
    EAS_REQUIRE_MSG(f.duration >= 0.0,
                    "scripted fault with negative duration " << f.duration);
    EAS_REQUIRE_MSG(f.disk < num_disks, "scripted fault on disk "
                                            << f.disk << " outside fleet of "
                                            << num_disks);
    if (f.kind == ScriptedFault::Kind::kLatentSector) {
      EAS_REQUIRE_MSG(f.data_lo <= f.data_hi,
                      "latent-sector range [" << f.data_lo << ", " << f.data_hi
                                              << "] is inverted");
    }
    if (f.kind == ScriptedFault::Kind::kTransient) {
      EAS_REQUIRE_MSG(f.duration > 0.0,
                      "transient timeout needs a positive duration");
    }
  }
}

FailureView::FailureView(DiskId num_disks)
    : health_(num_disks, DiskHealth::kUp),
      pinned_(num_disks, 0),
      lost_(num_disks) {
  EAS_REQUIRE_MSG(num_disks > 0, "failure view over an empty fleet");
}

bool FailureView::replica_readable(DataId b, DiskId k) const {
  if (health_.at(k) != DiskHealth::kUp) return false;
  for (const auto& [lo, hi] : lost_[k]) {
    if (b >= lo && b <= hi) return false;
  }
  return true;
}

bool FailureView::live_locations(const placement::PlacementMap& pm, DataId b,
                                 std::vector<DiskId>& out) const {
  out.clear();
  for (DiskId k : pm.locations(b)) {
    if (replica_readable(b, k)) out.push_back(k);
  }
  return !out.empty();
}

DiskId FailureView::first_live(const placement::PlacementMap& pm,
                               DataId b) const {
  for (DiskId k : pm.locations(b)) {
    if (replica_readable(b, k)) return k;
  }
  return kInvalidDisk;
}

void FailureView::note_mutation(double now, bool was_degraded) {
  const bool is_degraded = degraded();
  if (!was_degraded && is_degraded) {
    degraded_since_ = now;
    ++degraded_episodes_;
  } else if (was_degraded && !is_degraded) {
    EAS_ASSERT_MSG(now >= degraded_since_, "degraded episode ends in the past");
    degraded_seconds_ += now - degraded_since_;
  }
}

void FailureView::set_health(double now, DiskId k, DiskHealth h) {
  const bool was = degraded();
  const DiskHealth prev = health_.at(k);
  if (prev == h) return;
  if (prev == DiskHealth::kUp) ++not_up_;
  if (h == DiskHealth::kUp) {
    EAS_ASSERT(not_up_ > 0);
    --not_up_;
  }
  health_[k] = h;
  note_mutation(now, was);
}

void FailureView::set_rebuild_pin(double now, DiskId k, bool pinned) {
  (void)now;
  EAS_REQUIRE_MSG(k < num_disks(),
                  "rebuild pin for unknown disk " << k << " (fleet size "
                                                  << num_disks() << ")");
  pinned_[k] = pinned ? 1 : 0;
}

void FailureView::add_lost_range(double now, DiskId k, DataId lo, DataId hi) {
  EAS_REQUIRE_MSG(lo <= hi, "lost range [" << lo << ", " << hi
                                           << "] is inverted");
  const bool was = degraded();
  auto& ranges = lost_.at(k);
  // Merge with any overlapping/adjacent existing range.
  std::vector<std::pair<DataId, DataId>> merged;
  merged.reserve(ranges.size() + 1);
  for (const auto& r : ranges) {
    if (r.second + 1 >= lo && r.first <= (hi == kInvalidData ? hi : hi + 1)) {
      lo = std::min(lo, r.first);
      hi = std::max(hi, r.second);
    } else {
      merged.push_back(r);
    }
  }
  merged.emplace_back(lo, hi);
  std::sort(merged.begin(), merged.end());
  lost_ranges_ += merged.size();
  lost_ranges_ -= ranges.size();
  ranges = std::move(merged);
  note_mutation(now, was);
}

void FailureView::clear_lost_range(double now, DiskId k, DataId lo,
                                   DataId hi) {
  const bool was = degraded();
  auto& ranges = lost_.at(k);
  std::vector<std::pair<DataId, DataId>> kept;
  kept.reserve(ranges.size());
  for (const auto& r : ranges) {
    if (r.second < lo || r.first > hi) {
      kept.push_back(r);  // untouched
      continue;
    }
    // Keep any part of r outside [lo, hi].
    if (r.first < lo) kept.emplace_back(r.first, lo - 1);
    if (r.second > hi) kept.emplace_back(hi + 1, r.second);
  }
  lost_ranges_ += kept.size();
  lost_ranges_ -= ranges.size();
  ranges = std::move(kept);
  note_mutation(now, was);
}

std::pair<double, std::uint64_t> FailureView::finalize_degraded(
    double horizon) {
  if (degraded()) {
    EAS_REQUIRE_MSG(horizon >= degraded_since_,
                    "finalize horizon precedes the open degraded episode");
    degraded_seconds_ += horizon - degraded_since_;
    degraded_since_ = horizon;  // idempotent-ish for a later, larger horizon
  }
  return {degraded_seconds_, degraded_episodes_};
}

}  // namespace eas::fault
