#include "fault/injector.hpp"

#include <cmath>

#include "util/check.hpp"

namespace eas::fault {

namespace {

/// Mixes the profile seed with the disk id into one 64-bit stream seed.
/// splitmix64's finalizer inside Rng::reseed does the heavy lifting; the
/// multiplier just separates adjacent disk ids before it.
std::uint64_t stream_seed(std::uint64_t seed, DiskId k) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(k) + 1));
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, FailureView& view,
                             FaultProfile profile)
    : sim_(sim), view_(view), profile_(std::move(profile)) {
  profile_.validate(view_.num_disks());
  disk_rng_.reserve(view_.num_disks());
  for (DiskId k = 0; k < view_.num_disks(); ++k) {
    disk_rng_.emplace_back(stream_seed(profile_.seed, k));
  }
}

double FaultInjector::weibull(util::Rng& rng, double shape, double scale) {
  // Inverse transform: F^{-1}(u) = scale * (-ln(1-u))^(1/shape).
  // next_double() is in [0, 1), so 1-u is in (0, 1] and the log is finite.
  const double u = rng.next_double();
  return scale * std::pow(-std::log(1.0 - u), 1.0 / shape);
}

void FaultInjector::start(double horizon) {
  EAS_REQUIRE_MSG(horizon >= 0.0, "negative fault horizon " << horizon);
  horizon_ = horizon;

  for (const ScriptedFault& f : profile_.script) {
    if (f.time > horizon_) continue;  // would fire after the run drains
    switch (f.kind) {
      case ScriptedFault::Kind::kFailStop:
        sim_.schedule_at(f.time, [this, f] {
          fail_disk(f.disk, f.kind, f.duration, /*rebuild_on_return=*/true);
        });
        break;
      case ScriptedFault::Kind::kTransient:
        sim_.schedule_at(f.time, [this, f] {
          fail_disk(f.disk, f.kind, f.duration, /*rebuild_on_return=*/false);
        });
        break;
      case ScriptedFault::Kind::kLatentSector:
        sim_.schedule_at(f.time, [this, f] {
          if (!view_.disk_up(f.disk)) return;  // whole disk already out
          ++stats_.latent_sector_events;
          view_.add_lost_range(sim_.now(), f.disk, f.data_lo, f.data_hi);
          if (on_blocks_lost_) {
            on_blocks_lost_(f.disk, f.data_lo, f.data_hi, f.duration);
          }
        });
        break;
    }
  }

  if (profile_.mttf_seconds > 0.0) {
    for (DiskId k = 0; k < view_.num_disks(); ++k) {
      arm_stochastic(k, 0.0);
    }
  }
}

void FaultInjector::arm_stochastic(DiskId k, double from_time) {
  // The Weibull scale that yields the requested mean: MTTF = scale * Γ(1 +
  // 1/shape). For shape 1 this reduces to scale = MTTF (exponential).
  const double scale =
      profile_.mttf_seconds / std::tgamma(1.0 + 1.0 / profile_.weibull_shape);
  const double ttf = weibull(disk_rng_[k], profile_.weibull_shape, scale);
  const double when = from_time + ttf;
  if (when > horizon_) return;  // survives the run
  // Repair time is drawn *now*, not at failure time, so the disk's whole
  // timeline comes from its own stream in a fixed order regardless of what
  // the rest of the system does in between.
  const double repair = profile_.mttr_seconds > 0.0
                            ? disk_rng_[k].exponential(1.0 / profile_.mttr_seconds)
                            : 0.0;
  sim_.schedule_at(when, [this, k, repair] {
    fail_disk(k, ScriptedFault::Kind::kFailStop, repair,
              /*rebuild_on_return=*/true);
  });
}

void FaultInjector::fail_disk(DiskId k, ScriptedFault::Kind kind,
                              double repair_delay, bool rebuild_on_return) {
  if (!view_.disk_up(k)) return;  // already down/rebuilding: drop duplicate
  const double now = sim_.now();
  if (kind == ScriptedFault::Kind::kTransient) {
    ++stats_.transient_timeouts;
  } else {
    ++stats_.disk_failures;
  }
  view_.set_health(now, k, DiskHealth::kDown);
  if (on_down_) on_down_(k, kind);

  if (repair_delay <= 0.0) return;  // never returns within this run
  const double back = now + repair_delay;
  if (back > horizon_) return;  // still dead when the trace ends
  sim_.schedule_at(back, [this, k, kind, rebuild_on_return] {
    EAS_ASSERT_MSG(view_.health(k) == DiskHealth::kDown,
                   "repair completion for a disk that is not down");
    ++stats_.repairs;
    const double t = sim_.now();
    if (rebuild_on_return) {
      // Replacement drive: online but empty until the rebuild replays it.
      view_.set_health(t, k, DiskHealth::kRebuilding);
    } else {
      view_.set_health(t, k, DiskHealth::kUp);
    }
    if (on_back_) on_back_(k, rebuild_on_return);
    // A repaired disk re-enters the stochastic lifetime process.
    if (profile_.mttf_seconds > 0.0 &&
        kind == ScriptedFault::Kind::kFailStop) {
      arm_stochastic(k, t);
    }
  });
}

}  // namespace eas::fault
