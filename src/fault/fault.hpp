// Fault model: what can break, when, and what the run records about it.
//
// The paper's premise is that replication is an energy lever *because* it is
// first a fault-tolerance mechanism; this module supplies the missing half.
// A FaultProfile describes per-disk stochastic failure/repair processes
// (Weibull time-to-failure, exponential repair — the standard disk
// reliability model) plus a scriptable injection schedule (fail disk d at
// time t, latent sector errors on a block range, transient timeouts). The
// profile travels inside ExperimentParams/SystemConfig; a default
// (disabled) profile leaves every existing run bit-identical.
//
// All randomness flows through the seeded util::Rng with one independent
// stream per disk, so fault times depend only on (seed, disk id) — never on
// event interleaving or thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"

namespace eas::fault {

/// One scripted injection. Times are simulated seconds from run start.
struct ScriptedFault {
  enum class Kind {
    /// Disk dies at `time`: queued requests fail over, routing excludes it.
    /// If `duration` > 0 a replacement disk comes online after it and is
    /// rebuilt from surviving replicas; 0 means the disk never returns.
    kFailStop,
    /// Disk unreachable for `duration` seconds (controller timeout): queued
    /// requests fail over, but data is intact — no rebuild when it returns.
    kTransient,
    /// Blocks [data_lo, data_hi] on `disk` become unreadable (latent sector
    /// errors). A scrub detects and re-replicates them after `duration`
    /// seconds; 0 means they stay lost.
    kLatentSector,
  };

  Kind kind = Kind::kFailStop;
  double time = 0.0;
  DiskId disk = 0;
  double duration = 0.0;
  DataId data_lo = 0;  ///< kLatentSector only (inclusive)
  DataId data_hi = 0;  ///< kLatentSector only (inclusive)
};

const char* to_string(ScriptedFault::Kind k);

/// Complete fault configuration for one run. Default-constructed == no
/// faults: enabled() is false and the whole degraded path is compiled out of
/// the run (null FailureView, zero overhead, bit-identical results).
struct FaultProfile {
  // --- stochastic whole-disk failures -----------------------------------
  /// Mean time to failure (Weibull scale), seconds; 0 disables the
  /// stochastic process. Real MTTFs are years; sweeps use minutes so the
  /// trace horizon actually sees failures.
  double mttf_seconds = 0.0;
  /// Weibull shape: 1 = memoryless (exponential), >1 = wear-out, <1 =
  /// infant mortality.
  double weibull_shape = 1.0;
  /// Mean time to repair (exponential), seconds; 0 = failed disks never
  /// return.
  double mttr_seconds = 0.0;

  // --- scripted injections ----------------------------------------------
  std::vector<ScriptedFault> script;

  // --- rebuild model ----------------------------------------------------
  /// Bytes copied per data item during a rebuild (one internal read on a
  /// surviving replica + one internal write on the returning disk, both
  /// competing with foreground I/O).
  std::uint64_t rebuild_bytes_per_item = 4u << 20;

  /// Seed for the per-disk failure/repair streams.
  std::uint64_t seed = 1;

  bool enabled() const { return mttf_seconds > 0.0 || !script.empty(); }

  /// Throws InvariantError on nonsense (negative times, script entries
  /// referencing disks outside the fleet, inverted block ranges, ...).
  void validate(DiskId num_disks) const;
};

/// What a degraded run records beyond the standard RunResult metrics.
/// Aggregated by the storage system + injector; emitted as the "faults"
/// JSON object and the availability columns of emit_cells.
struct FaultStats {
  std::uint64_t disk_failures = 0;        ///< fail-stop events (incl. stochastic)
  std::uint64_t transient_timeouts = 0;
  std::uint64_t latent_sector_events = 0;
  std::uint64_t repairs = 0;              ///< disks that came back
  /// Requests dropped because no live replica of their data existed.
  std::uint64_t unavailable_requests = 0;
  /// Failover events: a request served although a fault had removed one of
  /// its replicas (re-routed at dispatch, re-dispatched from a dying disk's
  /// queue, or scheduled around the dead replica to begin with).
  std::uint64_t failovers = 0;
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t rebuild_bytes = 0;        ///< re-replication traffic volume
  /// Items a rebuild could not restore (no surviving replica at copy time).
  std::uint64_t rebuild_items_lost = 0;
  /// Wall time with >= 1 disk down/rebuilding or >= 1 block range lost.
  double degraded_seconds = 0.0;
  std::uint64_t degraded_episodes = 0;

  double mean_time_in_degraded() const {
    return degraded_episodes == 0
               ? 0.0
               : degraded_seconds / static_cast<double>(degraded_episodes);
  }
};

}  // namespace eas::fault
