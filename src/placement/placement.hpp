// Data placement: which disks hold a copy of each data item.
//
// The scheduler never *chooses* placement (the paper's central claim is
// non-interference with whatever placement the file system uses); it only
// reads it. PlacementMap is therefore immutable after construction.
//
// The builder reproduces the paper's evaluation placement (§4.2): the
// original copy of each data item lands on a disk drawn from a Zipf-like
// distribution p(rank) = c / rank^z over the disks (z swept 0..1 in
// Appendix A.1), and the remaining replication_factor-1 copies land on
// distinct uniformly-random other disks — the fault-tolerance-style spread.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace eas::placement {

class PlacementMap {
 public:
  /// `locations[b]` lists the disks storing data b; the first entry is the
  /// original location, the rest are replicas. Throws InvariantError if any
  /// list is empty, contains duplicates, or references a disk out of range.
  PlacementMap(DiskId num_disks, std::vector<std::vector<DiskId>> locations);

  DiskId num_disks() const { return num_disks_; }
  DataId num_data() const { return static_cast<DataId>(locations_.size()); }

  /// All replica locations of `b` (original first).
  const std::vector<DiskId>& locations(DataId b) const;

  /// The original (primary) location of `b`.
  DiskId original(DataId b) const { return locations(b).front(); }

  /// Number of copies of `b`.
  std::size_t replication_factor(DataId b) const { return locations(b).size(); }

  /// True if disk k holds a copy of data b (linear scan; replica lists are
  /// tiny — the paper sweeps factors 1..5).
  bool stores(DataId b, DiskId k) const;

  /// Number of distinct data items with a copy on each disk; used by tests
  /// to verify the configured skew.
  std::vector<std::size_t> per_disk_data_counts() const;

 private:
  DiskId num_disks_;
  std::vector<std::vector<DiskId>> locations_;
};

/// Configuration for the paper's evaluation placement.
struct ZipfPlacementConfig {
  DiskId num_disks = 180;       ///< §4.2: 180-disk system
  DataId num_data = 30000;      ///< §4.1: >30,000 distinct data
  unsigned replication_factor = 3;  ///< total copies incl. original, 1..5
  double zipf_z = 1.0;          ///< original-location skew (0 = uniform)
  std::uint64_t seed = 42;
};

/// Builds the §4.2 placement. Deterministic in the seed.
PlacementMap make_zipf_placement(const ZipfPlacementConfig& cfg);

}  // namespace eas::placement
