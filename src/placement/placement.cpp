#include "placement/placement.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/zipf.hpp"

namespace eas::placement {

PlacementMap::PlacementMap(DiskId num_disks,
                           std::vector<std::vector<DiskId>> locations)
    : num_disks_(num_disks), locations_(std::move(locations)) {
  EAS_REQUIRE_MSG(num_disks_ > 0, "placement needs at least one disk");
  for (DataId b = 0; b < locations_.size(); ++b) {
    auto& locs = locations_[b];
    EAS_REQUIRE_MSG(!locs.empty(), "data " << b << " has no location");
    // Replica-count bound: distinct disks, so at most num_disks copies.
    EAS_REQUIRE_MSG(locs.size() <= num_disks_,
                    "data " << b << " has " << locs.size()
                            << " replicas on a " << num_disks_
                            << "-disk system");
    for (DiskId k : locs) {
      EAS_REQUIRE_MSG(k < num_disks_,
                      "data " << b << " placed on out-of-range disk " << k);
    }
    // Duplicate copies on one disk are meaningless for scheduling and would
    // silently inflate the replica choice set.
    auto sorted = locs;
    std::sort(sorted.begin(), sorted.end());
    EAS_CHECK_MSG(std::adjacent_find(sorted.begin(), sorted.end()) ==
                      sorted.end(),
                  "data " << b << " has duplicate locations");
  }
}

const std::vector<DiskId>& PlacementMap::locations(DataId b) const {
  EAS_CHECK_MSG(b < locations_.size(), "unknown data id " << b);
  return locations_[b];
}

bool PlacementMap::stores(DataId b, DiskId k) const {
  const auto& locs = locations(b);
  return std::find(locs.begin(), locs.end(), k) != locs.end();
}

std::vector<std::size_t> PlacementMap::per_disk_data_counts() const {
  std::vector<std::size_t> counts(num_disks_, 0);
  for (const auto& locs : locations_) {
    for (DiskId k : locs) ++counts[k];
  }
  return counts;
}

PlacementMap make_zipf_placement(const ZipfPlacementConfig& cfg) {
  EAS_CHECK_MSG(cfg.replication_factor >= 1, "need at least one copy");
  EAS_CHECK_MSG(cfg.replication_factor <= cfg.num_disks,
                "more copies than disks");
  EAS_CHECK(cfg.num_data > 0);

  util::Rng rng(cfg.seed);

  // Random rank->disk mapping so that "rank 1" is not always disk 0; the
  // skew profile is what matters, not which physical disk is hottest.
  std::vector<DiskId> rank_to_disk(cfg.num_disks);
  std::iota(rank_to_disk.begin(), rank_to_disk.end(), DiskId{0});
  rng.shuffle(rank_to_disk);

  util::ZipfSampler zipf(cfg.num_disks, cfg.zipf_z);

  std::vector<std::vector<DiskId>> locations(cfg.num_data);
  for (DataId b = 0; b < cfg.num_data; ++b) {
    auto& locs = locations[b];
    locs.reserve(cfg.replication_factor);
    locs.push_back(rank_to_disk[zipf.sample(rng)]);
    // Uniform distinct replicas (rejection sampling; replica counts are tiny
    // relative to 180 disks so collisions are rare).
    while (locs.size() < cfg.replication_factor) {
      const auto k = static_cast<DiskId>(rng.next_below(cfg.num_disks));
      if (std::find(locs.begin(), locs.end(), k) == locs.end()) {
        locs.push_back(k);
      }
    }
    EAS_ENSURE_MSG(locs.size() == cfg.replication_factor,
                   "data " << b << " got " << locs.size() << " replicas, want "
                           << cfg.replication_factor);
  }
  return PlacementMap(cfg.num_disks, std::move(locations));
}

}  // namespace eas::placement
