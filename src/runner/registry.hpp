// SchedulerSpec registry: the single name → scheduler table.
//
// Replaces the per-bench run_* free functions and their string dispatch.
// A spec names an execution model (§2.2) plus a factory that builds a fresh,
// thread-confined scheduler + power-policy pair for one sweep cell; the
// registry owns the canonical §4.3 roster and accepts bench-local
// extensions (threshold variants, predictive gammas, ...).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/scheduler.hpp"
#include "power/policy.hpp"
#include "runner/experiment.hpp"
#include "storage/storage_system.hpp"

namespace eas::runner {

/// Which storage::run_* entry point executes the spec (§2.2 models plus the
/// always-on baseline, which fixes its own policy and initial state).
enum class ExecutionModel { kAlwaysOn, kOnline, kBatch, kOffline };

const char* to_string(ExecutionModel m);

/// A freshly constructed scheduler + policy pair for one run. Exactly the
/// member matching the spec's model is set (policy accompanies online/batch;
/// offline runs derive an OraclePolicy internally; always-on needs neither).
/// Instances are thread-confined: SweepRunner calls the factory on the
/// worker executing the cell and never shares the bundle across cells.
struct SchedulerBundle {
  std::unique_ptr<core::OnlineScheduler> online;
  std::unique_ptr<core::BatchScheduler> batch;
  std::unique_ptr<core::OfflineScheduler> offline;
  std::unique_ptr<power::PowerPolicy> policy;
};

struct SchedulerSpec {
  std::string name;
  ExecutionModel model = ExecutionModel::kOnline;
  /// One-line description shown by harness listings.
  std::string description;
  /// Builds the thread-confined scheduler+policy pair for one cell. Called
  /// with the cell's validated params and its (immutable, possibly shared)
  /// placement; must not capture mutable shared state.
  std::function<SchedulerBundle(const ExperimentParams&,
                                const placement::PlacementMap&)> make;
};

/// Ordered collection of specs. Copyable so a bench can start from the
/// paper roster and add its own variants without mutating global state.
class SchedulerRegistry {
 public:
  /// The six §4.3 rows: always-on, random, static, heuristic, wsc, mwis —
  /// in that canonical order.
  static SchedulerRegistry paper_roster();

  /// Shared immutable paper roster (most benches need nothing else).
  static const SchedulerRegistry& global();

  /// Appends a spec. Throws InvariantError on an empty or duplicate name or
  /// a missing factory.
  void add(SchedulerSpec spec);

  const SchedulerSpec* find(std::string_view name) const;
  /// Like find() but throws InvariantError listing the known names.
  const SchedulerSpec& at(std::string_view name) const;
  bool contains(std::string_view name) const { return find(name) != nullptr; }

  /// Registration order (the canonical row order for tables).
  std::vector<std::string> names() const;
  std::size_t size() const { return specs_.size(); }
  const std::vector<SchedulerSpec>& specs() const { return specs_; }

 private:
  std::vector<SchedulerSpec> specs_;
};

/// Executes one (spec × params) cell: builds the bundle, runs the trace
/// under the spec's model and returns the result. Deterministic in the
/// params' seeds — identical inputs give bit-identical results regardless
/// of the calling thread.
storage::RunResult run_cell(const SchedulerSpec& spec,
                            const ExperimentParams& p,
                            const trace::Trace& trace,
                            const placement::PlacementMap& placement);

/// Name-based convenience over `registry.at(name)`.
storage::RunResult run_cell(const SchedulerRegistry& registry,
                            std::string_view name, const ExperimentParams& p,
                            const trace::Trace& trace,
                            const placement::PlacementMap& placement);

}  // namespace eas::runner
