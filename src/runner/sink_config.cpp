#include "runner/sink_config.hpp"

#include <cstdlib>
#include <string_view>

#include "util/check.hpp"

namespace eas::runner {

const char* to_string(EmitFormat f) {
  switch (f) {
    case EmitFormat::kTable:
      return "table";
    case EmitFormat::kCsv:
      return "csv";
    case EmitFormat::kJson:
      return "json";
  }
  return "?";
}

void SinkConfig::validate() const {
  EAS_REQUIRE_MSG(format == EmitFormat::kTable || format == EmitFormat::kCsv ||
                      format == EmitFormat::kJson,
                  "unknown emit format");
  EAS_REQUIRE_MSG(trace_path.empty() || with_trace,
                  "trace_path set but with_trace is off");
}

SinkConfig SinkConfig::from_env(SinkConfig fallback) {
  const char* env = std::getenv("EAS_EMIT");
  if (env == nullptr) return fallback;
  const std::string_view v(env);
  if (v == "table") fallback.format = EmitFormat::kTable;
  if (v == "csv") fallback.format = EmitFormat::kCsv;
  if (v == "json") fallback.format = EmitFormat::kJson;
  return fallback;
}

}  // namespace eas::runner
