#include "runner/emit.hpp"

#include <cstdlib>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace eas::runner {

EmitFormat emit_format_from_env(EmitFormat fallback) {
  SinkConfig cfg;
  cfg.format = fallback;
  return SinkConfig::from_env(cfg).format;
}

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  EAS_REQUIRE_MSG(!columns_.empty(), "result table needs at least one column");
}

ResultTable& ResultTable::row() {
  if (!rows_.empty()) {
    EAS_ENSURE_MSG(rows_.back().size() == columns_.size(),
                  "row " << rows_.size() - 1 << " has " << rows_.back().size()
                         << " cells, expected " << columns_.size());
  }
  rows_.emplace_back();
  return *this;
}

ResultTable::Cell& ResultTable::push(Cell c) {
  EAS_REQUIRE_MSG(!rows_.empty(), "cell() before row()");
  EAS_REQUIRE_MSG(rows_.back().size() < columns_.size(),
                "too many cells in row " << rows_.size() - 1);
  rows_.back().push_back(std::move(c));
  return rows_.back().back();
}

ResultTable& ResultTable::cell(std::string v) {
  Cell c;
  c.kind = Cell::Kind::kText;
  c.text = std::move(v);
  push(std::move(c));
  return *this;
}

ResultTable& ResultTable::cell(double v, int precision) {
  Cell c;
  c.kind = Cell::Kind::kDouble;
  c.d = v;
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  c.text = os.str();
  push(std::move(c));
  return *this;
}

ResultTable& ResultTable::cell(long long v) {
  Cell c;
  c.kind = Cell::Kind::kInt;
  c.i = v;
  c.text = std::to_string(v);
  push(std::move(c));
  return *this;
}

ResultTable& ResultTable::cell(unsigned long long v) {
  Cell c;
  c.kind = Cell::Kind::kUint;
  c.u = v;
  c.text = std::to_string(v);
  push(std::move(c));
  return *this;
}

void ResultTable::emit(std::ostream& os, EmitFormat format) const {
  if (!rows_.empty()) {
    EAS_ENSURE_MSG(rows_.back().size() == columns_.size(),
                  "last row has " << rows_.back().size()
                                  << " cells, expected " << columns_.size());
  }
  switch (format) {
    case EmitFormat::kTable:
      emit_table(os);
      return;
    case EmitFormat::kCsv:
      emit_csv(os);
      return;
    case EmitFormat::kJson:
      emit_json(os);
      return;
  }
}

void ResultTable::emit_table(std::ostream& os) const {
  if (!title_.empty()) os << "=== " << title_ << " ===\n";
  util::Table t(columns_);
  for (const auto& r : rows_) {
    t.row();
    for (const auto& c : r) t.cell(c.text);
  }
  t.print(os);
}

namespace {

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void ResultTable::emit_csv(std::ostream& os) const {
  if (!title_.empty()) os << "# " << title_ << "\n";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << (i > 0 ? "," : "") << csv_quote(columns_[i]);
  }
  os << "\n";
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i > 0) os << ',';
      const Cell& c = r[i];
      switch (c.kind) {
        case Cell::Kind::kText:
          os << csv_quote(c.text);
          break;
        case Cell::Kind::kDouble:
          os << util::json_number(c.d);  // shortest round-trip form
          break;
        case Cell::Kind::kInt:
          os << c.i;
          break;
        case Cell::Kind::kUint:
          os << c.u;
          break;
      }
    }
    os << "\n";
  }
}

void ResultTable::emit_json(std::ostream& os) const {
  util::JsonWriter w(os);
  w.begin_object();
  w.field("title", title_);
  w.key("columns");
  w.begin_array();
  for (const auto& c : columns_) w.value(c);
  w.end_array();
  w.key("rows");
  w.begin_array();
  for (const auto& r : rows_) {
    w.begin_object();
    for (std::size_t i = 0; i < r.size(); ++i) {
      w.key(columns_[i]);
      const Cell& c = r[i];
      switch (c.kind) {
        case Cell::Kind::kText:
          w.value(c.text);
          break;
        case Cell::Kind::kDouble:
          w.value(c.d);
          break;
        case Cell::Kind::kInt:
          w.value(c.i);
          break;
        case Cell::Kind::kUint:
          w.value(c.u);
          break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

namespace {

const char* to_string(CellStatus s) {
  switch (s) {
    case CellStatus::kOk:
      return "ok";
    case CellStatus::kFailed:
      return "failed";
    case CellStatus::kSkipped:
      return "skipped";
  }
  return "?";
}

/// Fault-free twin of `r`: the first OK cell with the same scheduler whose
/// params match r's with the fault profile cleared. Availability sweeps run
/// both variants side by side, so the twin usually exists; nullptr when the
/// sweep only ran the degraded cells.
const CellResult* fault_free_twin(const std::vector<CellResult>& results,
                                  const CellResult& r) {
  ExperimentParams stripped = r.spec.params;
  stripped.fault = {};
  const std::string wanted = describe(stripped);
  for (const auto& c : results) {
    if (c.status != CellStatus::kOk || c.result.faults_enabled) continue;
    if (c.spec.scheduler == r.spec.scheduler && describe(c.spec.params) == wanted) {
      return &c;
    }
  }
  return nullptr;
}

}  // namespace

void emit_cells(std::ostream& os, const std::vector<CellResult>& results,
                EmitFormat format) {
  // Availability columns appear only when some cell actually injected
  // faults, so fault-free sweep output is byte-identical to the historical
  // schema (the golden tests pin this).
  bool any_faults = false;
  for (const auto& r : results) {
    if (r.status == CellStatus::kOk && r.result.faults_enabled) {
      any_faults = true;
      break;
    }
  }
  // Cache columns follow the same enabled-only rule as the fault columns.
  bool any_cache = false;
  for (const auto& r : results) {
    if (r.status == CellStatus::kOk && r.result.cache_enabled) {
      any_cache = true;
      break;
    }
  }
  // As do the reliability columns.
  bool any_reliability = false;
  for (const auto& r : results) {
    if (r.status == CellStatus::kOk && r.result.reliability_enabled) {
      any_reliability = true;
      break;
    }
  }

  if (format == EmitFormat::kJson) {
    util::JsonWriter w(os);
    w.begin_array();
    for (const auto& r : results) {
      w.begin_object();
      w.field("index", static_cast<std::uint64_t>(r.index));
      w.field("tag", r.spec.tag);
      w.field("scheduler", r.spec.scheduler);
      w.field("params", describe(r.spec.params));
      w.field("status", to_string(r.status));
      w.field("wall_seconds", r.wall_seconds);
      w.field("peak_rss_kib", static_cast<std::int64_t>(r.peak_rss_kib));
      if (r.status == CellStatus::kFailed) w.field("error", r.error);
      if (r.status == CellStatus::kOk) {
        if (r.result.faults_enabled) {
          if (const CellResult* twin = fault_free_twin(results, r)) {
            w.field("energy_delta_vs_fault_free_j",
                    r.result.total_energy() - twin->result.total_energy());
          }
        }
        w.key("result");
        w.raw(r.result.to_json());
      }
      w.end_object();
    }
    w.end_array();
    os << "\n";
    return;
  }

  std::vector<std::string> columns = {
      "index", "tag", "scheduler", "status", "wall_s", "peak_rss_kib",
      "total_energy_j", "mean_resp_s", "spin_up+down"};
  if (any_faults) {
    columns.insert(columns.end(),
                   {"unavailable", "mean_degraded_s", "rebuild_bytes",
                    "energy_delta_j"});
  }
  if (any_cache) {
    columns.insert(columns.end(),
                   {"hit_ratio", "destaged", "mem_energy_j"});
  }
  if (any_reliability) {
    columns.insert(columns.end(),
                   {"deadline_miss", "retries", "hedge_wins", "shed"});
  }
  ResultTable t("sweep cells", std::move(columns));
  for (const auto& r : results) {
    const bool ok = r.status == CellStatus::kOk;
    t.row()
        .cell(r.index)
        .cell(r.spec.tag)
        .cell(r.spec.scheduler)
        .cell(to_string(r.status))
        .cell(r.wall_seconds, 3)
        .cell(static_cast<long long>(r.peak_rss_kib))
        .cell(ok ? r.result.total_energy() : 0.0)
        .cell(ok ? r.result.mean_response() : 0.0, 4)
        .cell(ok ? r.result.total_spin_ups() + r.result.total_spin_downs()
                 : 0);
    if (any_faults) {
      const fault::FaultStats& fs = r.result.fault_stats;
      t.cell(ok ? fs.unavailable_requests : 0)
          .cell(ok ? fs.mean_time_in_degraded() : 0.0, 4)
          .cell(ok ? fs.rebuild_bytes : 0);
      const CellResult* twin =
          ok && r.result.faults_enabled ? fault_free_twin(results, r) : nullptr;
      if (twin != nullptr) {
        t.cell(r.result.total_energy() - twin->result.total_energy());
      } else {
        t.cell("");  // no fault-free twin in this sweep (or fault-free row)
      }
    }
    if (any_cache) {
      const cache::CacheStats& cs = r.result.cache_stats;
      if (ok && r.result.cache_enabled) {
        t.cell(cs.hit_ratio(), 4)
            .cell(cs.destaged_blocks)
            .cell(cs.memory_energy_joules);
      } else {
        // Cache-off cell in a mixed sweep: blank, not a measured zero
        // (same convention as the fault columns above).
        t.cell("").cell("").cell("");
      }
    }
    if (any_reliability) {
      const reliability::ReliabilityStats& rs = r.result.reliability_stats;
      if (ok && r.result.reliability_enabled) {
        t.cell(rs.deadline_misses)
            .cell(rs.retries)
            .cell(rs.hedge_wins)
            .cell(rs.shed);
      } else {
        t.cell("").cell("").cell("").cell("");
      }
    }
  }
  t.emit(os, format);
}

}  // namespace eas::runner
