#include "runner/registry.hpp"

#include <sstream>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "core/mwis_scheduler.hpp"
#include "core/wsc_scheduler.hpp"
#include "power/fixed_threshold.hpp"
#include "util/check.hpp"

namespace eas::runner {

const char* to_string(ExecutionModel m) {
  switch (m) {
    case ExecutionModel::kAlwaysOn:
      return "always-on";
    case ExecutionModel::kOnline:
      return "online";
    case ExecutionModel::kBatch:
      return "batch";
    case ExecutionModel::kOffline:
      return "offline";
  }
  return "?";
}

SchedulerRegistry SchedulerRegistry::paper_roster() {
  SchedulerRegistry r;
  r.add({"always-on", ExecutionModel::kAlwaysOn,
         "all disks idle forever (energy baseline)",
         [](const ExperimentParams&, const placement::PlacementMap&) {
           return SchedulerBundle{};  // run_always_on fixes everything
         }});
  r.add({"random", ExecutionModel::kOnline,
         "uniformly random replica, 2CPM",
         [](const ExperimentParams& p, const placement::PlacementMap&) {
           SchedulerBundle b;
           b.online =
               std::make_unique<core::RandomScheduler>(p.trace_seed ^ 0x5eedULL);
           b.policy = std::make_unique<power::FixedThresholdPolicy>();
           return b;
         }});
  r.add({"static", ExecutionModel::kOnline,
         "original data location, 2CPM",
         [](const ExperimentParams&, const placement::PlacementMap&) {
           SchedulerBundle b;
           b.online = std::make_unique<core::StaticScheduler>();
           b.policy = std::make_unique<power::FixedThresholdPolicy>();
           return b;
         }});
  r.add({"heuristic", ExecutionModel::kOnline,
         "Eq. 6 composite-cost online heuristic, 2CPM",
         [](const ExperimentParams& p, const placement::PlacementMap&) {
           SchedulerBundle b;
           b.online = std::make_unique<core::CostFunctionScheduler>(p.cost);
           b.policy = std::make_unique<power::FixedThresholdPolicy>();
           return b;
         }});
  r.add({"wsc", ExecutionModel::kBatch,
         "weighted-set-cover batch scheduler, 2CPM",
         [](const ExperimentParams& p, const placement::PlacementMap&) {
           SchedulerBundle b;
           b.batch = std::make_unique<core::WscBatchScheduler>(
               p.batch_interval, p.cost);
           b.policy = std::make_unique<power::FixedThresholdPolicy>();
           return b;
         }});
  r.add({"mwis", ExecutionModel::kOffline,
         "offline conflict-graph MWIS schedule under the oracle policy",
         [](const ExperimentParams& p, const placement::PlacementMap&) {
           core::MwisOptions opts;
           opts.algorithm = core::MwisOptions::Algorithm::kGwmin;
           opts.graph.successor_horizon = p.mwis_horizon;
           opts.refine_passes = p.mwis_refine_passes;
           SchedulerBundle b;
           b.offline = std::make_unique<core::MwisOfflineScheduler>(opts);
           return b;
         }});
  return r;
}

const SchedulerRegistry& SchedulerRegistry::global() {
  static const SchedulerRegistry roster = paper_roster();
  return roster;
}

void SchedulerRegistry::add(SchedulerSpec spec) {
  EAS_REQUIRE_MSG(!spec.name.empty(), "scheduler spec with empty name");
  EAS_REQUIRE_MSG(static_cast<bool>(spec.make),
                "scheduler spec '" << spec.name << "' has no factory");
  EAS_REQUIRE_MSG(!contains(spec.name),
                "duplicate scheduler spec '" << spec.name << "'");
  specs_.push_back(std::move(spec));
}

const SchedulerSpec* SchedulerRegistry::find(std::string_view name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const SchedulerSpec& SchedulerRegistry::at(std::string_view name) const {
  const SchedulerSpec* s = find(name);
  if (s == nullptr) {
    std::ostringstream os;
    os << "unknown scheduler row: " << name << " (known:";
    for (const auto& spec : specs_) os << ' ' << spec.name;
    os << ')';
    throw InvariantError(os.str());
  }
  return *s;
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) out.push_back(s.name);
  return out;
}

storage::RunResult run_cell(const SchedulerSpec& spec,
                            const ExperimentParams& p,
                            const trace::Trace& trace,
                            const placement::PlacementMap& placement) {
  p.validate();
  const storage::SystemConfig config = system_config_for(p);
  if (spec.model == ExecutionModel::kAlwaysOn) {
    return storage::run_always_on(config, placement, trace);
  }

  SchedulerBundle bundle = spec.make(p, placement);
  switch (spec.model) {
    case ExecutionModel::kOnline: {
      EAS_REQUIRE_MSG(bundle.online && bundle.policy,
                    "spec '" << spec.name
                             << "' (online) must build scheduler + policy");
      return storage::run_online(config, placement, trace, *bundle.online,
                                 *bundle.policy);
    }
    case ExecutionModel::kBatch: {
      EAS_REQUIRE_MSG(bundle.batch && bundle.policy,
                    "spec '" << spec.name
                             << "' (batch) must build scheduler + policy");
      return storage::run_batch(config, placement, trace, *bundle.batch,
                                *bundle.policy);
    }
    case ExecutionModel::kOffline: {
      EAS_REQUIRE_MSG(static_cast<bool>(bundle.offline),
                    "spec '" << spec.name
                             << "' (offline) must build a scheduler");
      const auto assignment =
          bundle.offline->schedule(trace, placement, config.power);
      return storage::run_offline(config, placement, trace, assignment,
                                  bundle.offline->name());
    }
    case ExecutionModel::kAlwaysOn:
      break;  // handled above
  }
  EAS_CHECK_MSG(false, "unhandled execution model");
  return {};
}

storage::RunResult run_cell(const SchedulerRegistry& registry,
                            std::string_view name, const ExperimentParams& p,
                            const trace::Trace& trace,
                            const placement::PlacementMap& placement) {
  return run_cell(registry.at(name), p, trace, placement);
}

}  // namespace eas::runner
