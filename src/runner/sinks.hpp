// Composable output sinks: where experiment results go.
//
// The historical design was a pair of free functions (ResultTable::emit,
// emit_cells) steered by the EAS_EMIT env var. Sinks invert that: a harness
// builds one OutputSink from a SinkConfig (typically via ExperimentBuilder)
// and hands every artifact to it. The table/CSV/JSON sinks delegate to the
// exact renderers the free functions used, so their output is byte-identical
// to the historical schemas (golden-tested); trace and metrics exporters are
// just two more sinks riding the same deterministic sweep results.
#pragma once

#include <memory>
#include <ostream>
#include <vector>

#include "obs/metrics.hpp"
#include "runner/emit.hpp"
#include "runner/sink_config.hpp"
#include "runner/sweep.hpp"

namespace eas::runner {

/// One destination for experiment output. Implementations must be
/// deterministic: same results in, same bytes out, regardless of thread
/// count or environment.
class OutputSink {
 public:
  virtual ~OutputSink() = default;
  virtual const char* name() const = 0;
  /// A titled figure table (the benches' per-figure series).
  virtual void table(const ResultTable& t) = 0;
  /// A sweep's raw per-cell results.
  virtual void cells(const std::vector<CellResult>& results) = 0;
};

/// Aligned text tables — the rendering the paper-comparison docs quote.
class TableSink final : public OutputSink {
 public:
  explicit TableSink(std::ostream& os) : os_(os) {}
  const char* name() const override { return "table"; }
  void table(const ResultTable& t) override;
  void cells(const std::vector<CellResult>& results) override;

 private:
  std::ostream& os_;
};

/// RFC 4180 CSV for spreadsheet/plotting pipelines.
class CsvSink final : public OutputSink {
 public:
  explicit CsvSink(std::ostream& os) : os_(os) {}
  const char* name() const override { return "csv"; }
  void table(const ResultTable& t) override;
  void cells(const std::vector<CellResult>& results) override;

 private:
  std::ostream& os_;
};

/// Schema-stable JSON for programmatic consumers.
class JsonSink final : public OutputSink {
 public:
  explicit JsonSink(std::ostream& os) : os_(os) {}
  const char* name() const override { return "json"; }
  void table(const ResultTable& t) override;
  void cells(const std::vector<CellResult>& results) override;

 private:
  std::ostream& os_;
};

/// Chrome trace-event export: merges every OK cell's TraceRecorder into one
/// Perfetto-loadable document, one "process" per cell (pid = cell index,
/// named "<tag>/<scheduler>"). Cells that recorded nothing are skipped.
/// Writes to `path` when non-empty, else to the fallback stream. Ignores
/// table() — figure tables carry no trace.
class TraceSink final : public OutputSink {
 public:
  TraceSink(std::ostream& fallback, std::string path)
      : os_(fallback), path_(std::move(path)) {}
  const char* name() const override { return "trace"; }
  void table(const ResultTable&) override {}
  void cells(const std::vector<CellResult>& results) override;

 private:
  std::ostream& os_;
  std::string path_;
};

/// Metrics export: merges every OK cell's MetricRegistry in cell-index
/// order (deterministic regardless of EAS_THREADS) and emits the combined
/// registry's JSON as one line. Ignores table().
class MetricsSink final : public OutputSink {
 public:
  explicit MetricsSink(std::ostream& os) : os_(os) {}
  const char* name() const override { return "metrics"; }
  void table(const ResultTable&) override {}
  void cells(const std::vector<CellResult>& results) override;

 private:
  std::ostream& os_;
};

/// Fan-out to several sinks in order (primary format first, then trace /
/// metrics appenders — the order make_sink assembles).
class MultiSink final : public OutputSink {
 public:
  explicit MultiSink(std::vector<std::unique_ptr<OutputSink>> sinks)
      : sinks_(std::move(sinks)) {}
  const char* name() const override { return "multi"; }
  void table(const ResultTable& t) override;
  void cells(const std::vector<CellResult>& results) override;

 private:
  std::vector<std::unique_ptr<OutputSink>> sinks_;
};

/// Assembles the sink a SinkConfig describes, writing to `os`. Returns the
/// primary format sink alone when no observability sinks are requested,
/// otherwise a MultiSink in (format, trace, metrics) order.
std::unique_ptr<OutputSink> make_sink(const SinkConfig& cfg, std::ostream& os);

/// All OK cells' registries folded in cell-index order. Cells without
/// metrics contribute nothing; an all-off sweep yields an empty registry.
obs::MetricRegistry merged_metrics(const std::vector<CellResult>& results);

}  // namespace eas::runner
