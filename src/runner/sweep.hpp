// SweepRunner: parallel, deterministic execution of experiment grids.
//
// Every figure/ablation bench is a grid of independent (scheduler × params)
// cells; each cell builds its own Simulator/StorageSystem/scheduler/policy
// from the cell's seeds, so results are bit-identical regardless of thread
// count or completion order. The runner fans the grid out over a bounded
// work-stealing thread pool, shares the immutable trace/placement inputs
// across cells (shared_ptr, no copies), captures per-cell wall time and the
// process RSS high-water mark, and cancels remaining cells on the first
// failure.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "runner/registry.hpp"

namespace eas::runner {

/// One cell of a sweep grid. `scheduler` names a spec in the registry the
/// runner was given; `tag` is an opaque caller label (the axis value) that
/// rides through to the result and the emitters. `trace`/`placement` may be
/// pre-built and shared across cells; the runner builds (and caches) them
/// from `params` when null.
struct CellSpec {
  std::string scheduler;
  ExperimentParams params;
  std::string tag;

  std::shared_ptr<const trace::Trace> trace;
  std::shared_ptr<const placement::PlacementMap> placement;

  /// Escape hatch for runs the registry cannot express (e.g. mixed
  /// read/write runs that thread a WriteOffloadManager through). When set,
  /// it is invoked instead of the registry spec; it must be safe to call
  /// concurrently with other cells' functions (confine mutable state to the
  /// cell).
  std::function<storage::RunResult(const ExperimentParams&,
                                   const trace::Trace&,
                                   const placement::PlacementMap&)> run;
};

enum class CellStatus {
  kOk,
  kFailed,   ///< the cell threw; `error` holds the message
  kSkipped,  ///< cancelled before starting (a previous cell failed)
};

struct CellResult {
  std::size_t index = 0;  ///< position in the submitted grid
  CellSpec spec;
  CellStatus status = CellStatus::kSkipped;
  storage::RunResult result;
  std::string error;
  double wall_seconds = 0.0;
  /// Process peak RSS (KiB) observed after the cell finished — a monotone
  /// high-water mark, not a per-cell delta.
  long peak_rss_kib = 0;
};

struct SweepOptions {
  /// Worker threads; 0 → threads_from_env() (EAS_THREADS or hardware).
  std::size_t threads = 0;
  /// Stop launching new cells once any cell fails.
  bool cancel_on_failure = true;
  /// Rethrow the first failure from run() after all workers joined. When
  /// false, failures are only reported through CellResult::status.
  bool rethrow_failure = true;
  /// When set, one "# sweep: ..." summary line is written here after the
  /// run (benches point this at stderr).
  std::ostream* progress = nullptr;
};

/// Executes a grid of cells on a work-stealing pool. Results come back in
/// submission order. Deterministic: a cell's RunResult depends only on its
/// spec, never on scheduling.
class SweepRunner {
 public:
  /// Uses the shared paper roster.
  explicit SweepRunner(SweepOptions opts = {});
  /// Uses a caller-extended registry (kept by reference; must outlive the
  /// runner).
  SweepRunner(const SchedulerRegistry& registry, SweepOptions opts);

  std::vector<CellResult> run(std::vector<CellSpec> cells);

  std::size_t threads() const { return threads_; }
  const SchedulerRegistry& registry() const { return registry_; }

 private:
  const SchedulerRegistry& registry_;
  SweepOptions opts_;
  std::size_t threads_;
};

/// Convenience: the common (axis × scheduler) product grid. For every tag in
/// `axis` the supplied `configure` hook derives that axis point's params from
/// `base`, and one cell per scheduler name is emitted (all sharing the trace
/// and placement the runner builds for those params).
std::vector<CellSpec> product_grid(
    const ExperimentParams& base, const std::vector<std::string>& schedulers,
    const std::vector<std::string>& axis,
    const std::function<ExperimentParams(const ExperimentParams& base,
                                         const std::string& tag)>& configure);

/// Looks up the first result with the given tag and scheduler name; throws
/// InvariantError when absent (grid/lookup mismatch is a harness bug).
const CellResult& find_cell(const std::vector<CellResult>& results,
                            std::string_view tag, std::string_view scheduler);

}  // namespace eas::runner
