#include "runner/experiment.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "trace/synthetic.hpp"
#include "util/check.hpp"

namespace eas::runner {

namespace {

// Eager argument hardening for the builder setters: reject NaN/Inf and
// sign/zero violations with std::invalid_argument *naming the field*, so a
// grid declaration fails on the offending line with an actionable message
// (build()'s InvariantError checks still run afterwards for cross-field
// rules).
[[noreturn]] void bad_argument(const char* field, const char* rule,
                               double got) {
  std::ostringstream os;
  os << field << " " << rule << ", got " << got;
  throw std::invalid_argument(os.str());
}

void require_finite(double v, const char* field) {
  if (!std::isfinite(v)) bad_argument(field, "must be finite", v);
}

void require_non_negative(double v, const char* field) {
  require_finite(v, field);
  if (v < 0.0) bad_argument(field, "must be >= 0", v);
}

void require_positive(double v, const char* field) {
  require_finite(v, field);
  if (v <= 0.0) bad_argument(field, "must be > 0", v);
}

void require_unit_interval(double v, const char* field) {
  require_finite(v, field);
  if (v < 0.0 || v > 1.0) bad_argument(field, "must be within [0, 1]", v);
}

}  // namespace

const char* to_string(Workload w) {
  return w == Workload::kCello ? "cello" : "financial1";
}

std::optional<Workload> workload_from_string(std::string_view name) {
  for (const Workload w : kAllWorkloads) {
    if (name == to_string(w)) return w;
  }
  return std::nullopt;
}

void ExperimentParams::validate() const {
  EAS_REQUIRE_MSG(num_requests > 0, "experiment with zero requests");
  EAS_REQUIRE_MSG(num_disks > 0, "experiment with zero disks");
  EAS_REQUIRE_MSG(replication_factor >= 1 &&
                    replication_factor <= static_cast<unsigned>(num_disks),
                "replication factor " << replication_factor
                                      << " not in 1.." << num_disks);
  EAS_REQUIRE_MSG(zipf_z >= 0.0 && zipf_z <= 1.0,
                "zipf_z " << zipf_z << " outside [0, 1]");
  EAS_REQUIRE_MSG(batch_interval > 0.0,
                "batch interval must be positive, got " << batch_interval);
  EAS_REQUIRE_MSG(cost.alpha >= 0.0 && cost.alpha <= 1.0,
                "cost alpha " << cost.alpha << " outside [0, 1]");
  EAS_REQUIRE_MSG(cost.beta > 0.0, "cost beta must be positive");
  EAS_REQUIRE_MSG(mwis_horizon >= 1, "mwis horizon must be >= 1");
  fault.validate(num_disks);
  obs.validate();
  cache.validate();
  reliability.validate();
  sink.validate();
  EAS_REQUIRE_MSG(!sink.with_trace || obs.trace.enabled,
                  "sink requests trace output but tracing is not enabled "
                  "(use ExperimentBuilder::trace)");
  EAS_REQUIRE_MSG(!sink.with_metrics || obs.metrics,
                  "sink requests metrics output but metrics are not enabled "
                  "(use ExperimentBuilder::metrics)");
}

ExperimentParams ExperimentBuilder::build() const {
  p_.validate();
  return p_;
}

ExperimentBuilder& ExperimentBuilder::cache(cache::CacheConfig c) {
  require_positive(c.dram_latency_seconds, "cache.dram_latency_seconds");
  require_non_negative(c.memory_watts_per_gib, "cache.memory_watts_per_gib");
  require_positive(c.destage_deadline_seconds,
                   "cache.destage_deadline_seconds");
  require_unit_interval(c.high_watermark, "cache.high_watermark");
  require_unit_interval(c.low_watermark, "cache.low_watermark");
  if (c.block_bytes == 0) {
    throw std::invalid_argument("cache.block_bytes must be > 0, got 0");
  }
  if (c.max_destage_batch == 0) {
    throw std::invalid_argument("cache.max_destage_batch must be > 0, got 0");
  }
  c.enabled = true;
  p_.cache = c;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::reliability(
    reliability::ReliabilityConfig c) {
  require_non_negative(c.deadline_seconds, "reliability.deadline_seconds");
  require_non_negative(c.backoff_base_seconds,
                       "reliability.backoff_base_seconds");
  require_non_negative(c.backoff_cap_seconds,
                       "reliability.backoff_cap_seconds");
  require_unit_interval(c.jitter_fraction, "reliability.jitter_fraction");
  require_non_negative(c.hedge_delay_seconds,
                       "reliability.hedge_delay_seconds");
  require_unit_interval(c.backpressure_watermark,
                        "reliability.backpressure_watermark");
  if (c.max_attempts == 0) {
    throw std::invalid_argument("reliability.max_attempts must be >= 1, got 0");
  }
  c.enabled = true;
  p_.reliability = c;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::fail_disk_at(DiskId disk, double time,
                                                   double repair) {
  require_non_negative(time, "fail_disk_at.time");
  require_non_negative(repair, "fail_disk_at.repair");
  fault::ScriptedFault f;
  f.kind = fault::ScriptedFault::Kind::kFailStop;
  f.disk = disk;
  f.time = time;
  f.duration = repair;
  p_.fault.script.push_back(f);
  return *this;
}

trace::Trace make_workload(Workload w, std::uint64_t seed,
                           std::size_t num_requests) {
  trace::SyntheticTraceConfig cfg = w == Workload::kCello
                                        ? trace::cello_like_config(seed)
                                        : trace::financial_like_config(seed);
  cfg.num_requests = num_requests;
  return trace::make_synthetic_trace(cfg);
}

std::shared_ptr<const trace::Trace> make_shared_workload(
    const ExperimentParams& p) {
  return std::make_shared<const trace::Trace>(
      make_workload(p.workload, p.trace_seed, p.num_requests));
}

placement::PlacementMap make_placement(const ExperimentParams& p) {
  placement::ZipfPlacementConfig cfg;
  cfg.num_disks = p.num_disks;
  // The data universe must cover every id the workload references.
  cfg.num_data = 32768;
  cfg.replication_factor = p.replication_factor;
  cfg.zipf_z = p.zipf_z;
  cfg.seed = p.placement_seed;
  return placement::make_zipf_placement(cfg);
}

std::shared_ptr<const placement::PlacementMap> make_shared_placement(
    const ExperimentParams& p) {
  return std::make_shared<const placement::PlacementMap>(make_placement(p));
}

storage::SystemConfig paper_system_config() {
  storage::SystemConfig cfg;  // DiskPowerParams/DiskPerfParams defaults are
                              // the Fig 5 values; see disk/params.hpp.
  cfg.initial_state = disk::DiskState::Standby;
  return cfg;
}

storage::SystemConfig system_config_for(const ExperimentParams& p) {
  storage::SystemConfig cfg = paper_system_config();
  cfg.initial_state = p.initial_state;
  cfg.fault = p.fault;
  cfg.obs = p.obs;
  cfg.cache = p.cache;
  cfg.reliability = p.reliability;
  return cfg;
}

std::string describe(const ExperimentParams& p) {
  std::ostringstream os;
  os << "workload=" << to_string(p.workload) << " requests="
     << p.num_requests << " disks=" << p.num_disks
     << " rf=" << p.replication_factor << " zipf_z=" << p.zipf_z
     << " alpha=" << p.cost.alpha << " beta=" << p.cost.beta
     << " batch=" << p.batch_interval << "s";
  // Fault-free experiments keep the historical one-line form untouched.
  if (p.fault.enabled()) {
    os << " faults[";
    if (p.fault.mttf_seconds > 0.0) {
      os << "mttf=" << p.fault.mttf_seconds << "s shape="
         << p.fault.weibull_shape << " mttr=" << p.fault.mttr_seconds << "s ";
    }
    os << "scripted=" << p.fault.script.size() << " seed=" << p.fault.seed
       << "]";
  }
  // Likewise cache-free experiments: the tier appears only when enabled.
  if (p.cache.enabled) {
    os << " cache[" << cache::to_string(p.cache.policy)
       << " blocks=" << p.cache.capacity_blocks
       << " dirty=" << p.cache.dirty_capacity_blocks
       << " mem_w_gib=" << p.cache.memory_watts_per_gib << "]";
  }
  // And reliability-free experiments: the tier appears only when enabled.
  if (p.reliability.enabled) {
    os << " reliability[deadline=" << p.reliability.deadline_seconds
       << "s attempts=" << p.reliability.max_attempts
       << " hedge=" << p.reliability.hedge_delay_seconds
       << "s depth=" << p.reliability.max_queue_depth << "]";
  }
  return os.str();
}

namespace {

// strtoull accepts a leading '-' and wraps it through unsigned arithmetic,
// so "-3" would read as a huge thread count; treat any sign as unparseable.
std::size_t positive_from_env(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '-' || *env == '+') return 0;
  return std::strtoull(env, nullptr, 10);
}

}  // namespace

std::size_t requests_from_env(std::size_t fallback) {
  const auto n = positive_from_env("EAS_REQUESTS");
  return n > 0 ? n : fallback;
}

std::size_t threads_from_env() {
  const auto n = positive_from_env("EAS_THREADS");
  if (n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace eas::runner
