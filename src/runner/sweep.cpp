#include "runner/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace eas::runner {

namespace {

long peak_rss_kib_now() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return ru.ru_maxrss / 1024;  // bytes on macOS
#else
    return ru.ru_maxrss;  // KiB on Linux
#endif
  }
#endif
  return 0;
}

using TraceKey = std::tuple<Workload, std::uint64_t, std::size_t>;
using PlacementKey = std::tuple<DiskId, unsigned, double, std::uint64_t>;

TraceKey trace_key(const ExperimentParams& p) {
  return {p.workload, p.trace_seed, p.num_requests};
}

PlacementKey placement_key(const ExperimentParams& p) {
  return {p.num_disks, p.replication_factor, p.zipf_z, p.placement_seed};
}

/// Serial prefill of the immutable shared inputs: every distinct
/// (workload, seed, n) trace and (disks, rf, z, seed) placement is built
/// exactly once and shared by reference across all cells that use it.
void attach_shared_inputs(std::vector<CellSpec>& cells) {
  std::map<TraceKey, std::shared_ptr<const trace::Trace>> traces;
  std::map<PlacementKey, std::shared_ptr<const placement::PlacementMap>>
      placements;
  for (auto& cell : cells) {
    if (!cell.trace) {
      auto& slot = traces[trace_key(cell.params)];
      if (!slot) slot = make_shared_workload(cell.params);
      cell.trace = slot;
    }
    if (!cell.placement) {
      auto& slot = placements[placement_key(cell.params)];
      if (!slot) slot = make_shared_placement(cell.params);
      cell.placement = slot;
    }
  }
}

// --- cell-isolation audit ---------------------------------------------------
// The determinism contract says cells share only *immutable* inputs. Under
// the audit tier every distinct shared trace/placement is fingerprinted
// before the workers start and re-checked after they join: any drift means a
// cell mutated shared state, i.e. results depend on thread interleaving.

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t double_bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::uint64_t fingerprint(const trace::Trace& t) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& r : t.records()) {
    h = fnv1a_mix(h, double_bits(r.time));
    h = fnv1a_mix(h, (static_cast<std::uint64_t>(r.data) << 1) |
                         static_cast<std::uint64_t>(r.is_read));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(r.size_bytes));
  }
  return h;
}

std::uint64_t fingerprint(const placement::PlacementMap& p) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a_mix(h, p.num_disks());
  for (DataId b = 0; b < p.num_data(); ++b) {
    for (DiskId k : p.locations(b)) h = fnv1a_mix(h, k);
  }
  return h;
}

/// Snapshot of every distinct shared input's fingerprint, keyed by address.
std::map<const void*, std::uint64_t> input_fingerprints(
    const std::vector<CellSpec>& cells) {
  std::map<const void*, std::uint64_t> fp;
  for (const auto& cell : cells) {
    if (cell.trace && !fp.contains(cell.trace.get())) {
      fp[cell.trace.get()] = fingerprint(*cell.trace);
    }
    if (cell.placement && !fp.contains(cell.placement.get())) {
      fp[cell.placement.get()] = fingerprint(*cell.placement);
    }
  }
  return fp;
}

/// Bounded per-worker queues with stealing: each worker drains its own
/// queue from the front and, when empty, steals from the back of the
/// busiest sibling. All cells are known up front, so the queues never grow.
class WorkQueues {
 public:
  WorkQueues(std::size_t num_workers, std::size_t num_cells)
      : queues_(num_workers), mutexes_(num_workers) {
    // Round-robin initial distribution keeps neighbouring (similar-cost)
    // cells on different workers.
    for (std::size_t i = 0; i < num_cells; ++i) {
      queues_[i % num_workers].push_back(i);
    }
  }

  /// Next cell for `worker`, stealing when its own queue is empty.
  /// Returns false when no work remains anywhere.
  bool next(std::size_t worker, std::size_t& out) {
    {
      std::lock_guard lock(mutexes_[worker]);
      if (!queues_[worker].empty()) {
        out = queues_[worker].front();
        queues_[worker].pop_front();
        return true;
      }
    }
    for (std::size_t i = 1; i < queues_.size(); ++i) {
      const std::size_t victim = (worker + i) % queues_.size();
      std::lock_guard lock(mutexes_[victim]);
      if (!queues_[victim].empty()) {
        out = queues_[victim].back();
        queues_[victim].pop_back();
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<std::deque<std::size_t>> queues_;
  std::vector<std::mutex> mutexes_;
};

}  // namespace

SweepRunner::SweepRunner(SweepOptions opts)
    : SweepRunner(SchedulerRegistry::global(), opts) {}

SweepRunner::SweepRunner(const SchedulerRegistry& registry, SweepOptions opts)
    : registry_(registry),
      opts_(opts),
      threads_(opts.threads > 0 ? opts.threads : threads_from_env()) {}

std::vector<CellResult> SweepRunner::run(std::vector<CellSpec> cells) {
  const auto sweep_start = std::chrono::steady_clock::now();

  // Validate the whole grid and resolve registry names before spawning
  // anything: a misdeclared grid should fail fast, not mid-sweep.
  for (const auto& cell : cells) {
    cell.params.validate();
    if (!cell.run) registry_.at(cell.scheduler);
  }
  attach_shared_inputs(cells);

  std::map<const void*, std::uint64_t> pre_fingerprints;
  if constexpr (audit_enabled()) {
    pre_fingerprints = input_fingerprints(cells);
  }

  std::vector<CellResult> results(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    results[i].index = i;
    results[i].spec = cells[i];
    results[i].status = CellStatus::kSkipped;
  }
  if (cells.empty()) return results;

  const std::size_t num_workers = std::max<std::size_t>(
      1, std::min(threads_, cells.size()));
  WorkQueues queues(num_workers, cells.size());
  std::atomic<bool> cancelled{false};
  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  auto worker = [&](std::size_t id) {
    std::size_t i = 0;
    while (queues.next(id, i)) {
      if (cancelled.load(std::memory_order_acquire)) continue;  // drain
      CellResult& out = results[i];
      const CellSpec& cell = cells[i];
      const auto cell_start = std::chrono::steady_clock::now();
      try {
        storage::RunResult r =
            cell.run ? cell.run(cell.params, *cell.trace, *cell.placement)
                     : run_cell(registry_.at(cell.scheduler), cell.params,
                                *cell.trace, *cell.placement);
        // Materialize the SampleStore's lazy sort cache while the result is
        // still thread-confined, so later concurrent readers of the
        // (logically const) result do not race on it.
        if (!r.response_times.empty()) r.response_times.sorted();
        out.result = std::move(r);
        out.status = CellStatus::kOk;
      } catch (...) {
        out.status = CellStatus::kFailed;
        try {
          std::rethrow_exception(std::current_exception());
        } catch (const std::exception& e) {
          out.error = e.what();
        } catch (...) {
          out.error = "unknown error";
        }
        {
          std::lock_guard lock(failure_mutex);
          if (!first_failure) first_failure = std::current_exception();
        }
        if (opts_.cancel_on_failure) {
          cancelled.store(true, std::memory_order_release);
        }
      }
      out.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        cell_start)
              .count();
      out.peak_rss_kib = peak_rss_kib_now();
    }
  };

  if (num_workers == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(num_workers);
    for (std::size_t t = 0; t < num_workers; ++t) {
      pool.emplace_back(worker, t);
    }
    for (auto& t : pool) t.join();
  }

  if constexpr (audit_enabled()) {
    const auto post = input_fingerprints(cells);
    for (const auto& [ptr, fp] : pre_fingerprints) {
      const auto it = post.find(ptr);
      EAS_CHECK_MSG(it != post.end() && it->second == fp,
                    "cell isolation violated: a shared immutable input "
                    "(trace/placement) changed during the sweep");
    }
    // Every result slot must belong to its own cell: slot i holds index i and
    // a definite status (no torn/unwritten entries after the join).
    for (std::size_t i = 0; i < results.size(); ++i) {
      EAS_CHECK_MSG(results[i].index == i,
                    "result slot " << i << " carries index "
                                   << results[i].index);
    }
  }

  if (opts_.progress != nullptr) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    std::size_t ok = 0;
    for (const auto& r : results) ok += r.status == CellStatus::kOk;
    *opts_.progress << "# sweep: " << ok << "/" << results.size()
                    << " cells ok, " << num_workers << " thread"
                    << (num_workers == 1 ? "" : "s") << ", " << wall
                    << " s wall, peak rss " << peak_rss_kib_now() << " KiB\n";
  }

  if (opts_.rethrow_failure && first_failure) {
    std::rethrow_exception(first_failure);
  }
  return results;
}

std::vector<CellSpec> product_grid(
    const ExperimentParams& base, const std::vector<std::string>& schedulers,
    const std::vector<std::string>& axis,
    const std::function<ExperimentParams(const ExperimentParams& base,
                                         const std::string& tag)>& configure) {
  std::vector<CellSpec> cells;
  cells.reserve(schedulers.size() * axis.size());
  for (const auto& tag : axis) {
    ExperimentParams p = configure ? configure(base, tag) : base;
    p.validate();
    for (const auto& name : schedulers) {
      CellSpec cell;
      cell.scheduler = name;
      cell.params = p;
      cell.tag = tag;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

const CellResult& find_cell(const std::vector<CellResult>& results,
                            std::string_view tag, std::string_view scheduler) {
  for (const auto& r : results) {
    if (r.spec.tag == tag && r.spec.scheduler == scheduler) return r;
  }
  EAS_CHECK_MSG(false,
                "no sweep cell with tag '" << tag << "' and scheduler '"
                                           << scheduler << "'");
  std::abort();  // unreachable: EAS_CHECK_MSG throws
}

}  // namespace eas::runner
