// Structured result sinks for the experiment harnesses.
//
// Every bench builds the series its figure plots into a ResultTable and
// emits it in one of three stable formats: the aligned text table the
// paper-comparison docs quote (default), CSV for spreadsheet/plotting
// pipelines, or JSON for programmatic consumers. The CSV/JSON schemas are
// covered by golden tests — changing them is a breaking change for
// downstream plotting scripts.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "runner/sink_config.hpp"
#include "runner/sweep.hpp"

namespace eas::runner {

/// Compatibility wrapper over SinkConfig::from_env for harnesses that only
/// need the format: EAS_EMIT=table|csv|json (defaults to `fallback`;
/// unknown values fall back too so a typo cannot silently hide a figure).
/// New code should build an OutputSink (runner/sinks.hpp) instead.
EmitFormat emit_format_from_env(EmitFormat fallback = EmitFormat::kTable);

/// A titled grid of cells that renders as an aligned table, CSV or JSON.
/// Numeric cells remember their exact double value: the text table rounds
/// for eyeballing against the paper, while CSV/JSON emit full precision for
/// downstream tooling.
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> columns);

  /// Starts a new row; subsequent cell() calls fill it left to right. A row
  /// must end up with exactly one cell per column (checked at emit time).
  ResultTable& row();
  ResultTable& cell(std::string v);
  ResultTable& cell(const char* v) { return cell(std::string(v)); }
  /// `precision` only affects the aligned-table rendering.
  ResultTable& cell(double v, int precision = 3);
  ResultTable& cell(long long v);
  ResultTable& cell(unsigned long long v);
  ResultTable& cell(int v) { return cell(static_cast<long long>(v)); }
  ResultTable& cell(unsigned v) { return cell(static_cast<long long>(v)); }
  ResultTable& cell(std::size_t v) {
    return cell(static_cast<unsigned long long>(v));
  }

  const std::string& title() const { return title_; }
  std::size_t num_rows() const { return rows_.size(); }

  void emit(std::ostream& os, EmitFormat format) const;
  /// "=== title ===" header + the aligned util::Table rendering.
  void emit_table(std::ostream& os) const;
  /// "# title" comment, header line, one row per line (RFC 4180 quoting).
  void emit_csv(std::ostream& os) const;
  /// {"title":...,"columns":[...],"rows":[{col: value, ...}, ...]}
  void emit_json(std::ostream& os) const;

 private:
  struct Cell {
    enum class Kind { kText, kDouble, kInt, kUint } kind = Kind::kText;
    std::string text;  // kText, and the pre-rounded table rendering
    double d = 0.0;
    long long i = 0;
    unsigned long long u = 0;
  };

  Cell& push(Cell c);

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Raw per-cell dump of a sweep — one record per cell with its identity
/// (index, tag, scheduler), execution metadata (status, wall seconds, peak
/// RSS) and the full RunResult serialization. The JSON form embeds
/// RunResult::to_json(); the CSV/table forms emit the headline metrics.
void emit_cells(std::ostream& os, const std::vector<CellResult>& results,
                EmitFormat format);

}  // namespace eas::runner
