// Output-sink selection: which renderers a harness feeds its results to.
//
// Kept in its own header (below emit.hpp and sweep.hpp in the include
// graph) so ExperimentBuilder can carry a SinkConfig without dragging the
// result-rendering machinery into every experiment translation unit.
#pragma once

#include <string>

namespace eas::runner {

/// The three table renderings. Schemas are golden-tested — changing them is
/// a breaking change for downstream plotting scripts.
enum class EmitFormat { kTable, kCsv, kJson };

const char* to_string(EmitFormat f);

/// What make_sink() should assemble. The primary format renders tables and
/// sweep cells; the `with_*` flags append the observability sinks, which
/// require the matching ObsConfig switches (ExperimentParams::validate
/// cross-checks, so a sink can never ask for artifacts no run produced).
struct SinkConfig {
  EmitFormat format = EmitFormat::kTable;
  /// Append a TraceSink: merged Chrome trace of every cell's recorder.
  bool with_trace = false;
  /// Append a MetricsSink: cell registries merged in index order.
  bool with_metrics = false;
  /// TraceSink destination file; empty writes into the main output stream.
  std::string trace_path;

  void validate() const;

  /// Compatibility alias for the historical env switch: EAS_EMIT=
  /// table|csv|json overrides `fallback.format` (unknown values keep the
  /// fallback so a typo cannot silently hide a figure). The observability
  /// flags have no env spelling — they are builder-only by design.
  static SinkConfig from_env(SinkConfig fallback);
  static SinkConfig from_env() { return from_env(SinkConfig{}); }
};

}  // namespace eas::runner
