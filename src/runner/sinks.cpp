#include "runner/sinks.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace eas::runner {

void TableSink::table(const ResultTable& t) { t.emit(os_, EmitFormat::kTable); }
void TableSink::cells(const std::vector<CellResult>& results) {
  emit_cells(os_, results, EmitFormat::kTable);
}

void CsvSink::table(const ResultTable& t) { t.emit(os_, EmitFormat::kCsv); }
void CsvSink::cells(const std::vector<CellResult>& results) {
  emit_cells(os_, results, EmitFormat::kCsv);
}

void JsonSink::table(const ResultTable& t) { t.emit(os_, EmitFormat::kJson); }
void JsonSink::cells(const std::vector<CellResult>& results) {
  emit_cells(os_, results, EmitFormat::kJson);
}

void TraceSink::cells(const std::vector<CellResult>& results) {
  std::ofstream file;
  if (!path_.empty()) {
    file.open(path_, std::ios::trunc);
    EAS_REQUIRE_MSG(file.is_open(), "cannot open trace file " << path_);
  }
  std::ostream& out = path_.empty() ? os_ : file;
  util::JsonWriter w(out);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (const CellResult& r : results) {
    if (r.status != CellStatus::kOk || r.result.trace_recorder == nullptr) {
      continue;
    }
    r.result.trace_recorder->append_chrome_events(
        w, static_cast<int>(r.index), r.spec.tag + "/" + r.spec.scheduler,
        r.result.horizon);
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

void MetricsSink::cells(const std::vector<CellResult>& results) {
  os_ << merged_metrics(results).to_json() << "\n";
}

void MultiSink::table(const ResultTable& t) {
  for (auto& s : sinks_) s->table(t);
}
void MultiSink::cells(const std::vector<CellResult>& results) {
  for (auto& s : sinks_) s->cells(results);
}

std::unique_ptr<OutputSink> make_sink(const SinkConfig& cfg,
                                      std::ostream& os) {
  cfg.validate();
  std::unique_ptr<OutputSink> primary;
  switch (cfg.format) {
    case EmitFormat::kTable:
      primary = std::make_unique<TableSink>(os);
      break;
    case EmitFormat::kCsv:
      primary = std::make_unique<CsvSink>(os);
      break;
    case EmitFormat::kJson:
      primary = std::make_unique<JsonSink>(os);
      break;
  }
  if (!cfg.with_trace && !cfg.with_metrics) return primary;
  std::vector<std::unique_ptr<OutputSink>> sinks;
  sinks.push_back(std::move(primary));
  if (cfg.with_trace) {
    sinks.push_back(std::make_unique<TraceSink>(os, cfg.trace_path));
  }
  if (cfg.with_metrics) {
    sinks.push_back(std::make_unique<MetricsSink>(os));
  }
  return std::make_unique<MultiSink>(std::move(sinks));
}

obs::MetricRegistry merged_metrics(const std::vector<CellResult>& results) {
  obs::MetricRegistry merged;
  for (const CellResult& r : results) {
    if (r.status != CellStatus::kOk || r.result.metrics == nullptr) continue;
    merged.merge(*r.result.metrics);
  }
  return merged;
}

}  // namespace eas::runner
