// Experiment configuration shared by the benches, tests and examples.
//
// Encapsulates the paper's §4 setup: a 180-disk system, Cheetah/Barracuda
// disk parameters, 2CPM power management, Zipf-original/uniform-replica
// placement and 70k-request workloads. Promoted out of bench/ so that the
// sweep runner, the scheduler registry and every harness agree on one
// validated parameter set.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "cache/cache.hpp"
#include "core/energy_model.hpp"
#include "disk/disk.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "placement/placement.hpp"
#include "reliability/reliability.hpp"
#include "runner/sink_config.hpp"
#include "storage/storage_system.hpp"
#include "trace/trace.hpp"

namespace eas::runner {

// ---------------------------------------------------------------------------
// Workloads (§4.1). The name table is the single source of truth: benches,
// CLI flags and result files all round-trip through it.

enum class Workload { kCello, kFinancial };

inline constexpr Workload kAllWorkloads[] = {Workload::kCello,
                                             Workload::kFinancial};

const char* to_string(Workload w);
std::optional<Workload> workload_from_string(std::string_view name);

// ---------------------------------------------------------------------------
// Parameters.

/// One experiment configuration (defaults = the paper's primary setup).
/// Construct directly for the defaults or through ExperimentBuilder for
/// validated edits; run_cell()/SweepRunner validate() again before running.
struct ExperimentParams {
  Workload workload = Workload::kCello;
  std::uint64_t trace_seed = 1;
  std::size_t num_requests = 70000;  ///< §4.1

  DiskId num_disks = 180;            ///< §4.2
  unsigned replication_factor = 3;
  double zipf_z = 1.0;               ///< original-location skew
  std::uint64_t placement_seed = 42;

  core::CostParams cost{};           ///< §4.3: alpha=0.2, beta=100
  double batch_interval = 0.1;       ///< §4.3: 0.1 s WSC batching
  std::size_t mwis_horizon = 4;      ///< conflict-graph successor horizon
  std::size_t mwis_refine_passes = 8;

  /// Initial disk state. Standby matches the paper's experiments; the
  /// covering-subset ablation starts Idle (pinned disks boot first).
  disk::DiskState initial_state = disk::DiskState::Standby;

  /// Fault injection (default: disabled, bit-identical to a build without
  /// the fault subsystem). Travels into SystemConfig for every run of the
  /// cell; emitters add availability columns when any cell enables it.
  fault::FaultProfile fault{};

  /// Observability (default: everything off — no recorder, no registry,
  /// bit-identical results). Travels into SystemConfig like `fault`.
  obs::ObsConfig obs{};

  /// Cache & destage tier (default: disabled, bit-identical to a build
  /// without the subsystem). Travels into SystemConfig like `fault`;
  /// emitters add hit/destage/memory-energy columns when any cell enables
  /// it.
  cache::CacheConfig cache{};

  /// Request reliability tier (default: disabled, bit-identical to a build
  /// without the subsystem). Travels into SystemConfig like `fault`;
  /// emitters add deadline-miss/retry/hedge/shed columns when any cell
  /// enables it.
  reliability::ReliabilityConfig reliability{};

  /// Output-sink selection for harnesses that render through make_sink().
  /// validate() cross-checks it against `obs`: a sink cannot request trace
  /// or metrics output the run is not configured to produce.
  SinkConfig sink{};

  /// Throws InvariantError on out-of-range values (rf outside 1..num_disks,
  /// zipf_z outside [0,1], non-positive batch interval, invalid fault
  /// profile, sink/obs mismatches, ...).
  void validate() const;
};

/// Fluent, validating constructor for ExperimentParams. build() runs
/// validate(), so a grid declaration cannot silently produce a nonsense
/// cell. Example:
///
///   const auto p = ExperimentBuilder(Workload::kCello)
///                      .requests(requests_from_env())
///                      .replication(rf)
///                      .zipf_z(z)
///                      .build();
class ExperimentBuilder {
 public:
  ExperimentBuilder() = default;
  explicit ExperimentBuilder(Workload w) { p_.workload = w; }
  /// Starts from an existing configuration (for derived sweep cells).
  explicit ExperimentBuilder(ExperimentParams base) : p_(base) {}

  ExperimentBuilder& workload(Workload w) { p_.workload = w; return *this; }
  ExperimentBuilder& trace_seed(std::uint64_t s) { p_.trace_seed = s; return *this; }
  ExperimentBuilder& requests(std::size_t n) { p_.num_requests = n; return *this; }
  ExperimentBuilder& disks(DiskId n) { p_.num_disks = n; return *this; }
  ExperimentBuilder& replication(unsigned rf) { p_.replication_factor = rf; return *this; }
  ExperimentBuilder& zipf_z(double z) { p_.zipf_z = z; return *this; }
  ExperimentBuilder& placement_seed(std::uint64_t s) { p_.placement_seed = s; return *this; }
  ExperimentBuilder& cost(core::CostParams c) { p_.cost = c; return *this; }
  ExperimentBuilder& alpha(double a) { p_.cost.alpha = a; return *this; }
  ExperimentBuilder& beta(double b) { p_.cost.beta = b; return *this; }
  ExperimentBuilder& batch_interval(double s) { p_.batch_interval = s; return *this; }
  ExperimentBuilder& mwis(std::size_t horizon, std::size_t refine_passes) {
    p_.mwis_horizon = horizon;
    p_.mwis_refine_passes = refine_passes;
    return *this;
  }
  ExperimentBuilder& initial_state(disk::DiskState s) { p_.initial_state = s; return *this; }
  ExperimentBuilder& fault(fault::FaultProfile f) { p_.fault = std::move(f); return *this; }
  /// Enables the cache & destage tier with the given configuration (asking
  /// for one implies enabling it). Throws std::invalid_argument naming the
  /// offending field on NaN/Inf/negative inputs — eagerly, at the call
  /// site, so a grid declaration fails on the bad line rather than at
  /// build(); build() still runs the full cross-field validation.
  ExperimentBuilder& cache(cache::CacheConfig c);
  /// Enables the request reliability tier (deadlines, deterministic retry/
  /// backoff, hedged reads, admission control); asking for one implies
  /// enabling it. Same eager std::invalid_argument policy as cache().
  ExperimentBuilder& reliability(reliability::ReliabilityConfig c);
  /// Enables structured tracing with the given recorder configuration
  /// (asking for a trace implies enabling it; pass categories/capacity as
  /// needed). build() validates the config.
  ExperimentBuilder& trace(obs::TraceConfig t) {
    t.enabled = true;
    p_.obs.trace = t;
    return *this;
  }
  /// Enables (or disables) the per-run MetricRegistry.
  ExperimentBuilder& metrics(bool on = true) { p_.obs.metrics = on; return *this; }
  /// Selects the output sinks a harness should assemble via make_sink().
  /// build() cross-checks against the obs configuration.
  ExperimentBuilder& sink(SinkConfig s) { p_.sink = std::move(s); return *this; }
  /// Convenience: primary format only.
  ExperimentBuilder& sink(EmitFormat f) { p_.sink.format = f; return *this; }
  /// Convenience for the canonical degraded-mode experiment: fail-stop disk
  /// `disk` at `time`, replacement online after `repair` seconds (0 = never).
  /// Throws std::invalid_argument naming the offending argument on NaN/Inf/
  /// negative time or repair.
  ExperimentBuilder& fail_disk_at(DiskId disk, double time, double repair = 0.0);

  /// Validates and returns the parameter set (throws InvariantError).
  ExperimentParams build() const;

 private:
  ExperimentParams p_;
};

// ---------------------------------------------------------------------------
// Derived experiment inputs.

/// The calibrated synthetic stand-in for the named trace (see DESIGN.md §1).
trace::Trace make_workload(Workload w, std::uint64_t seed,
                           std::size_t num_requests = 70000);

/// Shared-ownership variant for sweep cells: concurrent cells read one
/// immutable trace without copying it.
std::shared_ptr<const trace::Trace> make_shared_workload(
    const ExperimentParams& p);

placement::PlacementMap make_placement(const ExperimentParams& p);
std::shared_ptr<const placement::PlacementMap> make_shared_placement(
    const ExperimentParams& p);

/// §4: Cheetah 15K.5 service model + Barracuda power model, disks initially
/// standby (or `p.initial_state` when built from params).
storage::SystemConfig paper_system_config();
storage::SystemConfig system_config_for(const ExperimentParams& p);

/// Header line identifying an experiment (workload, fleet, seeds).
std::string describe(const ExperimentParams& p);

/// Number of requests honoured by the fig benches: the EAS_REQUESTS
/// environment variable when set (for quick shape checks), else `fallback`.
std::size_t requests_from_env(std::size_t fallback = 70000);

/// Worker count for sweeps: EAS_THREADS when set (>= 1), else the hardware
/// concurrency (at least 1).
std::size_t threads_from_env();

}  // namespace eas::runner
