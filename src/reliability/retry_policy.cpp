#include "reliability/retry_policy.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace eas::reliability {

namespace {

/// Golden-ratio stream derivation, same idiom as the fault injector: child
/// stream k of seed s. k+1 keeps stream 0 distinct from the parent seed.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t k) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (k + 1));
}

}  // namespace

double RetryPolicy::backoff_delay(RequestId id, std::uint32_t attempt) const {
  // attempt 2 is the first retry: one base-length step, doubling after.
  const int doublings = attempt >= 2 ? static_cast<int>(attempt) - 2 : 0;
  const double raw = std::min(cap_, std::ldexp(base_, doublings));
  if (jitter_ <= 0.0) return raw;
  util::Rng rng(stream_seed(seed_, id) ^ attempt);
  return raw * (1.0 - jitter_ * rng.next_double());
}

}  // namespace eas::reliability
