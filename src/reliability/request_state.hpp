// Per-request reliability bookkeeping.
//
// One RequestState accompanies every in-flight foreground request while the
// tier is enabled. It carries the shared attempt budget (deadline retries
// and fault failover draw from the same counter, so a fault during a retry
// never double-spends), the live deadline / hedge timer handles, and the
// identity of the hedge copy's target. Timer handles are sim::EventHandle —
// generation-checked, so cancelling after the event already fired (the
// completion-vs-timeout race) is a safe no-op rather than a use-after-free
// of a recycled slot.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "util/ids.hpp"

namespace eas::reliability {

struct RequestState {
  /// Dispatches spent so far (first dispatch = 1). Compared against
  /// ReliabilityConfig::max_attempts by both the deadline-retry path and
  /// the fault-failover path.
  std::uint32_t attempts = 0;

  /// Disk currently serving the primary copy.
  DiskId primary = kInvalidDisk;

  /// Disk serving the hedge copy, kInvalidDisk while no hedge is in flight.
  DiskId hedge_disk = kInvalidDisk;

  /// Disk pinned for a *planned* hedge while the hedge timer runs (the
  /// power policy keeps it warm through the delay window); kInvalidDisk
  /// once the timer fires or the plan is cancelled.
  DiskId hedge_planned = kInvalidDisk;

  /// Pending per-attempt deadline event (null when deadlines are off).
  sim::EventHandle deadline;

  /// Pending hedge-dispatch event (null once fired or for writes).
  sim::EventHandle hedge_timer;

  /// True while a backoff wait is scheduled; the hedge path skips hedging a
  /// request that is between attempts (nothing is in flight to hedge).
  bool retry_scheduled = false;

  /// Cancels any pending timers. Idempotent: stale handles are rejected by
  /// the simulator's generation check.
  void cancel_timers(sim::Simulator& sim) {
    sim.cancel(deadline);
    sim.cancel(hedge_timer);
    deadline = {};
    hedge_timer = {};
  }
};

}  // namespace eas::reliability
