// Request reliability tier: configuration and counters.
//
// The paper's schedulers trade energy against response time, but a bare
// simulator treats every request as fire-and-forget: a request stuck behind
// a transient fault or an overloaded spun-down disk waits forever. This
// tier bounds tail latency the way production storage stacks do:
//
//   * Per-request deadlines — a simulator timeout event fires if an attempt
//     has not completed within `deadline_seconds`; generation-checked
//     handles make the cancel-on-completion race-free.
//   * Deterministic retry — capped exponential backoff whose jitter is a
//     pure function of (seed, request id, attempt) over the seeded
//     util::Rng streams (retry_policy.hpp), with a max-attempt budget that
//     is *shared* with fault failover so a fault + a timeout never
//     double-spend attempts.
//   * Hedged reads — after `hedge_delay_seconds` a second copy of a still
//     in-flight read is dispatched to an alternate live replica; the first
//     completion wins and the loser is cancelled deterministically.
//   * Admission control — bounded per-disk queues with watermark
//     backpressure (schedulers bias away from backpressured disks) and a
//     shed-oldest-read / write-through degradation mode under overload, so
//     queues stay bounded instead of growing without bound.
//
// Everything is seed-driven: backoff jitter, hedge cancellation, and shed
// order are pure functions of the configured seed and the request stream,
// so sweep results stay bit-identical at any EAS_THREADS.
#pragma once

#include <cstdint>

namespace eas::reliability {

struct ReliabilityConfig {
  /// Master switch. Disabled (the default) keeps the whole tier dormant: no
  /// per-request state exists, every instrumentation point is one branch,
  /// and results and output are byte-identical to pre-reliability builds.
  bool enabled = false;

  /// Per-attempt deadline (seconds). 0 disables deadlines (and with them
  /// retries — a request that never times out is never retried).
  double deadline_seconds = 0.0;

  /// Total dispatch budget per request, shared between deadline retries and
  /// fault failover re-dispatches. 1 means "never retry".
  std::uint32_t max_attempts = 3;

  /// Capped exponential backoff: attempt k waits
  /// min(cap, base * 2^(k-1)) * (1 - jitter_fraction * u) where u in [0,1)
  /// is drawn from a per-(request, attempt) seeded stream.
  double backoff_base_seconds = 0.010;
  double backoff_cap_seconds = 1.0;
  double jitter_fraction = 0.5;  ///< in [0, 1]

  /// Seed for the jitter streams; independent of trace / placement seeds.
  std::uint64_t seed = 0x5eedull;

  /// Hedge delay for reads (seconds). 0 disables hedging. A still
  /// in-flight read older than this dispatches a second copy to an
  /// alternate live replica; first completion wins.
  double hedge_delay_seconds = 0.0;

  /// Bounded per-disk queue depth for admission control. 0 = unbounded
  /// (no shedding, no backpressure).
  std::uint32_t max_queue_depth = 0;

  /// Fraction of max_queue_depth at which a disk is reported as
  /// backpressured to the schedulers (cost/predictive bias away from it).
  /// In (0, 1]. Only meaningful when max_queue_depth > 0.
  double backpressure_watermark = 0.75;

  /// Throws InvariantError on nonsense (NaN/Inf anywhere, negative delays,
  /// zero attempts, jitter outside [0,1], watermark outside (0,1]).
  /// Disabled configs are never checked.
  void validate() const;
};

/// One run's reliability counters; surfaced in RunResult (and its JSON /
/// sweep columns) only when the tier is enabled.
struct ReliabilityStats {
  std::uint64_t deadline_misses = 0;  ///< attempts that hit the deadline
  std::uint64_t retries = 0;          ///< re-dispatches after a miss
  std::uint64_t hedges_issued = 0;    ///< second copies dispatched
  std::uint64_t hedge_wins = 0;       ///< requests whose hedge finished first
  std::uint64_t shed = 0;             ///< reads dropped by admission control
  std::uint64_t writes_degraded = 0;  ///< writes admitted past a full queue
  std::uint64_t abandoned = 0;        ///< requests that exhausted the budget
};

}  // namespace eas::reliability
