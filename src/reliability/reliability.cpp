#include "reliability/reliability.hpp"

#include <cmath>

#include "util/check.hpp"

namespace eas::reliability {

void ReliabilityConfig::validate() const {
  if (!enabled) return;
  EAS_CHECK_MSG(std::isfinite(deadline_seconds) && deadline_seconds >= 0.0,
                "deadline_seconds=" << deadline_seconds);
  EAS_CHECK_MSG(max_attempts >= 1, "max_attempts must be at least 1");
  EAS_CHECK_MSG(std::isfinite(backoff_base_seconds) &&
                    backoff_base_seconds >= 0.0,
                "backoff_base_seconds=" << backoff_base_seconds);
  EAS_CHECK_MSG(std::isfinite(backoff_cap_seconds) &&
                    backoff_cap_seconds >= backoff_base_seconds,
                "backoff_cap_seconds=" << backoff_cap_seconds
                                       << " below base="
                                       << backoff_base_seconds);
  EAS_CHECK_MSG(std::isfinite(jitter_fraction) && jitter_fraction >= 0.0 &&
                    jitter_fraction <= 1.0,
                "jitter_fraction=" << jitter_fraction);
  EAS_CHECK_MSG(std::isfinite(hedge_delay_seconds) &&
                    hedge_delay_seconds >= 0.0,
                "hedge_delay_seconds=" << hedge_delay_seconds);
  if (max_queue_depth > 0) {
    EAS_CHECK_MSG(std::isfinite(backpressure_watermark) &&
                      backpressure_watermark > 0.0 &&
                      backpressure_watermark <= 1.0,
                  "backpressure_watermark=" << backpressure_watermark);
  }
}

}  // namespace eas::reliability
