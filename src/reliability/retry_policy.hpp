// Deterministic capped-exponential retry policy.
//
// Backoff for attempt k of request r is a *pure function* of
// (seed, r, k): the jitter draw seeds a throwaway util::Rng from a
// per-(request, attempt) stream using the same golden-ratio stream-split
// idiom as the fault injector, so no mutable RNG state is shared between
// requests and the delay sequence is identical however sweep cells are
// scheduled across threads. That purity is what makes retry timing (and
// everything downstream of it — hedge cancellation order, shed order)
// bit-identical across EAS_THREADS and repeated runs.
#pragma once

#include <cstdint>

#include "util/ids.hpp"

namespace eas::reliability {

class RetryPolicy {
 public:
  /// `base`/`cap` in seconds; `jitter` in [0,1] scales the delay down by up
  /// to that fraction. Inputs are validated by ReliabilityConfig::validate.
  RetryPolicy(double base_seconds, double cap_seconds, double jitter,
              std::uint64_t seed)
      : base_(base_seconds), cap_(cap_seconds), jitter_(jitter), seed_(seed) {}

  /// Delay before dispatching attempt `attempt` (2 = first retry) of
  /// request `id`: min(cap, base * 2^(attempt-2)) * (1 - jitter * u),
  /// u in [0,1) drawn from the (seed, id, attempt) stream. Pure; const.
  double backoff_delay(RequestId id, std::uint32_t attempt) const;

 private:
  double base_;
  double cap_;
  double jitter_;
  std::uint64_t seed_;
};

}  // namespace eas::reliability
