#include "graph/set_cover.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace eas::graph {

void SetCoverInstance::validate() const {
  for (std::size_t s = 0; s < sets.size(); ++s) {
    EAS_CHECK_MSG(sets[s].weight >= 0.0,
                  "set " << s << " has negative weight " << sets[s].weight);
    for (std::size_t e : sets[s].elements) {
      EAS_CHECK_MSG(e < num_elements,
                    "set " << s << " contains out-of-range element " << e);
    }
  }
}

bool SetCoverInstance::feasible() const {
  std::vector<bool> seen(num_elements, false);
  for (const auto& s : sets) {
    for (std::size_t e : s.elements) seen[e] = true;
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

bool SetCoverSolution::covers(const SetCoverInstance& instance) const {
  std::vector<bool> covered(instance.num_elements, false);
  for (std::size_t s : chosen_sets) {
    if (s >= instance.sets.size()) return false;
    for (std::size_t e : instance.sets[s].elements) covered[e] = true;
  }
  return std::all_of(covered.begin(), covered.end(), [](bool b) { return b; });
}

void check_cover(const SetCoverSolution& sol,
                 const SetCoverInstance& instance) {
  std::vector<bool> covered(instance.num_elements, false);
  for (std::size_t s : sol.chosen_sets) {
    EAS_ENSURE_MSG(s < instance.sets.size(),
                   "cover references set " << s << " but instance has only "
                                           << instance.sets.size());
    for (std::size_t e : instance.sets[s].elements) covered[e] = true;
  }
  for (std::size_t e = 0; e < instance.num_elements; ++e) {
    EAS_ENSURE_MSG(covered[e], "cover leaves element "
                                   << e << " uncovered ("
                                   << sol.chosen_sets.size() << " sets chosen, "
                                   << instance.num_elements << " elements)");
  }
}

SetCoverSolution greedy_weighted_set_cover(const SetCoverInstance& instance) {
  SetCoverWorkspace ws;
  return greedy_weighted_set_cover(instance, ws);
}

SetCoverSolution greedy_weighted_set_cover(const SetCoverInstance& instance,
                                           SetCoverWorkspace& ws) {
  instance.validate();
  EAS_REQUIRE_MSG(instance.feasible(), "set cover instance is infeasible");

  ws.covered.assign(instance.num_elements, 0);
  std::size_t remaining = instance.num_elements;
  SetCoverSolution sol;

  // The greedy order is the lexicographic minimum of (ratio, -fresh, set):
  // cheapest per fresh element first, ties toward larger coverage so free
  // sets don't dribble in one element at a time, then toward the lowest set
  // index. The comparator inverts that ("worse sorts first") because the
  // std heap algorithms keep the comparator's maximum at the front.
  using Candidate = SetCoverWorkspace::Candidate;
  const auto later = [](const Candidate& a, const Candidate& b) {
    if (a.ratio != b.ratio) return a.ratio > b.ratio;
    if (a.fresh != b.fresh) return a.fresh < b.fresh;
    return a.set > b.set;
  };
  const auto recount = [&](std::size_t s) {
    std::size_t n = 0;
    for (std::size_t e : instance.sets[s].elements) {
      if (!ws.covered[e]) ++n;
    }
    return n;
  };

  ws.heap.clear();
  for (std::size_t s = 0; s < instance.sets.size(); ++s) {
    const std::size_t n = instance.sets[s].elements.size();
    if (n == 0) continue;
    ws.heap.push_back(
        {instance.sets[s].weight / static_cast<double>(n), n, s});
  }
  std::make_heap(ws.heap.begin(), ws.heap.end(), later);

  // Lazy selection: a set's key only ever increases as elements get covered
  // (the ratio grows when weight > 0; the -fresh tie-break grows when
  // weight == 0), so a popped entry whose cached count is stale is pushed
  // back with its true key, and a popped entry whose count is exact is the
  // global minimum — every other set's true key is >= its stored key >= this
  // key. Each set has at most one live entry, so the heap never exceeds the
  // set count. The selected sequence is identical to a per-round linear
  // scan, just without the O(sets) rescan per selection.
  while (remaining > 0) {
    EAS_CHECK_MSG(!ws.heap.empty(),
                  "greedy stalled with " << remaining << " uncovered");
    std::pop_heap(ws.heap.begin(), ws.heap.end(), later);
    const Candidate top = ws.heap.back();
    ws.heap.pop_back();
    const std::size_t n = recount(top.set);
    if (n == 0) continue;  // fully covered by earlier picks; never useful
    if (n != top.fresh) {
      ws.heap.push_back(
          {instance.sets[top.set].weight / static_cast<double>(n), n,
           top.set});
      std::push_heap(ws.heap.begin(), ws.heap.end(), later);
      continue;
    }
    sol.chosen_sets.push_back(top.set);
    sol.total_weight += instance.sets[top.set].weight;
    for (std::size_t e : instance.sets[top.set].elements) {
      if (!ws.covered[e]) {
        ws.covered[e] = 1;
        --remaining;
      }
    }
  }
  if constexpr (audit_enabled()) check_cover(sol, instance);
  return sol;
}

SetCoverSolution greedy_weighted_set_cover_reference(
    const SetCoverInstance& instance) {
  instance.validate();
  EAS_REQUIRE_MSG(instance.feasible(), "set cover instance is infeasible");

  std::vector<char> covered(instance.num_elements, 0);
  std::size_t remaining = instance.num_elements;
  SetCoverSolution sol;

  // Full scan per round: lexicographic minimum of (ratio, -fresh, set),
  // realised by "first strictly better set wins" so equal keys keep the
  // lowest index — the order the lazy heap must reproduce exactly.
  while (remaining > 0) {
    std::size_t best = instance.sets.size();
    double best_ratio = 0.0;
    std::size_t best_fresh = 0;
    for (std::size_t s = 0; s < instance.sets.size(); ++s) {
      std::size_t fresh = 0;
      for (std::size_t e : instance.sets[s].elements) {
        if (!covered[e]) ++fresh;
      }
      if (fresh == 0) continue;
      const double ratio =
          instance.sets[s].weight / static_cast<double>(fresh);
      if (best == instance.sets.size() || ratio < best_ratio ||
          (ratio == best_ratio && fresh > best_fresh)) {
        best = s;
        best_ratio = ratio;
        best_fresh = fresh;
      }
    }
    EAS_CHECK_MSG(best < instance.sets.size(),
                  "greedy stalled with " << remaining << " uncovered");
    sol.chosen_sets.push_back(best);
    sol.total_weight += instance.sets[best].weight;
    for (std::size_t e : instance.sets[best].elements) {
      if (!covered[e]) {
        covered[e] = 1;
        --remaining;
      }
    }
  }
  if constexpr (audit_enabled()) check_cover(sol, instance);
  return sol;
}

namespace {

struct ExactState {
  const SetCoverInstance* instance;
  std::vector<std::vector<std::size_t>> sets_of_element;
  std::vector<bool> covered;
  std::size_t remaining = 0;
  std::vector<std::size_t> current;
  double current_weight = 0.0;
  double best_weight = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best;

  void search() {
    if (remaining == 0) {
      if (current_weight < best_weight) {
        best_weight = current_weight;
        best = current;
      }
      return;
    }
    if (current_weight >= best_weight) return;  // bound

    // Branch on the uncovered element with the fewest candidate sets.
    std::size_t pivot = instance->num_elements;
    std::size_t pivot_options = std::numeric_limits<std::size_t>::max();
    for (std::size_t e = 0; e < instance->num_elements; ++e) {
      if (covered[e]) continue;
      if (sets_of_element[e].size() < pivot_options) {
        pivot_options = sets_of_element[e].size();
        pivot = e;
      }
    }
    EAS_DCHECK(pivot < instance->num_elements);

    for (std::size_t s : sets_of_element[pivot]) {
      // Apply set s.
      std::vector<std::size_t> newly;
      for (std::size_t e : instance->sets[s].elements) {
        if (!covered[e]) {
          covered[e] = true;
          newly.push_back(e);
        }
      }
      remaining -= newly.size();
      current.push_back(s);
      current_weight += instance->sets[s].weight;

      search();

      current_weight -= instance->sets[s].weight;
      current.pop_back();
      remaining += newly.size();
      for (std::size_t e : newly) covered[e] = false;
    }
  }
};

}  // namespace

std::optional<SetCoverSolution> exact_set_cover(
    const SetCoverInstance& instance, std::size_t max_elements) {
  instance.validate();
  EAS_CHECK_MSG(instance.num_elements <= max_elements,
                "exact_set_cover instance too large ("
                    << instance.num_elements << " > " << max_elements << ")");
  if (!instance.feasible()) return std::nullopt;

  ExactState st;
  st.instance = &instance;
  st.covered.assign(instance.num_elements, false);
  st.remaining = instance.num_elements;
  st.sets_of_element.resize(instance.num_elements);
  {
    // Counting pass so each per-element list is allocated exactly once.
    std::vector<std::size_t> occurrences(instance.num_elements, 0);
    for (const auto& set : instance.sets) {
      for (std::size_t e : set.elements) ++occurrences[e];
    }
    for (std::size_t e = 0; e < instance.num_elements; ++e) {
      st.sets_of_element[e].reserve(occurrences[e]);
    }
  }
  for (std::size_t s = 0; s < instance.sets.size(); ++s) {
    for (std::size_t e : instance.sets[s].elements) {
      st.sets_of_element[e].push_back(s);
    }
  }
  st.search();

  SetCoverSolution sol;
  sol.chosen_sets = st.best;
  sol.total_weight = st.best_weight;
  if constexpr (audit_enabled()) check_cover(sol, instance);
  return sol;
}

}  // namespace eas::graph
