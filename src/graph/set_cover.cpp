#include "graph/set_cover.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace eas::graph {

void SetCoverInstance::validate() const {
  for (std::size_t s = 0; s < sets.size(); ++s) {
    EAS_CHECK_MSG(sets[s].weight >= 0.0,
                  "set " << s << " has negative weight " << sets[s].weight);
    for (std::size_t e : sets[s].elements) {
      EAS_CHECK_MSG(e < num_elements,
                    "set " << s << " contains out-of-range element " << e);
    }
  }
}

bool SetCoverInstance::feasible() const {
  std::vector<bool> seen(num_elements, false);
  for (const auto& s : sets) {
    for (std::size_t e : s.elements) seen[e] = true;
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

bool SetCoverSolution::covers(const SetCoverInstance& instance) const {
  std::vector<bool> covered(instance.num_elements, false);
  for (std::size_t s : chosen_sets) {
    if (s >= instance.sets.size()) return false;
    for (std::size_t e : instance.sets[s].elements) covered[e] = true;
  }
  return std::all_of(covered.begin(), covered.end(), [](bool b) { return b; });
}

void check_cover(const SetCoverSolution& sol,
                 const SetCoverInstance& instance) {
  std::vector<bool> covered(instance.num_elements, false);
  for (std::size_t s : sol.chosen_sets) {
    EAS_ENSURE_MSG(s < instance.sets.size(),
                   "cover references set " << s << " but instance has only "
                                           << instance.sets.size());
    for (std::size_t e : instance.sets[s].elements) covered[e] = true;
  }
  for (std::size_t e = 0; e < instance.num_elements; ++e) {
    EAS_ENSURE_MSG(covered[e], "cover leaves element "
                                   << e << " uncovered ("
                                   << sol.chosen_sets.size() << " sets chosen, "
                                   << instance.num_elements << " elements)");
  }
}

SetCoverSolution greedy_weighted_set_cover(const SetCoverInstance& instance) {
  instance.validate();
  EAS_REQUIRE_MSG(instance.feasible(), "set cover instance is infeasible");

  std::vector<bool> covered(instance.num_elements, false);
  std::size_t remaining = instance.num_elements;
  std::vector<bool> chosen(instance.sets.size(), false);
  SetCoverSolution sol;

  // Cached count of uncovered elements per set; recomputed lazily because a
  // stale count only over-estimates usefulness (counts never grow).
  std::vector<std::size_t> fresh_count(instance.sets.size());
  for (std::size_t s = 0; s < instance.sets.size(); ++s) {
    fresh_count[s] = instance.sets[s].elements.size();
  }
  auto recount = [&](std::size_t s) {
    std::size_t n = 0;
    for (std::size_t e : instance.sets[s].elements) {
      if (!covered[e]) ++n;
    }
    fresh_count[s] = n;
    return n;
  };

  while (remaining > 0) {
    double best_ratio = std::numeric_limits<double>::infinity();
    std::size_t best_set = instance.sets.size();
    std::size_t best_fresh = 0;
    for (std::size_t s = 0; s < instance.sets.size(); ++s) {
      if (chosen[s] || fresh_count[s] == 0) continue;
      // Optimistic bound first; recount only if it could win.
      double optimistic =
          instance.sets[s].weight / static_cast<double>(fresh_count[s]);
      if (optimistic > best_ratio) continue;
      const std::size_t n = recount(s);
      if (n == 0) continue;
      const double ratio = instance.sets[s].weight / static_cast<double>(n);
      // Tie-break toward larger coverage so free sets don't dribble in
      // one element at a time.
      if (ratio < best_ratio ||
          (ratio == best_ratio && n > best_fresh)) {
        best_ratio = ratio;
        best_set = s;
        best_fresh = n;
      }
    }
    EAS_CHECK_MSG(best_set < instance.sets.size(),
                  "greedy stalled with " << remaining << " uncovered");
    chosen[best_set] = true;
    sol.chosen_sets.push_back(best_set);
    sol.total_weight += instance.sets[best_set].weight;
    for (std::size_t e : instance.sets[best_set].elements) {
      if (!covered[e]) {
        covered[e] = true;
        --remaining;
      }
    }
    fresh_count[best_set] = 0;
  }
  if constexpr (audit_enabled()) check_cover(sol, instance);
  return sol;
}

namespace {

struct ExactState {
  const SetCoverInstance* instance;
  std::vector<std::vector<std::size_t>> sets_of_element;
  std::vector<bool> covered;
  std::size_t remaining = 0;
  std::vector<std::size_t> current;
  double current_weight = 0.0;
  double best_weight = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best;

  void search() {
    if (remaining == 0) {
      if (current_weight < best_weight) {
        best_weight = current_weight;
        best = current;
      }
      return;
    }
    if (current_weight >= best_weight) return;  // bound

    // Branch on the uncovered element with the fewest candidate sets.
    std::size_t pivot = instance->num_elements;
    std::size_t pivot_options = std::numeric_limits<std::size_t>::max();
    for (std::size_t e = 0; e < instance->num_elements; ++e) {
      if (covered[e]) continue;
      if (sets_of_element[e].size() < pivot_options) {
        pivot_options = sets_of_element[e].size();
        pivot = e;
      }
    }
    EAS_DCHECK(pivot < instance->num_elements);

    for (std::size_t s : sets_of_element[pivot]) {
      // Apply set s.
      std::vector<std::size_t> newly;
      for (std::size_t e : instance->sets[s].elements) {
        if (!covered[e]) {
          covered[e] = true;
          newly.push_back(e);
        }
      }
      remaining -= newly.size();
      current.push_back(s);
      current_weight += instance->sets[s].weight;

      search();

      current_weight -= instance->sets[s].weight;
      current.pop_back();
      remaining += newly.size();
      for (std::size_t e : newly) covered[e] = false;
    }
  }
};

}  // namespace

std::optional<SetCoverSolution> exact_set_cover(
    const SetCoverInstance& instance, std::size_t max_elements) {
  instance.validate();
  EAS_CHECK_MSG(instance.num_elements <= max_elements,
                "exact_set_cover instance too large ("
                    << instance.num_elements << " > " << max_elements << ")");
  if (!instance.feasible()) return std::nullopt;

  ExactState st;
  st.instance = &instance;
  st.covered.assign(instance.num_elements, false);
  st.remaining = instance.num_elements;
  st.sets_of_element.resize(instance.num_elements);
  for (std::size_t s = 0; s < instance.sets.size(); ++s) {
    for (std::size_t e : instance.sets[s].elements) {
      st.sets_of_element[e].push_back(s);
    }
  }
  st.search();

  SetCoverSolution sol;
  sol.chosen_sets = st.best;
  sol.total_weight = st.best_weight;
  if constexpr (audit_enabled()) check_cover(sol, instance);
  return sol;
}

}  // namespace eas::graph
