// Maximum-weight independent set: the combinatorial core of offline
// scheduling (§3.1).
//
// Theorem 1 reduces the offline energy-saving problem to MWIS on the
// conflict graph over X(i,j,k) nodes. The paper solves it with GMIN, the
// greedy of Sakai, Togasaki & Yamazaki [22]; we provide:
//  * gwmin   — repeatedly take argmax weight(v) / (degree(v) + 1);
//  * gwmin2  — the companion greedy using neighbourhood weight sums,
//              often stronger on weight-skewed graphs;
//  * exact_mwis — branch-and-bound for optimality-gap ablations on small
//              instances.
//
// The scheduling-specific *implicit* conflict graph (which never
// materialises its O(n²) edges) lives in core/mwis_scheduler; the explicit
// algorithms here are the reference implementations it is tested against.
#pragma once

#include <cstddef>
#include <vector>

namespace eas::graph {

/// Undirected vertex-weighted graph, adjacency-list representation.
/// Vertices are 0..n-1; parallel edges and self-loops are rejected.
class WeightedGraph {
 public:
  explicit WeightedGraph(std::vector<double> weights);

  std::size_t size() const { return weights_.size(); }
  double weight(std::size_t v) const { return weights_[v]; }
  const std::vector<std::size_t>& neighbors(std::size_t v) const {
    return adj_[v];
  }
  std::size_t degree(std::size_t v) const { return adj_[v].size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Adds an undirected edge; duplicate edges are invariant violations.
  void add_edge(std::size_t u, std::size_t v);
  bool has_edge(std::size_t u, std::size_t v) const;

  bool is_independent(const std::vector<std::size_t>& vertices) const;
  double total_weight(const std::vector<std::size_t>& vertices) const;

 private:
  std::vector<double> weights_;
  std::vector<std::vector<std::size_t>> adj_;
  std::size_t num_edges_ = 0;
};

struct MwisSolution {
  std::vector<std::size_t> vertices;
  double total_weight = 0.0;
};

/// Executable independence contract: throws InvariantError naming the first
/// adjacent (or duplicate / out-of-range) pair when `vertices` is not an
/// independent set in `g`. Solvers call this as a postcondition under
/// EASCHED_AUDIT; tests call it directly to prove the contract fires.
void check_independent(const WeightedGraph& g,
                       const std::vector<std::size_t>& vertices);

/// GWMIN of Sakai et al. [22]: take v maximising w(v)/(d(v)+1) among the
/// surviving vertices, add it, delete N[v]; repeat. Guarantees total weight
/// >= sum_v w(v)/(d(v)+1).
MwisSolution gwmin(const WeightedGraph& g);

/// GWMIN2 of Sakai et al.: take v maximising w(v) / (w(v) + sum of N(v)
/// weights); stronger when weights are highly skewed.
MwisSolution gwmin2(const WeightedGraph& g);

/// Exact MWIS via branch-and-bound (branch on max-degree vertex; bound by
/// the remaining weight sum). Exponential worst case; `max_vertices` guards
/// against misuse.
MwisSolution exact_mwis(const WeightedGraph& g, std::size_t max_vertices = 48);

}  // namespace eas::graph
