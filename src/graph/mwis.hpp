// Maximum-weight independent set: the combinatorial core of offline
// scheduling (§3.1).
//
// Theorem 1 reduces the offline energy-saving problem to MWIS on the
// conflict graph over X(i,j,k) nodes. The paper solves it with GMIN, the
// greedy of Sakai, Togasaki & Yamazaki [22]; we provide:
//  * gwmin   — repeatedly take argmax weight(v) / (degree(v) + 1);
//  * gwmin2  — the companion greedy using neighbourhood weight sums,
//              often stronger on weight-skewed graphs;
//  * exact_mwis — branch-and-bound for optimality-gap ablations on small
//              instances.
//
// gwmin/gwmin2 select through an indexed 8-ary heap (indexed_heap.hpp) in
// O((n+m) log n); `gwmin_reference`/`gwmin2_reference` retain the original
// O(n·k) linear-scan greedies as executable specifications, and
// tests/test_graph_diff.cpp proves the two produce *identical* vertex sets
// (the heap's (score, lowest-index) tie-break replicates the scan exactly).
//
// The scheduling-specific *implicit* conflict graph (which never
// materialises its O(n²) edges) lives in core/mwis_scheduler; the explicit
// algorithms here are the reference implementations it is tested against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/indexed_heap.hpp"
#include "util/epoch_marker.hpp"

namespace eas::graph {

/// Undirected vertex-weighted graph, immutable CSR adjacency (offsets into
/// one flat neighbour array). Vertices are 0..n-1. Build one with
/// WeightedGraphBuilder (edge list → counting sort, one pass) or adopt a
/// prebuilt CSR (core::ConflictGraph::to_weighted_graph does). Structural
/// invariants — symmetry, no parallel edges, no self-loops — are validated
/// in bulk at construction under the audit tier, not probed per insertion.
class WeightedGraph {
 public:
  /// Edge-less graph of isolated weighted vertices.
  explicit WeightedGraph(std::vector<double> weights);

  /// Adopts a CSR adjacency: neighbours of v are adj[offsets[v] ..
  /// offsets[v+1]). Shape errors (offsets/adj size mismatch) throw always;
  /// the O(n+m) structural audit (range, self-loops, duplicates, symmetry)
  /// runs under EASCHED_AUDIT / Debug.
  WeightedGraph(std::vector<double> weights, std::vector<std::size_t> offsets,
                std::vector<std::uint32_t> adj);

  std::size_t size() const { return weights_.size(); }
  double weight(std::size_t v) const { return weights_[v]; }
  std::span<const std::uint32_t> neighbors(std::size_t v) const {
    return {adj_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  std::size_t degree(std::size_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  std::size_t num_edges() const { return adj_.size() / 2; }

  /// O(min(deg(u), deg(v))) CSR row probe (tests and audits only — not a
  /// hot-path operation on this representation).
  bool has_edge(std::size_t u, std::size_t v) const;

  bool is_independent(const std::vector<std::size_t>& vertices) const;
  double total_weight(const std::vector<std::size_t>& vertices) const;

 private:
  std::vector<double> weights_;
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> adj_;
};

/// Accumulates an edge list in O(1) per edge and builds the CSR in one
/// counting-sort pass. Range and self-loop violations throw at add_edge
/// (O(1) checks); duplicate-edge detection is part of build()'s bulk audit —
/// the per-insertion O(deg) membership probe the old adjacency-list
/// representation paid (quadratic on dense rows, and in Release) is gone.
class WeightedGraphBuilder {
 public:
  explicit WeightedGraphBuilder(std::vector<double> weights);

  void add_edge(std::size_t u, std::size_t v);
  std::size_t num_edges() const { return edges_.size(); }
  std::size_t size() const { return weights_.size(); }

  /// Builds the CSR graph. The builder is left empty (weights moved out).
  WeightedGraph build();

 private:
  std::vector<double> weights_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
};

struct MwisSolution {
  std::vector<std::size_t> vertices;
  double total_weight = 0.0;
};

/// Executable independence contract: throws InvariantError naming the first
/// adjacent (or duplicate / out-of-range) pair when `vertices` is not an
/// independent set in `g`. Solvers call this as a postcondition under
/// EASCHED_AUDIT; tests call it directly to prove the contract fires.
void check_independent(const WeightedGraph& g,
                       const std::vector<std::size_t>& vertices);

/// Reusable scratch for the heap-driven gwmin/gwmin2: the selection heap,
/// incremental alive-degrees, and the per-selection doomed list. Callers
/// solving a stream of instances keep one alive so steady-state solves are
/// allocation-free beyond the returned solution.
struct MwisWorkspace {
  IndexedScoreHeap<TieOrder::kLowIndexWins> heap;
  std::vector<std::uint32_t> degree;
  std::vector<std::uint32_t> doomed;
  /// Survivors adjacent to this round's kills, deduplicated — each gets one
  /// heap re-key with its final post-round score.
  util::EpochMarker touched;
  std::vector<std::uint32_t> touch_list;
};

/// GWMIN of Sakai et al. [22]: take v maximising w(v)/(d(v)+1) among the
/// surviving vertices, add it, delete N[v]; repeat. Guarantees total weight
/// >= sum_v w(v)/(d(v)+1). Heap-driven O((n+m) log n); selections
/// (including score ties, broken toward the lowest vertex index) are
/// identical to gwmin_reference.
MwisSolution gwmin(const WeightedGraph& g);
MwisSolution gwmin(const WeightedGraph& g, MwisWorkspace& ws);
/// Out-parameter form: with a warmed workspace and a reused `out`, a solve
/// performs no heap allocation at all (pinned by the counting-allocator
/// test in test_graph_diff).
void gwmin(const WeightedGraph& g, MwisWorkspace& ws, MwisSolution& out);

/// GWMIN2 of Sakai et al.: take v maximising w(v) / (w(v) + sum of N(v)
/// weights); stronger when weights are highly skewed. Same heap engine and
/// tie-break contract as gwmin.
MwisSolution gwmin2(const WeightedGraph& g);
MwisSolution gwmin2(const WeightedGraph& g, MwisWorkspace& ws);
void gwmin2(const WeightedGraph& g, MwisWorkspace& ws, MwisSolution& out);

/// The original linear-scan greedies, retained verbatim as the executable
/// specification the heap solvers are differentially tested against
/// (test_graph_diff). O(n·k): rescans every survivor per selection.
MwisSolution gwmin_reference(const WeightedGraph& g);
MwisSolution gwmin2_reference(const WeightedGraph& g);

/// Exact MWIS via branch-and-bound (branch on max-degree vertex; bound by
/// the remaining weight sum). Exponential worst case; `max_vertices` guards
/// against misuse.
MwisSolution exact_mwis(const WeightedGraph& g, std::size_t max_vertices = 48);

}  // namespace eas::graph
