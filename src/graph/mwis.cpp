#include "graph/mwis.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace eas::graph {

WeightedGraph::WeightedGraph(std::vector<double> weights)
    : weights_(std::move(weights)), adj_(weights_.size()) {
  for (double w : weights_) {
    EAS_CHECK_MSG(w >= 0.0, "vertex weights must be non-negative");
  }
}

void WeightedGraph::add_edge(std::size_t u, std::size_t v) {
  EAS_CHECK_MSG(u < size() && v < size(), "edge endpoint out of range");
  EAS_CHECK_MSG(u != v, "self-loop on vertex " << u);
  EAS_CHECK_MSG(!has_edge(u, v), "duplicate edge " << u << "-" << v);
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
}

bool WeightedGraph::has_edge(std::size_t u, std::size_t v) const {
  const auto& smaller = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const std::size_t target = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

bool WeightedGraph::is_independent(
    const std::vector<std::size_t>& vertices) const {
  std::vector<bool> in_set(size(), false);
  for (std::size_t v : vertices) {
    if (v >= size() || in_set[v]) return false;
    in_set[v] = true;
  }
  for (std::size_t v : vertices) {
    for (std::size_t u : adj_[v]) {
      if (in_set[u]) return false;
    }
  }
  return true;
}

double WeightedGraph::total_weight(
    const std::vector<std::size_t>& vertices) const {
  double w = 0.0;
  for (std::size_t v : vertices) w += weights_[v];
  return w;
}

void check_independent(const WeightedGraph& g,
                       const std::vector<std::size_t>& vertices) {
  std::vector<bool> in_set(g.size(), false);
  for (std::size_t v : vertices) {
    EAS_ENSURE_MSG(v < g.size(), "solution vertex " << v
                                                    << " out of range (n="
                                                    << g.size() << ")");
    EAS_ENSURE_MSG(!in_set[v], "vertex " << v << " appears twice in solution");
    in_set[v] = true;
  }
  for (std::size_t v : vertices) {
    for (std::size_t u : g.neighbors(v)) {
      EAS_ENSURE_MSG(!in_set[u], "solution is not independent: edge "
                                     << v << " ~ " << u
                                     << " has both endpoints selected");
    }
  }
}

namespace {

/// Shared greedy skeleton: `score(v, alive, alive_degree)` ranks surviving
/// vertices; the best one joins the solution and N[v] is deleted.
template <typename ScoreFn>
MwisSolution greedy_mwis(const WeightedGraph& g, ScoreFn score) {
  const std::size_t n = g.size();
  std::vector<bool> alive(n, true);
  std::vector<std::size_t> alive_degree(n);
  for (std::size_t v = 0; v < n; ++v) alive_degree[v] = g.degree(v);
  std::size_t remaining = n;

  MwisSolution sol;
  while (remaining > 0) {
    double best_score = -1.0;
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      const double s = score(v, alive, alive_degree);
      if (s > best_score) {
        best_score = s;
        best = v;
      }
    }
    EAS_DCHECK(best < n);
    sol.vertices.push_back(best);
    sol.total_weight += g.weight(best);

    // Delete the closed neighbourhood N[best].
    auto kill = [&](std::size_t v) {
      if (!alive[v]) return;
      alive[v] = false;
      --remaining;
      for (std::size_t u : g.neighbors(v)) {
        if (alive[u]) --alive_degree[u];
      }
    };
    kill(best);
    for (std::size_t u : g.neighbors(best)) kill(u);
  }
  std::sort(sol.vertices.begin(), sol.vertices.end());
  if constexpr (audit_enabled()) check_independent(g, sol.vertices);
  return sol;
}

}  // namespace

MwisSolution gwmin(const WeightedGraph& g) {
  return greedy_mwis(g, [&g](std::size_t v, const std::vector<bool>&,
                             const std::vector<std::size_t>& alive_degree) {
    return g.weight(v) / static_cast<double>(alive_degree[v] + 1);
  });
}

MwisSolution gwmin2(const WeightedGraph& g) {
  return greedy_mwis(
      g, [&g](std::size_t v, const std::vector<bool>& alive,
              const std::vector<std::size_t>&) {
        double nbr = 0.0;
        for (std::size_t u : g.neighbors(v)) {
          if (alive[u]) nbr += g.weight(u);
        }
        const double denom = g.weight(v) + nbr;
        // An isolated zero-weight vertex is harmless to take: score 1.
        return denom == 0.0 ? 1.0 : g.weight(v) / denom;
      });
}

namespace {

struct ExactMwisState {
  const WeightedGraph* g;
  std::vector<bool> alive;
  std::vector<std::size_t> current;
  double current_weight = 0.0;
  double best_weight = -1.0;
  std::vector<std::size_t> best;

  void search(double remaining_weight) {
    if (current_weight + remaining_weight <= best_weight) return;  // bound

    // Find the alive vertex with maximum alive-degree.
    std::size_t pivot = g->size();
    std::size_t pivot_degree = 0;
    double alive_weight = 0.0;
    for (std::size_t v = 0; v < g->size(); ++v) {
      if (!alive[v]) continue;
      alive_weight += g->weight(v);
      std::size_t d = 0;
      for (std::size_t u : g->neighbors(v)) {
        if (alive[u]) ++d;
      }
      if (pivot == g->size() || d > pivot_degree) {
        pivot = v;
        pivot_degree = d;
      }
    }
    if (pivot == g->size()) {  // graph empty: record leaf
      if (current_weight > best_weight) {
        best_weight = current_weight;
        best = current;
      }
      return;
    }
    if (current_weight + alive_weight <= best_weight) return;

    if (pivot_degree == 0) {
      // All survivors are isolated: take them all and finish this branch.
      double gain = 0.0;
      std::vector<std::size_t> taken;
      for (std::size_t v = 0; v < g->size(); ++v) {
        if (alive[v]) {
          gain += g->weight(v);
          taken.push_back(v);
        }
      }
      if (current_weight + gain > best_weight) {
        best_weight = current_weight + gain;
        best = current;
        best.insert(best.end(), taken.begin(), taken.end());
      }
      return;
    }

    // Branch 1: include pivot (delete N[pivot]).
    std::vector<std::size_t> killed;
    auto kill = [&](std::size_t v) {
      if (alive[v]) {
        alive[v] = false;
        killed.push_back(v);
      }
    };
    kill(pivot);
    for (std::size_t u : g->neighbors(pivot)) kill(u);
    current.push_back(pivot);
    current_weight += g->weight(pivot);
    double removed_weight = 0.0;
    for (std::size_t v : killed) removed_weight += g->weight(v);
    search(alive_weight - removed_weight);
    current.pop_back();
    current_weight -= g->weight(pivot);
    for (std::size_t v : killed) alive[v] = true;

    // Branch 2: exclude pivot.
    alive[pivot] = false;
    search(alive_weight - g->weight(pivot));
    alive[pivot] = true;
  }
};

}  // namespace

MwisSolution exact_mwis(const WeightedGraph& g, std::size_t max_vertices) {
  EAS_REQUIRE_MSG(g.size() <= max_vertices,
                "exact_mwis instance too large (" << g.size() << " > "
                                                  << max_vertices << ")");
  ExactMwisState st;
  st.g = &g;
  st.alive.assign(g.size(), true);
  double total = 0.0;
  for (std::size_t v = 0; v < g.size(); ++v) total += g.weight(v);
  st.search(total);

  MwisSolution sol;
  sol.vertices = st.best;
  std::sort(sol.vertices.begin(), sol.vertices.end());
  sol.total_weight = std::max(0.0, st.best_weight);
  if constexpr (audit_enabled()) check_independent(g, sol.vertices);
  return sol;
}

}  // namespace eas::graph
