#include "graph/mwis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/check.hpp"
#include "util/epoch_marker.hpp"

namespace eas::graph {

namespace {

void check_weights(const std::vector<double>& weights) {
  EAS_CHECK_MSG(weights.size() < 0xffffffffu,
                "graph too large for 32-bit vertex ids");
  for (double w : weights) {
    EAS_CHECK_MSG(std::isfinite(w) && w >= 0.0,
                  "vertex weights must be finite and non-negative");
  }
}

}  // namespace

WeightedGraph::WeightedGraph(std::vector<double> weights)
    : weights_(std::move(weights)), offsets_(weights_.size() + 1, 0) {
  check_weights(weights_);
}

WeightedGraph::WeightedGraph(std::vector<double> weights,
                             std::vector<std::size_t> offsets,
                             std::vector<std::uint32_t> adj)
    : weights_(std::move(weights)),
      offsets_(std::move(offsets)),
      adj_(std::move(adj)) {
  check_weights(weights_);
  EAS_CHECK_MSG(offsets_.size() == weights_.size() + 1,
                "CSR offsets must have size n+1 (n=" << weights_.size()
                                                     << ")");
  EAS_CHECK_MSG(offsets_.front() == 0 && offsets_.back() == adj_.size(),
                "CSR offsets must span the adjacency array exactly");
  if constexpr (audit_enabled()) {
    // Bulk structural audit, once per construction: this replaces the old
    // per-insertion O(deg) duplicate probe (which ran even in Release).
    util::EpochMarker row;
    const std::size_t n = size();
    for (std::size_t v = 0; v < n; ++v) {
      EAS_AUDIT_MSG(offsets_[v] <= offsets_[v + 1],
                    "CSR offsets not monotone at vertex " << v);
      row.begin(n);
      for (std::uint32_t u : neighbors(v)) {
        EAS_AUDIT_MSG(u < n, "neighbour " << u << " of vertex " << v
                                          << " out of range (n=" << n << ")");
        EAS_AUDIT_MSG(u != v, "self-loop on vertex " << v);
        EAS_AUDIT_MSG(!row.marked(u), "duplicate edge " << v << "-" << u);
        row.mark(u);
        EAS_AUDIT_MSG(has_edge(u, v),
                      "asymmetric adjacency: " << v << " lists " << u
                                               << " but not vice versa");
      }
    }
  }
}

bool WeightedGraph::has_edge(std::size_t u, std::size_t v) const {
  if (degree(v) < degree(u)) std::swap(u, v);
  const auto row = neighbors(u);
  return std::find(row.begin(), row.end(), static_cast<std::uint32_t>(v)) !=
         row.end();
}

bool WeightedGraph::is_independent(
    const std::vector<std::size_t>& vertices) const {
  thread_local util::EpochMarker in_set;
  in_set.begin(size());
  for (std::size_t v : vertices) {
    if (v >= size() || in_set.marked(v)) return false;
    in_set.mark(v);
  }
  for (std::size_t v : vertices) {
    for (std::uint32_t u : neighbors(v)) {
      if (in_set.marked(u)) return false;
    }
  }
  return true;
}

double WeightedGraph::total_weight(
    const std::vector<std::size_t>& vertices) const {
  double w = 0.0;
  for (std::size_t v : vertices) w += weights_[v];
  return w;
}

WeightedGraphBuilder::WeightedGraphBuilder(std::vector<double> weights)
    : weights_(std::move(weights)) {
  check_weights(weights_);
}

void WeightedGraphBuilder::add_edge(std::size_t u, std::size_t v) {
  EAS_CHECK_MSG(u < size() && v < size(), "edge endpoint out of range");
  EAS_CHECK_MSG(u != v, "self-loop on vertex " << u);
  edges_.emplace_back(static_cast<std::uint32_t>(u),
                      static_cast<std::uint32_t>(v));
}

WeightedGraph WeightedGraphBuilder::build() {
  const std::size_t n = weights_.size();
  // Counting sort of the edge list into CSR: degree count, prefix sum,
  // placement. O(n + m) with three sequential passes.
  std::vector<std::size_t> offsets(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<std::uint32_t> adj(2 * edges_.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    adj[cursor[u]++] = v;
    adj[cursor[v]++] = u;
  }
  edges_.clear();
  // The CSR constructor's audit validates the bulk invariants (including
  // the duplicate-edge check the old add_edge probed per insertion).
  return WeightedGraph(std::move(weights_), std::move(offsets),
                       std::move(adj));
}

void check_independent(const WeightedGraph& g,
                       const std::vector<std::size_t>& vertices) {
  thread_local util::EpochMarker in_set;
  in_set.begin(g.size());
  for (std::size_t v : vertices) {
    EAS_ENSURE_MSG(v < g.size(), "solution vertex " << v
                                                    << " out of range (n="
                                                    << g.size() << ")");
    EAS_ENSURE_MSG(!in_set.marked(v),
                   "vertex " << v << " appears twice in solution");
    in_set.mark(v);
  }
  for (std::size_t v : vertices) {
    for (std::uint32_t u : g.neighbors(v)) {
      EAS_ENSURE_MSG(!in_set.marked(u), "solution is not independent: edge "
                                            << v << " ~ " << u
                                            << " has both endpoints selected");
    }
  }
}

namespace {

/// Shared greedy skeleton of the *reference* solvers: `score(v, alive,
/// alive_degree)` ranks surviving vertices by a full linear rescan; the best
/// one joins the solution and N[v] is deleted. O(n·k). Retained verbatim as
/// the executable specification the heap solvers are differentially tested
/// against (the heap's tie-break contract is "exactly what this scan does":
/// first strictly-better vertex wins, so equal scores keep the lowest
/// index).
template <typename ScoreFn>
MwisSolution greedy_mwis(const WeightedGraph& g, ScoreFn score) {
  const std::size_t n = g.size();
  std::vector<bool> alive(n, true);
  std::vector<std::size_t> alive_degree(n);
  for (std::size_t v = 0; v < n; ++v) alive_degree[v] = g.degree(v);
  std::size_t remaining = n;

  MwisSolution sol;
  while (remaining > 0) {
    double best_score = -1.0;
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      const double s = score(v, alive, alive_degree);
      if (s > best_score) {
        best_score = s;
        best = v;
      }
    }
    EAS_DCHECK(best < n);
    sol.vertices.push_back(best);
    sol.total_weight += g.weight(best);

    // Delete the closed neighbourhood N[best].
    auto kill = [&](std::size_t v) {
      if (!alive[v]) return;
      alive[v] = false;
      --remaining;
      for (std::uint32_t u : g.neighbors(v)) {
        if (alive[u]) --alive_degree[u];
      }
    };
    kill(best);
    for (std::uint32_t u : g.neighbors(best)) kill(u);
  }
  std::sort(sol.vertices.begin(), sol.vertices.end());
  if constexpr (audit_enabled()) check_independent(g, sol.vertices);
  return sol;
}

/// Hot selection loop shared by the heap-driven greedies ([[hotpath]]: no
/// allocation, no throw): pop the (score, lowest-index) maximum, delete its
/// closed neighbourhood from the heap, apply `dec(u)` per (kill, surviving
/// neighbour) incidence — the incremental bookkeeping, in doomed-major CSR
/// order — then re-key each touched survivor once via `rescore(u)`, its
/// final post-round score (scores only grow as neighbours die, so every
/// re-key is an increase). The touched-set dedup matters twice over: a
/// survivor adjacent to several kills pays one sift-up instead of several,
/// and GWMIN2's O(deg) fresh rescan runs once per survivor per round.
/// Phase order matters: all kills land before any re-key, so `rescore`
/// sees the post-kill alive set via heap.contains().
template <typename DecFn, typename RescoreFn>
void mwis_select_loop(const WeightedGraph& g, MwisWorkspace& ws, DecFn dec,
                      RescoreFn rescore, MwisSolution& sol) {
  auto& heap = ws.heap;
  auto& doomed = ws.doomed;
  auto& touch_list = ws.touch_list;
  while (!heap.empty()) {
    const auto top = heap.top();
    heap.pop_top();
    sol.vertices.push_back(top.v);
    sol.total_weight += g.weight(top.v);

    doomed.clear();
    doomed.push_back(top.v);
    for (const std::uint32_t u : g.neighbors(top.v)) {
      if (heap.contains(u)) {
        heap.remove(u);
        doomed.push_back(u);
      }
    }
    ws.touched.begin(g.size());
    touch_list.clear();
    for (const std::uint32_t dead : doomed) {
      for (const std::uint32_t u : g.neighbors(dead)) {
        if (!heap.contains(u)) continue;
        dec(u);
        if (!ws.touched.marked(u)) {
          ws.touched.mark(u);
          touch_list.push_back(u);
        }
      }
    }
    for (const std::uint32_t u : touch_list) heap.increase(u, rescore(u));
  }
}

/// Common prologue/epilogue of the heap solvers: size the workspace, run
/// the selection loop, canonicalise the solution order.
template <typename InitScoreFn, typename DecFn, typename RescoreFn>
void mwis_heap_solve(const WeightedGraph& g, MwisWorkspace& ws,
                     InitScoreFn init_score, DecFn dec, RescoreFn rescore,
                     MwisSolution& out) {
  out.vertices.clear();
  out.total_weight = 0.0;
  const auto n = static_cast<std::uint32_t>(g.size());
  std::size_t max_deg = 0;
  for (std::uint32_t v = 0; v < n; ++v) max_deg = std::max(max_deg, g.degree(v));
  ws.doomed.clear();
  ws.doomed.reserve(max_deg + 1);
  ws.heap.assign(n, init_score);
  mwis_select_loop(g, ws, dec, rescore, out);
  std::sort(out.vertices.begin(), out.vertices.end());
  if constexpr (audit_enabled()) check_independent(g, out.vertices);
}

}  // namespace

void gwmin(const WeightedGraph& g, MwisWorkspace& ws, MwisSolution& out) {
  const auto n = static_cast<std::uint32_t>(g.size());
  ws.degree.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    ws.degree[v] = static_cast<std::uint32_t>(g.degree(v));
  }
  auto score = [&g, &ws](std::uint32_t v) {
    return g.weight(v) / static_cast<double>(ws.degree[v] + 1);
  };
  // Alive-degrees drop by one per adjacent kill — identical integer
  // sequence to the reference scan's alive_degree bookkeeping, so scores
  // are bit-identical doubles.
  auto dec = [&ws](std::uint32_t u) { --ws.degree[u]; };
  mwis_heap_solve(g, ws, score, dec, score, out);
}

void gwmin2(const WeightedGraph& g, MwisWorkspace& ws, MwisSolution& out) {
  // GWMIN2 re-scores a touched survivor by summing its *currently alive*
  // neighbours afresh, in CSR row order — exactly the sum the reference
  // scan computes (same subset, same order, hence the same double), rather
  // than an incrementally-maintained total whose rounding would drift from
  // the specification.
  auto score = [&g, &ws](std::uint32_t v) {
    double nbr = 0.0;
    for (const std::uint32_t u : g.neighbors(v)) {
      if (ws.heap.contains(u)) nbr += g.weight(u);
    }
    const double denom = g.weight(v) + nbr;
    // An isolated zero-weight vertex is harmless to take: score 1.
    return denom == 0.0 ? 1.0 : g.weight(v) / denom;
  };
  // Initial scores must not consult the half-built heap: all vertices are
  // alive before the first selection, so sum entire rows.
  auto init_score = [&g](std::uint32_t v) {
    double nbr = 0.0;
    for (const std::uint32_t u : g.neighbors(v)) nbr += g.weight(u);
    const double denom = g.weight(v) + nbr;
    return denom == 0.0 ? 1.0 : g.weight(v) / denom;
  };
  auto no_dec = [](std::uint32_t) {};
  mwis_heap_solve(g, ws, init_score, no_dec, score, out);
}

MwisSolution gwmin(const WeightedGraph& g, MwisWorkspace& ws) {
  MwisSolution sol;
  gwmin(g, ws, sol);
  return sol;
}

MwisSolution gwmin(const WeightedGraph& g) {
  MwisWorkspace ws;
  return gwmin(g, ws);
}

MwisSolution gwmin2(const WeightedGraph& g, MwisWorkspace& ws) {
  MwisSolution sol;
  gwmin2(g, ws, sol);
  return sol;
}

MwisSolution gwmin2(const WeightedGraph& g) {
  MwisWorkspace ws;
  return gwmin2(g, ws);
}

MwisSolution gwmin_reference(const WeightedGraph& g) {
  return greedy_mwis(g, [&g](std::size_t v, const std::vector<bool>&,
                             const std::vector<std::size_t>& alive_degree) {
    return g.weight(v) / static_cast<double>(alive_degree[v] + 1);
  });
}

MwisSolution gwmin2_reference(const WeightedGraph& g) {
  return greedy_mwis(
      g, [&g](std::size_t v, const std::vector<bool>& alive,
              const std::vector<std::size_t>&) {
        double nbr = 0.0;
        for (std::uint32_t u : g.neighbors(v)) {
          if (alive[u]) nbr += g.weight(u);
        }
        const double denom = g.weight(v) + nbr;
        // An isolated zero-weight vertex is harmless to take: score 1.
        return denom == 0.0 ? 1.0 : g.weight(v) / denom;
      });
}

namespace {

struct ExactMwisState {
  const WeightedGraph* g;
  std::vector<bool> alive;
  std::vector<std::size_t> current;
  double current_weight = 0.0;
  double best_weight = -1.0;
  std::vector<std::size_t> best;

  void search(double remaining_weight) {
    if (current_weight + remaining_weight <= best_weight) return;  // bound

    // Find the alive vertex with maximum alive-degree.
    std::size_t pivot = g->size();
    std::size_t pivot_degree = 0;
    double alive_weight = 0.0;
    for (std::size_t v = 0; v < g->size(); ++v) {
      if (!alive[v]) continue;
      alive_weight += g->weight(v);
      std::size_t d = 0;
      for (std::uint32_t u : g->neighbors(v)) {
        if (alive[u]) ++d;
      }
      if (pivot == g->size() || d > pivot_degree) {
        pivot = v;
        pivot_degree = d;
      }
    }
    if (pivot == g->size()) {  // graph empty: record leaf
      if (current_weight > best_weight) {
        best_weight = current_weight;
        best = current;
      }
      return;
    }
    if (current_weight + alive_weight <= best_weight) return;

    if (pivot_degree == 0) {
      // All survivors are isolated: take them all and finish this branch.
      double gain = 0.0;
      std::vector<std::size_t> taken;
      for (std::size_t v = 0; v < g->size(); ++v) {
        if (alive[v]) {
          gain += g->weight(v);
          taken.push_back(v);
        }
      }
      if (current_weight + gain > best_weight) {
        best_weight = current_weight + gain;
        best = current;
        best.insert(best.end(), taken.begin(), taken.end());
      }
      return;
    }

    // Branch 1: include pivot (delete N[pivot]).
    std::vector<std::size_t> killed;
    auto kill = [&](std::size_t v) {
      if (alive[v]) {
        alive[v] = false;
        killed.push_back(v);
      }
    };
    kill(pivot);
    for (std::uint32_t u : g->neighbors(pivot)) kill(u);
    current.push_back(pivot);
    current_weight += g->weight(pivot);
    double removed_weight = 0.0;
    for (std::size_t v : killed) removed_weight += g->weight(v);
    search(alive_weight - removed_weight);
    current.pop_back();
    current_weight -= g->weight(pivot);
    for (std::size_t v : killed) alive[v] = true;

    // Branch 2: exclude pivot.
    alive[pivot] = false;
    search(alive_weight - g->weight(pivot));
    alive[pivot] = true;
  }
};

}  // namespace

MwisSolution exact_mwis(const WeightedGraph& g, std::size_t max_vertices) {
  EAS_REQUIRE_MSG(g.size() <= max_vertices,
                "exact_mwis instance too large (" << g.size() << " > "
                                                  << max_vertices << ")");
  ExactMwisState st;
  st.g = &g;
  st.alive.assign(g.size(), true);
  double total = 0.0;
  for (std::size_t v = 0; v < g.size(); ++v) total += g.weight(v);
  st.search(total);

  MwisSolution sol;
  sol.vertices = st.best;
  std::sort(sol.vertices.begin(), sol.vertices.end());
  sol.total_weight = std::max(0.0, st.best_weight);
  if constexpr (audit_enabled()) check_independent(g, sol.vertices);
  return sol;
}

}  // namespace eas::graph
