// Weighted set cover: the combinatorial core of batch scheduling (§3.2).
//
// Theorem 2 reduces one batch scheduling round to weighted set cover:
// elements are queued requests, sets are disks (weighted by the marginal
// energy Eq. 5 charges for waking/extending them), and a minimum-weight
// cover is a minimum-energy batch assignment.
//
// Two solvers:
//  * greedy_weighted_set_cover — the classic H_n-approximation the paper
//    uses (iteratively take the most cost-effective set);
//  * exact_set_cover — branch-and-bound, exponential, for optimality-gap
//    ablations and solver cross-validation on small instances.
#pragma once

#include <optional>
#include <vector>

namespace eas::graph {

struct SetCoverInstance {
  /// Universe is {0, 1, ..., num_elements-1}.
  std::size_t num_elements = 0;

  struct Set {
    double weight = 0.0;  ///< must be >= 0
    std::vector<std::size_t> elements;
  };
  std::vector<Set> sets;

  /// Throws InvariantError on out-of-range elements or negative weights.
  void validate() const;

  /// True when every element appears in at least one set.
  bool feasible() const;
};

struct SetCoverSolution {
  std::vector<std::size_t> chosen_sets;  ///< indices into instance.sets
  double total_weight = 0.0;

  bool covers(const SetCoverInstance& instance) const;
};

/// Executable cover contract: throws InvariantError naming the first
/// uncovered element (or out-of-range set) when `sol` does not cover
/// `instance`. Solvers call this as a postcondition under EASCHED_AUDIT;
/// tests call it directly to prove the contract fires.
void check_cover(const SetCoverSolution& sol, const SetCoverInstance& instance);

/// Reusable scratch for greedy_weighted_set_cover. Callers that solve a
/// stream of instances (the batch scheduler solves one per scheduling
/// interval) keep one workspace alive so steady-state solves reuse the
/// heap/mark buffers instead of reallocating them.
struct SetCoverWorkspace {
  /// Candidate entry in the greedy selection heap. `fresh` is the number of
  /// still-uncovered elements the set held when the entry was pushed; it can
  /// only shrink afterwards, which is what makes lazy reinsertion exact.
  struct Candidate {
    double ratio = 0.0;  ///< weight / fresh at push time
    std::size_t fresh = 0;
    std::size_t set = 0;
  };
  std::vector<char> covered;
  std::vector<Candidate> heap;
};

/// Greedy H_n-approximation: repeatedly select the set minimising
/// weight / (newly covered elements); zero-weight sets are free and picked
/// first. Throws InvariantError if the instance is infeasible.
///
/// Selection is by lazy min-heap over (ratio, -fresh count, set index).
/// A set's key only ever increases as elements get covered, so an entry
/// whose cached count went stale is reinserted with its refreshed key; a
/// popped entry with an exact count is provably the global minimum. The
/// chosen sequence is bit-identical to a full linear scan per round.
SetCoverSolution greedy_weighted_set_cover(const SetCoverInstance& instance);

/// As above, reusing `ws` buffers across calls (no steady-state allocation
/// beyond the returned solution).
SetCoverSolution greedy_weighted_set_cover(const SetCoverInstance& instance,
                                           SetCoverWorkspace& ws);

/// The original per-round linear scan, retained as the executable
/// specification of the greedy order — min (ratio, -fresh, set index) each
/// round — that the lazy-heap solver is differentially tested against
/// (test_graph_diff). O(rounds · sets · set size).
SetCoverSolution greedy_weighted_set_cover_reference(
    const SetCoverInstance& instance);

/// Exact minimum-weight cover by branch-and-bound (branching on the
/// uncovered element with the fewest candidate sets). Returns nullopt if the
/// instance is infeasible. Intended for small instances (tests, ablations);
/// `max_elements` guards against accidental exponential blowups.
std::optional<SetCoverSolution> exact_set_cover(
    const SetCoverInstance& instance, std::size_t max_elements = 24);

}  // namespace eas::graph
