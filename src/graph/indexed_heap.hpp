// Indexed 8-ary max-heap over (score, vertex) keys — the selection engine
// behind the greedy solvers (GWMIN/GWMIN2 over both graph representations).
//
// Why indexed rather than lazy: the greedy deletes the closed neighbourhood
// N[v] on every selection and bumps the score of each survivor adjacent to a
// kill. A lazy heap (push a fresh entry per bump, skip stale pops) is exact
// but pays for every historical entry: on a 60k-node conflict graph the
// solver pushed/popped ~800k 16-byte entries through a binary
// std::push_heap/std::pop_heap, and that sift traffic — not the greedy
// itself — dominated the solve. Tracking each vertex's heap position makes
// deletion O(log n) with no tombstones, and turns a score bump into an
// in-place re-key whose sift-up almost always terminates after one parent
// compare (greedy scores only ever increase, and by little).
//
// Why 8-ary: identical reasoning to the event kernel's pending heap
// (DESIGN.md §8) — log_8 levels instead of log_2, and the eight children of
// a node are contiguous, so a sift-down level reads two cache lines instead
// of chasing two scattered ones.
//
// Determinism contract: keys are (score, vertex index) compared
// lexicographically, so the heap's maximum is a *total-order* argmax — heap
// shape never influences which vertex ranks first. `TieOrder` selects the
// direction of the index tie-break so each caller reproduces its historical
// selection sequence exactly:
//   * kLowIndexWins  — matches a linear argmax scan keeping the first
//     strictly-better vertex (graph::gwmin / graph::gwmin2);
//   * kHighIndexWins — matches a max-heap of std::pair<double, uint32_t>
//     (core::solve_gwmin), whose lexicographic pair compare prefers the
//     higher index on equal scores.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace eas::graph {

enum class TieOrder { kLowIndexWins, kHighIndexWins };

template <TieOrder kTie>
class IndexedScoreHeap {
 public:
  struct Entry {
    double score;
    std::uint32_t v;
  };

  /// Rebuilds the heap over vertices [0, n), scoring each with `score(v)`.
  /// Reuses storage from previous builds (no steady-state allocation once
  /// the workspace reaches its high-water size). O(n) Floyd heapify.
  template <typename ScoreFn>
  void assign(std::uint32_t n, ScoreFn score) {
    slots_.resize(n);
    pos_.resize(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      slots_[v] = Entry{score(v), v};
      pos_[v] = v;
    }
    if (n > 1) {
      for (std::size_t i = (static_cast<std::size_t>(n) - 2) / kArity + 1;
           i-- > 0;) {
        sift_down(i);
      }
    }
  }

  bool empty() const { return slots_.empty(); }
  std::size_t size() const { return slots_.size(); }
  bool contains(std::uint32_t v) const { return pos_[v] != kAbsent; }

  /// The (score, vertex) maximum under the tie order. Heap must be non-empty.
  Entry top() const {
    EAS_ASSERT(!slots_.empty());
    return slots_[0];
  }

  /// Removes the maximum. O(log n).
  void pop_top() {
    EAS_ASSERT(!slots_.empty());
    pos_[slots_[0].v] = kAbsent;
    const Entry last = slots_.back();
    slots_.pop_back();
    if (!slots_.empty()) {
      slots_[0] = last;
      pos_[last.v] = 0;
      sift_down(0);
    }
  }

  /// Removes vertex `v`, which must be present. O(log n).
  void remove(std::uint32_t v) {
    const std::size_t i = pos_[v];
    EAS_ASSERT(i != kAbsent);
    pos_[v] = kAbsent;
    const Entry last = slots_.back();
    slots_.pop_back();
    if (i == slots_.size()) return;  // removed the physical tail
    slots_[i] = last;
    pos_[last.v] = static_cast<std::uint32_t>(i);
    // The replacement came from the bottom; it can still rank above its new
    // parent when the removal site sits in a different subtree.
    if (i > 0 && precedes(slots_[i], slots_[(i - 1) / kArity])) {
      sift_up(i);
    } else {
      sift_down(i);
    }
  }

  /// Re-keys vertex `v` (present) to `score`, which must not rank below its
  /// current key — greedy scores only ever grow as neighbours die. Amortised
  /// O(1): the sift-up usually stops at the first parent compare.
  void increase(std::uint32_t v, double score) {
    const std::size_t i = pos_[v];
    EAS_ASSERT(i != kAbsent);
    EAS_ASSERT(slots_[i].score <= score);
    slots_[i].score = score;
    sift_up(i);
  }

 private:
  static constexpr std::size_t kArity = 8;
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  /// Strict total order: does `a` rank above `b`?
  static bool precedes(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    if constexpr (kTie == TieOrder::kLowIndexWins) {
      return a.v < b.v;
    } else {
      return a.v > b.v;
    }
  }

  void sift_up(std::size_t i) {
    const Entry e = slots_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!precedes(e, slots_[parent])) break;
      slots_[i] = slots_[parent];
      pos_[slots_[i].v] = static_cast<std::uint32_t>(i);
      i = parent;
    }
    slots_[i] = e;
    pos_[e.v] = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i) {
    const Entry e = slots_[i];
    const std::size_t n = slots_.size();
    for (;;) {
      const std::size_t first = kArity * i + 1;
      if (first >= n) break;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (precedes(slots_[c], slots_[best])) best = c;
      }
      if (!precedes(slots_[best], e)) break;
      slots_[i] = slots_[best];
      pos_[slots_[i].v] = static_cast<std::uint32_t>(i);
      i = best;
    }
    slots_[i] = e;
    pos_[e.v] = static_cast<std::uint32_t>(i);
  }

  std::vector<Entry> slots_;        // heap order
  std::vector<std::uint32_t> pos_;  // vertex -> slot index, kAbsent if out
};

}  // namespace eas::graph
