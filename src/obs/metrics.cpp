#include "obs/metrics.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace eas::obs {

namespace {
// Placeholder binning for counter/gauge/summary entries whose histogram
// member is unused; any valid range works.
constexpr double kUnusedHistMin = 1.0;
constexpr double kUnusedHistMax = 10.0;
constexpr int kUnusedHistBpd = 1;
}  // namespace

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kSummary:
      return "summary";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

Metric& MetricRegistry::find_or_create(const std::string& name,
                                       MetricKind kind, double hist_min,
                                       double hist_max, int bins_per_decade) {
  EAS_REQUIRE_MSG(!name.empty(), "metric name is empty");
  for (Metric& m : entries_) {
    if (m.name == name) {
      EAS_REQUIRE_MSG(m.kind == kind, "metric '" << name
                                                 << "' re-registered as "
                                                 << to_string(kind)
                                                 << " but exists as "
                                                 << to_string(m.kind));
      return m;
    }
  }
  entries_.emplace_back(name, kind, hist_min, hist_max, bins_per_decade);
  return entries_.back();
}

std::uint64_t* MetricRegistry::counter(const std::string& name) {
  return &find_or_create(name, MetricKind::kCounter, kUnusedHistMin,
                         kUnusedHistMax, kUnusedHistBpd)
              .counter;
}

double* MetricRegistry::gauge(const std::string& name) {
  return &find_or_create(name, MetricKind::kGauge, kUnusedHistMin,
                         kUnusedHistMax, kUnusedHistBpd)
              .gauge;
}

stats::SummaryStats* MetricRegistry::summary(const std::string& name) {
  return &find_or_create(name, MetricKind::kSummary, kUnusedHistMin,
                         kUnusedHistMax, kUnusedHistBpd)
              .summary;
}

stats::Histogram* MetricRegistry::histogram(const std::string& name,
                                            double min_value,
                                            double max_value,
                                            int bins_per_decade) {
  return &find_or_create(name, MetricKind::kHistogram, min_value, max_value,
                         bins_per_decade)
              .histogram;
}

const Metric* MetricRegistry::find(const std::string& name) const {
  for (const Metric& m : entries_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const Metric& src : other.entries_) {
    Metric* dst = nullptr;
    for (Metric& m : entries_) {
      if (m.name == src.name) {
        dst = &m;
        break;
      }
    }
    if (dst == nullptr) {
      // Clone wholesale — this also carries the source histogram's binning.
      entries_.push_back(src);
      continue;
    }
    EAS_REQUIRE_MSG(dst->kind == src.kind,
                    "merge kind mismatch for metric '" << src.name << "'");
    switch (src.kind) {
      case MetricKind::kCounter:
        dst->counter += src.counter;
        break;
      case MetricKind::kGauge:
        dst->gauge = src.gauge;
        break;
      case MetricKind::kSummary:
        dst->summary += src.summary;
        break;
      case MetricKind::kHistogram:
        dst->histogram += src.histogram;
        break;
    }
  }
}

std::string MetricRegistry::to_json() const {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  for (const Metric& m : entries_) {
    w.key(m.name);
    w.begin_object();
    w.field("kind", to_string(m.kind));
    switch (m.kind) {
      case MetricKind::kCounter:
        w.field("value", m.counter);
        break;
      case MetricKind::kGauge:
        w.key("value");
        w.raw(util::json_number(m.gauge));
        break;
      case MetricKind::kSummary:
        w.field("count", m.summary.count());
        if (m.summary.count() > 0) {
          w.key("mean");
          w.raw(util::json_number(m.summary.mean()));
          w.key("min");
          w.raw(util::json_number(m.summary.min()));
          w.key("max");
          w.raw(util::json_number(m.summary.max()));
        }
        break;
      case MetricKind::kHistogram: {
        w.field("total", m.histogram.total_count());
        w.key("bins");
        w.begin_array();
        for (std::size_t b = 0; b < m.histogram.num_bins(); ++b) {
          if (m.histogram.bin_count(b) == 0) continue;
          w.begin_array();
          w.value(b);
          w.value(m.histogram.bin_count(b));
          w.end_array();
        }
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_object();
  return os.str();
}

}  // namespace eas::obs
