// Umbrella config for the observability layer: what a run should record.
//
// ObsConfig travels inside storage::SystemConfig (and ExperimentParams), so
// enabling tracing or metrics for a sweep is just another experiment knob —
// deterministic, serializable, no environment variables involved.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"

namespace eas::obs {

struct ObsConfig {
  TraceConfig trace{};
  /// Enables the per-run MetricRegistry (counters/gauges/summaries/
  /// histograms sampled by the storage system).
  bool metrics = false;

  bool enabled() const { return trace.enabled || metrics; }
  void validate() const { trace.validate(); }
};

}  // namespace eas::obs
