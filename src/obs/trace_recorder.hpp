// Structured trace recorder: the simulator's flight recorder.
//
// Components already hold a sim::Simulator reference for scheduling, so the
// recorder rides on it (Simulator::recorder(), null when tracing is off) and
// every instrumentation site is a single null check away from free. Events
// are fixed-size 32-byte PODs appended to a preallocated ring buffer —
// recording never allocates, never locks (a run is single-threaded by
// design) and never reads a wall clock: timestamps are the simulated clock,
// passed in by the caller, so a trace is as reproducible as the run itself.
//
// Two export forms:
//   * Chrome trace-event JSON (export_chrome_json) — load the file in
//     Perfetto / chrome://tracing to see per-disk power-state timelines,
//     request service spans and batch/rebuild/fault instants;
//   * a compact binary image (write_binary/read_binary) for archival and
//     programmatic diffing at 32 bytes/event.
//
// Instrumentation sites use the EAS_OBS macro so the whole surface can be
// compiled out with -DEASCHED_NO_OBS=ON; compiled in but disabled it costs
// one predictable branch per site (the null recorder check).
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace eas::util {
class JsonWriter;
}

namespace eas::obs {

// ---------------------------------------------------------------------------
// Vocabulary. Categories select what gets recorded (TraceConfig::categories
// is a bitmask of them); events say what happened. Both are schema-stable:
// the binary format stores the raw values.

enum class Cat : std::uint8_t {
  kRequest = 0,  ///< foreground request lifecycle
  kPower = 1,    ///< disk power-state transitions
  kBatch = 2,    ///< batch formation (WSC tick)
  kRebuild = 3,  ///< re-replication traffic
  kPolicy = 4,   ///< power-policy decisions (timer arm/cancel)
  kFault = 5,    ///< disk death / recovery
  kCache = 6,    ///< cache tier: hits, buffered writes, destage traffic
  kReliability = 7,  ///< reliability tier: deadlines, retries, hedges, shed
};
inline constexpr int kNumCats = 8;

constexpr std::uint32_t cat_bit(Cat c) {
  return 1u << static_cast<std::uint32_t>(c);
}
inline constexpr std::uint32_t kAllCategories = (1u << kNumCats) - 1;

const char* to_string(Cat c);

enum class Ev : std::uint8_t {
  kArrive = 0,        ///< request entered the system       id=req  a=data
  kQueue = 1,         ///< request queued at a disk         id=req  a=disk b=depth
  kDispatch = 2,      ///< scheduler routed request         id=req  a=disk
  kServiceBegin = 3,  ///< head movement + transfer start   id=req  a=disk
  kServiceEnd = 4,    ///< transfer done                    id=req  a=disk
  kComplete = 5,      ///< completion seen by the system    id=req  a=disk
  kPowerTransition = 6,  ///< disk changed state            id=disk b=from c=to
  kBatchFormed = 7,   ///< WSC batch assigned               id=seq  a=size
  kRebuildRead = 8,   ///< internal source read issued      id=target a=data b=src
  kRebuildWrite = 9,  ///< internal write onto target       id=target a=data
  kRebuildDone = 10,  ///< rebuild/scrub finished           id=target
  kDiskDown = 11,     ///< fail-stop / transient outage     id=disk
  kDiskBack = 12,     ///< replacement / recovery online    id=disk
  kPolicyArm = 13,    ///< spin-down timer armed            id=disk a=threshold_us
  kPolicyCancel = 14, ///< spin-down timer cancelled        id=disk
  kCacheHit = 15,     ///< request served from the tier     id=req  a=data b=dirty?
  kCacheMiss = 16,    ///< lookup missed, going to disk     id=req  a=data
  kWriteBuffered = 17,  ///< write absorbed by the buffer   id=req  a=data b=home
  kDestageBegin = 18,   ///< destage batch issued           id=disk a=blocks b=reason
  kDestageDone = 19,    ///< one destaged block landed      id=disk a=data
  kDeadlineMiss = 20,   ///< attempt exceeded its deadline  id=req  a=disk b=attempt
  kRetry = 21,          ///< backoff re-dispatch issued     id=req  a=disk b=attempt
  kHedgeIssue = 22,     ///< hedge copy dispatched          id=req  a=disk
  kHedgeWin = 23,       ///< hedge copy completed first     id=req  a=disk
  kShed = 24,           ///< read dropped by admission ctl  id=req  a=disk
  kAbandon = 25,        ///< attempt budget exhausted       id=req  a=disk
};

const char* to_string(Ev e);

/// Category an event belongs to (drives the config mask check).
Cat category_of(Ev e);

/// Power-state names used by the Chrome exporter. Indexed by the raw
/// disk::DiskState value; kept here (rather than depending on eas_disk,
/// which sits *above* obs in the layering) and pinned against
/// disk::to_string by test_obs.
const char* power_state_name(std::uint32_t s);

// ---------------------------------------------------------------------------
// Storage.

/// One recorded event. Fixed 32-byte POD so a ring entry write is two cache
/// lines at worst and the binary image is just the raw array.
struct TraceEvent {
  double time = 0.0;       ///< simulated seconds
  std::uint64_t id = 0;    ///< primary subject (request id, disk id, seq)
  std::uint64_t a = 0;     ///< event-specific argument (see Ev table)
  std::uint32_t b = 0;     ///< secondary argument
  std::uint16_t c = 0;     ///< tertiary argument
  Ev ev = Ev::kArrive;
  Cat cat = Cat::kRequest;
};
static_assert(sizeof(TraceEvent) == 32, "binary trace format is 32 B/event");

struct TraceConfig {
  bool enabled = false;
  /// Bitmask of cat_bit(Cat) values; defaults to everything.
  std::uint32_t categories = kAllCategories;
  /// Ring capacity in events (32 B each). When the run outgrows it the
  /// oldest events are overwritten and dropped() counts them.
  std::size_t capacity = 1u << 16;

  /// Throws InvariantError when enabled with a zero capacity or an empty /
  /// out-of-range category mask.
  void validate() const;
};

/// Bounded, allocation-free-after-construction event recorder.
///
/// Not thread-safe — a recorder belongs to one simulation (one logical
/// timeline), exactly like the simulator it hangs off.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config);

  const TraceConfig& config() const { return config_; }
  bool wants(Cat c) const { return (config_.categories & cat_bit(c)) != 0; }

  /// Core append; all helpers funnel through here. Events arriving while
  /// the category is masked are dropped for free (not counted).
  void record(double t, Ev ev, std::uint64_t id, std::uint64_t a = 0,
              std::uint32_t b = 0, std::uint16_t c = 0) {
    const Cat cat = category_of(ev);
    if (!wants(cat)) return;
    TraceEvent& e = ring_[static_cast<std::size_t>(recorded_ % capacity_)];
    e.time = t;
    e.id = id;
    e.a = a;
    e.b = b;
    e.c = c;
    e.ev = ev;
    e.cat = cat;
    ++recorded_;
  }

  // Named helpers for the instrumentation sites (all inline, hot).
  void request_event(double t, Ev ev, std::uint64_t req, std::uint64_t disk,
                     std::uint32_t depth = 0) {
    record(t, ev, req, disk, depth);
  }
  void power_transition(double t, std::uint32_t disk, std::uint32_t from,
                        std::uint32_t to) {
    record(t, Ev::kPowerTransition, disk, 0, from,
           static_cast<std::uint16_t>(to));
  }
  void batch_formed(double t, std::uint64_t seq, std::uint64_t size) {
    record(t, Ev::kBatchFormed, seq, size);
  }
  void rebuild_event(double t, Ev ev, std::uint64_t target,
                     std::uint64_t data = 0, std::uint32_t src = 0) {
    record(t, ev, target, data, src);
  }
  void policy_event(double t, Ev ev, std::uint64_t disk,
                    std::uint64_t threshold_us = 0) {
    record(t, ev, disk, threshold_us);
  }
  void cache_event(double t, Ev ev, std::uint64_t id, std::uint64_t a = 0,
                   std::uint32_t b = 0) {
    record(t, ev, id, a, b);
  }
  void reliability_event(double t, Ev ev, std::uint64_t req,
                         std::uint64_t disk, std::uint32_t arg = 0) {
    record(t, ev, req, disk, arg);
  }

  /// Events still held (<= capacity). dropped() is how many older events
  /// the ring overwrote.
  std::size_t size() const {
    return static_cast<std::size_t>(
        recorded_ < capacity_ ? recorded_ : capacity_);
  }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - size(); }
  std::size_t capacity() const { return static_cast<std::size_t>(capacity_); }

  /// i-th surviving event in chronological (record) order; i < size().
  const TraceEvent& event(std::size_t i) const {
    const std::uint64_t first = dropped();
    return ring_[static_cast<std::size_t>((first + i) % capacity_)];
  }

  // --- exporters -----------------------------------------------------------

  /// Whole-document Chrome trace: {"traceEvents":[...]}. `horizon` (>= the
  /// last event time) closes the open power-state spans; pass the run's
  /// horizon so the timeline matches the energy accounting exactly.
  void export_chrome_json(std::ostream& os, double horizon = 0.0) const;

  /// Appends this recorder's events to an already-open JSON array, tagging
  /// every event with `pid` and naming the process `process_name` — lets a
  /// sink merge many cells into one Perfetto-loadable trace side by side.
  void append_chrome_events(util::JsonWriter& w, int pid,
                            const std::string& process_name,
                            double horizon = 0.0) const;

  /// Compact binary image: 32-byte header + size() raw TraceEvents in
  /// chronological order. read_binary round-trips it (throws
  /// InvariantError on a foreign or truncated stream).
  void write_binary(std::ostream& os) const;
  static std::vector<TraceEvent> read_binary(std::istream& is);

 private:
  TraceConfig config_;
  std::uint64_t capacity_;
  std::uint64_t recorded_ = 0;
  std::vector<TraceEvent> ring_;
};

}  // namespace eas::obs

// ---------------------------------------------------------------------------
// Instrumentation guard. `recorder` is any expression yielding a
// TraceRecorder* (typically sim.recorder()); `call` is the member call to
// make on it. Compiled in (default), a disabled run pays exactly one
// well-predicted null-pointer branch per site; with -DEASCHED_NO_OBS=ON the
// site vanishes entirely and neither argument is evaluated.
#if defined(EASCHED_NO_OBS)
#define EAS_OBS(recorder, call) \
  do {                          \
  } while (0)
#else
#define EAS_OBS(recorder, call)                              \
  do {                                                       \
    if (::eas::obs::TraceRecorder* eas_obs_r_ = (recorder);  \
        eas_obs_r_ != nullptr) {                             \
      eas_obs_r_->call;                                      \
    }                                                        \
  } while (0)
#endif
