#include "obs/trace_recorder.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace eas::obs {

const char* to_string(Cat c) {
  switch (c) {
    case Cat::kRequest:
      return "request";
    case Cat::kPower:
      return "power";
    case Cat::kBatch:
      return "batch";
    case Cat::kRebuild:
      return "rebuild";
    case Cat::kPolicy:
      return "policy";
    case Cat::kFault:
      return "fault";
    case Cat::kCache:
      return "cache";
    case Cat::kReliability:
      return "reliability";
  }
  return "?";
}

const char* to_string(Ev e) {
  switch (e) {
    case Ev::kArrive:
      return "arrive";
    case Ev::kQueue:
      return "queue";
    case Ev::kDispatch:
      return "dispatch";
    case Ev::kServiceBegin:
      return "service-begin";
    case Ev::kServiceEnd:
      return "service-end";
    case Ev::kComplete:
      return "complete";
    case Ev::kPowerTransition:
      return "power-transition";
    case Ev::kBatchFormed:
      return "batch-formed";
    case Ev::kRebuildRead:
      return "rebuild-read";
    case Ev::kRebuildWrite:
      return "rebuild-write";
    case Ev::kRebuildDone:
      return "rebuild-done";
    case Ev::kDiskDown:
      return "disk-down";
    case Ev::kDiskBack:
      return "disk-back";
    case Ev::kPolicyArm:
      return "policy-arm";
    case Ev::kPolicyCancel:
      return "policy-cancel";
    case Ev::kCacheHit:
      return "cache-hit";
    case Ev::kCacheMiss:
      return "cache-miss";
    case Ev::kWriteBuffered:
      return "write-buffered";
    case Ev::kDestageBegin:
      return "destage-begin";
    case Ev::kDestageDone:
      return "destage-done";
    case Ev::kDeadlineMiss:
      return "deadline-miss";
    case Ev::kRetry:
      return "retry";
    case Ev::kHedgeIssue:
      return "hedge-issue";
    case Ev::kHedgeWin:
      return "hedge-win";
    case Ev::kShed:
      return "shed";
    case Ev::kAbandon:
      return "abandon";
  }
  return "?";
}

Cat category_of(Ev e) {
  switch (e) {
    case Ev::kArrive:
    case Ev::kQueue:
    case Ev::kDispatch:
    case Ev::kServiceBegin:
    case Ev::kServiceEnd:
    case Ev::kComplete:
      return Cat::kRequest;
    case Ev::kPowerTransition:
      return Cat::kPower;
    case Ev::kBatchFormed:
      return Cat::kBatch;
    case Ev::kRebuildRead:
    case Ev::kRebuildWrite:
    case Ev::kRebuildDone:
      return Cat::kRebuild;
    case Ev::kDiskDown:
    case Ev::kDiskBack:
      return Cat::kFault;
    case Ev::kPolicyArm:
    case Ev::kPolicyCancel:
      return Cat::kPolicy;
    case Ev::kCacheHit:
    case Ev::kCacheMiss:
    case Ev::kWriteBuffered:
    case Ev::kDestageBegin:
    case Ev::kDestageDone:
      return Cat::kCache;
    case Ev::kDeadlineMiss:
    case Ev::kRetry:
    case Ev::kHedgeIssue:
    case Ev::kHedgeWin:
    case Ev::kShed:
    case Ev::kAbandon:
      return Cat::kReliability;
  }
  return Cat::kRequest;
}

const char* power_state_name(std::uint32_t s) {
  // Mirrors disk::to_string(DiskState); pinned by ObsVocabulary tests so the
  // two tables cannot drift apart.
  switch (s) {
    case 0:
      return "standby";
    case 1:
      return "spin-up";
    case 2:
      return "idle";
    case 3:
      return "active";
    case 4:
      return "spin-down";
  }
  return "?";
}

void TraceConfig::validate() const {
  if (!enabled) return;
  EAS_REQUIRE_MSG(capacity > 0, "trace ring capacity must be positive");
  EAS_REQUIRE_MSG(categories != 0, "trace category mask is empty");
  EAS_REQUIRE_MSG((categories & ~kAllCategories) == 0,
                  "unknown bits in trace category mask: " << categories);
}

TraceRecorder::TraceRecorder(TraceConfig config)
    : config_(config), capacity_(config.capacity) {
  TraceConfig checked = config_;
  checked.enabled = true;  // a recorder only exists when tracing is wanted
  checked.validate();
  ring_.resize(static_cast<std::size_t>(capacity_));
}

namespace {

/// Microsecond timestamp for the Chrome "ts" field, emitted with the same
/// shortest-round-trip formatter the result JSON uses.
std::string chrome_ts(double seconds) {
  return util::json_number(seconds * 1e6);
}

void emit_meta(util::JsonWriter& w, int pid, int tid, const char* what,
               const std::string& name) {
  w.begin_object();
  w.field("ph", "M");
  w.field("pid", pid);
  w.field("tid", tid);
  w.field("name", what);
  w.key("args");
  w.begin_object();
  w.field("name", name);
  w.end_object();
  w.end_object();
}

void emit_instant(util::JsonWriter& w, int pid, int tid, const TraceEvent& e) {
  w.begin_object();
  w.field("ph", "i");
  w.field("pid", pid);
  w.field("tid", tid);
  w.field("s", "t");
  w.key("ts");
  w.raw(chrome_ts(e.time));
  w.field("cat", to_string(e.cat));
  w.field("name", to_string(e.ev));
  w.key("args");
  w.begin_object();
  w.field("id", e.id);
  w.field("a", e.a);
  w.field("b", e.b);
  w.field("c", e.c);
  w.end_object();
  w.end_object();
}

void emit_span(util::JsonWriter& w, int pid, int tid, const char* ph,
               const TraceEvent& e) {
  w.begin_object();
  w.field("ph", ph);
  w.field("pid", pid);
  w.field("tid", tid);
  w.key("ts");
  w.raw(chrome_ts(e.time));
  w.field("cat", to_string(e.cat));
  std::ostringstream name;
  name << "req " << e.id;
  w.field("name", name.str());
  if (ph[0] == 'B') {
    w.key("args");
    w.begin_object();
    w.field("id", e.id);
    w.field("disk", e.a);
    w.end_object();
  }
  w.end_object();
}

/// Complete-event ("X") power-state slice on the disk's track.
void emit_state_slice(util::JsonWriter& w, int pid, int tid, double begin,
                      double end, std::uint32_t state) {
  if (end < begin) end = begin;
  w.begin_object();
  w.field("ph", "X");
  w.field("pid", pid);
  w.field("tid", tid);
  w.key("ts");
  w.raw(chrome_ts(begin));
  w.key("dur");
  w.raw(util::json_number((end - begin) * 1e6));
  w.field("cat", "power");
  w.field("name", power_state_name(state));
  w.end_object();
}

}  // namespace

void TraceRecorder::append_chrome_events(util::JsonWriter& w, int pid,
                                         const std::string& process_name,
                                         double horizon) const {
  // Track layout inside one process (= one run / sweep cell):
  //   tid 0           system-wide instants (arrivals, batches, faults, ...)
  //   tid 1 + disk    per-disk track: power-state slices + service spans
  emit_meta(w, pid, 0, "process_name", process_name);
  emit_meta(w, pid, 0, "thread_name", "system");

  const std::size_t n = size();
  double last_time = 0.0;

  // Per-disk open power-state slice: state + since. Disks are discovered
  // lazily from the events themselves (first transition names the disk).
  struct OpenSlice {
    std::uint32_t disk = 0;
    std::uint32_t state = 0;
    double since = 0.0;
  };
  std::vector<OpenSlice> open;
  auto slice_for = [&open](std::uint32_t disk) -> OpenSlice* {
    for (OpenSlice& s : open) {
      if (s.disk == disk) return &s;
    }
    return nullptr;
  };

  std::vector<std::uint32_t> named_disks;
  auto disk_tid = [&](std::uint64_t disk) {
    const auto d = static_cast<std::uint32_t>(disk);
    if (std::find(named_disks.begin(), named_disks.end(), d) ==
        named_disks.end()) {
      named_disks.push_back(d);
      std::ostringstream name;
      name << "disk " << d;
      emit_meta(w, pid, static_cast<int>(1 + d), "thread_name", name.str());
    }
    return static_cast<int>(1 + d);
  };

  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = event(i);
    last_time = std::max(last_time, e.time);
    switch (e.ev) {
      case Ev::kPowerTransition: {
        const auto disk = static_cast<std::uint32_t>(e.id);
        const int tid = disk_tid(e.id);
        if (OpenSlice* s = slice_for(disk)) {
          emit_state_slice(w, pid, tid, s->since, e.time, s->state);
          s->state = e.c;
          s->since = e.time;
        } else {
          // First transition for this disk: its prior state (e.b) has been
          // in effect since t=0 unless the trace started mid-run.
          if (dropped() == 0) {
            emit_state_slice(w, pid, tid, 0.0, e.time, e.b);
          }
          open.push_back(OpenSlice{disk, e.c, e.time});
        }
        break;
      }
      case Ev::kServiceBegin:
        emit_span(w, pid, disk_tid(e.a), "B", e);
        break;
      case Ev::kServiceEnd:
        emit_span(w, pid, disk_tid(e.a), "E", e);
        break;
      case Ev::kQueue:
      case Ev::kDispatch:
      case Ev::kComplete:
      case Ev::kDeadlineMiss:
      case Ev::kRetry:
      case Ev::kHedgeIssue:
      case Ev::kHedgeWin:
      case Ev::kShed:
      case Ev::kAbandon:
        emit_instant(w, pid, disk_tid(e.a), e);
        break;
      case Ev::kPolicyArm:
      case Ev::kPolicyCancel:
      case Ev::kDiskDown:
      case Ev::kDiskBack:
      case Ev::kDestageBegin:
      case Ev::kDestageDone:
        emit_instant(w, pid, disk_tid(e.id), e);
        break;
      default:
        emit_instant(w, pid, 0, e);
        break;
    }
  }

  // Close the still-open power-state slices at the horizon so per-state
  // durations in the viewer sum to the run's accounted time.
  const double end = std::max(horizon, last_time);
  for (const OpenSlice& s : open) {
    emit_state_slice(w, pid, static_cast<int>(1 + s.disk), s.since, end,
                     s.state);
  }
}

void TraceRecorder::export_chrome_json(std::ostream& os,
                                       double horizon) const {
  util::JsonWriter w(os);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  append_chrome_events(w, 0, "easched run", horizon);
  w.end_array();
  w.end_object();
  os << "\n";
}

namespace {

struct BinaryHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t event_size;
  std::uint64_t count;
  std::uint64_t dropped;
};
static_assert(sizeof(BinaryHeader) == 32, "header is one event-sized block");

constexpr char kMagic[8] = {'E', 'A', 'S', 'T', 'R', 'C', '0', '1'};

}  // namespace

void TraceRecorder::write_binary(std::ostream& os) const {
  BinaryHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = 1;
  h.event_size = sizeof(TraceEvent);
  h.count = size();
  h.dropped = dropped();
  os.write(reinterpret_cast<const char*>(&h), sizeof(h));
  // The ring may wrap; write in chronological order so readers never need
  // to know the ring geometry.
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = event(i);
    os.write(reinterpret_cast<const char*>(&e), sizeof(e));
  }
}

std::vector<TraceEvent> TraceRecorder::read_binary(std::istream& is) {
  BinaryHeader h{};
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  EAS_REQUIRE_MSG(is.good() && std::memcmp(h.magic, kMagic, sizeof(kMagic)) == 0,
                  "not an easched binary trace");
  EAS_REQUIRE_MSG(h.version == 1, "unknown trace version " << h.version);
  EAS_REQUIRE_MSG(h.event_size == sizeof(TraceEvent),
                  "trace event size mismatch: " << h.event_size);
  std::vector<TraceEvent> events(static_cast<std::size_t>(h.count));
  if (h.count > 0) {
    is.read(reinterpret_cast<char*>(events.data()),
            static_cast<std::streamsize>(h.count * sizeof(TraceEvent)));
    EAS_REQUIRE_MSG(
        is.gcount() ==
            static_cast<std::streamsize>(h.count * sizeof(TraceEvent)),
        "truncated binary trace");
  }
  return events;
}

}  // namespace eas::obs
