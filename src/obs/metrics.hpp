// Named metrics: counters, gauges, summaries and histograms for one run.
//
// A MetricRegistry belongs to a single simulation (thread-confined, like the
// recorder); the sweep runner gives each cell its own registry and merges
// the shards afterwards in cell-index order, so the combined numbers are
// bit-identical regardless of EAS_THREADS — "lock-free mergeable" by
// construction rather than by atomics.
//
// Entries live in a deque so registration hands back stable pointers; hot
// paths cache the pointer once and update through it without any name
// lookup. Iteration and JSON export follow registration order, which keeps
// the serialized form schema-stable.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace eas::obs {

enum class MetricKind : std::uint8_t {
  kCounter,    ///< monotone u64 (requests served, spin-ups, failovers)
  kGauge,      ///< last-write-wins double (total energy, energy/request)
  kSummary,    ///< Welford mean/min/max/stddev (queue depth, batch size)
  kHistogram,  ///< log-binned distribution (response times)
};

const char* to_string(MetricKind k);

struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  stats::SummaryStats summary;
  stats::Histogram histogram;  ///< placeholder binning for non-histograms

  Metric(std::string n, MetricKind k, double hist_min, double hist_max,
         int bins_per_decade)
      : name(std::move(n)),
        kind(k),
        histogram(hist_min, hist_max, bins_per_decade) {}
};

class MetricRegistry {
 public:
  // Registration: find-or-create by name. Re-registering an existing name
  // returns the same entry (kind must match). The returned pointers stay
  // valid for the registry's lifetime.
  std::uint64_t* counter(const std::string& name);
  double* gauge(const std::string& name);
  stats::SummaryStats* summary(const std::string& name);
  stats::Histogram* histogram(const std::string& name, double min_value,
                              double max_value, int bins_per_decade = 10);

  std::size_t size() const { return entries_.size(); }
  const Metric& at(std::size_t i) const { return entries_[i]; }

  /// Entry by name, or nullptr. Linear scan — fine for export/test paths;
  /// hot paths hold the pointer from registration instead.
  const Metric* find(const std::string& name) const;

  /// Folds `other` into this registry: counters add, gauges take the other
  /// side's value (a merged gauge is "last shard wins" — shards are merged
  /// in deterministic cell order), summaries and histograms merge
  /// element-wise. Entries missing here are appended in the other's order.
  void merge(const MetricRegistry& other);

  /// Stable JSON object: {"name":{"kind":...,...},...} in registration
  /// order. Used for determinism fingerprints and by the metrics sink.
  std::string to_json() const;

 private:
  Metric& find_or_create(const std::string& name, MetricKind kind,
                         double hist_min, double hist_max,
                         int bins_per_decade);

  std::deque<Metric> entries_;
};

}  // namespace eas::obs
