// Shared identifier types.
//
// Plain integral aliases (not strong types) because they index vectors on hot
// paths throughout the simulator; the *Id suffix plus distinct widths keep
// accidental mixups visible in review and in function signatures.
#pragma once

#include <cstdint>

namespace eas {

/// Index of a disk within the storage system, dense in [0, num_disks).
using DiskId = std::uint32_t;

/// Identity of a data item (the paper: unique disk-id+LBA combination),
/// dense in [0, num_data).
using DataId = std::uint32_t;

/// Monotonically increasing request identity, unique within one run.
using RequestId = std::uint64_t;

inline constexpr DiskId kInvalidDisk = ~DiskId{0};
inline constexpr DataId kInvalidData = ~DataId{0};
inline constexpr RequestId kInvalidRequest = ~RequestId{0};

}  // namespace eas
