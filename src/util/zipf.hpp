// Zipf(-like) sampling over ranked items.
//
// The paper places "original" data copies on disks drawn from a Zipf-like
// distribution p(r) = c / r^z over disk ranks r = 1..K (§4.2, Appendix A.1),
// with z swept from 0 (uniform) to 1 (classic Zipf). The same family models
// data popularity in the synthetic traces.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace eas::util {

/// Samples ranks 1..n with P(rank = r) ∝ 1 / r^z.
///
/// Uses an O(log n) inverted-CDF lookup over a precomputed prefix table, so
/// construction is O(n) and sampling is cheap enough for trace generation of
/// millions of records.
class ZipfSampler {
 public:
  /// @param n  number of ranks (must be >= 1)
  /// @param z  skew exponent; 0 gives the uniform distribution.
  ZipfSampler(std::size_t n, double z);

  /// Returns a 0-based rank in [0, n).
  std::size_t sample(Rng& rng) const;

  /// Probability mass of 0-based rank r.
  double pmf(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return z_; }

 private:
  double z_;
  std::vector<double> cdf_;  // normalised inclusive prefix sums
};

}  // namespace eas::util
