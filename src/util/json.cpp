#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace eas::util {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  EAS_CHECK(ec == std::errc());
  std::string s(buf, ptr);
  // to_chars may print integral doubles as "3" — already valid JSON.
  return s;
}

void JsonWriter::element() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) os_ << ',';
    has_element_.back() = true;
  }
}

void JsonWriter::begin_object() {
  element();
  os_ << '{';
  has_element_.push_back(false);
}

void JsonWriter::end_object() {
  EAS_REQUIRE(!has_element_.empty());
  has_element_.pop_back();
  os_ << '}';
}

void JsonWriter::begin_array() {
  element();
  os_ << '[';
  has_element_.push_back(false);
}

void JsonWriter::end_array() {
  EAS_REQUIRE(!has_element_.empty());
  has_element_.pop_back();
  os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  element();
  os_ << json_quote(k) << ':';
  after_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  element();
  os_ << json_quote(v);
}

void JsonWriter::value(double v) {
  element();
  os_ << json_number(v);
}

void JsonWriter::integer(long long v) {
  element();
  os_ << v;
}

void JsonWriter::integer(unsigned long long v) {
  element();
  os_ << v;
}

void JsonWriter::value(bool v) {
  element();
  os_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  element();
  os_ << "null";
}

void JsonWriter::raw(std::string_view json) {
  element();
  os_ << json;
}

}  // namespace eas::util
