#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace eas::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  EAS_REQUIRE_MSG(!header_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  EAS_REQUIRE_MSG(!rows_.empty(), "call row() before cell()");
  EAS_REQUIRE_MSG(rows_.back().size() < header_.size(),
                "row has more cells than header columns");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }
Table& Table::cell(unsigned long long value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << v;
      if (c + 1 < header_.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace eas::util
