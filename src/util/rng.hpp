// Seedable, fast, reproducible random number generation.
//
// All randomness in the library flows through Rng (xoshiro256**). The storage
// simulator is deterministic for a fixed seed, which the property tests and
// the experiment harnesses depend on. We deliberately avoid std::mt19937 +
// std::*_distribution because their outputs are not guaranteed identical
// across standard library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace eas::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded through splitmix64 so that any 64-bit seed yields a well-mixed
/// state. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  std::uint64_t next_u64();
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double next_double();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential variate with given rate (mean 1/rate).
  double exponential(double rate);

  /// Pareto variate with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// True with probability p.
  bool bernoulli(double p);

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// the (non-negative) weights. At least one weight must be positive.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Splits off an independently-seeded child generator; used to give each
  /// subsystem (placement, trace, scheduler) its own stream so that changing
  /// one subsystem's consumption does not perturb the others.
  Rng split();

 private:
  std::uint64_t s_[4];
  // Cached second output of the polar method.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace eas::util
