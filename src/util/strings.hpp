// Small string helpers used by the trace parsers and table printers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace eas::util {

/// Splits on a single-character delimiter; empty fields are preserved
/// ("a,,b" -> {"a", "", "b"}). An empty input yields one empty field, which
/// matches how CSV rows behave.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Locale-independent numeric parses; nullopt on any trailing garbage.
std::optional<double> parse_double(std::string_view s);
std::optional<long long> parse_int(std::string_view s);

/// True if `s` starts with `prefix` (ASCII case-insensitive).
bool istarts_with(std::string_view s, std::string_view prefix);

/// ASCII lower-casing.
std::string to_lower(std::string_view s);

}  // namespace eas::util
