#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace eas::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  EAS_REQUIRE(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  EAS_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform(double lo, double hi) {
  EAS_REQUIRE(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double rate) {
  EAS_REQUIRE(rate > 0.0);
  // 1 - u in (0, 1] avoids log(0).
  return -std::log1p(-next_double()) / rate;
}

double Rng::pareto(double xm, double alpha) {
  EAS_REQUIRE(xm > 0.0 && alpha > 0.0);
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * u * factor;
}

bool Rng::bernoulli(double p) { return next_double() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    EAS_REQUIRE_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  EAS_REQUIRE_MSG(total > 0.0, "weighted_index requires a positive weight");
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point underrun: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return 0;  // unreachable given the total > 0 check
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace eas::util
