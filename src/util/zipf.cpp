#include "util/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace eas::util {

ZipfSampler::ZipfSampler(std::size_t n, double z) : z_(z) {
  EAS_REQUIRE_MSG(n >= 1, "ZipfSampler needs at least one rank");
  EAS_REQUIRE_MSG(z >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), z);
    cdf_[r] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding in the final bucket
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  EAS_REQUIRE(rank < cdf_.size());
  const double hi = cdf_[rank];
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return hi - lo;
}

}  // namespace eas::util
