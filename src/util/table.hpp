// Plain-text table rendering for the experiment harnesses.
//
// Every bench binary prints the series a paper figure plots; this formatter
// keeps those tables aligned and consistent so EXPERIMENTS.md can quote them
// verbatim.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace eas::util {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision so that series are easy to eyeball against the paper.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(long long value);
  Table& cell(unsigned long long value);
  Table& cell(int value);
  Table& cell(std::size_t value);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eas::util
