// Epoch-stamped membership marker: a reusable "visited" set over dense ids.
//
// The naive pattern — `std::vector<bool> seen(n)` per call — costs one heap
// allocation plus an O(n) clear every invocation, which dominates callers
// that probe small subsets of large id spaces on hot paths (independence
// checks, cover audits, selection-weight validation). EpochMarker amortises
// both: marks are stamped with the current epoch, and `begin()` invalidates
// every previous mark by bumping the epoch — O(1) except on first growth or
// on the (once per 2^32 calls) wrap-around refill.
//
// Not thread-safe; intended either as a member of a single-threaded solver
// workspace or as a function-local `thread_local`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eas::util {

class EpochMarker {
 public:
  /// Starts a fresh epoch covering ids [0, n): every id reads unmarked.
  void begin(std::size_t n) {
    if (stamp_.size() < n) stamp_.resize(n, 0);
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: stale stamps could collide — refill
      stamp_.assign(stamp_.size(), 0);
      epoch_ = 1;
    }
  }

  void mark(std::size_t id) { stamp_[id] = epoch_; }
  bool marked(std::size_t id) const { return stamp_[id] == epoch_; }

  /// Ids currently addressable (diagnostic; begin() grows on demand).
  std::size_t capacity() const { return stamp_.size(); }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

}  // namespace eas::util
