// Runtime contracts: executable pre/postconditions and invariant audits.
//
// Four kinds, all throwing eas::InvariantError with a formatted diagnostic
// (kind, expression, file:line, optional streamed message):
//
//   EAS_REQUIRE  precondition on a public entry point — always on, release
//                included. A violation means the *caller* broke the contract.
//   EAS_ENSURE   postcondition / result validity — always on. A violation
//                means *this* component computed a corrupt result.
//   EAS_ASSERT   internal consistency on hot paths — compiled out in NDEBUG
//                builds unless EASCHED_AUDIT is defined.
//   EAS_AUDIT    expensive whole-structure verification (cover validity,
//                independence, isolation fingerprints) — same gating as
//                EAS_ASSERT. Guard costly setup with `if constexpr
//                (eas::audit_enabled())`.
//
// EAS_CHECK / EAS_CHECK_MSG are the legacy always-on generic form (kept —
// most pre-contracts call sites use them); EAS_DCHECK is an alias for
// EAS_ASSERT. The `*_MSG` variants accept an ostream chain:
//
//   EAS_REQUIRE_MSG(when >= now_, "when=" << when << " now=" << now_);
//
// Always-on checks guard invariants whose violation means the simulation
// state is corrupt; the cost of a predictable branch is negligible next to
// event processing. The audit tier exists so release sweeps stay fast while
// `-DEASCHED_AUDIT=ON` (or any Debug build) turns every tier on.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace eas {

/// Thrown when a library invariant is violated. Catching it is almost always
/// a bug; it exists so tests can assert on violations (exception mode).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// True when the expensive audit tier (EAS_ASSERT / EAS_AUDIT) is compiled
/// in: any Debug build, or any build configured with -DEASCHED_AUDIT=ON.
constexpr bool audit_enabled() {
#if defined(EASCHED_AUDIT) || !defined(NDEBUG)
  return true;
#else
  return false;
#endif
}

namespace detail {

[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const std::string& msg) {
  std::ostringstream os;
  os << kind << " violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

// Legacy spelling used by pre-contracts call sites / tests.
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  contract_failed("invariant", expr, file, line, msg);
}

}  // namespace detail
}  // namespace eas

// Core expansion shared by every always-on contract kind.
#define EAS_DETAIL_CONTRACT(kind, expr)                                \
  do {                                                                 \
    if (!(expr))                                                       \
      ::eas::detail::contract_failed(kind, #expr, __FILE__, __LINE__,  \
                                     std::string{});                   \
  } while (0)

#define EAS_DETAIL_CONTRACT_MSG(kind, expr, msg)                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream eas_check_os_;                               \
      eas_check_os_ << msg;                                           \
      ::eas::detail::contract_failed(kind, #expr, __FILE__, __LINE__, \
                                     eas_check_os_.str());            \
    }                                                                 \
  } while (0)

// --- always-on tiers --------------------------------------------------------

#define EAS_CHECK(expr) EAS_DETAIL_CONTRACT("invariant", expr)
#define EAS_CHECK_MSG(expr, msg) EAS_DETAIL_CONTRACT_MSG("invariant", expr, msg)

#define EAS_REQUIRE(expr) EAS_DETAIL_CONTRACT("precondition", expr)
#define EAS_REQUIRE_MSG(expr, msg) \
  EAS_DETAIL_CONTRACT_MSG("precondition", expr, msg)

#define EAS_ENSURE(expr) EAS_DETAIL_CONTRACT("postcondition", expr)
#define EAS_ENSURE_MSG(expr, msg) \
  EAS_DETAIL_CONTRACT_MSG("postcondition", expr, msg)

// --- debug/audit tiers ------------------------------------------------------

#if defined(EASCHED_AUDIT) || !defined(NDEBUG)
#define EAS_ASSERT(expr) EAS_DETAIL_CONTRACT("assertion", expr)
#define EAS_ASSERT_MSG(expr, msg) \
  EAS_DETAIL_CONTRACT_MSG("assertion", expr, msg)
#define EAS_AUDIT(expr) EAS_DETAIL_CONTRACT("audit", expr)
#define EAS_AUDIT_MSG(expr, msg) EAS_DETAIL_CONTRACT_MSG("audit", expr, msg)
#else
#define EAS_ASSERT(expr) \
  do {                   \
  } while (0)
#define EAS_ASSERT_MSG(expr, msg) \
  do {                            \
  } while (0)
#define EAS_AUDIT(expr) \
  do {                  \
  } while (0)
#define EAS_AUDIT_MSG(expr, msg) \
  do {                           \
  } while (0)
#endif

#define EAS_DCHECK(expr) EAS_ASSERT(expr)
