// Lightweight runtime invariant checks.
//
// EAS_CHECK is always on (release included): these guard library invariants
// whose violation means the simulation state is corrupt, and the cost of a
// predictable branch is negligible next to event processing.
// EAS_DCHECK compiles out in NDEBUG builds; use it on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace eas {

/// Thrown when a library invariant is violated. Catching it is almost always
/// a bug; it exists so tests can assert on violations.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace eas

#define EAS_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::eas::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define EAS_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream eas_check_os_;                              \
      eas_check_os_ << msg;                                          \
      ::eas::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                  eas_check_os_.str());              \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define EAS_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define EAS_DCHECK(expr) EAS_CHECK(expr)
#endif
