// Minimal JSON emission for result serialization.
//
// The sweep runner ships results across process boundaries (plotting
// scripts, CI artifacts), so the encoder favours schema stability over
// features: keys are emitted in insertion order, doubles use the shortest
// round-trippable form, and there is no DOM — just a streaming writer.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace eas::util {

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters) and
/// returns it wrapped in double quotes.
std::string json_quote(std::string_view s);

/// Shortest decimal string that round-trips to the same double ("1.5",
/// "0.30000000000000004"). Non-finite values encode as null (JSON has no
/// Inf/NaN).
std::string json_number(double v);

/// Streaming JSON writer with automatic comma placement. Usage:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.field("name", "wsc");
///   w.key("rows"); w.begin_array(); ... w.end_array();
///   w.end_object();
///
/// The writer trusts the caller to produce a well-formed nesting; it only
/// tracks where commas are needed.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits `"k":` inside an object; must be followed by a value or a
  /// begin_object/begin_array call.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(const std::string& v) { value(std::string_view(v)); }
  void value(double v);
  void value(bool v);
  /// Any integer type (exact template match, so no conversion ambiguity).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void value(T v) {
    if constexpr (std::is_signed_v<T>) {
      integer(static_cast<long long>(v));
    } else {
      integer(static_cast<unsigned long long>(v));
    }
  }
  void null();

  /// Splices pre-serialized JSON in as one value (comma handling applies;
  /// the caller guarantees `json` is well-formed).
  void raw(std::string_view json);

  template <typename T>
  void field(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

 private:
  /// Writes the separating comma when this is not the first element at the
  /// current nesting level.
  void element();
  void integer(long long v);
  void integer(unsigned long long v);

  std::ostream& os_;
  /// One entry per open container: true once an element has been written.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace eas::util
