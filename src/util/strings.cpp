#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace eas::util {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ >= 11.
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace eas::util
