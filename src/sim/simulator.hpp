// Deterministic discrete-event simulation kernel.
//
// This replaces the paper's use of OMNeT++: a monotonic simulated clock, an
// event queue ordered by (time, insertion sequence), and cancellable event
// handles. Components (disks, power manager, scheduler, workload source)
// interact only by scheduling callbacks, which keeps the storage-system wiring
// identical in spirit to the paper's OMNeT++/DiskSim co-simulation.
//
// Determinism guarantees:
//  * ties in event time fire in schedule order (stable sequence numbers);
//  * the clock never moves backwards (scheduling in the past is an invariant
//    violation, not a silent reorder).
//
// Storage layer (see DESIGN.md §8 for the full rationale):
//  * events live in a slot pool (free-list recycled, generation-counted) —
//    no per-event heap allocation, no hash map from id to callback;
//  * callbacks are sim::InlineCallback (48-byte small-buffer optimization),
//    so scheduling a typical capture allocates nothing;
//  * the ready queue is an indexed 8-ary min-heap: each slot knows its heap
//    position, so cancel() removes the entry in place in O(log n) — no
//    tombstones, and next_event_time() is genuinely const;
//  * new events are appended to the heap array as an unordered staged
//    suffix and folded in only when something needs to pop or remove —
//    burst scheduling (trace replay, batch schedulers) pays one O(n) Floyd
//    heapify instead of n sift-ups. Order is unaffected: every pop still
//    follows the unique (time, seq) total order.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/inline_callback.hpp"
#include "util/check.hpp"

namespace eas::obs {
class TraceRecorder;
}

namespace eas::sim {

/// Simulated time in seconds. Double gives ~microsecond resolution over the
/// multi-day traces used in the evaluation, far below the millisecond I/O
/// times that matter.
using SimTime = double;

inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

/// Token identifying a scheduled event; used for cancellation. Default
/// constructed handles are null.
///
/// A handle is a (slot index, generation) pair. Slots are recycled after an
/// event fires or is cancelled, and every release bumps the slot's
/// generation, so a stale handle — one whose event already fired or was
/// cancelled — mismatches the slot's current generation and is rejected
/// without any lookaside table. Generations are 32-bit: a single slot would
/// need ~4 billion reuses for a stale handle to alias, far beyond any run.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return gen_ != 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint32_t slot, std::uint32_t gen)
      : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;  // live generations are odd; 0 means null
};

/// Event-driven simulator with a run-to-completion loop.
///
/// Not thread-safe by design: the whole point of DES is a single logical
/// timeline. All callbacks execute on the caller's thread inside run().
class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (>= now()). Returns a handle that
  /// can cancel the event before it fires.
  ///
  /// Templated so the callable is constructed *in place* inside the event
  /// slot — a lambda at the call site materialises straight into pooled
  /// storage with no intermediate Callback move.
  template <typename F>
  EventHandle schedule_at(SimTime when, F&& fn) {
    EAS_REQUIRE_MSG(std::isfinite(when), "event time must be finite");
    EAS_REQUIRE_MSG(when >= now_, "cannot schedule in the past: when="
                                      << when << " now=" << now_);
    // Raw lambdas are never null; wrapper types (Callback, std::function)
    // can be, and an empty one must fail loudly here, not at fire time.
    if constexpr (requires { static_cast<bool>(fn); }) {
      EAS_REQUIRE_MSG(static_cast<bool>(fn), "null event callback");
    }
    const std::uint32_t s = acquire_slot();
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      fn_at(s) = std::forward<F>(fn);
    } else {
      fn_at(s).emplace(std::forward<F>(fn));
    }
    push_alive_slot(when, s);
    return EventHandle{s, meta_[s].gen};
  }

  /// Schedules `fn` after a non-negative delay.
  template <typename F>
  EventHandle schedule_in(SimTime delay, F&& fn) {
    EAS_REQUIRE_MSG(delay >= 0.0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event in O(log n): the heap entry is removed in place
  /// and the slot recycled — no tombstones. Returns true if the event was
  /// still pending (i.e. this call prevented it from firing). Safe to call
  /// with null or already-fired handles.
  bool cancel(EventHandle h);

  /// True if the event is scheduled and not yet fired/cancelled.
  bool pending(EventHandle h) const;

  /// Number of events waiting to fire.
  std::size_t pending_count() const { return live(); }

  /// Physical size of the ready queue (heap-ordered prefix plus staged
  /// suffix). Always equals pending_count(): cancellation removes entries
  /// in place, so there is no tombstone growth for it to diverge by.
  /// Exposed so tests can pin that property down.
  std::size_t queue_depth() const { return live(); }

  /// Runs until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Runs events with time <= `until`, then advances the clock to `until`
  /// (even if idle). Returns the number of events fired.
  std::uint64_t run_until(SimTime until);

  /// Fires exactly one event if any is pending. Returns false on empty queue.
  bool step();

  /// Time of the next pending event, or kTimeInfinity. Const in letter and
  /// spirit: the tombstone-free heap means there is nothing to lazily clean,
  /// and the staging lane tracks its minimum time incrementally, so even
  /// staged events are answered without a flush.
  SimTime next_event_time() const {
    std::uint64_t bits = staged_min_bits_;
    if (heaped_ != 0 && ent(0).time_bits < bits) bits = ent(0).time_bits;
    return bits == kNoPendingBits ? kTimeInfinity
                                  : std::bit_cast<SimTime>(bits);
  }

  /// Total events fired over the simulator's lifetime.
  std::uint64_t events_fired() const { return fired_; }

  /// Optional trace recorder shared by every component on this timeline.
  /// The simulator itself never records — it just carries the pointer so
  /// components that already hold the sim (disks, policies, the storage
  /// system) reach observability without new plumbing. Null when tracing is
  /// off; instrumentation sites go through EAS_OBS, which branches on that.
  /// Non-owning: the storage system owns the recorder and outlives the runs.
  obs::TraceRecorder* recorder() const { return recorder_; }
  void set_recorder(obs::TraceRecorder* r) { recorder_ = r; }

 private:
  static constexpr std::uint32_t kNullIndex =
      std::numeric_limits<std::uint32_t>::max();

  /// Heap entries pack (seq, slot) into one 64-bit word: the low kSlotBits
  /// hold the slot index, the high bits the schedule sequence number. Both
  /// limits fail loudly (EAS_CHECK) rather than wrap: 2^24 simultaneous
  /// events and 2^40 total schedules are orders of magnitude beyond any
  /// sweep in this repo.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;
  static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);

  /// Per-slot bookkeeping. `gen` is odd while the slot is alive and even
  /// while it is free; handles are only ever minted with odd generations, so
  /// a handle matches `gen` iff it names the slot's current live
  /// incarnation. `pos_link` is overloaded on that state — a slot is either
  /// in the heap or on the free list, never both — holding the slot's heap
  /// position while alive and the next free slot while free. (The generation
  /// check always runs first, so a stale reading of the other meaning is
  /// unreachable.)
  ///
  /// Kept separate from the slot's callback on purpose: every sift placement
  /// writes pos_link, so the metadata array is the kernel's hottest random-
  /// access surface — at 8 bytes per slot it stays cache-resident long after
  /// an array of 72-byte (callback + metadata) slots would thrash.
  struct SlotMeta {
    std::uint32_t gen = 0;
    std::uint32_t pos_link = kNullIndex;
  };
  static_assert(sizeof(SlotMeta) == 8);

  /// Event times are non-negative finite doubles (the clock starts at 0 and
  /// never runs backwards), and for that range the IEEE-754 bit pattern is
  /// order-isomorphic to the value: t1 < t2 iff bits(t1) < bits(t2) as
  /// unsigned integers. Adding +0.0 collapses -0.0 (whose sign bit would
  /// otherwise compare huge) onto +0.0 and changes no other value.
  static std::uint64_t time_to_bits(SimTime t) {
    return std::bit_cast<std::uint64_t>(t + 0.0);
  }

  /// Heap entry: the full ordering key travels *with* the entry so sift
  /// comparisons read contiguous heap memory and never chase the slot pool;
  /// the pool is only touched to mirror positions into pos_link. Packing
  /// (seq, slot) into one word makes the entry 16 bytes, so an 8-ary node's
  /// children fill exactly two aligned cache lines — and storing the time as
  /// ordered bits makes the whole (time, seq) ordering one branchless
  /// 128-bit integer compare, which matters because heap comparisons are the
  /// kernel's least predictable branches.
  struct HeapEntry {
    std::uint64_t time_bits;  // time_to_bits(when); see above
    std::uint64_t seq_slot;   // (seq << kSlotBits) | slot

    SimTime time() const {  // simulated clock accessor, not libc time()
      return std::bit_cast<SimTime>(time_bits);
    }
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot) & (kMaxSlots - 1);
    }
    /// Lexicographic (time, seq) as a single integer: seq occupies the high
    /// bits of seq_slot and is unique per entry, so the low slot bits never
    /// decide a comparison.
    unsigned __int128 key() const {
      return (static_cast<unsigned __int128>(time_bits) << 64) | seq_slot;
    }
    bool fires_before(const HeapEntry& o) const { return key() < o.key(); }
  };
  static_assert(sizeof(HeapEntry) == 16);

  /// Callback storage is chunked so slot addresses are *stable*: growing the
  /// pool never moves a live callback. That stability is what lets fire_top
  /// invoke the callable in place (zero moves on the fire path) even when
  /// the callback itself schedules new events and grows the pool under its
  /// own feet. 1024 slots per chunk = 64 KiB allocations.
  ///
  /// Chunks are *raw* storage: slot s's Callback is placement-constructed
  /// the first time acquire_slot mints s and destroyed in ~Simulator, so
  /// allocating a chunk never touches its 64 KiB (a value-initialized
  /// Callback array would memset all of it up front).
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  std::byte* slot_storage(std::uint32_t s) {
    return fns_[s >> kChunkShift].get() +
           std::size_t{s & (kChunkSize - 1)} * sizeof(Callback);
  }
  Callback& fn_at(std::uint32_t s) {
    return *std::launder(reinterpret_cast<Callback*>(slot_storage(s)));
  }

  /// staged_min_bits_ sentinel: larger (as ordered time bits) than any
  /// finite event time, so an empty staged suffix never wins the next-event
  /// compare.
  static constexpr std::uint64_t kNoPendingBits = ~std::uint64_t{0};

  /// The heap array is stored with kHeapPad dummy entries in front and
  /// 64-byte-aligned storage, so logical position p lives at heap_[p + 3].
  /// Children of p (logical 8p+1..8p+8) then land on array indices
  /// 8p+4..8p+11 — a multiple of four, i.e. two *aligned* cache lines.
  /// Without the pad every child tournament starts 16 bytes into a line and
  /// straddles three lines, an extra line touched per sift level.
  static constexpr std::uint32_t kHeapPad = 3;

  /// Minimal allocator giving the heap vector cache-line-aligned storage
  /// (vectors only guarantee max_align_t = 16 bytes here).
  template <typename T>
  struct CacheAlignedAllocator {
    using value_type = T;
    CacheAlignedAllocator() = default;
    template <typename U>
    CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}  // NOLINT
    T* allocate(std::size_t n) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{64}));
    }
    void deallocate(T* p, std::size_t n) {
      ::operator delete(p, n * sizeof(T), std::align_val_t{64});
    }
    bool operator==(const CacheAlignedAllocator&) const { return true; }
    bool operator!=(const CacheAlignedAllocator&) const { return false; }
  };

  std::uint32_t acquire_slot();
  /// Assigns the next sequence number to alive slot `s` and stages it for
  /// the ready heap at time `when`. Out-of-line tail of schedule_at.
  void push_alive_slot(SimTime when, std::uint32_t s);
  /// Logical heap access: position p lives at heap_[p + kHeapPad].
  HeapEntry& ent(std::uint32_t pos) { return heap_[pos + kHeapPad]; }
  const HeapEntry& ent(std::uint32_t pos) const {
    return heap_[pos + kHeapPad];
  }
  /// Number of live entries (heap-ordered prefix + staged suffix). The
  /// vector is either untouched (size 0) or padded (size >= kHeapPad).
  std::uint32_t live() const {
    const std::size_t s = heap_.size();
    return s < kHeapPad ? 0u : static_cast<std::uint32_t>(s - kHeapPad);
  }
  /// True while the heap array carries staged (not yet heap-ordered)
  /// entries past the ordered prefix.
  bool has_staged() const { return heaped_ != live(); }
  /// Folds the staged suffix into the heap-ordered prefix (small suffixes
  /// sift in one by one, large ones Floyd-rebuild in place). Must run
  /// before any pop or removal.
  void fold_staged();
  void heap_remove(std::uint32_t pos);
  void sift_up(std::uint32_t pos, HeapEntry e);
  void sift_down(std::uint32_t pos, HeapEntry e);
  std::uint32_t sink_hole(std::uint32_t pos);
  /// Pops the minimum and fires it (clock advance + callback invocation).
  void fire_top();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  /// Slot pool, split hot/cold: fn_at(s) is slot s's callback (touched once
  /// per schedule and once per fire), meta_[s] its bookkeeping (touched on
  /// every sift placement). fns_ holds raw storage for kChunkSize callbacks
  /// per chunk; slots [0, meta_.size()) hold constructed Callback objects.
  std::vector<std::unique_ptr<std::byte[]>> fns_;
  std::vector<SlotMeta> meta_;
  std::uint32_t free_head_ = kNullIndex;
  /// Indexed 8-ary min-heap ordered by (time, seq). Arity 8 cuts the tree
  /// to a third of binary depth — the sift walk is a serial chain of
  /// level-to-level dependencies, so depth is what a removal actually
  /// waits on, while the 7-compare child tournament at each level is
  /// pipeline-parallel (depth 3). With the kHeapPad offset a node's eight
  /// 16-byte children fill two aligned cache lines. The vector holds
  /// kHeapPad dummies in front (installed on first use); all positions in
  /// the code are logical, translated by ent()/live().
  std::vector<HeapEntry, CacheAlignedAllocator<HeapEntry>> heap_;
  /// Logical positions [0, heaped_) are heap-ordered; [heaped_, live()) is
  /// the staged suffix that schedule_at appends to in O(1). staged_min_bits_
  /// is the minimum staged time (as ordered bits) so next_event_time() stays
  /// O(1) and const even with staged entries.
  std::uint32_t heaped_ = 0;
  std::uint64_t staged_min_bits_ = kNoPendingBits;
  obs::TraceRecorder* recorder_ = nullptr;
};

}  // namespace eas::sim
