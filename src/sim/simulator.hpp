// Deterministic discrete-event simulation kernel.
//
// This replaces the paper's use of OMNeT++: a monotonic simulated clock, an
// event queue ordered by (time, insertion sequence), and cancellable event
// handles. Components (disks, power manager, scheduler, workload source)
// interact only by scheduling callbacks, which keeps the storage-system wiring
// identical in spirit to the paper's OMNeT++/DiskSim co-simulation.
//
// Determinism guarantees:
//  * ties in event time fire in schedule order (stable sequence numbers);
//  * the clock never moves backwards (scheduling in the past is an invariant
//    violation, not a silent reorder).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace eas::sim {

/// Simulated time in seconds. Double gives ~microsecond resolution over the
/// multi-day traces used in the evaluation, far below the millisecond I/O
/// times that matter.
using SimTime = double;

inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

/// Token identifying a scheduled event; used for cancellation. Default
/// constructed handles are null.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Event-driven simulator with a run-to-completion loop.
///
/// Not thread-safe by design: the whole point of DES is a single logical
/// timeline. All callbacks execute on the caller's thread inside run().
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (>= now()). Returns a handle that
  /// can cancel the event before it fires.
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` after a non-negative delay.
  EventHandle schedule_in(SimTime delay, Callback fn);

  /// Cancels a pending event. Returns true if the event was still pending
  /// (i.e. this call prevented it from firing). Safe to call with null or
  /// already-fired handles.
  bool cancel(EventHandle h);

  /// True if the event is scheduled and not yet fired/cancelled.
  bool pending(EventHandle h) const;

  /// Number of events waiting to fire (cancelled tombstones excluded).
  std::size_t pending_count() const { return live_events_; }

  /// Runs until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Runs events with time <= `until`, then advances the clock to `until`
  /// (even if idle). Returns the number of events fired.
  std::uint64_t run_until(SimTime until);

  /// Fires exactly one event if any is pending. Returns false on empty queue.
  bool step();

  /// Time of the next pending event, or kTimeInfinity.
  SimTime next_event_time() const;

  /// Total events fired over the simulator's lifetime.
  std::uint64_t events_fired() const { return fired_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: earlier scheduling fires first
    std::uint64_t id;
    // Heap ordering: smallest time first; FIFO within a timestamp.
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void fire(const Entry& e);
  void drop_cancelled();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // id -> callback for live events; erased on fire/cancel. Tombstoned heap
  // entries are skipped lazily.
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace eas::sim
