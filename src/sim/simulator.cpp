#include "sim/simulator.hpp"

#include <cmath>
#include <utility>

namespace eas::sim {
namespace {

/// Hints the prefetcher at a line we will touch after a long dependent load
/// chain (the sift loop), overlapping the miss with that work. Purely a
/// performance hint — no observable effect, so determinism is untouched.
inline void prefetch_for_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1);
#else
  (void)p;
#endif
}

}  // namespace

// Raw chunk storage relies on plain new[] alignment being enough for the
// callback's small-buffer alignment.
static_assert(alignof(Simulator::Callback) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__);

// ---------------------------------------------------------------------------
// Slot pool

Simulator::~Simulator() {
  // Chunks are raw storage; every slot ever minted holds a constructed
  // Callback (empty once fired/cancelled) that must be destroyed by hand.
  for (std::uint32_t s = 0; s < meta_.size(); ++s) fn_at(s).~Callback();
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNullIndex) {
    const std::uint32_t s = free_head_;
    free_head_ = meta_[s].pos_link;
    ++meta_[s].gen;  // even (free) -> odd (alive)
    return s;
  }
  EAS_CHECK_MSG(meta_.size() < kMaxSlots, "event slot pool exhausted");
  const auto s = static_cast<std::uint32_t>(meta_.size());
  if ((s >> kChunkShift) == fns_.size()) {
    // Plain new[] (not make_unique) on purpose: default-initialized bytes,
    // so the 64 KiB chunk is mapped but never written here.
    fns_.emplace_back(new std::byte[sizeof(Callback) * kChunkSize]);  // det-ok: amortized 64 KiB chunk growth; the steady state recycles slots
  }
  meta_.emplace_back();
  // Default-init, not value-init: Callback{} would zero the whole 64-byte
  // slot (storage included); the default constructor writes only ops_.
  ::new (static_cast<void*>(slot_storage(s))) Callback;
  ++meta_[s].gen;  // 0 -> 1
  return s;
}

// ---------------------------------------------------------------------------
// Indexed 8-ary min-heap. Entries carry their (time, seq) key; each slot
// mirrors its position in pos_link so cancel() removes an arbitrary entry in
// O(log n). The sift helpers take the entry being placed by value: it is
// written exactly once, into its final hole, instead of swapped level by
// level.

void Simulator::sift_up(std::uint32_t pos, HeapEntry e) {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 8;
    const HeapEntry p = ent(parent);
    if (!e.fires_before(p)) break;
    ent(pos) = p;
    meta_[p.slot()].pos_link = pos;
    pos = parent;
  }
  ent(pos) = e;
  meta_[e.slot()].pos_link = pos;
}

/// Sinks the hole at `pos` along the min-child path to a leaf, moving the
/// winning child up one level each step, and returns the hole's final
/// position. Bottom-up removal: the entry that will fill the hole comes from
/// the heap's bottom, so it almost always belongs at a leaf anyway — sinking
/// the hole unconditionally skips the compare-against-replacement branch a
/// classic sift-down pays at every level, and the follow-up sift_up usually
/// terminates after one comparison.
std::uint32_t Simulator::sink_hole(std::uint32_t pos) {
  const std::uint32_t n = live();
  while (true) {
    const std::uint64_t first = std::uint64_t{pos} * 8 + 1;
    if (first >= n) return pos;
    std::uint32_t best;
    if (first + 8 <= n) {
      // Full node: pick the minimum child by pairwise tournament (depth 3:
      // four quarter-finals, two semis, one final — the independent rounds
      // run in parallel in the pipeline). With the branchless 128-bit key
      // compare the ternaries lower to conditional moves — which child wins
      // is data-dependent and unpredictable, so this is where branch misses
      // would otherwise pile up.
      const auto c = static_cast<std::uint32_t>(first);
      const std::uint32_t b01 = ent(c + 1).fires_before(ent(c)) ? c + 1 : c;
      const std::uint32_t b23 =
          ent(c + 3).fires_before(ent(c + 2)) ? c + 3 : c + 2;
      const std::uint32_t b45 =
          ent(c + 5).fires_before(ent(c + 4)) ? c + 5 : c + 4;
      const std::uint32_t b67 =
          ent(c + 7).fires_before(ent(c + 6)) ? c + 7 : c + 6;
      const std::uint32_t l = ent(b23).fires_before(ent(b01)) ? b23 : b01;
      const std::uint32_t r = ent(b67).fires_before(ent(b45)) ? b67 : b45;
      best = ent(r).fires_before(ent(l)) ? r : l;
    } else {
      best = static_cast<std::uint32_t>(first);
      for (std::uint32_t c = best + 1; c < n; ++c) {
        best = ent(c).fires_before(ent(best)) ? c : best;
      }
    }
    const HeapEntry w = ent(best);
    ent(pos) = w;
    meta_[w.slot()].pos_link = pos;
    pos = best;
  }
}

/// Classic bounded sift-down (used by the Floyd rebuild): move the min child
/// up while it fires before `e`, then place `e`. Same child tournament as
/// sink_hole, plus the compare-against-entry exit that Floyd needs.
void Simulator::sift_down(std::uint32_t pos, HeapEntry e) {
  const std::uint32_t n = live();
  while (true) {
    const std::uint64_t first = std::uint64_t{pos} * 8 + 1;
    if (first >= n) break;
    std::uint32_t best;
    if (first + 8 <= n) {
      const auto c = static_cast<std::uint32_t>(first);
      const std::uint32_t b01 = ent(c + 1).fires_before(ent(c)) ? c + 1 : c;
      const std::uint32_t b23 =
          ent(c + 3).fires_before(ent(c + 2)) ? c + 3 : c + 2;
      const std::uint32_t b45 =
          ent(c + 5).fires_before(ent(c + 4)) ? c + 5 : c + 4;
      const std::uint32_t b67 =
          ent(c + 7).fires_before(ent(c + 6)) ? c + 7 : c + 6;
      const std::uint32_t l = ent(b23).fires_before(ent(b01)) ? b23 : b01;
      const std::uint32_t r = ent(b67).fires_before(ent(b45)) ? b67 : b45;
      best = ent(r).fires_before(ent(l)) ? r : l;
    } else {
      best = static_cast<std::uint32_t>(first);
      for (std::uint32_t c = best + 1; c < n; ++c) {
        best = ent(c).fires_before(ent(best)) ? c : best;
      }
    }
    const HeapEntry w = ent(best);
    if (!w.fires_before(e)) break;
    ent(pos) = w;
    meta_[w.slot()].pos_link = pos;
    pos = best;
  }
  ent(pos) = e;
  meta_[e.slot()].pos_link = pos;
}

void Simulator::heap_remove(std::uint32_t pos) {
  EAS_ASSERT(pos < live());
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  heaped_ = live();  // callers fold first
  if (pos == heaped_) return;  // removed the last entry
  // Sink the hole to a leaf, then sift the bottom entry up from there; the
  // sift_up also covers the case where `moved` belongs above `pos`.
  sift_up(sink_hole(pos), moved);
}

// ---------------------------------------------------------------------------
// Public API

void Simulator::push_alive_slot(SimTime when, std::uint32_t s) {
  const std::uint64_t seq = next_seq_++;
  EAS_CHECK_MSG(seq < kMaxSeq, "event sequence counter exhausted");
  const std::uint64_t bits = time_to_bits(when);
  // Install the alignment pad on first use (see kHeapPad).
  if (heap_.empty()) heap_.resize(kHeapPad);
  const std::uint32_t i = live();
  heap_.push_back(HeapEntry{bits, (seq << kSlotBits) | s});
  meta_[s].pos_link = i;  // stays correct until a fold moves the entry
  if (bits < staged_min_bits_) staged_min_bits_ = bits;
}

void Simulator::fold_staged() {
  // Small staged suffixes sift in one at a time (processing in index order
  // keeps each sift_up's ancestor path inside the already-valid prefix).
  // Large ones (relative to the prefix) Floyd-rebuild the whole array in
  // place, O(heap + staged) — cheaper than staged * log(heap) sift-ups, and
  // when the suffix arrived in time order (trace replay) the rebuild is a
  // compare-only pass with no moves. The threshold only changes the heap's
  // internal layout, never the pop sequence: pops follow the unique
  // (time, seq) total order regardless of where entries sit.
  const std::uint32_t n = live();
  const std::uint32_t staged = n - heaped_;
  if (staged < 8 || staged < heaped_ / 8) {
    for (std::uint32_t i = heaped_; i < n; ++i) {
      sift_up(i, ent(i));
    }
  } else if (n >= 2) {
    // Floyd: sift every internal node down, deepest first.
    for (std::uint32_t i = (n - 2) / 8 + 1; i-- > 0;) {
      sift_down(i, ent(i));
    }
  }
  heaped_ = n;
  staged_min_bits_ = kNoPendingBits;
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid() || h.slot_ >= meta_.size()) return false;
  SlotMeta& m = meta_[h.slot_];
  if (m.gen != h.gen_) return false;  // already fired/cancelled (stale)
  // The target may sit in the staged suffix; fold first so heap_remove
  // operates on a complete heap (m.pos_link is current either way).
  if (has_staged()) fold_staged();
  Callback& cb = fn_at(h.slot_);
  prefetch_for_write(&cb);  // destroyed below, after the sift walk
  heap_remove(m.pos_link);
  // Release the slot in place. `m` stays valid — heap_remove rewrites
  // pos_link only for entries still in the heap, and this slot's entry is
  // the one that left it.
  cb.reset();  // destroy the un-fired callback
  ++m.gen;     // odd (alive) -> even (free): stale handles now mismatch
  m.pos_link = free_head_;
  free_head_ = h.slot_;
  return true;
}

bool Simulator::pending(EventHandle h) const {
  return h.valid() && h.slot_ < meta_.size() && meta_[h.slot_].gen == h.gen_;
}

void Simulator::fire_top() {
  const HeapEntry top = ent(0);
  // The clock is monotonic by construction (schedule_at rejects the past and
  // the heap pops in time order); a violation here means the queue ordering
  // itself is corrupt.
  EAS_ASSERT_MSG(top.time() >= now_, "event would move the clock backwards: "
                                         << top.time() << " < " << now_);
  now_ = top.time();
  ++fired_;
  const std::uint32_t s = top.slot();
  prefetch_for_write(&fn_at(s));  // consumed after the sift below
  // Detach the slot before invoking — bump the generation so the callback
  // sees its own handle as stale if it tries to cancel itself. pos_link goes
  // stale until the FreeGuard repoints it at the free list; with an even
  // generation nothing can read it in between.
  ++meta_[s].gen;
  // Root removal: sink the hole from the root, refill from the bottom.
  // Callers fold before popping, so the whole array is heap-ordered here;
  // events the callback schedules below stage past the new heaped_ mark.
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  heaped_ = live();
  if (heaped_ != 0) sift_up(sink_hole(0), moved);
  // Invoke *in place* — chunked callback storage is address-stable, so the
  // callable never moves even if it schedules events that grow the pool.
  // Its slot joins the free list only after consume() has destroyed it
  // (guarded, so a throwing callback cannot leak the slot); until then the
  // free list cannot hand the slot's storage to a new event.
  struct FreeGuard {
    Simulator* self;
    std::uint32_t s;
    ~FreeGuard() {
      self->meta_[s].pos_link = self->free_head_;
      self->free_head_ = s;
    }
  } guard{this, s};
  fn_at(s).consume();
}

bool Simulator::step() {
  if (has_staged()) fold_staged();
  if (live() == 0) return false;
  fire_top();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (true) {
    if (has_staged()) fold_staged();
    if (live() == 0) break;
    fire_top();
    ++n;
  }
  return n;
}

std::uint64_t Simulator::run_until(SimTime until) {
  EAS_REQUIRE_MSG(until >= now_, "run_until target in the past");
  std::uint64_t n = 0;
  while (true) {
    if (has_staged()) fold_staged();
    if (live() == 0 || ent(0).time() > until) break;
    fire_top();
    ++n;
  }
  now_ = until;
  return n;
}

}  // namespace eas::sim
