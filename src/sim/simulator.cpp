#include "sim/simulator.hpp"

#include <cmath>

namespace eas::sim {

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  EAS_REQUIRE_MSG(std::isfinite(when), "event time must be finite");
  EAS_REQUIRE_MSG(when >= now_, "cannot schedule in the past: when="
                                    << when << " now=" << now_);
  EAS_REQUIRE_MSG(static_cast<bool>(fn), "null event callback");
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_events_;
  return EventHandle{id};
}

EventHandle Simulator::schedule_in(SimTime delay, Callback fn) {
  EAS_REQUIRE_MSG(delay >= 0.0, "negative delay " << delay);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  const auto erased = callbacks_.erase(h.id_);
  if (erased > 0) --live_events_;
  EAS_ASSERT_MSG(live_events_ == callbacks_.size(),
                 "live-event count drifted from callback table");
  return erased > 0;  // heap entry becomes a tombstone, skipped lazily
}

bool Simulator::pending(EventHandle h) const {
  return h.valid() && callbacks_.contains(h.id_);
}

void Simulator::drop_cancelled() {
  while (!queue_.empty() && !callbacks_.contains(queue_.top().id)) {
    queue_.pop();
  }
}

SimTime Simulator::next_event_time() const {
  // const_cast-free lazy cleanup: scan from the top without popping.
  // priority_queue lacks iteration, so we conservatively report the top
  // live entry by copying tombstone handling into a mutable helper.
  auto* self = const_cast<Simulator*>(this);
  self->drop_cancelled();
  return queue_.empty() ? kTimeInfinity : queue_.top().time;
}

void Simulator::fire(const Entry& e) {
  auto it = callbacks_.find(e.id);
  EAS_ASSERT(it != callbacks_.end());
  // The clock is monotonic by construction (schedule_at rejects the past and
  // the heap pops in time order); a violation here means the queue ordering
  // itself is corrupt.
  EAS_ASSERT_MSG(e.time >= now_, "event would move the clock backwards: "
                                     << e.time << " < " << now_);
  // Move the callback out before invoking: the callback may schedule or
  // cancel other events (rehashing callbacks_) or even re-enter step().
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  --live_events_;
  now_ = e.time;
  ++fired_;
  fn();
}

bool Simulator::step() {
  drop_cancelled();
  if (queue_.empty()) return false;
  const Entry e = queue_.top();
  queue_.pop();
  fire(e);
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime until) {
  EAS_REQUIRE_MSG(until >= now_, "run_until target in the past");
  std::uint64_t n = 0;
  while (true) {
    drop_cancelled();
    if (queue_.empty() || queue_.top().time > until) break;
    const Entry e = queue_.top();
    queue_.pop();
    fire(e);
    ++n;
  }
  now_ = until;
  return n;
}

}  // namespace eas::sim
