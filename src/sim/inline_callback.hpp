// Small-buffer-optimized, move-only callable for the event kernel's hot path.
//
// std::function costs the kernel a heap allocation per scheduled event the
// moment a capture outgrows its (implementation-defined, typically 16-byte)
// internal buffer — which every storage-system callback does: the common
// shapes are [this], [&system, &sched, &trace, i] (28 bytes) and a pair of
// shared_ptrs plus an index (40 bytes). InlineCallback sizes its buffer so
// all of those stay inline:
//
//   * 48 bytes of aligned inline storage + one ops pointer = 64 bytes, one
//     cache line per slot-pool entry;
//   * captures over 48 bytes (or over-aligned ones) still work — they fall
//     back to a single heap allocation, exactly what std::function would do;
//   * move-only: the kernel never copies callbacks, and dropping copyability
//     admits move-only captures (unique_ptr and friends) that std::function
//     rejects outright.
//
// Dispatch is a hand-rolled ops table (invoke / relocate / destroy) instead
// of a virtual or std::function's manager-function scheme: three direct
// function pointers, no RTTI, and `relocate` fuses move-construct +
// destroy-source into one call so slot recycling touches each byte once.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace eas::sim {

class InlineCallback {
 public:
  /// Captures up to this many bytes (and at most max_align_t alignment) are
  /// stored inline; larger ones take one heap allocation.
  static constexpr std::size_t kInlineSize = 48;

  InlineCallback() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors
                            // std::function's converting constructor
    construct<F, D>(std::forward<F>(fn));
  }

  /// Constructs a callable directly into the buffer, destroying any current
  /// one — the zero-move path the kernel uses to fill recycled event slots.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& fn) {
    reset();
    construct<F, D>(std::forward<F>(fn));
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// True when a callable is held. Invoking an empty callback is UB (the
  /// kernel rejects empty callbacks at schedule time).
  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage()); }

  /// Invokes the callable and destroys it in a single dispatch, leaving the
  /// callback empty. Saves one indirect call on the kernel's fire path over
  /// `operator()` + destructor. The callable is destroyed even if it throws.
  void consume() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(storage());
  }

  /// Destroys the held callable (if any), leaving the callback empty —
  /// `*this = InlineCallback{}` without the temporary.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* src);
    /// Invokes then destroys `src` (destruction guaranteed on throw too).
    void (*invoke_destroy)(void* src);
    /// Move-constructs into `dst` (raw storage) and destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    /// nullptr when destruction is a no-op (trivially destructible inline
    /// callable) — reset() skips the indirect call entirely, which matters
    /// on the cancel path where it would be the only dispatch.
    void (*destroy)(void* src) noexcept;
  };

  template <typename F, typename D>
  void construct(F&& fn) {
    if constexpr (fits_inline<D>()) {
      ::new (storage()) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (storage()) D*(new D(std::forward<F>(fn)));  // det-ok: documented fallback for >48B captures; kernel lambdas stay inline
      ops_ = &kHeapOps<D>;
    }
  }

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* src) { (*static_cast<D*>(src))(); },
      [](void* src) {
        D* f = static_cast<D*>(src);
        struct Guard {  // destroy on both the return and the throw path
          D* f;
          ~Guard() { f->~D(); }
        } guard{f};
        (*f)();
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* src) noexcept { static_cast<D*>(src)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* src) { (**static_cast<D**>(src))(); },
      [](void* src) {
        D* f = *static_cast<D**>(src);
        struct Guard {
          D* f;
          ~Guard() { delete f; }
        } guard{f};
        (*f)();
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* src) noexcept { delete *static_cast<D**>(src); },
  };

  void* storage() { return static_cast<void*>(storage_); }

  void move_from(InlineCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage(), other.storage());
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

static_assert(sizeof(InlineCallback) == 64,
              "one cache line per callback: 48B inline buffer + ops pointer");

}  // namespace eas::sim
