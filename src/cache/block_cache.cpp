#include "cache/block_cache.hpp"

#include <algorithm>

#include "cache/cache.hpp"
#include "util/check.hpp"

namespace eas::cache {

std::unique_ptr<BlockCache> BlockCache::make(CachePolicy policy,
                                             std::size_t capacity_blocks) {
  switch (policy) {
    case CachePolicy::kLru:
      return std::make_unique<LruBlockCache>(capacity_blocks);
    case CachePolicy::kArc:
      return std::make_unique<ArcBlockCache>(capacity_blocks);
  }
  EAS_CHECK_MSG(false, "unknown cache policy");
  return nullptr;
}

// ---------------------------------------------------------------------------
// LRU

bool LruBlockCache::lookup(DataId b) {
  auto it = index_.find(b);
  if (it == index_.end()) return false;
  list_.splice(list_.begin(), list_, it->second);
  return true;
}

DataId LruBlockCache::insert(DataId b) {
  if (capacity_ == 0) return kInvalidData;
  auto it = index_.find(b);
  if (it != index_.end()) {
    list_.splice(list_.begin(), list_, it->second);
    return kInvalidData;
  }
  DataId evicted = kInvalidData;
  if (list_.size() >= capacity_) {
    evicted = list_.back();
    index_.erase(evicted);
    list_.pop_back();
  }
  list_.push_front(b);
  index_.emplace(b, list_.begin());
  EAS_ENSURE(list_.size() <= capacity_);
  return evicted;
}

bool LruBlockCache::erase(DataId b) {
  auto it = index_.find(b);
  if (it == index_.end()) return false;
  list_.erase(it->second);
  index_.erase(it);
  return true;
}

// ---------------------------------------------------------------------------
// ARC

bool ArcBlockCache::contains(DataId b) const {
  auto it = index_.find(b);
  if (it == index_.end()) return false;
  return it->second.where == Where::kT1 || it->second.where == Where::kT2;
}

bool ArcBlockCache::lookup(DataId b) {
  auto it = index_.find(b);
  if (it == index_.end()) return false;
  Entry& e = it->second;
  if (e.where != Where::kT1 && e.where != Where::kT2) return false;
  // Hit in T1 or T2: promote to MRU of T2 (seen at least twice now).
  List& from = e.where == Where::kT1 ? t1_ : t2_;
  t2_.splice(t2_.begin(), from, e.it);
  e.where = Where::kT2;
  return true;
}

DataId ArcBlockCache::replace(bool hit_in_b2) {
  EAS_ASSERT(!t1_.empty() || !t2_.empty());
  const std::size_t t1 = t1_.size();
  DataId victim;
  // Prefer T1 per the ARC target p_, but fall back to whichever resident
  // list is non-empty: erase() (write-buffer invalidation, lost replicas)
  // can drain either list independently of p_.
  if (!t1_.empty() && (t2_.empty() || t1 > p_ || (hit_in_b2 && t1 == p_))) {
    victim = t1_.back();
    t1_.pop_back();
    b1_.push_front(victim);
    index_[victim] = {Where::kB1, b1_.begin()};
  } else {
    victim = t2_.back();
    t2_.pop_back();
    b2_.push_front(victim);
    index_[victim] = {Where::kB2, b2_.begin()};
  }
  return victim;
}

void ArcBlockCache::trim_ghosts() {
  // Directory bound: |T1|+|B1| <= c and |T1|+|T2|+|B1|+|B2| <= 2c.
  while (t1_.size() + b1_.size() > capacity_ && !b1_.empty()) {
    index_.erase(b1_.back());
    b1_.pop_back();
  }
  while (t1_.size() + t2_.size() + b1_.size() + b2_.size() > 2 * capacity_ &&
         !b2_.empty()) {
    index_.erase(b2_.back());
    b2_.pop_back();
  }
}

DataId ArcBlockCache::insert(DataId b) {
  if (capacity_ == 0) return kInvalidData;
  auto it = index_.find(b);
  if (it != index_.end()) {
    Entry& e = it->second;
    switch (e.where) {
      case Where::kT1:
      case Where::kT2: {
        // Case I: already resident — same promotion as a hit.
        List& from = e.where == Where::kT1 ? t1_ : t2_;
        t2_.splice(t2_.begin(), from, e.it);
        e.where = Where::kT2;
        return kInvalidData;
      }
      case Where::kB1: {
        // Case II: ghost hit in B1 — recency is winning, grow T1's target.
        const std::size_t delta =
            b1_.size() >= b2_.size()
                ? 1
                : b2_.size() / b1_.size();
        p_ = std::min(capacity_, p_ + delta);
        // erase() may have left the resident set below capacity; only evict
        // when promoting the ghost would actually overflow T1 ∪ T2.
        const DataId evicted = t1_.size() + t2_.size() >= capacity_
                                   ? replace(/*hit_in_b2=*/false)
                                   : kInvalidData;
        t2_.splice(t2_.begin(), b1_, e.it);
        e.where = Where::kT2;
        return evicted;
      }
      case Where::kB2: {
        // Case III: ghost hit in B2 — frequency is winning, shrink T1's
        // target.
        const std::size_t delta =
            b2_.size() >= b1_.size()
                ? 1
                : b1_.size() / b2_.size();
        p_ = delta >= p_ ? 0 : p_ - delta;
        const DataId evicted = t1_.size() + t2_.size() >= capacity_
                                   ? replace(/*hit_in_b2=*/true)
                                   : kInvalidData;
        t2_.splice(t2_.begin(), b2_, e.it);
        e.where = Where::kT2;
        return evicted;
      }
    }
  }
  // Case IV: cold miss.
  DataId evicted = kInvalidData;
  const std::size_t l1 = t1_.size() + b1_.size();
  if (l1 == capacity_) {
    if (t1_.size() < capacity_) {
      index_.erase(b1_.back());
      b1_.pop_back();
      if (t1_.size() + t2_.size() >= capacity_) {
        evicted = replace(/*hit_in_b2=*/false);
      }
    } else {
      // B1 empty, T1 full: discard T1's LRU outright (no ghost — the
      // directory slot is needed for the newcomer).
      evicted = t1_.back();
      t1_.pop_back();
      index_.erase(evicted);
    }
  } else if (l1 < capacity_) {
    const std::size_t total = l1 + t2_.size() + b2_.size();
    if (total >= capacity_) {
      if (total == 2 * capacity_ && !b2_.empty()) {
        index_.erase(b2_.back());
        b2_.pop_back();
      }
      if (t1_.size() + t2_.size() >= capacity_) {
        evicted = replace(/*hit_in_b2=*/false);
      }
    }
  }
  t1_.push_front(b);
  index_[b] = {Where::kT1, t1_.begin()};
  trim_ghosts();
  EAS_ENSURE(t1_.size() + t2_.size() <= capacity_);
  return evicted;
}

bool ArcBlockCache::erase(DataId b) {
  auto it = index_.find(b);
  if (it == index_.end()) return false;
  Entry& e = it->second;
  const bool resident = e.where == Where::kT1 || e.where == Where::kT2;
  switch (e.where) {
    case Where::kT1:
      t1_.erase(e.it);
      break;
    case Where::kT2:
      t2_.erase(e.it);
      break;
    case Where::kB1:
      b1_.erase(e.it);
      break;
    case Where::kB2:
      b2_.erase(e.it);
      break;
  }
  index_.erase(it);
  return resident;
}

}  // namespace eas::cache
