// Deterministic block caches: LRU and ARC behind one interface.
//
// Replacement state is a pure function of the lookup/insert call sequence —
// no clocks, no randomness, no address-dependent ordering — so any run that
// feeds the same request stream gets the same hit/miss/eviction sequence
// regardless of thread count. Unordered containers are used for O(1) point
// lookups only; every *iteration* walks a std::list whose order is the
// recency order itself (the eascheck determinism rules ban range-for over
// unordered containers in this module, same as the other decision layers).
//
// Steady-state lookups and repeat-insert promotions are allocation-free
// (splice moves list nodes in place); only a miss-insert allocates the new
// node. test_cache pins this with the counting-allocator pattern.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>

#include "util/ids.hpp"

namespace eas::cache {

enum class CachePolicy : std::uint8_t;

/// Replacement-policy interface. Capacity 0 degenerates cleanly: lookups
/// miss, inserts are no-ops.
class BlockCache {
 public:
  virtual ~BlockCache() = default;

  virtual const char* name() const = 0;
  virtual std::size_t capacity() const = 0;
  /// Resident (non-ghost) blocks.
  virtual std::size_t size() const = 0;

  /// True when `b` is resident. Does NOT touch recency state — use for
  /// inspection only, never on a request path.
  virtual bool contains(DataId b) const = 0;

  /// True on hit; promotes `b` in the replacement order.
  virtual bool lookup(DataId b) = 0;

  /// Admits `b` (promoting it if already resident). Returns the evicted
  /// block, or kInvalidData when nothing was displaced.
  virtual DataId insert(DataId b) = 0;

  /// Drops `b` if resident (used when a block's last disk replica is lost —
  /// the cache must not outlive the data it mirrors). Returns true if it
  /// was resident.
  virtual bool erase(DataId b) = 0;

  static std::unique_ptr<BlockCache> make(CachePolicy policy,
                                          std::size_t capacity_blocks);
};

/// Classic LRU: recency list + hash index. lookup() splices the hit node to
/// the front (no allocation); insert() on a full cache evicts the back.
class LruBlockCache final : public BlockCache {
 public:
  explicit LruBlockCache(std::size_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  const char* name() const override { return "lru"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return list_.size(); }
  bool contains(DataId b) const override { return index_.count(b) > 0; }
  bool lookup(DataId b) override;
  DataId insert(DataId b) override;
  bool erase(DataId b) override;

 private:
  using List = std::list<DataId>;
  std::size_t capacity_;
  List list_;  // front = MRU, back = LRU
  std::unordered_map<DataId, List::iterator> index_;
};

/// Adaptive Replacement Cache (Megiddo & Modha, FAST'03). Two resident
/// lists T1 (seen once) / T2 (seen twice+) plus ghost lists B1/B2 of
/// recently evicted identities; the target size `p` of T1 adapts on ghost
/// hits. |T1|+|T2| <= c resident, |T1|+|B1| <= c, total directory <= 2c.
class ArcBlockCache final : public BlockCache {
 public:
  explicit ArcBlockCache(std::size_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  const char* name() const override { return "arc"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return t1_.size() + t2_.size(); }
  bool contains(DataId b) const override;
  bool lookup(DataId b) override;
  DataId insert(DataId b) override;
  bool erase(DataId b) override;

  /// Adaptation target for |T1| — exposed for the golden-sequence tests.
  std::size_t target_t1() const { return p_; }
  std::size_t t1_size() const { return t1_.size(); }
  std::size_t t2_size() const { return t2_.size(); }
  std::size_t b1_size() const { return b1_.size(); }
  std::size_t b2_size() const { return b2_.size(); }

 private:
  using List = std::list<DataId>;
  enum class Where : std::uint8_t { kT1, kT2, kB1, kB2 };
  struct Entry {
    Where where;
    List::iterator it;
  };

  // REPLACE(x, p): evict from T1 if |T1| >= max(1, p) (or the B2-hit
  // tie-break), else from T2; the victim's identity moves to the matching
  // ghost list. Returns the evicted block.
  DataId replace(bool hit_in_b2);
  void trim_ghosts();

  std::size_t capacity_;
  std::size_t p_ = 0;  // target size of T1
  List t1_, t2_, b1_, b2_;  // each: front = MRU
  std::unordered_map<DataId, Entry> index_;
};

}  // namespace eas::cache
