#include "cache/cache.hpp"

#include "util/check.hpp"

namespace eas::cache {

const char* to_string(CachePolicy p) {
  switch (p) {
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kArc:
      return "arc";
  }
  return "?";
}

void CacheConfig::validate() const {
  if (!enabled) return;
  EAS_CHECK_MSG(block_bytes > 0, "cache block_bytes must be positive");
  EAS_CHECK_MSG(dram_latency_seconds >= 0.0,
                "dram_latency_seconds=" << dram_latency_seconds);
  EAS_CHECK_MSG(memory_watts_per_gib >= 0.0,
                "memory_watts_per_gib=" << memory_watts_per_gib);
  EAS_CHECK_MSG(destage_deadline_seconds > 0.0,
                "destage_deadline_seconds=" << destage_deadline_seconds);
  EAS_CHECK_MSG(max_destage_batch > 0, "max_destage_batch must be positive");
  EAS_CHECK_MSG(high_watermark > 0.0 && high_watermark <= 1.0,
                "high_watermark=" << high_watermark);
  EAS_CHECK_MSG(low_watermark >= 0.0 && low_watermark < high_watermark,
                "watermarks inverted: low=" << low_watermark
                                            << " high=" << high_watermark);
}

double CacheConfig::memory_energy_joules(double horizon) const {
  constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
  return static_cast<double>(footprint_bytes()) / kGiB *
         memory_watts_per_gib * horizon;
}

}  // namespace eas::cache
