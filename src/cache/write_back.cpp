#include "cache/write_back.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace eas::cache {

double WriteBackBuffer::buffered_at(DataId b) const {
  auto it = slots_.find(b);
  EAS_REQUIRE_MSG(it != slots_.end(), "block " << b << " not buffered");
  return it->second.admitted;
}

DiskId WriteBackBuffer::home_of(DataId b) const {
  auto it = slots_.find(b);
  EAS_REQUIRE_MSG(it != slots_.end(), "block " << b << " not buffered");
  return it->second.home;
}

bool WriteBackBuffer::put(DataId b, DiskId k, double now) {
  EAS_REQUIRE_MSG(k < pending_.size(), "home disk " << k << " out of range");
  auto it = slots_.find(b);
  if (it != slots_.end()) {
    Slot& s = it->second;
    if (!s.in_flight) {
      // Overwrite in place: the slot keeps its home, queue position and
      // admission time; the eventual destage carries the newest payload.
      return true;
    }
    // The copy racing to disk is stale now. Re-enter the block at the tail
    // of its home FIFO; the in-flight write's complete() becomes a no-op.
    auto& fl = inflight_[s.home];
    fl.erase(std::find(fl.begin(), fl.end(), b));
    s.in_flight = false;
    s.admitted = now;
    pending_[s.home].push_back(b);
    ++pending_count_[s.home];
    ++pending_total_;
    return true;
  }
  if (slots_.size() >= capacity_) return false;
  slots_.emplace(b, Slot{k, now, /*in_flight=*/false});
  pending_[k].push_back(b);
  ++pending_count_[k];
  ++pending_total_;
  return true;
}

std::size_t WriteBackBuffer::begin_destage(DiskId k, std::size_t max_blocks,
                                           std::vector<DataId>& out) {
  EAS_REQUIRE_MSG(k < pending_.size(), "disk " << k << " out of range");
  std::size_t issued = 0;
  while (issued < max_blocks && !pending_[k].empty()) {
    const DataId b = pending_[k].front();
    pending_[k].pop_front();
    auto it = slots_.find(b);
    EAS_ASSERT(it != slots_.end() && it->second.home == k &&
               !it->second.in_flight);
    it->second.in_flight = true;
    inflight_[k].push_back(b);
    out.push_back(b);
    ++issued;
  }
  pending_count_[k] -= issued;
  pending_total_ -= issued;
  return issued;
}

bool WriteBackBuffer::complete(DataId b) {
  auto it = slots_.find(b);
  if (it == slots_.end() || !it->second.in_flight) return false;
  const DiskId k = it->second.home;
  auto& fl = inflight_[k];
  fl.erase(std::find(fl.begin(), fl.end(), b));
  slots_.erase(it);
  return true;
}

std::size_t WriteBackBuffer::drain(DiskId k, std::vector<DataId>& out) {
  EAS_REQUIRE_MSG(k < pending_.size(), "disk " << k << " out of range");
  std::size_t drained = 0;
  // In-flight first (they were admitted earliest), then pending, each in
  // admission order — the re-home order stays deterministic.
  for (const DataId b : inflight_[k]) {
    out.push_back(b);
    slots_.erase(b);
    ++drained;
  }
  inflight_[k].clear();
  for (const DataId b : pending_[k]) {
    out.push_back(b);
    slots_.erase(b);
    ++drained;
  }
  pending_total_ -= pending_[k].size();
  pending_[k].clear();
  pending_count_[k] = 0;
  return drained;
}

}  // namespace eas::cache
