// Write-back buffer with per-disk destage grouping.
//
// Dirty blocks live in NVRAM-modelled slots, grouped by home disk so a
// destage batch touches exactly one disk. The buffer itself makes no timing
// or power decisions — the storage system decides *when* to destage
// (piggyback on a spinning disk, watermark pressure, or deadline) and the
// buffer hands out batches in FIFO admission order per disk, which keeps the
// destage stream a pure function of the write stream (determinism contract).
//
// Block lifecycle within the buffer:
//
//   put() ──► pending (in its home disk's FIFO)
//     │            │ begin_destage()
//     │            ▼
//     │        in-flight (internal write issued to the disk)
//     │            │ complete()                │ home disk dies
//     ▼            ▼                           ▼
//   overwrite   slot freed                 drain() → re-homed or lost
//
// A put() of an already-buffered block refreshes its payload in place (one
// slot per block — last write wins, no duplicate destage). drain(k) empties
// disk k's group (pending AND in-flight, since a dead disk completes
// nothing) so the caller can re-home each block via the placement map.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"

namespace eas::cache {

class WriteBackBuffer {
 public:
  WriteBackBuffer(std::size_t capacity_blocks, std::size_t num_disks)
      : capacity_(capacity_blocks),
        pending_(num_disks),
        inflight_(num_disks),
        pending_count_(num_disks, 0) {}

  std::size_t capacity() const { return capacity_; }
  /// Buffered blocks, pending + in-flight.
  std::size_t size() const { return slots_.size(); }
  bool full() const { return slots_.size() >= capacity_; }

  /// True when `b` is buffered (pending or in-flight). The authoritative
  /// copy of a dirty block is here until complete() lands it on disk.
  bool contains(DataId b) const { return slots_.count(b) > 0; }

  /// Pending (not yet issued) blocks homed on disk `k` — the dirty-set
  /// pressure the schedulers read.
  std::uint64_t pending(DiskId k) const { return pending_count_[k]; }
  /// Pending blocks across all disks = what would remain resident after
  /// every in-flight destage lands.
  std::uint64_t pending_total() const { return pending_total_; }
  /// True when `b` is buffered and not in flight.
  bool is_pending(DataId b) const {
    auto it = slots_.find(b);
    return it != slots_.end() && !it->second.in_flight;
  }
  std::size_t num_disks() const { return pending_.size(); }

  /// Admission time of `b` (for deadline checks); requires contains(b).
  double buffered_at(DataId b) const;
  /// Home disk of `b`; requires contains(b).
  DiskId home_of(DataId b) const;

  /// Buffers `b` homed on `k` at time `now`. Re-putting a still-pending
  /// block refreshes it in place (keeps its queue position and admission
  /// time; the destage will carry the newest payload). Re-putting an
  /// *in-flight* block re-enters it at the tail of its home FIFO with a
  /// fresh admission time — the write racing to disk is stale, and its
  /// complete() will be ignored. Returns false when the buffer is full —
  /// the caller must fall back to write-through.
  bool put(DataId b, DiskId k, double now);

  /// Moves up to `max_blocks` of disk `k`'s pending blocks (FIFO order)
  /// into the in-flight set, appending them to `out`. Returns the count.
  std::size_t begin_destage(DiskId k, std::size_t max_blocks,
                            std::vector<DataId>& out);

  /// Marks an in-flight destage of `b` complete and frees its slot.
  /// Tolerates stale completions (block already drained/overwritten after a
  /// disk death): returns false and does nothing for an unknown block.
  bool complete(DataId b);

  /// Empties disk `k`'s whole group — pending and in-flight — appending the
  /// blocks to `out` in admission order. Used on disk death; the caller
  /// re-homes each block or counts it lost.
  std::size_t drain(DiskId k, std::vector<DataId>& out);

 private:
  struct Slot {
    DiskId home;
    double admitted;
    bool in_flight;
  };

  std::size_t capacity_;
  std::unordered_map<DataId, Slot> slots_;
  /// Per-disk FIFO of pending blocks (admission order). Entries leave only
  /// via begin_destage() or drain(), so every entry is live.
  std::vector<std::deque<DataId>> pending_;
  /// Per-disk in-flight blocks, in issue order.
  std::vector<std::vector<DataId>> inflight_;
  std::vector<std::uint64_t> pending_count_;
  std::uint64_t pending_total_ = 0;
};

}  // namespace eas::cache
