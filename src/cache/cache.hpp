// Power-aware cache & destage tier: configuration and counters.
//
// The cache tier sits between the storage system and the disks (Behzadnia et
// al., "Energy-Aware Disk Storage Management": cache-mediated request
// reshaping is the dominant online lever on top of spin-down scheduling). It
// has two halves:
//
//   * BlockCache (block_cache.hpp) — a deterministic read cache. Hits
//     complete at DRAM latency and never touch a disk, which extends exactly
//     the idle windows the Eq. 6 cost schedulers and the covering-subset
//     policy exploit.
//   * WriteBackBuffer (write_back.hpp) — an NVRAM-modelled dirty tier with
//     power-aware destaging: dirty blocks are grouped per home disk and
//     written back opportunistically when that disk is spinning anyway
//     (riding an already-paid spin-up, generalizing write-offloading's lazy
//     reclaim), with watermark/deadline force-destage as the backstop.
//
// Everything here is seed-free: replacement state and destage order are pure
// functions of the request stream, so sweep results stay bit-identical at
// any EAS_THREADS. The tier's memory is not free either — validate() carries
// a W-per-GiB power figure that the storage system charges over the run
// horizon, so reported energy stays honest.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/ids.hpp"

namespace eas::cache {

/// Replacement policy of the read (clean) cache.
enum class CachePolicy : std::uint8_t {
  kLru = 0,  ///< least-recently-used, intrusive list + index
  kArc = 1,  ///< adaptive replacement cache (Megiddo & Modha), ghost lists
};

const char* to_string(CachePolicy p);

struct CacheConfig {
  /// Master switch. Disabled (the default) keeps the whole tier dormant: no
  /// cache objects exist, every instrumentation point is one branch, and
  /// results and output are byte-identical to pre-cache builds.
  bool enabled = false;

  /// Read-cache capacity in blocks. 0 is legal (every lookup misses); an
  /// enabled cache with zero capacities must produce results bit-identical
  /// to a disabled one (pinned by test_cache).
  std::size_t capacity_blocks = 0;
  CachePolicy policy = CachePolicy::kLru;

  /// Write-back (dirty) buffer capacity in blocks. 0 selects the
  /// write-through fallback: writes go to disk as if the tier only cached
  /// reads. When the buffer is full, individual writes also fall back to
  /// write-through rather than blocking.
  std::size_t dirty_capacity_blocks = 0;

  /// Service time of a cache hit / buffered write (seconds).
  double dram_latency_seconds = 20e-6;

  /// Bytes per cached block; sizes destage I/O and the memory-energy charge.
  unsigned long block_bytes = 512 * 1024;

  /// Memory power charged for the configured capacity (both halves) over
  /// the run horizon, W per GiB. DDR4 background power is ~0.375 W/GiB;
  /// NVDIMM-style parts run higher.
  double memory_watts_per_gib = 0.375;

  /// A dirty block older than this is force-destaged even if its home disk
  /// must be woken (bounds NVRAM data age).
  double destage_deadline_seconds = 30.0;

  /// Occupancy fractions of dirty_capacity_blocks: crossing `high_watermark`
  /// force-destages (largest group first) until occupancy falls back to
  /// `low_watermark`.
  double high_watermark = 0.75;
  double low_watermark = 0.5;

  /// Blocks destaged per batch (one batch = one burst of internal writes on
  /// a single disk).
  std::size_t max_destage_batch = 8;

  /// Throws InvariantError on nonsense (negative latency, watermarks
  /// outside (0,1] or inverted, zero batch, non-positive deadline, zero
  /// block size). Disabled configs are never checked.
  void validate() const;

  /// Total tier capacity in bytes (both halves), for the memory-energy
  /// charge.
  unsigned long long footprint_bytes() const {
    return static_cast<unsigned long long>(capacity_blocks +
                                           dirty_capacity_blocks) *
           block_bytes;
  }

  /// Memory energy over `horizon` seconds at the configured W/GiB.
  double memory_energy_joules(double horizon) const;
};

/// Why a destage batch was issued; drives the piggyback/forced counters and
/// the obs trace argument.
enum class DestageReason : std::uint8_t {
  kPiggyback = 0,  ///< home disk was spinning anyway (idle ride-along)
  kWatermark = 1,  ///< dirty occupancy crossed the high watermark
  kDeadline = 2,   ///< a block aged past destage_deadline_seconds
};

/// One run's cache-tier counters; surfaced in RunResult (and its JSON /
/// sweep columns) only when the tier is enabled.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits_clean = 0;  ///< served from the read cache
  std::uint64_t hits_dirty = 0;  ///< served from the write-back buffer
  std::uint64_t misses = 0;

  std::uint64_t insertions = 0;  ///< blocks admitted to the read cache
  std::uint64_t evictions = 0;   ///< blocks displaced from the read cache

  std::uint64_t writes_buffered = 0;  ///< absorbed by the write-back buffer
  std::uint64_t writes_through = 0;   ///< fell through to a disk write

  std::uint64_t destage_batches = 0;
  std::uint64_t destaged_blocks = 0;
  std::uint64_t destage_piggyback = 0;  ///< batches riding a spinning disk
  std::uint64_t destage_forced = 0;     ///< watermark/deadline batches

  /// Fault interactions: dirty blocks re-homed to a replica location after
  /// their home disk died, and dirty blocks with no live location left
  /// (counted unavailable — the cache never masks a lost block).
  std::uint64_t dirty_redirected = 0;
  std::uint64_t dirty_lost = 0;
  /// Clean cached copies dropped because the last disk replica died: the
  /// read is counted unavailable exactly as it would be without the cache.
  std::uint64_t lost_copies_dropped = 0;

  /// footprint_bytes · W/GiB · horizon, filled at finish().
  double memory_energy_joules = 0.0;

  double hit_ratio() const {
    const std::uint64_t hits = hits_clean + hits_dirty;
    return lookups > 0 ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  }
};

}  // namespace eas::cache
