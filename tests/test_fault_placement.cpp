// Satellite: WSC set-cover behaviour under a degraded FailureView.
//
// The greedy cover solver throws on an infeasible instance, so the
// scheduler must (a) drop dead disks from the candidate sets, (b) keep the
// universe feasible by excluding requests with no readable replica, and
// (c) *report* those requests as kInvalidDisk instead of asserting.
#include <gtest/gtest.h>

#include <vector>

#include "core/wsc_scheduler.hpp"
#include "fault/failure_view.hpp"
#include "paper_example.hpp"
#include "util/check.hpp"

namespace eas::core {
namespace {

/// Scriptable SystemView (same pattern as test_schedulers.cpp) that can
/// carry a FailureView overlay.
class FaultyView final : public SystemView {
 public:
  explicit FaultyView(placement::PlacementMap placement)
      : placement_(std::move(placement)),
        snapshots_(placement_.num_disks()) {}

  double now() const override { return 0.0; }
  const placement::PlacementMap& placement() const override {
    return placement_;
  }
  DiskSnapshot snapshot(DiskId k) const override { return snapshots_.at(k); }
  const disk::DiskPowerParams& power_params() const override { return power_; }
  const fault::FailureView* failure_view() const override { return view_; }

  void attach(const fault::FailureView* v) { view_ = v; }

 private:
  placement::PlacementMap placement_;
  std::vector<DiskSnapshot> snapshots_;
  disk::DiskPowerParams power_ = testing::example_power();
  const fault::FailureView* view_ = nullptr;
};

std::vector<disk::Request> batch_for(std::initializer_list<DataId> data) {
  std::vector<disk::Request> batch;
  RequestId id = 0;
  for (DataId b : data) {
    disk::Request r;
    r.id = ++id;
    r.data = b;
    batch.push_back(r);
  }
  return batch;
}

void expect_valid_assignment(const std::vector<DiskId>& assignment,
                             const std::vector<disk::Request>& batch,
                             const placement::PlacementMap& pm,
                             const fault::FailureView& view) {
  ASSERT_EQ(assignment.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const DiskId k = assignment[i];
    if (k == kInvalidDisk) continue;
    EXPECT_TRUE(pm.stores(batch[i].data, k))
        << "request " << i << " assigned off-replica disk " << k;
    EXPECT_TRUE(view.replica_readable(batch[i].data, k))
        << "request " << i << " assigned unreadable replica on disk " << k;
  }
}

TEST(WscUnderFaults, HealthyOverlayMatchesTheFaultFreePath) {
  FaultyView bare(testing::example_placement());
  FaultyView overlaid(testing::example_placement());
  fault::FailureView healthy(4);
  overlaid.attach(&healthy);
  WscBatchScheduler a, b;
  const auto batch = batch_for({0, 1, 2, 3, 4, 5});
  EXPECT_EQ(a.assign(batch, bare), b.assign(batch, overlaid));
}

TEST(WscUnderFaults, SingleDiskDeathFallsBackToAValidCover) {
  // Disk 0 holds data {0,1,2,4}; with it down, every block except data 0
  // still has a live replica and the cover must use only those.
  FaultyView view(testing::example_placement());
  fault::FailureView fv(4);
  fv.set_health(0.0, 0, fault::DiskHealth::kDown);
  view.attach(&fv);
  WscBatchScheduler sched;
  const auto batch = batch_for({1, 2, 3, 4, 5});
  const auto assignment = sched.assign(batch, view);
  expect_valid_assignment(assignment, batch, view.placement(), fv);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NE(assignment[i], kInvalidDisk) << "request " << i;
    EXPECT_NE(assignment[i], 0u) << "request " << i;
  }
}

TEST(WscUnderFaults, EachSingleDiskDeathStaysCoverable) {
  // rf >= 2 for data {1,2,3,4,5}: killing any one disk leaves them served.
  for (DiskId dead = 0; dead < 4; ++dead) {
    SCOPED_TRACE(dead);
    FaultyView view(testing::example_placement());
    fault::FailureView fv(4);
    fv.set_health(0.0, dead, fault::DiskHealth::kDown);
    view.attach(&fv);
    WscBatchScheduler sched;
    const auto batch = batch_for({1, 2, 3, 4, 5});
    const auto assignment = sched.assign(batch, view);
    expect_valid_assignment(assignment, batch, view.placement(), fv);
    for (const DiskId k : assignment) EXPECT_NE(k, kInvalidDisk);
  }
}

TEST(WscUnderFaults, UncoverableRequestsAreReportedNotAsserted) {
  // Data 0 lives only on disk 0: with it down the request cannot be
  // covered. The scheduler must still assign the rest of the batch.
  FaultyView view(testing::example_placement());
  fault::FailureView fv(4);
  fv.set_health(0.0, 0, fault::DiskHealth::kDown);
  view.attach(&fv);
  WscBatchScheduler sched;
  const auto batch = batch_for({0, 1, 2});
  std::vector<DiskId> assignment;
  ASSERT_NO_THROW(assignment = sched.assign(batch, view));
  expect_valid_assignment(assignment, batch, view.placement(), fv);
  EXPECT_EQ(assignment[0], kInvalidDisk);  // data 0: no live replica
  EXPECT_NE(assignment[1], kInvalidDisk);
  EXPECT_NE(assignment[2], kInvalidDisk);
}

TEST(WscUnderFaults, TotalOutageReportsEveryRequest) {
  FaultyView view(testing::example_placement());
  fault::FailureView fv(4);
  for (DiskId k = 0; k < 4; ++k) fv.set_health(0.0, k, fault::DiskHealth::kDown);
  view.attach(&fv);
  WscBatchScheduler sched;
  const auto batch = batch_for({0, 1, 2, 3, 4, 5});
  std::vector<DiskId> assignment;
  ASSERT_NO_THROW(assignment = sched.assign(batch, view));
  for (const DiskId k : assignment) EXPECT_EQ(k, kInvalidDisk);
}

TEST(WscUnderFaults, LatentSectorRangeExcludesOnlyTheCoveredBlocks) {
  // Blocks [1, 2] on disk 0 go unreadable: data 1 and 2 must be served
  // from their surviving replicas, data 4 may still use disk 0.
  FaultyView view(testing::example_placement());
  fault::FailureView fv(4);
  fv.add_lost_range(0.0, 0, 1, 2);
  view.attach(&fv);
  WscBatchScheduler sched;
  const auto batch = batch_for({1, 2, 4});
  const auto assignment = sched.assign(batch, view);
  expect_valid_assignment(assignment, batch, view.placement(), fv);
  EXPECT_NE(assignment[0], 0u);
  EXPECT_NE(assignment[1], 0u);
  for (const DiskId k : assignment) EXPECT_NE(k, kInvalidDisk);
}

}  // namespace
}  // namespace eas::core
