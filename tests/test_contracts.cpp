// Contract-layer tests: prove that every instrumented invariant actually
// fires on violation, with a diagnostic a human can act on (exception mode —
// EAS_* contracts throw eas::InvariantError rather than aborting, exactly so
// these tests can observe them).
#include <gtest/gtest.h>

#include <string>

#include "disk/disk.hpp"
#include "graph/mwis.hpp"
#include "graph/set_cover.hpp"
#include "placement/placement.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace eas {
namespace {

/// Runs `fn`, expecting InvariantError whose message contains every needle.
template <typename Fn>
void expect_contract_failure(Fn fn,
                             const std::vector<std::string>& needles) {
  try {
    fn();
    FAIL() << "expected InvariantError, nothing thrown";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    for (const auto& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "diagnostic missing '" << needle << "': " << what;
    }
  }
}

// --- macro semantics --------------------------------------------------------

TEST(ContractMacros, KindsAreLabelled) {
  expect_contract_failure([] { EAS_REQUIRE(1 == 2); },
                          {"precondition violated", "1 == 2"});
  expect_contract_failure([] { EAS_ENSURE(2 == 3); },
                          {"postcondition violated", "2 == 3"});
  expect_contract_failure([] { EAS_CHECK(3 == 4); },
                          {"invariant violated", "3 == 4"});
}

TEST(ContractMacros, MessagesCarryStreamedContextAndLocation) {
  expect_contract_failure(
      [] {
        const int queue_depth = 7;
        EAS_REQUIRE_MSG(queue_depth == 0, "queue depth " << queue_depth);
      },
      {"precondition violated", "queue_depth == 0", "queue depth 7",
       "test_contracts.cpp"});
}

TEST(ContractMacros, AssertAndAuditFollowAuditTier) {
  if constexpr (audit_enabled()) {
    EXPECT_THROW([] { EAS_ASSERT(false); }(), InvariantError);
    EXPECT_THROW([] { EAS_AUDIT(false); }(), InvariantError);
  } else {
    EXPECT_NO_THROW([] { EAS_ASSERT(false); }());
    EXPECT_NO_THROW([] { EAS_AUDIT(false); }());
  }
  // The expression must not be evaluated when the tier is compiled out.
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return true;
  };
  EAS_ASSERT(touch());
  static_cast<void>(touch);  // unreferenced when the tier is compiled out
  EXPECT_EQ(evaluations, audit_enabled() ? 1 : 0);
}

// --- disk power-state machine ----------------------------------------------

TEST(DiskContracts, SpinDownWhileActiveIsRejected) {
  sim::Simulator sim;
  disk::Disk d(/*id=*/3, sim, disk::DiskPowerParams{}, disk::DiskPerfParams{},
               disk::DiskState::Idle);
  disk::Request r;
  r.id = 1;
  r.data = 0;
  d.submit(r);  // Idle -> Active, service event pending
  ASSERT_EQ(d.state(), disk::DiskState::Active);
  expect_contract_failure([&] { d.spin_down(); },
                          {"precondition violated", "spin_down from active",
                           "disk 3"});
}

TEST(DiskContracts, DoubleSpinDownIsRejected) {
  sim::Simulator sim;
  disk::Disk d(/*id=*/0, sim, disk::DiskPowerParams{}, disk::DiskPerfParams{},
               disk::DiskState::Idle);
  d.spin_down();  // legal: Idle -> SpinningDown
  expect_contract_failure([&] { d.spin_down(); },
                          {"spin_down from spin-down"});
}

TEST(DiskContracts, DisksMustStartSettled) {
  sim::Simulator sim;
  EXPECT_THROW(disk::Disk(0, sim, disk::DiskPowerParams{},
                          disk::DiskPerfParams{}, disk::DiskState::Active),
               InvariantError);
}

TEST(DiskContracts, MeaninglessPowerParamsAreRejected) {
  disk::DiskPowerParams p;
  p.standby_watts = p.idle_watts + 1.0;  // standby hotter than idle
  EXPECT_THROW(p.validate(), InvariantError);
}

// --- simulator kernel -------------------------------------------------------

TEST(SimulatorContracts, SchedulingInThePastIsRejected) {
  sim::Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  ASSERT_DOUBLE_EQ(sim.now(), 5.0);
  expect_contract_failure([&] { sim.schedule_at(1.0, [] {}); },
                          {"precondition violated", "when=1", "now=5"});
}

TEST(SimulatorContracts, NegativeDelayAndNullCallbackAreRejected) {
  sim::Simulator sim;
  expect_contract_failure([&] { sim.schedule_in(-0.5, [] {}); },
                          {"negative delay"});
  EXPECT_THROW(sim.schedule_at(1.0, sim::Simulator::Callback{}),
               InvariantError);
}

TEST(SimulatorContracts, RunUntilCannotRewindTheClock) {
  sim::Simulator sim;
  sim.run_until(10.0);
  EXPECT_THROW(sim.run_until(9.0), InvariantError);
}

// --- WSC cover validity -----------------------------------------------------

namespace {
graph::SetCoverInstance small_instance() {
  graph::SetCoverInstance instance;
  instance.num_elements = 4;
  instance.sets.push_back({1.0, {0, 1}});
  instance.sets.push_back({1.0, {2}});
  instance.sets.push_back({1.0, {3}});
  return instance;
}
}  // namespace

TEST(CoverContracts, ValidCoverPasses) {
  const auto instance = small_instance();
  const auto sol = graph::greedy_weighted_set_cover(instance);
  EXPECT_NO_THROW(graph::check_cover(sol, instance));
}

TEST(CoverContracts, NonCoveringResultTripsWithUncoveredElement) {
  const auto instance = small_instance();
  auto sol = graph::greedy_weighted_set_cover(instance);
  // Forge a bad result: drop the set that covers element 3.
  std::erase(sol.chosen_sets, std::size_t{2});
  expect_contract_failure(
      [&] { graph::check_cover(sol, instance); },
      {"postcondition violated", "leaves element 3 uncovered"});
}

TEST(CoverContracts, OutOfRangeSetIsNamed) {
  const auto instance = small_instance();
  graph::SetCoverSolution sol;
  sol.chosen_sets = {7};
  expect_contract_failure([&] { graph::check_cover(sol, instance); },
                          {"references set 7"});
}

TEST(CoverContracts, InfeasibleInstanceIsRejectedUpFront) {
  graph::SetCoverInstance instance;
  instance.num_elements = 2;
  instance.sets.push_back({1.0, {0}});  // nothing covers element 1
  expect_contract_failure(
      [&] { graph::greedy_weighted_set_cover(instance); },
      {"precondition violated", "infeasible"});
}

// --- MWIS independence ------------------------------------------------------

TEST(MwisContracts, IndependentSolutionPasses) {
  graph::WeightedGraphBuilder b({1.0, 2.0, 3.0});
  b.add_edge(0, 1);
  const auto g = b.build();
  EXPECT_NO_THROW(graph::check_independent(g, {0, 2}));
}

TEST(MwisContracts, DependentPairTripsNamingTheEdge) {
  graph::WeightedGraphBuilder b({1.0, 2.0, 3.0});
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const auto g = b.build();
  expect_contract_failure(
      [&] { graph::check_independent(g, {0, 1}); },
      {"postcondition violated", "not independent",
       "both endpoints selected"});
}

TEST(MwisContracts, DuplicateAndOutOfRangeVerticesTrip) {
  graph::WeightedGraph g({1.0, 2.0});
  expect_contract_failure([&] { graph::check_independent(g, {0, 0}); },
                          {"appears twice"});
  expect_contract_failure([&] { graph::check_independent(g, {5}); },
                          {"out of range"});
}

TEST(MwisContracts, SolversProduceContractCleanSolutions) {
  // A 5-cycle with skewed weights: greedy and exact must both satisfy the
  // independence contract they are audited against.
  graph::WeightedGraphBuilder b({5.0, 1.0, 4.0, 2.0, 3.0});
  for (std::size_t v = 0; v < 5; ++v) b.add_edge(v, (v + 1) % 5);
  const auto g = b.build();
  for (const auto& sol :
       {graph::gwmin(g), graph::gwmin2(g), graph::exact_mwis(g)}) {
    EXPECT_NO_THROW(graph::check_independent(g, sol.vertices));
  }
}

// --- placement replica bounds -----------------------------------------------

TEST(PlacementContracts, OutOfRangeReplicaTrips) {
  expect_contract_failure(
      [] { placement::PlacementMap(2, {{0, 5}}); },
      {"precondition violated", "out-of-range disk 5"});
}

TEST(PlacementContracts, DuplicateReplicaTrips) {
  expect_contract_failure([] { placement::PlacementMap(4, {{1, 1}}); },
                          {"duplicate locations"});
}

TEST(PlacementContracts, EmptyReplicaListTrips) {
  expect_contract_failure([] { placement::PlacementMap(4, {{}}); },
                          {"no location"});
}

}  // namespace
}  // namespace eas
