// Optimality cross-validation against brute force.
//
// Theorem 1 says the conflict-graph MWIS optimum equals the offline
// scheduling optimum; Theorem 2 says a batch round reduces to weighted set
// cover. Both are verified here by exhaustive enumeration of all rf^N
// assignments on small random instances — the strongest evidence this
// implementation matches the paper's formulation, beyond the single worked
// example.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/mwis_scheduler.hpp"
#include "core/offline_eval.hpp"
#include "graph/set_cover.hpp"
#include "placement/placement.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace eas::core {
namespace {

struct Instance {
  placement::PlacementMap placement;
  trace::Trace trace;
};

Instance random_instance(std::uint64_t seed, std::size_t num_requests,
                         DiskId num_disks, unsigned rf, double max_gap) {
  util::Rng rng(seed);
  const DataId num_data = static_cast<DataId>(num_requests);  // fresh data
  std::vector<std::vector<DiskId>> locs(num_data);
  for (DataId b = 0; b < num_data; ++b) {
    while (locs[b].size() < rf) {
      const auto k = static_cast<DiskId>(rng.next_below(num_disks));
      if (std::find(locs[b].begin(), locs[b].end(), k) == locs[b].end()) {
        locs[b].push_back(k);
      }
    }
  }
  std::vector<trace::TraceRecord> recs;
  double t = 0.0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    t += rng.uniform(0.1, max_gap);
    recs.push_back({t, static_cast<DataId>(i), 4096, true});
  }
  return Instance{placement::PlacementMap(num_disks, std::move(locs)),
                  trace::Trace(std::move(recs))};
}

/// Enumerates every valid assignment and returns the minimum Lemma-1 energy.
double brute_force_min_energy(const Instance& inst,
                              const disk::DiskPowerParams& power,
                              double horizon) {
  const std::size_t n = inst.trace.size();
  OfflineAssignment a;
  a.disk_of_request.assign(n, 0);
  std::vector<std::size_t> choice(n, 0);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    for (std::size_t i = 0; i < n; ++i) {
      a.disk_of_request[i] =
          inst.placement.locations(inst.trace[i].data)[choice[i]];
    }
    best = std::min(best, evaluate_offline(inst.trace, a,
                                           inst.placement.num_disks(), power,
                                           horizon)
                              .total_energy());
    // Odometer increment over the mixed-radix choice vector.
    std::size_t pos = 0;
    while (pos < n) {
      if (++choice[pos] <
          inst.placement.locations(inst.trace[pos].data).size()) {
        break;
      }
      choice[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

disk::DiskPowerParams small_power() {
  disk::DiskPowerParams p;
  p.idle_watts = 1.0;
  p.active_watts = 1.0;
  p.standby_watts = 0.0;
  p.spinup_watts = 2.0;
  p.spindown_watts = 1.0;
  p.spinup_seconds = 1.0;
  p.spindown_seconds = 1.0;  // E = 3 J, T_B = 3 s, window = 5 s
  return p;
}

class ExactMwisOptimalityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactMwisOptimalityTest, ExactSchedulerMatchesBruteForce) {
  // 7 requests x rf 2 on 4 disks: 128 assignments, exact MWIS stays small.
  const auto inst = random_instance(GetParam(), 7, 4, 2, 4.0);
  const auto power = small_power();
  // Fixed horizon so every assignment is scored over the same window.
  const double horizon = inst.trace.end_time() + power.breakeven_seconds() +
                         power.spindown_seconds;

  MwisOptions opts;
  opts.algorithm = MwisOptions::Algorithm::kExact;
  opts.graph.successor_horizon = 7;  // all pairs: the paper's formulation
  opts.exact_vertex_limit = 200;
  opts.refine_passes = 0;  // pure Theorem 1 pipeline
  MwisOfflineScheduler sched(opts);
  const auto assignment =
      sched.schedule(inst.trace, inst.placement, power);
  const double mwis_energy =
      evaluate_offline(inst.trace, assignment, inst.placement.num_disks(),
                       power, horizon)
          .total_energy();

  const double best = brute_force_min_energy(inst, power, horizon);
  EXPECT_NEAR(mwis_energy, best, 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactMwisOptimalityTest,
                         ::testing::Range<std::uint64_t>(1, 16));

class GreedyGapTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyGapTest, GwminPlusRefineIsNeverBelowBruteForceOptimum) {
  const auto inst = random_instance(GetParam() + 100, 8, 4, 2, 3.0);
  const auto power = small_power();
  const double horizon = inst.trace.end_time() + power.breakeven_seconds() +
                         power.spindown_seconds;

  MwisOptions opts;  // production defaults: GWMIN + refinement
  opts.graph.successor_horizon = 4;
  MwisOfflineScheduler sched(opts);
  const auto assignment = sched.schedule(inst.trace, inst.placement, power);
  const double energy =
      evaluate_offline(inst.trace, assignment, inst.placement.num_disks(),
                       power, horizon)
          .total_energy();
  const double best = brute_force_min_energy(inst, power, horizon);
  EXPECT_GE(energy, best - 1e-9);
  // Loose sanity bound: the heuristic stays within 2x of optimal on these
  // tiny instances (it is usually exact).
  EXPECT_LE(energy, 2.0 * best + 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyGapTest,
                         ::testing::Range<std::uint64_t>(1, 16));

class BatchSetCoverTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchSetCoverTest, Theorem2ExactCoverEqualsBruteForceBatchEnergy) {
  // All requests concurrent, all disks standby, 0 W standby power: per
  // Theorem 2 the minimum batch energy equals the minimum-weight set cover
  // with every candidate disk weighing one full wake cycle.
  util::Rng rng(GetParam());
  const DiskId num_disks = 5;
  const std::size_t n = 7;
  const auto power = small_power();

  std::vector<std::vector<DiskId>> locs(n);
  for (auto& l : locs) {
    const unsigned rf = 1 + static_cast<unsigned>(rng.next_below(3));
    while (l.size() < rf) {
      const auto k = static_cast<DiskId>(rng.next_below(num_disks));
      if (std::find(l.begin(), l.end(), k) == l.end()) l.push_back(k);
    }
  }
  placement::PlacementMap placement(num_disks, std::move(locs));
  std::vector<trace::TraceRecord> recs;
  for (std::size_t i = 0; i < n; ++i) {
    recs.push_back({1.0, static_cast<DataId>(i), 4096, true});
  }
  const trace::Trace trace(std::move(recs));
  const Instance inst{placement, trace};
  const double horizon = 1.0 + power.breakeven_seconds() +
                         power.spindown_seconds + power.spinup_seconds;

  graph::SetCoverInstance cover;
  cover.num_elements = n;
  for (DiskId k = 0; k < num_disks; ++k) {
    graph::SetCoverInstance::Set s;
    s.weight = power.max_request_energy();
    for (std::size_t e = 0; e < n; ++e) {
      if (placement.stores(trace[e].data, k)) s.elements.push_back(e);
    }
    if (!s.elements.empty()) cover.sets.push_back(std::move(s));
  }
  const auto exact = graph::exact_set_cover(cover);
  ASSERT_TRUE(exact.has_value());

  const double best = brute_force_min_energy(inst, power, horizon);
  EXPECT_NEAR(exact->total_weight, best, 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchSetCoverTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace eas::core
