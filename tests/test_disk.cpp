// Unit tests for the disk state machine, service model and energy meter.
#include <gtest/gtest.h>

#include <vector>

#include "disk/disk.hpp"
#include "sim/simulator.hpp"

namespace eas::disk {
namespace {

DiskPowerParams test_power() {
  DiskPowerParams p;
  p.idle_watts = 10.0;
  p.active_watts = 13.0;
  p.standby_watts = 1.0;
  p.spinup_watts = 20.0;
  p.spindown_watts = 10.0;
  p.spinup_seconds = 6.0;
  p.spindown_seconds = 4.0;
  return p;  // breakeven = (120 + 40) / 10 = 16 s
}

DiskPerfParams test_perf() {
  DiskPerfParams p;  // defaults: ~8.6 ms for a 512 KB block
  return p;
}

Request make_request(RequestId id, DataId data, sim::SimTime t) {
  Request r;
  r.id = id;
  r.data = data;
  r.arrival_time = t;
  r.dispatch_time = t;
  return r;
}

TEST(DiskPowerParams, BreakevenAndCeilingAreConsistent) {
  const auto p = test_power();
  EXPECT_DOUBLE_EQ(p.transition_energy(), 160.0);
  EXPECT_DOUBLE_EQ(p.breakeven_seconds(), 16.0);
  EXPECT_DOUBLE_EQ(p.max_request_energy(), 320.0);
  EXPECT_DOUBLE_EQ(p.saving_window_seconds(), 26.0);
}

TEST(DiskPowerParams, OverrideForcesBreakeven) {
  auto p = test_power();
  p.breakeven_override_seconds = 5.0;
  EXPECT_DOUBLE_EQ(p.breakeven_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(p.max_request_energy(), 160.0 + 50.0);
}

TEST(DiskPowerParams, ValidateRejectsNonsense) {
  auto p = test_power();
  p.standby_watts = p.idle_watts;  // standby must be cheaper than idle
  EXPECT_THROW(p.validate(), InvariantError);
}

TEST(DiskPerfParams, ServiceTimeScalesWithTransferSize) {
  const auto p = test_perf();
  const double small = p.service_seconds(4 * 1024);
  const double large = p.service_seconds(4 * 1024 * 1024);
  EXPECT_GT(large, small);
  // Mechanical overheads dominate small transfers: ~5.7 ms with defaults.
  EXPECT_NEAR(small, 0.0002 + 0.0035 + 0.002, 1e-3);
  // I/O stays in the millisecond range (the paper's separation of scales).
  EXPECT_LT(large, 0.1);
}

TEST(Disk, StartsInConfiguredState) {
  sim::Simulator sim;
  Disk standby(0, sim, test_power(), test_perf(), DiskState::Standby);
  Disk idle(1, sim, test_power(), test_perf(), DiskState::Idle);
  EXPECT_EQ(standby.state(), DiskState::Standby);
  EXPECT_EQ(idle.state(), DiskState::Idle);
}

TEST(Disk, RefusesToStartMidTransition) {
  sim::Simulator sim;
  EXPECT_THROW(
      Disk(0, sim, test_power(), test_perf(), DiskState::SpinningUp),
      InvariantError);
}

TEST(Disk, IdleDiskServesImmediately) {
  sim::Simulator sim;
  Disk d(0, sim, test_power(), test_perf(), DiskState::Idle);
  std::vector<Completion> done;
  d.set_completion_callback([&](const Completion& c) { done.push_back(c); });

  d.submit(make_request(1, 0, 0.0));
  EXPECT_EQ(d.state(), DiskState::Active);
  sim.run();

  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].waited_for_spinup);
  EXPECT_NEAR(done[0].response_seconds(),
              test_perf().service_seconds(done[0].request.size_bytes), 1e-12);
  EXPECT_EQ(d.state(), DiskState::Idle);
  EXPECT_EQ(d.stats().requests_served, 1u);
}

TEST(Disk, StandbyDiskPaysSpinUpDelay) {
  sim::Simulator sim;
  Disk d(0, sim, test_power(), test_perf(), DiskState::Standby);
  std::vector<Completion> done;
  d.set_completion_callback([&](const Completion& c) { done.push_back(c); });

  d.submit(make_request(1, 0, 0.0));
  EXPECT_EQ(d.state(), DiskState::SpinningUp);
  sim.run();

  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].waited_for_spinup);
  EXPECT_GE(done[0].response_seconds(), test_power().spinup_seconds);
  EXPECT_EQ(d.stats().spin_ups, 1u);
}

TEST(Disk, FcfsOrderWithinTheQueue) {
  sim::Simulator sim;
  Disk d(0, sim, test_power(), test_perf(), DiskState::Idle);
  std::vector<RequestId> order;
  d.set_completion_callback(
      [&](const Completion& c) { order.push_back(c.request.id); });

  for (RequestId id = 1; id <= 5; ++id) d.submit(make_request(id, 0, 0.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<RequestId>{1, 2, 3, 4, 5}));
}

TEST(Disk, QueuedRequestsCountsInService) {
  sim::Simulator sim;
  Disk d(0, sim, test_power(), test_perf(), DiskState::Idle);
  d.submit(make_request(1, 0, 0.0));
  d.submit(make_request(2, 0, 0.0));
  EXPECT_EQ(d.queued_requests(), 2u);  // one in service + one waiting
  sim.run();
  EXPECT_EQ(d.queued_requests(), 0u);
}

TEST(Disk, SpinDownOnlyLegalFromIdle) {
  sim::Simulator sim;
  Disk d(0, sim, test_power(), test_perf(), DiskState::Standby);
  EXPECT_THROW(d.spin_down(), InvariantError);
}

TEST(Disk, SpinDownThenRequestBouncesBackUp) {
  sim::Simulator sim;
  Disk d(0, sim, test_power(), test_perf(), DiskState::Idle);
  std::vector<Completion> done;
  d.set_completion_callback([&](const Completion& c) { done.push_back(c); });

  d.spin_down();
  EXPECT_EQ(d.state(), DiskState::SpinningDown);
  // Request lands mid-spin-down: the disk must finish spinning down, then
  // spin up, then serve.
  d.submit(make_request(1, 0, 0.0));
  sim.run();

  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].waited_for_spinup);
  EXPECT_GE(done[0].completion_time,
            test_power().spindown_seconds + test_power().spinup_seconds);
  EXPECT_EQ(d.stats().spin_downs, 1u);
  EXPECT_EQ(d.stats().spin_ups, 1u);
}

TEST(Disk, SpinUpDuringSpinDownIsDeferredNotLost) {
  sim::Simulator sim;
  Disk d(0, sim, test_power(), test_perf(), DiskState::Idle);
  d.spin_down();
  d.spin_up();  // oracle-style wake while still spinning down
  sim.run();
  EXPECT_EQ(d.state(), DiskState::Idle);
  EXPECT_EQ(d.stats().spin_ups, 1u);
}

TEST(Disk, EnergyAccountingIntegratesStateResidency) {
  sim::Simulator sim;
  const auto p = test_power();
  Disk d(0, sim, p, test_perf(), DiskState::Idle);

  // Idle 0..10, spin down 10..14, standby 14..20.
  sim.schedule_at(10.0, [&] { d.spin_down(); });
  sim.run();
  d.finalize(20.0);

  const auto& st = d.stats();
  EXPECT_DOUBLE_EQ(st.seconds(DiskState::Idle), 10.0);
  EXPECT_DOUBLE_EQ(st.seconds(DiskState::SpinningDown), 4.0);
  EXPECT_DOUBLE_EQ(st.seconds(DiskState::Standby), 6.0);
  EXPECT_DOUBLE_EQ(st.joules(DiskState::Idle), 100.0);
  EXPECT_DOUBLE_EQ(st.joules(DiskState::SpinningDown), 40.0);
  EXPECT_DOUBLE_EQ(st.joules(DiskState::Standby), 6.0);
  EXPECT_DOUBLE_EQ(st.total_seconds(), 20.0);
  EXPECT_DOUBLE_EQ(st.total_joules(), 146.0);
}

TEST(Disk, StateTimesSumToFinalizeHorizon) {
  sim::Simulator sim;
  Disk d(0, sim, test_power(), test_perf(), DiskState::Standby);
  for (int i = 0; i < 3; ++i) {
    sim.schedule_at(30.0 * i, [&d, i] {
      Request r = make_request(static_cast<RequestId>(i), 0, 30.0 * i);
      d.submit(r);
    });
  }
  sim.run();
  const double horizon = sim.now() + 5.0;
  d.finalize(horizon);
  EXPECT_NEAR(d.stats().total_seconds(), horizon, 1e-9);
}

TEST(Disk, LastRequestTimeTracksSubmissions) {
  sim::Simulator sim;
  Disk d(0, sim, test_power(), test_perf(), DiskState::Idle);
  EXPECT_FALSE(d.has_served_any());
  sim.schedule_at(4.0, [&] { d.submit(make_request(1, 0, 4.0)); });
  sim.run();
  EXPECT_TRUE(d.has_served_any());
  EXPECT_DOUBLE_EQ(d.last_request_time(), 4.0);
}

TEST(Disk, FinalizeBeforeAccountedTimeThrows) {
  sim::Simulator sim;
  Disk d(0, sim, test_power(), test_perf(), DiskState::Idle);
  sim.schedule_at(10.0, [] {});
  sim.run();
  d.finalize(10.0);
  EXPECT_THROW(d.finalize(5.0), InvariantError);
}

TEST(Disk, ZeroTransitionTimesDegenerateCleanly) {
  // The paper's example power model has instantaneous transitions; the state
  // machine must not wedge on zero-delay events.
  sim::Simulator sim;
  auto p = disk::example_power_params();
  Disk d(0, sim, p, test_perf(), DiskState::Standby);
  std::vector<Completion> done;
  d.set_completion_callback([&](const Completion& c) { done.push_back(c); });
  d.submit(make_request(1, 0, 0.0));
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(d.state(), DiskState::Idle);
}

TEST(DiskStateNames, AreHumanReadable) {
  EXPECT_STREQ(to_string(DiskState::Standby), "standby");
  EXPECT_STREQ(to_string(DiskState::SpinningUp), "spin-up");
  EXPECT_STREQ(to_string(DiskState::Idle), "idle");
  EXPECT_STREQ(to_string(DiskState::Active), "active");
  EXPECT_STREQ(to_string(DiskState::SpinningDown), "spin-down");
}

}  // namespace
}  // namespace eas::disk
