// Golden tests pinning the emitter output schemas. The CSV and JSON forms
// of ResultTable, RunResult::to_json() and emit_cells() are consumed by
// external plotting pipelines — any diff against these literals is a
// breaking schema change and must be made deliberately.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "runner/emit.hpp"
#include "runner/sinks.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace eas {
namespace {

runner::ResultTable sample_table() {
  runner::ResultTable t("Fig X: demo", {"rf", "name", "energy", "ops"});
  t.row().cell(1).cell("static").cell(0.5, 3).cell(
      static_cast<unsigned long long>(42));
  t.row().cell(2).cell("a,b\"c").cell(0.0625, 3).cell(
      static_cast<unsigned long long>(7));
  return t;
}

std::string emitted(const runner::ResultTable& t, runner::EmitFormat f) {
  std::ostringstream os;
  t.emit(os, f);
  return os.str();
}

TEST(EmitterGolden, AlignedTable) {
  EXPECT_EQ(emitted(sample_table(), runner::EmitFormat::kTable),
            "=== Fig X: demo ===\n"
            "rf  name    energy  ops\n"
            "-----------------------\n"
            "1   static  0.500   42 \n"
            "2   a,b\"c   0.062   7  \n");
}

TEST(EmitterGolden, Csv) {
  // Full-precision doubles (shortest round-trip), RFC 4180 quoting of the
  // embedded comma and quote.
  EXPECT_EQ(emitted(sample_table(), runner::EmitFormat::kCsv),
            "# Fig X: demo\n"
            "rf,name,energy,ops\n"
            "1,static,0.5,42\n"
            "2,\"a,b\"\"c\",0.0625,7\n");
}

TEST(EmitterGolden, Json) {
  EXPECT_EQ(emitted(sample_table(), runner::EmitFormat::kJson),
            "{\"title\":\"Fig X: demo\","
            "\"columns\":[\"rf\",\"name\",\"energy\",\"ops\"],"
            "\"rows\":["
            "{\"rf\":1,\"name\":\"static\",\"energy\":0.5,\"ops\":42},"
            "{\"rf\":2,\"name\":\"a,b\\\"c\",\"energy\":0.0625,\"ops\":7}"
            "]}\n");
}

TEST(EmitterGolden, RowWidthIsEnforced) {
  runner::ResultTable t("bad", {"a", "b"});
  t.row().cell(1);
  std::ostringstream os;
  EXPECT_THROW(t.emit(os, runner::EmitFormat::kCsv), InvariantError);
  t.cell(2);
  EXPECT_THROW(t.cell(3), InvariantError);  // too many cells
}

TEST(EmitterGolden, FormatFromEnv) {
  ::setenv("EAS_EMIT", "csv", 1);
  EXPECT_EQ(runner::emit_format_from_env(), runner::EmitFormat::kCsv);
  ::setenv("EAS_EMIT", "json", 1);
  EXPECT_EQ(runner::emit_format_from_env(), runner::EmitFormat::kJson);
  ::setenv("EAS_EMIT", "typo", 1);
  EXPECT_EQ(runner::emit_format_from_env(), runner::EmitFormat::kTable);
  ::unsetenv("EAS_EMIT");
  EXPECT_EQ(runner::emit_format_from_env(runner::EmitFormat::kJson),
            runner::EmitFormat::kJson);
}

TEST(EmitterGolden, RunResultToJsonSchema) {
  storage::RunResult r;
  r.scheduler_name = "static";
  r.policy_name = "threshold";
  r.horizon = 12.5;
  r.total_requests = 3;
  r.requests_waited_spinup = 1;
  r.disk_stats.resize(2);
  r.disk_stats[0].seconds_in_state[static_cast<int>(disk::DiskState::Idle)] =
      10.0;
  r.disk_stats[0].joules_in_state[static_cast<int>(disk::DiskState::Idle)] =
      95.0;
  r.disk_stats[0].spin_ups = 2;
  r.disk_stats[1]
      .seconds_in_state[static_cast<int>(disk::DiskState::Standby)] = 12.5;
  r.response_times.add(0.25);
  r.response_times.add(0.75);
  r.response_times.add(0.5);

  EXPECT_EQ(r.to_json(),
            "{\"scheduler\":\"static\",\"policy\":\"threshold\","
            "\"horizon_seconds\":12.5,\"num_disks\":2,\"total_requests\":3,"
            "\"requests_waited_spinup\":1,\"total_energy_joules\":95,"
            "\"spin_ups\":2,\"spin_downs\":0,"
            "\"response_seconds\":{\"count\":3,\"mean\":0.5,\"p50\":0.5,"
            "\"p90\":0.7000000000000001,\"p99\":0.745,\"max\":0.75},"
            "\"fleet_state_seconds\":{\"standby\":12.5,\"spin-up\":0,"
            "\"idle\":10,\"active\":0,\"spin-down\":0}}");

  const auto with_disks = r.to_json(/*include_disks=*/true);
  EXPECT_NE(with_disks.find("\"disks\":[{\"requests_served\":0,"
                            "\"spin_ups\":2,\"spin_downs\":0,"
                            "\"energy_joules\":95,"),
            std::string::npos);
}

TEST(EmitterGolden, EmitCellsJsonSchema) {
  std::vector<runner::CellResult> cells(2);
  cells[0].index = 0;
  cells[0].spec.tag = "1";
  cells[0].spec.scheduler = "static";
  cells[0].status = runner::CellStatus::kOk;
  cells[0].result.scheduler_name = "static";
  cells[0].result.policy_name = "threshold";
  cells[0].wall_seconds = 0.25;
  cells[0].peak_rss_kib = 1024;
  cells[1].index = 1;
  cells[1].spec.tag = "2";
  cells[1].spec.scheduler = "wsc";
  cells[1].status = runner::CellStatus::kFailed;
  cells[1].error = "boom";

  std::ostringstream os;
  runner::emit_cells(os, cells, runner::EmitFormat::kJson);
  const std::string out = os.str();
  // Spot-check the per-cell envelope; the embedded result object is covered
  // by RunResultToJsonSchema above.
  EXPECT_NE(out.find("[{\"index\":0,\"tag\":\"1\",\"scheduler\":\"static\","),
            std::string::npos);
  EXPECT_NE(out.find("\"status\":\"ok\",\"wall_seconds\":0.25,"
                     "\"peak_rss_kib\":1024,\"result\":{\"scheduler\":"),
            std::string::npos);
  EXPECT_NE(out.find("\"status\":\"failed\","), std::string::npos);
  EXPECT_NE(out.find("\"error\":\"boom\"}"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

// --- sink layer -------------------------------------------------------------
//
// The OutputSink stack must be a pure re-plumbing of the historical
// emitters: for every format, the sink's bytes are the free functions'
// bytes. Any drift here is the same breaking schema change the goldens
// above guard against.

std::string sink_table_output(const runner::ResultTable& t,
                              runner::EmitFormat f) {
  runner::SinkConfig cfg;
  cfg.format = f;
  std::ostringstream os;
  runner::make_sink(cfg, os)->table(t);
  return os.str();
}

TEST(SinkGolden, FormatSinksMatchTheFreeEmitters) {
  const auto t = sample_table();
  for (const auto f : {runner::EmitFormat::kTable, runner::EmitFormat::kCsv,
                       runner::EmitFormat::kJson}) {
    EXPECT_EQ(sink_table_output(t, f), emitted(t, f))
        << "format " << runner::to_string(f);
  }
}

TEST(SinkGolden, CellSinksMatchEmitCells) {
  std::vector<runner::CellResult> cells(1);
  cells[0].spec.tag = "1";
  cells[0].spec.scheduler = "static";
  cells[0].status = runner::CellStatus::kOk;
  cells[0].result.scheduler_name = "static";
  for (const auto f : {runner::EmitFormat::kTable, runner::EmitFormat::kCsv,
                       runner::EmitFormat::kJson}) {
    std::ostringstream expected;
    runner::emit_cells(expected, cells, f);
    runner::SinkConfig cfg;
    cfg.format = f;
    std::ostringstream got;
    runner::make_sink(cfg, got)->cells(cells);
    EXPECT_EQ(got.str(), expected.str()) << "format " << runner::to_string(f);
  }
}

TEST(SinkGolden, EnvCompatAliasSelectsTheSameSink) {
  // EAS_EMIT keeps steering the primary format through SinkConfig::from_env,
  // exactly as it steered emit_format_from_env.
  ::setenv("EAS_EMIT", "csv", 1);
  EXPECT_EQ(runner::SinkConfig::from_env().format, runner::EmitFormat::kCsv);
  EXPECT_STREQ(runner::make_sink(runner::SinkConfig::from_env(), std::cout)
                   ->name(),
               "csv");
  ::setenv("EAS_EMIT", "nonsense", 1);
  runner::SinkConfig fallback;
  fallback.format = runner::EmitFormat::kJson;
  EXPECT_EQ(runner::SinkConfig::from_env(fallback).format,
            runner::EmitFormat::kJson);
  ::unsetenv("EAS_EMIT");
}

TEST(SinkGolden, ObservabilitySinksComposeAndValidate) {
  runner::SinkConfig cfg;
  cfg.with_metrics = true;
  std::ostringstream os;
  const auto sink = runner::make_sink(cfg, os);
  EXPECT_STREQ(sink->name(), "multi");
  // An empty sweep yields an empty merged registry, emitted as one line.
  sink->cells({});
  EXPECT_NE(os.str().find("{}\n"), std::string::npos);
  // A trace path without the trace sink is a config error.
  runner::SinkConfig bad;
  bad.trace_path = "out.json";
  EXPECT_THROW(bad.validate(), InvariantError);
}

TEST(JsonWriterGolden, QuotingAndNumbers) {
  EXPECT_EQ(util::json_quote("a\"b\\c\n\t\x01z"),
            "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
  EXPECT_EQ(util::json_number(0.1), "0.1");
  EXPECT_EQ(util::json_number(-3.0), "-3");
  EXPECT_EQ(util::json_number(1e300), "1e+300");
  // Non-finite values have no JSON literal; they degrade to null.
  EXPECT_EQ(util::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(util::json_number(std::nan("")), "null");

  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.field("i", -5);
  w.field("u", static_cast<std::size_t>(18446744073709551615ull));
  w.field("b", true);
  w.key("n");
  w.null();
  w.key("raw");
  w.raw("[1,2]");
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\"i\":-5,\"u\":18446744073709551615,\"b\":true,\"n\":null,"
            "\"raw\":[1,2]}");
}

}  // namespace
}  // namespace eas
