// Tests for the placement map and the paper's §4.2 placement builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "placement/placement.hpp"
#include "util/check.hpp"

namespace eas::placement {
namespace {

TEST(PlacementMap, AccessorsReflectConstruction) {
  PlacementMap map(4, {{0, 1}, {2}, {3, 0, 1}});
  EXPECT_EQ(map.num_disks(), 4u);
  EXPECT_EQ(map.num_data(), 3u);
  EXPECT_EQ(map.original(0), 0u);
  EXPECT_EQ(map.original(2), 3u);
  EXPECT_EQ(map.replication_factor(0), 2u);
  EXPECT_EQ(map.replication_factor(1), 1u);
  EXPECT_TRUE(map.stores(0, 1));
  EXPECT_FALSE(map.stores(0, 2));
  EXPECT_TRUE(map.stores(2, 3));
}

TEST(PlacementMap, RejectsEmptyLocations) {
  EXPECT_THROW(PlacementMap(2, {{0}, {}}), InvariantError);
}

TEST(PlacementMap, RejectsOutOfRangeDisk) {
  EXPECT_THROW(PlacementMap(2, {{0, 2}}), InvariantError);
}

TEST(PlacementMap, RejectsDuplicateReplicas) {
  EXPECT_THROW(PlacementMap(3, {{1, 1}}), InvariantError);
}

TEST(PlacementMap, RejectsUnknownDataId) {
  PlacementMap map(2, {{0}});
  EXPECT_THROW(map.locations(5), InvariantError);
}

TEST(PlacementMap, PerDiskDataCountsSumToTotalCopies) {
  PlacementMap map(3, {{0, 1}, {1, 2}, {2}});
  const auto counts = map.per_disk_data_counts();
  EXPECT_EQ(counts, (std::vector<std::size_t>{1, 2, 2}));
}

class ZipfPlacementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ZipfPlacementTest, EveryDataHasExactlyRfDistinctLocations) {
  ZipfPlacementConfig cfg;
  cfg.num_disks = 20;
  cfg.num_data = 500;
  cfg.replication_factor = GetParam();
  const auto map = make_zipf_placement(cfg);
  EXPECT_EQ(map.num_data(), 500u);
  for (DataId b = 0; b < map.num_data(); ++b) {
    const auto& locs = map.locations(b);
    EXPECT_EQ(locs.size(), GetParam());
    const std::set<DiskId> unique(locs.begin(), locs.end());
    EXPECT_EQ(unique.size(), locs.size()) << "duplicate replica for " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, ZipfPlacementTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ZipfPlacement, DeterministicInSeed) {
  ZipfPlacementConfig cfg;
  cfg.seed = 77;
  cfg.num_data = 200;
  const auto a = make_zipf_placement(cfg);
  const auto b = make_zipf_placement(cfg);
  for (DataId d = 0; d < a.num_data(); ++d) {
    EXPECT_EQ(a.locations(d), b.locations(d));
  }
  cfg.seed = 78;
  const auto c = make_zipf_placement(cfg);
  bool any_diff = false;
  for (DataId d = 0; d < a.num_data(); ++d) {
    if (a.locations(d) != c.locations(d)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ZipfPlacement, OriginalsAreSkewedAtZ1) {
  ZipfPlacementConfig cfg;
  cfg.num_disks = 50;
  cfg.num_data = 20000;
  cfg.replication_factor = 1;
  cfg.zipf_z = 1.0;
  const auto map = make_zipf_placement(cfg);
  auto counts = map.per_disk_data_counts();
  std::sort(counts.begin(), counts.end(), std::greater<>());
  // With z=1 the hottest disk holds ~1/H(50) ~ 22% of originals; the top 5
  // disks must clearly dominate a uniform spread (5/50 = 10%).
  std::size_t top5 = 0;
  for (int i = 0; i < 5; ++i) top5 += counts[i];
  EXPECT_GT(static_cast<double>(top5) / cfg.num_data, 0.4);
}

TEST(ZipfPlacement, OriginalsAreUniformAtZ0) {
  ZipfPlacementConfig cfg;
  cfg.num_disks = 50;
  cfg.num_data = 20000;
  cfg.replication_factor = 1;
  cfg.zipf_z = 0.0;
  const auto map = make_zipf_placement(cfg);
  const auto counts = map.per_disk_data_counts();
  const double expected = 20000.0 / 50.0;
  for (std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 6.0 * std::sqrt(expected));
  }
}

TEST(ZipfPlacement, ReplicasAreUniformEvenWhenOriginalsAreSkewed) {
  ZipfPlacementConfig cfg;
  cfg.num_disks = 40;
  cfg.num_data = 20000;
  cfg.replication_factor = 2;
  cfg.zipf_z = 1.0;
  const auto map = make_zipf_placement(cfg);
  // Count only the replica (non-original) copies.
  std::vector<std::size_t> replica_counts(cfg.num_disks, 0);
  for (DataId b = 0; b < map.num_data(); ++b) {
    const auto& locs = map.locations(b);
    for (std::size_t i = 1; i < locs.size(); ++i) ++replica_counts[locs[i]];
  }
  const double expected = 20000.0 / 40.0;
  for (std::size_t c : replica_counts) {
    // Allow slack: uniform-distinct rejection vs the original skews mildly.
    EXPECT_NEAR(static_cast<double>(c), expected, 0.35 * expected);
  }
}

TEST(ZipfPlacement, RejectsMoreCopiesThanDisks) {
  ZipfPlacementConfig cfg;
  cfg.num_disks = 3;
  cfg.replication_factor = 4;
  EXPECT_THROW(make_zipf_placement(cfg), InvariantError);
}

}  // namespace
}  // namespace eas::placement
