// Tests for the Zipf sampler that drives data placement and popularity.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace eas::util {
namespace {

TEST(ZipfSampler, PmfSumsToOne) {
  for (double z : {0.0, 0.5, 1.0, 2.0}) {
    ZipfSampler zipf(100, z);
    double total = 0.0;
    for (std::size_t r = 0; r < 100; ++r) total += zipf.pmf(r);
    EXPECT_NEAR(total, 1.0, 1e-12) << "z=" << z;
  }
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  ZipfSampler zipf(50, 0.0);
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_NEAR(zipf.pmf(r), 1.0 / 50.0, 1e-12);
  }
}

TEST(ZipfSampler, ClassicZipfRatioBetweenRanks) {
  // With z = 1, p(rank 1) / p(rank 10) = 10.
  ZipfSampler zipf(1000, 1.0);
  EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(9), 10.0, 1e-9);
}

TEST(ZipfSampler, PmfIsMonotoneNonIncreasing) {
  ZipfSampler zipf(200, 0.8);
  for (std::size_t r = 1; r < 200; ++r) {
    EXPECT_LE(zipf.pmf(r), zipf.pmf(r - 1) + 1e-15);
  }
}

TEST(ZipfSampler, SampleFrequenciesMatchPmf) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(7);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < 20; ++r) {
    const double expected = zipf.pmf(r) * n;
    EXPECT_NEAR(counts[r], expected, 5.0 * std::sqrt(expected) + 5.0)
        << "rank " << r;
  }
}

TEST(ZipfSampler, SingleRankAlwaysSamplesZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.pmf(0), 1.0);
}

TEST(ZipfSampler, RejectsDegenerateArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), InvariantError);
  EXPECT_THROW(ZipfSampler(10, -0.1), InvariantError);
}

TEST(ZipfSampler, HighSkewConcentratesOnHeadRanks) {
  ZipfSampler zipf(10000, 1.2);
  Rng rng(3);
  int in_top_100 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf.sample(rng) < 100) ++in_top_100;
  }
  // 1% of ranks should draw well over a third of the mass at z=1.2.
  EXPECT_GT(in_top_100 / static_cast<double>(n), 0.35);
}

}  // namespace
}  // namespace eas::util
