// Cache & destage tier tests: golden LRU/ARC replacement sequences, the
// write-back buffer lifecycle, and the power-aware destage path end to end
// (piggyback on an already-spinning disk, watermark/deadline force-destage,
// dirty-data redirect on disk death, and the cache-off bit-identity
// contract).
//
// This binary also replaces global operator new with a counting shim (same
// pattern as test_sim_alloc) to pin the zero-allocation steady-state lookup
// promise literally.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "cache/block_cache.hpp"
#include "cache/cache.hpp"
#include "cache/write_back.hpp"
#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "paper_example.hpp"
#include "power/fixed_threshold.hpp"
#include "power/policy.hpp"
#include "sim/simulator.hpp"
#include "storage/storage_system.hpp"
#include "util/check.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eas::cache {
namespace {

// ----------------------------------------------------------------- config

TEST(CacheConfig, ValidateRejectsNonsense) {
  CacheConfig c;
  c.enabled = true;
  EXPECT_NO_THROW(c.validate());  // defaults are sane

  c.high_watermark = 1.5;
  EXPECT_THROW(c.validate(), InvariantError);
  c = {};
  c.enabled = true;
  c.low_watermark = 0.9;  // above high (0.75)
  EXPECT_THROW(c.validate(), InvariantError);
  c = {};
  c.enabled = true;
  c.max_destage_batch = 0;
  EXPECT_THROW(c.validate(), InvariantError);
  c = {};
  c.enabled = true;
  c.dram_latency_seconds = -1.0;
  EXPECT_THROW(c.validate(), InvariantError);
  c = {};
  c.enabled = true;
  c.destage_deadline_seconds = 0.0;
  EXPECT_THROW(c.validate(), InvariantError);
  c = {};
  c.enabled = true;
  c.block_bytes = 0;
  EXPECT_THROW(c.validate(), InvariantError);

  // Disabled configs are never checked, however broken.
  c = {};
  c.high_watermark = -3.0;
  c.max_destage_batch = 0;
  EXPECT_NO_THROW(c.validate());
}

TEST(CacheConfig, MemoryEnergyChargesBothHalvesOverTheHorizon) {
  CacheConfig c;
  c.capacity_blocks = 1024;        // 1024 * 1 MiB = 1 GiB
  c.dirty_capacity_blocks = 1024;  // another GiB
  c.block_bytes = 1024 * 1024;
  c.memory_watts_per_gib = 0.5;
  EXPECT_EQ(c.footprint_bytes(), 2ull * 1024 * 1024 * 1024);
  // 2 GiB * 0.5 W/GiB * 100 s = 100 J.
  EXPECT_DOUBLE_EQ(c.memory_energy_joules(100.0), 100.0);
}

// -------------------------------------------------------------------- LRU

TEST(LruCache, GoldenEvictionSequence) {
  LruBlockCache c(2);
  EXPECT_EQ(c.insert(1), kInvalidData);
  EXPECT_EQ(c.insert(2), kInvalidData);
  EXPECT_EQ(c.size(), 2u);
  // 1 is LRU; inserting 3 evicts it.
  EXPECT_EQ(c.insert(3), 1u);
  EXPECT_FALSE(c.contains(1));
  // Promote 2; now 3 is LRU and the next insert evicts it.
  EXPECT_TRUE(c.lookup(2));
  EXPECT_EQ(c.insert(4), 3u);
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(4));
  // Re-inserting a resident block promotes without eviction.
  EXPECT_EQ(c.insert(2), kInvalidData);
  EXPECT_EQ(c.insert(5), 4u);  // 4 became LRU after 2's promotion
  // erase() frees a slot.
  EXPECT_TRUE(c.erase(2));
  EXPECT_FALSE(c.erase(2));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.insert(6), kInvalidData);
}

TEST(LruCache, ZeroCapacityDegeneratesCleanly) {
  LruBlockCache c(0);
  EXPECT_EQ(c.insert(1), kInvalidData);
  EXPECT_FALSE(c.lookup(1));
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.size(), 0u);
}

// -------------------------------------------------------------------- ARC

TEST(ArcCache, GoldenSequenceWithGhostAdaptation) {
  ArcBlockCache c(2);
  // Cold fills: 1 promoted to T2 via a hit, 2 lands in T1.
  EXPECT_EQ(c.insert(1), kInvalidData);  // T1={1}
  EXPECT_TRUE(c.lookup(1));              // T1={}, T2={1}
  EXPECT_EQ(c.insert(2), kInvalidData);  // T1={2}, T2={1}
  EXPECT_EQ(c.t1_size(), 1u);
  EXPECT_EQ(c.t2_size(), 1u);
  // Cold miss on a full cache: REPLACE evicts T1's LRU (p=0) into ghost B1.
  EXPECT_EQ(c.insert(3), 2u);  // T1={3}, T2={1}, B1={2}
  EXPECT_EQ(c.b1_size(), 1u);
  EXPECT_FALSE(c.contains(2));
  // Ghost hit in B1 (Case II): p grows to 1, T2's LRU (1) goes to B2, and 2
  // returns as a frequency block.
  EXPECT_EQ(c.insert(2), 1u);  // T1={3}, T2={2}, B1={}, B2={1}
  EXPECT_EQ(c.target_t1(), 1u);
  EXPECT_EQ(c.t1_size(), 1u);
  EXPECT_EQ(c.t2_size(), 1u);
  EXPECT_EQ(c.b1_size(), 0u);
  EXPECT_EQ(c.b2_size(), 1u);
  // Ghost hit in B2 (Case III): p shrinks back to 0, T1's LRU (3) goes to
  // B1, and 1 returns to T2.
  EXPECT_EQ(c.insert(1), 3u);  // T1={}, T2={1,2}, B1={3}, B2={}
  EXPECT_EQ(c.target_t1(), 0u);
  EXPECT_EQ(c.t1_size(), 0u);
  EXPECT_EQ(c.t2_size(), 2u);
  EXPECT_EQ(c.b1_size(), 1u);
  EXPECT_EQ(c.b2_size(), 0u);
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_FALSE(c.contains(3));   // ghost, not resident
  EXPECT_FALSE(c.lookup(3));     // ghosts never serve a hit
}

TEST(ArcCache, ScanResistanceBeatsLru) {
  // Warm a 4-block working set into T2, then stream 16 cold blocks through.
  // ARC sacrifices the one-shot scan blocks against each other; LRU loses
  // the whole working set.
  ArcBlockCache arc(4);
  LruBlockCache lru(4);
  for (DataId b = 0; b < 4; ++b) {
    arc.insert(b);
    arc.lookup(b);  // promote to T2 (seen twice)
    lru.insert(b);
    lru.lookup(b);
  }
  for (DataId b = 100; b < 116; ++b) {
    arc.insert(b);
    lru.insert(b);
  }
  int arc_kept = 0;
  int lru_kept = 0;
  for (DataId b = 0; b < 4; ++b) {
    arc_kept += arc.contains(b) ? 1 : 0;
    lru_kept += lru.contains(b) ? 1 : 0;
  }
  EXPECT_GE(arc_kept, 3);
  EXPECT_EQ(lru_kept, 0);
}

TEST(ArcCache, EraseDropsResidentsAndGhosts) {
  ArcBlockCache c(2);
  c.insert(1);
  c.insert(2);
  c.insert(3);  // 1 discarded or ghosted depending on path; 3 resident
  EXPECT_TRUE(c.erase(3));          // resident -> true
  EXPECT_FALSE(c.contains(3));
  EXPECT_FALSE(c.erase(3));         // already gone
  // Build a ghost and erase it: erase reports false (not resident) but the
  // directory entry goes away (re-insert is a cold miss, no adaptation).
  c.insert(4);
  c.lookup(2);
  c.insert(5);  // evicts something into a ghost list
  const std::size_t ghosts = c.b1_size() + c.b2_size();
  ASSERT_GE(ghosts, 1u);
}

TEST(ArcCache, GhostHitsAfterEraseDrainsResidentsDoNotEvict) {
  // Regression: erase() (write-buffer invalidation, lost replicas) can empty
  // T1 and T2 while B1/B2 still hold ghosts. A later ghost hit (Case II/III)
  // or a cold miss with |T1|+|B1| == c must then skip REPLACE instead of
  // popping a victim from an empty resident list.
  ArcBlockCache c(2);
  c.insert(1);
  c.lookup(1);                  // T2={1}
  c.insert(2);                  // T1={2}, T2={1}
  EXPECT_EQ(c.insert(3), 2u);   // T1={3}, T2={1}, B1={2}
  EXPECT_TRUE(c.erase(3));
  EXPECT_TRUE(c.erase(1));      // residents drained; ghost 2 survives in B1
  EXPECT_EQ(c.t1_size() + c.t2_size(), 0u);
  EXPECT_EQ(c.b1_size(), 1u);
  // Case II ghost hit with spare room: promote, evict nothing.
  EXPECT_EQ(c.insert(2), kInvalidData);
  EXPECT_TRUE(c.lookup(2));
  // Rebuild a B2 ghost the same way, then take the Case III path drained.
  c.insert(4);                  // T1={4}, T2={2}
  EXPECT_EQ(c.insert(5), 2u);   // T1={5,4}, T2={}, B2={2}
  EXPECT_TRUE(c.erase(5));
  EXPECT_TRUE(c.erase(4));      // residents drained; ghost 2 survives in B2
  EXPECT_EQ(c.b2_size(), 1u);
  EXPECT_EQ(c.insert(2), kInvalidData);  // Case III: no eviction
  EXPECT_TRUE(c.contains(2));
  // Cold miss with |T1|+|B1| == c but residents below capacity: the B1
  // ghost is dropped for the newcomer's directory slot, nothing is evicted.
  c.insert(6);                  // T1={6}, T2={2}
  EXPECT_EQ(c.insert(7), 6u);   // T1={7}, T2={2}, B1={6}
  EXPECT_TRUE(c.erase(7));
  EXPECT_TRUE(c.erase(2));      // residents drained; ghost 6 survives in B1
  EXPECT_EQ(c.insert(8), kInvalidData);  // T1={8}
  EXPECT_EQ(c.insert(9), kInvalidData);  // |T1|+|B1| == c path, no victim
  EXPECT_TRUE(c.contains(8));
  EXPECT_TRUE(c.contains(9));
  EXPECT_EQ(c.b1_size(), 0u);   // ghost 6 gave up its slot
}

TEST(BlockCacheFactory, MakesBothPolicies) {
  auto lru = BlockCache::make(CachePolicy::kLru, 8);
  auto arc = BlockCache::make(CachePolicy::kArc, 8);
  EXPECT_STREQ(lru->name(), "lru");
  EXPECT_STREQ(arc->name(), "arc");
  EXPECT_EQ(lru->capacity(), 8u);
  EXPECT_EQ(arc->capacity(), 8u);
}

// ----------------------------------------------------- zero-alloc lookups

/// Allocations observed while running `body`.
template <typename Body>
std::uint64_t allocations_during(Body&& body) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  body();
  return g_news.load(std::memory_order_relaxed) - before;
}

TEST(CacheAllocation, SteadyStateLookupsAreAllocationFree) {
  // Warm both caches to capacity, then hammer hits and resident-promotions:
  // splice moves list nodes in place, so the steady state allocates nothing.
  auto lru = BlockCache::make(CachePolicy::kLru, 64);
  auto arc = BlockCache::make(CachePolicy::kArc, 64);
  for (DataId b = 0; b < 64; ++b) {
    lru->insert(b);
    arc->insert(b);
    arc->lookup(b);
  }
  std::uint64_t hits = 0;
  const std::uint64_t n = allocations_during([&] {
    for (int round = 0; round < 200; ++round) {
      for (DataId b = 0; b < 64; ++b) {
        hits += lru->lookup(b) ? 1 : 0;
        hits += arc->lookup(b) ? 1 : 0;
        lru->insert(b);  // resident re-insert = promotion, no allocation
      }
    }
  });
  EXPECT_EQ(n, 0u) << "steady-state lookups allocated";
  EXPECT_EQ(hits, 2u * 200 * 64);
}

// -------------------------------------------------------- WriteBackBuffer

TEST(WriteBackBuffer, LifecycleAndPerDiskFifoOrder) {
  WriteBackBuffer wb(/*capacity=*/4, /*num_disks=*/2);
  EXPECT_TRUE(wb.put(10, 0, 1.0));
  EXPECT_TRUE(wb.put(11, 0, 2.0));
  EXPECT_TRUE(wb.put(20, 1, 3.0));
  EXPECT_EQ(wb.size(), 3u);
  EXPECT_EQ(wb.pending(0), 2u);
  EXPECT_EQ(wb.pending(1), 1u);
  EXPECT_EQ(wb.pending_total(), 3u);
  EXPECT_DOUBLE_EQ(wb.buffered_at(11), 2.0);
  EXPECT_EQ(wb.home_of(20), 1u);

  // Refresh of a pending block keeps its queue position and admission time.
  EXPECT_TRUE(wb.put(10, 0, 5.0));
  EXPECT_EQ(wb.size(), 3u);
  EXPECT_DOUBLE_EQ(wb.buffered_at(10), 1.0);

  // Destage hands out disk 0's blocks in admission order.
  std::vector<DataId> batch;
  EXPECT_EQ(wb.begin_destage(0, 8, batch), 2u);
  EXPECT_EQ(batch, (std::vector<DataId>{10, 11}));
  EXPECT_EQ(wb.pending(0), 0u);
  EXPECT_EQ(wb.size(), 3u);  // in-flight blocks still occupy slots
  EXPECT_TRUE(wb.contains(10));
  EXPECT_FALSE(wb.is_pending(10));

  EXPECT_TRUE(wb.complete(10));
  EXPECT_FALSE(wb.complete(10));  // stale completion tolerated
  EXPECT_TRUE(wb.complete(11));
  EXPECT_EQ(wb.size(), 1u);
  EXPECT_EQ(wb.pending_total(), 1u);
}

TEST(WriteBackBuffer, FullBufferRejectsAndCallerFallsBackToWriteThrough) {
  WriteBackBuffer wb(2, 1);
  EXPECT_TRUE(wb.put(1, 0, 0.0));
  EXPECT_TRUE(wb.put(2, 0, 0.0));
  EXPECT_TRUE(wb.full());
  EXPECT_FALSE(wb.put(3, 0, 0.0));
  EXPECT_TRUE(wb.put(1, 0, 1.0));  // refresh of a resident block still lands
}

TEST(WriteBackBuffer, OverwriteOfInFlightBlockReenters) {
  WriteBackBuffer wb(4, 1);
  EXPECT_TRUE(wb.put(7, 0, 1.0));
  std::vector<DataId> batch;
  EXPECT_EQ(wb.begin_destage(0, 1, batch), 1u);
  // A new write lands while the destage is in flight: the block re-enters
  // pending with a fresh admission time; the racing write is stale.
  EXPECT_TRUE(wb.put(7, 0, 2.0));
  EXPECT_TRUE(wb.is_pending(7));
  EXPECT_DOUBLE_EQ(wb.buffered_at(7), 2.0);
  EXPECT_EQ(wb.pending(0), 1u);
  EXPECT_FALSE(wb.complete(7));  // stale destage completion is ignored
  EXPECT_TRUE(wb.contains(7));
  // The re-entered copy destages normally.
  batch.clear();
  EXPECT_EQ(wb.begin_destage(0, 1, batch), 1u);
  EXPECT_TRUE(wb.complete(7));
  EXPECT_EQ(wb.size(), 0u);
}

TEST(WriteBackBuffer, DrainEmptiesPendingAndInFlight) {
  WriteBackBuffer wb(8, 2);
  wb.put(1, 0, 0.0);
  wb.put(2, 0, 0.0);
  wb.put(9, 1, 0.0);
  std::vector<DataId> batch;
  wb.begin_destage(0, 1, batch);  // 1 goes in flight
  std::vector<DataId> drained;
  EXPECT_EQ(wb.drain(0, drained), 2u);
  EXPECT_EQ(drained, (std::vector<DataId>{1, 2}));  // in-flight first
  EXPECT_FALSE(wb.contains(1));
  EXPECT_FALSE(wb.contains(2));
  EXPECT_EQ(wb.pending(0), 0u);
  EXPECT_EQ(wb.pending_total(), 1u);  // disk 1 untouched
  EXPECT_TRUE(wb.contains(9));
  EXPECT_FALSE(wb.complete(1));  // the dead disk's write never completes
}

}  // namespace
}  // namespace eas::cache

// ---------------------------------------------------------------------------
// Integration: the tier inside StorageSystem.

namespace eas::storage {
namespace {

using cache::CacheConfig;

/// Mixed trace helper over the paper's six blocks.
trace::TraceRecord rec(double t, DataId b, bool is_read) {
  trace::TraceRecord r;
  r.time = t;
  r.data = b;
  r.size_bytes = 64 * 1024;
  r.is_read = is_read;
  return r;
}

CacheConfig small_cache() {
  CacheConfig c;
  c.enabled = true;
  c.capacity_blocks = 8;
  c.dirty_capacity_blocks = 8;
  return c;
}

TEST(CacheRun, RepeatHitsServeAtDramLatencyWithoutWakingDisks) {
  // 12 reads of the same block, spaced past the paper disk's 10 s spin-up
  // so the first completion populates the cache before the next arrival:
  // one spin-up for the miss, then pure cache hits at DRAM latency.
  std::vector<trace::TraceRecord> recs;
  for (int i = 0; i < 12; ++i) recs.push_back(rec(i * 15.0, 2, true));
  SystemConfig cfg;
  cfg.cache = small_cache();
  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy;
  const auto r = run_online(cfg, testing::example_placement(),
                            trace::Trace(std::move(recs)), sched, policy);
  EXPECT_TRUE(r.cache_enabled);
  EXPECT_EQ(r.cache_stats.lookups, 12u);
  EXPECT_EQ(r.cache_stats.misses, 1u);
  EXPECT_EQ(r.cache_stats.hits_clean, 11u);
  EXPECT_DOUBLE_EQ(r.cache_stats.hit_ratio(), 11.0 / 12.0);
  EXPECT_EQ(r.total_spin_ups(), 1u);  // hits never wake a disk
  EXPECT_EQ(r.response_times.count(), 12u);
  // 11 of 12 responses are the 20 us DRAM hit.
  EXPECT_LT(r.response_times.median(), 1e-3);
}

TEST(CacheRun, DestagePiggybacksOnAForegroundSpinUp) {
  // A write to block b1 (homed on standby disk 0) buffers; a later read of
  // b2 wakes disk 0; the idle transition after serving it flushes the dirty
  // group on the same spin-up — no forced destage, one spin-up total.
  std::vector<trace::TraceRecord> recs;
  recs.push_back(rec(0.0, 0, false));  // write b1 -> buffered (disk asleep)
  recs.push_back(rec(1.0, 1, true));   // read b2 -> wakes disk 0
  SystemConfig cfg;
  cfg.cache = small_cache();
  cfg.cache.destage_deadline_seconds = 1e6;  // deadline can't fire first
  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy;
  const auto r = run_online(cfg, testing::example_placement(),
                            trace::Trace(std::move(recs)), sched, policy);
  EXPECT_EQ(r.cache_stats.writes_buffered, 1u);
  EXPECT_EQ(r.cache_stats.destage_piggyback, 1u);
  EXPECT_EQ(r.cache_stats.destage_forced, 0u);
  EXPECT_EQ(r.cache_stats.destaged_blocks, 1u);
  EXPECT_EQ(r.total_spin_ups(), 1u);  // the destage rode the read's wake
}

TEST(CacheRun, WatermarkForcesDestageUnderPressure) {
  // Dirty capacity 4, high watermark at 3 blocks: the third write to a
  // sleeping disk triggers a forced (watermark) destage run.
  std::vector<trace::TraceRecord> recs;
  recs.push_back(rec(0.0, 0, false));   // b1 -> disk 0
  recs.push_back(rec(0.1, 1, false));   // b2 -> disk 0
  recs.push_back(rec(0.2, 4, false));   // b5 -> disk 0
  SystemConfig cfg;
  cfg.cache = small_cache();
  cfg.cache.dirty_capacity_blocks = 4;  // high = max(1, 3), low = 2
  cfg.cache.destage_deadline_seconds = 1e6;
  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy;
  const auto r = run_online(cfg, testing::example_placement(),
                            trace::Trace(std::move(recs)), sched, policy);
  EXPECT_EQ(r.cache_stats.writes_buffered, 3u);
  EXPECT_GE(r.cache_stats.destage_forced, 1u);
  EXPECT_EQ(r.cache_stats.destaged_blocks, 3u);
  EXPECT_GE(r.total_spin_ups(), 1u);  // the forced destage paid a wake
}

TEST(CacheRun, DeadlineBoundsDirtyDataAge) {
  // One write, no other traffic: nothing would ever destage without the
  // deadline backstop.
  std::vector<trace::TraceRecord> recs;
  recs.push_back(rec(0.0, 0, false));
  SystemConfig cfg;
  cfg.cache = small_cache();
  cfg.cache.destage_deadline_seconds = 2.0;
  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy;
  const auto r = run_online(cfg, testing::example_placement(),
                            trace::Trace(std::move(recs)), sched, policy);
  EXPECT_EQ(r.cache_stats.writes_buffered, 1u);
  EXPECT_EQ(r.cache_stats.destage_forced, 1u);
  EXPECT_EQ(r.cache_stats.destaged_blocks, 1u);
  EXPECT_GE(r.horizon, 2.0);  // the run ran out to the deadline flush
}

TEST(CacheRun, DirtyBlocksOnAFailedDiskRedirectOrCountLost) {
  // Two buffered writes homed on disk 0: b2 (data 1) also lives on disk 1
  // and is re-homed when disk 0 dies; b1 (data 0) has no other replica and
  // is counted lost + unavailable. The cache never masks the loss.
  std::vector<trace::TraceRecord> recs;
  recs.push_back(rec(0.0, 0, false));  // b1: locations {0}
  recs.push_back(rec(0.1, 1, false));  // b2: locations {0, 1}
  // Unrelated read on disk 2 stretches the trace horizon past the scripted
  // failure time (the injector never schedules events beyond the horizon).
  recs.push_back(rec(10.0, 3, true));
  SystemConfig cfg;
  cfg.cache = small_cache();
  cfg.cache.destage_deadline_seconds = 5.0;
  fault::ScriptedFault f;
  f.disk = 0;
  f.time = 1.0;  // dies before any destage deadline
  cfg.fault.script.push_back(f);
  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy;
  const auto r = run_online(cfg, testing::example_placement(),
                            trace::Trace(std::move(recs)), sched, policy);
  EXPECT_EQ(r.cache_stats.writes_buffered, 2u);
  EXPECT_EQ(r.cache_stats.dirty_redirected, 1u);
  EXPECT_EQ(r.cache_stats.dirty_lost, 1u);
  EXPECT_GE(r.fault_stats.failovers, 1u);
  EXPECT_GE(r.fault_stats.unavailable_requests, 1u);
  // The redirected block destages onto its replica home (disk 1).
  EXPECT_EQ(r.cache_stats.destaged_blocks, 1u);
  EXPECT_EQ(r.disk_stats[1].requests_served, 1u);
}

TEST(CacheRun, LostCleanCopyNeverMasksAnUnavailableBlock) {
  // b1 (data 0, single replica on disk 0) is read once (cached), then the
  // disk dies. The later read must NOT be served from cache: the cached
  // copy is dropped and the request counts unavailable, exactly as it
  // would without a cache tier.
  std::vector<trace::TraceRecord> recs;
  recs.push_back(rec(0.0, 0, true));
  recs.push_back(rec(5.0, 0, true));
  SystemConfig cfg;
  cfg.initial_state = disk::DiskState::Idle;
  cfg.cache = small_cache();
  fault::ScriptedFault f;
  f.disk = 0;
  f.time = 2.0;
  cfg.fault.script.push_back(f);
  core::StaticScheduler sched;
  power::AlwaysOnPolicy policy;
  const auto r = run_online(cfg, testing::example_placement(),
                            trace::Trace(std::move(recs)), sched, policy);
  EXPECT_EQ(r.cache_stats.lost_copies_dropped, 1u);
  EXPECT_EQ(r.cache_stats.hits_clean, 0u);
  EXPECT_GE(r.fault_stats.unavailable_requests, 1u);
  EXPECT_EQ(r.response_times.count(), 1u);  // only the first read completed
}

TEST(CacheRun, EnabledZeroCapacityTierIsBitIdenticalToDisabled) {
  // An enabled cache with zero capacities must not perturb a single result
  // bit: every lookup misses, every write falls through.
  const auto trace = []() {
    std::vector<trace::TraceRecord> recs;
    for (int i = 0; i < 24; ++i) {
      recs.push_back(rec(i * 0.7, static_cast<DataId>(i % 6), i % 3 != 0));
    }
    return trace::Trace(std::move(recs));
  };
  SystemConfig off;
  SystemConfig zero;
  zero.cache.enabled = true;  // capacities stay 0
  auto run = [&](const SystemConfig& cfg) {
    core::CostFunctionScheduler sched;
    power::FixedThresholdPolicy policy;
    return run_online(cfg, testing::example_placement(), trace(), sched,
                      policy);
  };
  const auto a = run(off);
  const auto b = run(zero);
  EXPECT_FALSE(a.cache_enabled);
  EXPECT_TRUE(b.cache_enabled);
  EXPECT_EQ(a.total_energy(), b.total_energy());  // bitwise, not NEAR
  EXPECT_EQ(a.mean_response(), b.mean_response());
  EXPECT_EQ(a.total_spin_ups(), b.total_spin_ups());
  EXPECT_EQ(a.total_spin_downs(), b.total_spin_downs());
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.response_times.count(), b.response_times.count());
  // The dormant tier still counts: 8 writes fell through, every read missed.
  EXPECT_EQ(b.cache_stats.writes_through, 8u);
  EXPECT_EQ(b.cache_stats.misses, 16u);
  EXPECT_EQ(b.cache_stats.hits_clean + b.cache_stats.hits_dirty, 0u);
}

TEST(CacheRun, ResultJsonGrowsCacheObjectOnlyWhenEnabled) {
  std::vector<trace::TraceRecord> recs;
  recs.push_back(rec(0.0, 2, true));
  SystemConfig plain;
  core::StaticScheduler sched;
  power::AlwaysOnPolicy policy;
  plain.initial_state = disk::DiskState::Idle;
  const auto off = run_online(plain, testing::example_placement(),
                              trace::Trace(recs), sched, policy);
  EXPECT_EQ(off.to_json().find("\"cache\""), std::string::npos);
  EXPECT_EQ(off.to_json().find("\"write_offload\""), std::string::npos);

  SystemConfig with;
  with.initial_state = disk::DiskState::Idle;
  with.cache = small_cache();
  const auto on = run_online(with, testing::example_placement(),
                             trace::Trace(recs), sched, policy);
  const std::string json = on.to_json();
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"memory_energy_joules\""), std::string::npos);
}

TEST(CacheRun, MixedRunSurfacesWriteOffloadStats) {
  // Satellite: run_online_mixed now reports the off-loader's counters in
  // RunResult (and its JSON) behind the same enabled-only emission rule.
  std::vector<trace::TraceRecord> recs;
  recs.push_back(rec(0.0, 1, false));
  recs.push_back(rec(1.0, 2, true));
  SystemConfig cfg;
  cfg.initial_state = disk::DiskState::Idle;
  core::CostFunctionScheduler sched;
  power::AlwaysOnPolicy policy;
  core::WriteOffloadManager offloader;
  const auto r = run_online_mixed(cfg, testing::example_placement(),
                                  trace::Trace(recs), sched, policy,
                                  offloader);
  EXPECT_TRUE(r.write_offload_enabled);
  EXPECT_EQ(r.write_offload_stats.writes_total, 1u);
  EXPECT_NE(r.to_json().find("\"write_offload\""), std::string::npos);
}

TEST(CacheRun, MixedRunRejectsTheCacheTier) {
  SystemConfig cfg;
  cfg.cache = small_cache();
  core::CostFunctionScheduler sched;
  power::AlwaysOnPolicy policy;
  core::WriteOffloadManager offloader;
  std::vector<trace::TraceRecord> recs;
  recs.push_back(rec(0.0, 1, false));
  EXPECT_THROW(run_online_mixed(cfg, testing::example_placement(),
                                trace::Trace(recs), sched, policy, offloader),
               InvariantError);
}

TEST(CacheRun, MemoryEnergyIsChargedOverTheHorizon) {
  std::vector<trace::TraceRecord> recs;
  recs.push_back(rec(0.0, 2, true));
  recs.push_back(rec(10.0, 2, true));
  SystemConfig cfg;
  cfg.initial_state = disk::DiskState::Idle;
  cfg.cache = small_cache();
  core::StaticScheduler sched;
  power::AlwaysOnPolicy policy;
  const auto r = run_online(cfg, testing::example_placement(),
                            trace::Trace(recs), sched, policy);
  EXPECT_DOUBLE_EQ(r.cache_stats.memory_energy_joules,
                   cfg.cache.memory_energy_joules(r.horizon));
  EXPECT_GT(r.cache_stats.memory_energy_joules, 0.0);
}

// --------------------------------------------- scheduler & policy coupling

/// Minimal SystemView: all disks standby at t=0, with a configurable
/// pending-destage count on one favored disk.
class FakeView final : public core::SystemView {
 public:
  explicit FakeView(const placement::PlacementMap& pm)
      : pm_(pm), power_(disk::example_power_params()) {}
  double now() const override { return 0.0; }
  const placement::PlacementMap& placement() const override { return pm_; }
  core::DiskSnapshot snapshot(DiskId) const override {
    core::DiskSnapshot s;
    s.state = disk::DiskState::Standby;
    return s;
  }
  const disk::DiskPowerParams& power_params() const override { return power_; }
  std::uint64_t pending_destage(DiskId k) const override {
    return k == favored ? pending : 0;
  }

  DiskId favored = kInvalidDisk;
  std::uint64_t pending = 0;

 private:
  const placement::PlacementMap& pm_;
  disk::DiskPowerParams power_;
};

TEST(DestagePressure, CostSchedulerBiasesTowardDisksWithPendingWork) {
  // b3 (data 2) lives on {0, 1, 3}, all standby => equal base cost, tie
  // broken to replica 0. Pending destage work on disk 3 discounts it below
  // the tie and wins the pick; with no pending work the pick is unchanged
  // (exact identity, the cache-off bit-identity hinges on it).
  const auto pm = testing::example_placement();
  FakeView view(pm);
  core::CostFunctionScheduler sched;
  disk::Request r;
  r.id = 1;
  r.data = 2;
  EXPECT_EQ(sched.pick(r, view), 0u);
  view.favored = 3;
  view.pending = 2;
  EXPECT_EQ(sched.pick(r, view), 3u);
}

TEST(DestagePressure, FixedThresholdDefersSpinDownWhileDestagePending) {
  sim::Simulator sim;
  disk::Disk d(0, sim, disk::example_power_params(), disk::DiskPerfParams{},
               disk::DiskState::Idle);
  power::FixedThresholdPolicy policy;
  std::uint64_t pending = 1;
  policy.set_destage_probe([&pending](DiskId) { return pending; });
  // Pending destage work: no spin-down timer is armed, the disk stays
  // spinning for the piggyback.
  policy.on_disk_idle(sim, d);
  sim.run();
  EXPECT_EQ(d.state(), disk::DiskState::Idle);
  // Work flushed: the ordinary 2CPM timer arms and the disk spins down.
  pending = 0;
  policy.on_disk_idle(sim, d);
  sim.run();
  EXPECT_EQ(d.state(), disk::DiskState::Standby);
}

}  // namespace
}  // namespace eas::storage
