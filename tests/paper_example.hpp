// Shared fixture data: the paper's §2.3 worked example.
//
// Six requests r1..r6 over data b1..b6 on four disks:
//   d1 holds {b1,b2,b3,b5}, d2 {b2,b3}, d3 {b4,b6}, d4 {b3,b4,b5,b6}.
// Power model: 1 W idle/active, zero spin cost/time, breakeven T_B = 5 s
// (disk::example_power_params). Batch variant: all requests at t = 0.
// Offline variant: arrival times {0, 1, 3, 5, 12, 13}.
//
// Ground truth from the paper:
//   batch  : schedule A (d1,d2,d3) = 15 J, optimal B (d1,d3) = 10 J,
//            always-on = 20 J over the 5 s horizon;
//   offline: schedule B = 23 J, optimal C = 19 J (the running-text
//            arithmetic; the figure caption's "21" conflicts with it),
//            optimal MWIS saving = 11 J = 6·5 − 19.
#pragma once

#include <vector>

#include "disk/params.hpp"
#include "placement/placement.hpp"
#include "trace/trace.hpp"
#include "util/ids.hpp"

namespace eas::testing {

inline placement::PlacementMap example_placement() {
  // 0-based: data b{n} -> index n-1, disk d{n} -> index n-1. The first
  // location of each data item is its "original" location.
  std::vector<std::vector<DiskId>> locs = {
      /*b1*/ {0},
      /*b2*/ {0, 1},
      /*b3*/ {0, 1, 3},
      /*b4*/ {2, 3},
      /*b5*/ {0, 3},
      /*b6*/ {2, 3},
  };
  return placement::PlacementMap(4, std::move(locs));
}

inline trace::Trace example_offline_trace() {
  std::vector<trace::TraceRecord> recs;
  const double times[] = {0, 1, 3, 5, 12, 13};
  for (DataId b = 0; b < 6; ++b) {
    trace::TraceRecord r;
    r.time = times[b];
    r.data = b;
    r.size_bytes = 512 * 1024;
    r.is_read = true;
    recs.push_back(r);
  }
  return trace::Trace(std::move(recs));
}

inline trace::Trace example_batch_trace() {
  std::vector<trace::TraceRecord> recs;
  for (DataId b = 0; b < 6; ++b) {
    trace::TraceRecord r;
    r.time = 0.0;
    r.data = b;
    r.is_read = true;
    recs.push_back(r);
  }
  return trace::Trace(std::move(recs));
}

inline disk::DiskPowerParams example_power() {
  return disk::example_power_params();
}

}  // namespace eas::testing
