// End-to-end tests for the eascheck static analyzer. Each test runs the real
// binary over a fixture tree under tests/eascheck_fixtures/ and asserts the
// exact finding counts, rule ids and exit code, so any behavioural drift in
// the lexer or a rule engine fails loudly.
//
// The final tests run eascheck over the repository itself: the tree must be
// clean, and the layering manifest must be *exact* — every allow-rule backed
// by a real include edge — which is what makes "delete a manifest rule"
// detectable.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// Runs the eascheck binary with `args`, capturing stdout+stderr.
RunResult run_eascheck(const std::string& args) {
  const std::string cmd = std::string(EASCHECK_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixture(const std::string& name) {
  return std::string(EAS_FIXTURE_DIR) + "/" + name;
}

/// Occurrences of `needle` in `haystack` (non-overlapping).
int count_of(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Value of `key=` in the trailing summary line, or -1 when absent.
int summary(const std::string& output, const std::string& key) {
  const std::size_t pos = output.rfind(key + "=");
  if (pos == std::string::npos) return -1;
  return std::atoi(output.c_str() + pos + key.size() + 1);
}

TEST(Eascheck, DeterminismBadFindsEveryBannedConstruct) {
  const RunResult r = run_eascheck("--root " + fixture("determinism_bad") +
                                   " --rules determinism");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 18) << r.output;
  EXPECT_EQ(count_of(r.output, "[determinism-libc-rand]"), 2);
  EXPECT_EQ(count_of(r.output, "[determinism-time-seed]"), 2);
  EXPECT_EQ(count_of(r.output, "[determinism-unordered-iter]"), 3);
  EXPECT_EQ(count_of(r.output, "[determinism-random-device]"), 1);
  EXPECT_EQ(count_of(r.output, "[determinism-system-clock]"), 1);
  EXPECT_EQ(count_of(r.output, "[determinism-fault-stdlib-rng]"), 3);
  EXPECT_EQ(count_of(r.output, "[determinism-obs-wallclock]"), 5);
  EXPECT_EQ(count_of(r.output, "[determinism-std-function-sim]"), 1);
}

TEST(Eascheck, DeterminismGoodIsTokenAccurate) {
  // Comments, strings, raw strings, declarations named `time`, member calls
  // and non-std qualification must all pass. A grep lint fails this test.
  const RunResult r = run_eascheck("--root " + fixture("determinism_good") +
                                   " --rules determinism");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 0) << r.output;
}

TEST(Eascheck, WaiverAccounting) {
  const std::string root = fixture("waivers");
  const RunResult r = run_eascheck("--root " + root + " --rules all" +
                                   " --manifest " + root + "/layers.toml");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // One justified waiver suppresses silently; the empty reason and the stale
  // waiver are themselves findings.
  EXPECT_EQ(summary(r.output, "findings"), 2) << r.output;
  EXPECT_EQ(summary(r.output, "suppressed"), 2) << r.output;
  EXPECT_EQ(summary(r.output, "waivers"), 3) << r.output;
  EXPECT_EQ(summary(r.output, "stale"), 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[waiver-empty-reason]"), 1);
  EXPECT_EQ(count_of(r.output, "[waiver-stale]"), 1);
}

TEST(Eascheck, StaleWaiversNotFlaggedOnPartialRuns) {
  // A hot-path waiver must not read as stale when only the determinism
  // engine runs (the wrapper script's mode).
  const std::string root = fixture("waivers");
  const RunResult r = run_eascheck("--root " + root + " --rules determinism" +
                                   " --manifest " + root + "/layers.toml");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 1) << r.output;
  EXPECT_EQ(summary(r.output, "stale"), 0) << r.output;
  EXPECT_EQ(count_of(r.output, "[waiver-stale]"), 0);
  EXPECT_EQ(count_of(r.output, "[waiver-empty-reason]"), 1);
}

TEST(Eascheck, LayeringForbiddenAndUnknown) {
  const std::string root = fixture("layering_bad");
  const RunResult r = run_eascheck("--root " + root + " --rules layering" +
                                   " --manifest " + root + "/layers.toml");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 3) << r.output;
  EXPECT_EQ(count_of(r.output, "[layering-forbidden-include]"), 2);
  EXPECT_EQ(count_of(r.output, "[layering-unknown-module]"), 1);
  // The allowed edges sim->util and obs->util are exercised, so no
  // unused-rule noise.
  EXPECT_EQ(count_of(r.output, "[layering-unused-rule]"), 0);
}

TEST(Eascheck, LayeringUnusedRuleIsAnError) {
  const std::string root = fixture("layering_unused");
  const RunResult r = run_eascheck("--root " + root + " --rules layering" +
                                   " --manifest " + root + "/layers.toml");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[layering-unused-rule]"), 1);
}

TEST(Eascheck, CacheLayeringPinsForbiddenSimCacheEdge) {
  // The storage layer owns all cache wiring; the event kernel must never
  // include the cache tier. Both allowed edges (cache->util, sim->util) are
  // exercised so the single finding is the pinned forbidden include.
  const std::string root = fixture("cache_layering");
  const RunResult r = run_eascheck("--root " + root + " --rules layering" +
                                   " --manifest " + root + "/layers.toml");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[layering-forbidden-include]"), 1);
  EXPECT_NE(r.output.find("sim/kernel.cpp"), std::string::npos) << r.output;
  EXPECT_EQ(count_of(r.output, "[layering-unused-rule]"), 0);
}

TEST(Eascheck, ReliabilityLayeringPinsForbiddenSimReliabilityEdge) {
  // The storage layer drives all retry/hedge machinery; the event kernel
  // must never include the reliability tier (it only hands out handles).
  // Because reliability -> sim is a *legal* edge (timer handles), the
  // reverse include is doubly wrong: both the forbidden edge and the cycle
  // it realizes are pinned. All declared edges are exercised, so there is
  // no unused-rule noise.
  const std::string root = fixture("reliability_layering");
  const RunResult r = run_eascheck("--root " + root + " --rules layering" +
                                   " --manifest " + root + "/layers.toml");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 2) << r.output;
  EXPECT_EQ(count_of(r.output, "[layering-forbidden-include]"), 1);
  EXPECT_EQ(count_of(r.output, "[layering-cycle]"), 1);
  EXPECT_NE(r.output.find("sim/kernel.cpp"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("reliability -> sim -> reliability"),
            std::string::npos)
      << r.output;
  EXPECT_EQ(count_of(r.output, "[layering-unused-rule]"), 0);
}

TEST(Eascheck, LayeringDetectsRealizedCycle) {
  // Both edges are manifest-allowed; the cycle is still rejected.
  const std::string root = fixture("layering_cycle");
  const RunResult r = run_eascheck("--root " + root + " --rules layering" +
                                   " --manifest " + root + "/layers.toml");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 1) << r.output;
  EXPECT_EQ(count_of(r.output, "[layering-cycle]"), 1);
  EXPECT_NE(r.output.find("a -> b -> a"), std::string::npos) << r.output;
}

TEST(Eascheck, HotpathBansAllocAndThrow) {
  const std::string root = fixture("hotpath_bad");
  const RunResult r = run_eascheck("--root " + root + " --rules hotpath" +
                                   " --manifest " + root + "/layers.toml");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // new[], make_shared and std::vector in hot functions, plus one throw in
  // the no-throw zone. Placement new and the cold-path `new` are exempt.
  EXPECT_EQ(summary(r.output, "findings"), 4) << r.output;
  EXPECT_EQ(count_of(r.output, "[hotpath-heap-alloc]"), 2);
  EXPECT_EQ(count_of(r.output, "[hotpath-std-heap-type]"), 1);
  EXPECT_EQ(count_of(r.output, "[hotpath-throw]"), 1);
}

TEST(Eascheck, HotpathManifestMustTrackTheCode) {
  const std::string root = fixture("hotpath_stale");
  const RunResult r = run_eascheck("--root " + root + " --rules hotpath" +
                                   " --manifest " + root + "/layers.toml");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 2) << r.output;
  EXPECT_EQ(count_of(r.output, "[hotpath-missing-function]"), 1);
  EXPECT_EQ(count_of(r.output, "[hotpath-missing-file]"), 1);
}

TEST(Eascheck, ContractsRequiredOnPublicMutators) {
  const RunResult r = run_eascheck("--root " + fixture("contracts_bad") +
                                   " --rules contracts");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 2) << r.output;
  EXPECT_EQ(count_of(r.output, "[contracts-missing]"), 2);
  EXPECT_NE(r.output.find("Disk::set_speed"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Disk::submit"), std::string::npos) << r.output;
}

TEST(Eascheck, CleanFixturePassesAllEngines) {
  const std::string root = fixture("clean");
  const RunResult r = run_eascheck("--root " + root + " --rules all" +
                                   " --manifest " + root + "/layers.toml");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 0) << r.output;
}

TEST(Eascheck, EmptyScanIsAnEnvironmentErrorNotAPass) {
  // The old shell lint silently passed when its file list came up empty;
  // eascheck treats that as a broken invocation (exit 2).
  const RunResult r = run_eascheck("--root " + fixture("clean") +
                                   " --rules determinism --scan no_such_dir");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(Eascheck, MalformedManifestIsAnEnvironmentError) {
  const RunResult r = run_eascheck(
      "--root " + fixture("clean") + " --rules layering --manifest " +
      fixture("layering_bad") + "/src/util/timebase.hpp");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(Eascheck, RepositoryTreeIsClean) {
  // The gate the CI stage enforces: all four engines over the real tree,
  // zero findings. Because layering-unused-rule is an error, this test also
  // proves the manifest is exact — deleting any [layers] rule turns a real
  // include into a forbidden edge and fails this test.
  const RunResult r = run_eascheck(std::string("--root ") + EAS_REPO_ROOT +
                                   " --rules all");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 0) << r.output;
  // The tree's det-ok waivers (kernel SBO fallback, chunk growth) must be
  // live, not stale.
  EXPECT_GE(summary(r.output, "waivers"), 2) << r.output;
  EXPECT_EQ(summary(r.output, "suppressed"), summary(r.output, "waivers"))
      << r.output;
  EXPECT_EQ(summary(r.output, "stale"), 0) << r.output;
}

TEST(Eascheck, RepositoryDeterminismModeMatchesWrapperContract) {
  // tools/lint_determinism.sh shells out to exactly this invocation and
  // forwards the exit code; it must be green on the tree.
  const RunResult r = run_eascheck(std::string("--root ") + EAS_REPO_ROOT +
                                   " --rules determinism");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(summary(r.output, "findings"), 0) << r.output;
}

}  // namespace
