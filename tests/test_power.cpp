// Tests for the power policies: 2CPM fixed threshold and the oracle.
#include <gtest/gtest.h>

#include "disk/disk.hpp"
#include "power/fixed_threshold.hpp"
#include "power/oracle.hpp"
#include "power/policy.hpp"
#include "sim/simulator.hpp"

namespace eas::power {
namespace {

disk::DiskPowerParams test_power() {
  disk::DiskPowerParams p;
  p.idle_watts = 10.0;
  p.active_watts = 12.0;
  p.standby_watts = 1.0;
  p.spinup_watts = 20.0;
  p.spindown_watts = 10.0;
  p.spinup_seconds = 6.0;
  p.spindown_seconds = 4.0;  // breakeven 16 s, window 26 s
  return p;
}

OraclePolicy make_oracle(std::vector<std::vector<sim::SimTime>> arrivals) {
  return OraclePolicy(std::move(arrivals));
}

struct Rig {
  sim::Simulator sim;
  disk::Disk d{0, sim, test_power(), disk::DiskPerfParams{},
               disk::DiskState::Idle};
};

TEST(FixedThreshold, NameReflectsConfiguration) {
  EXPECT_EQ(FixedThresholdPolicy().name(), "2cpm");
  EXPECT_NE(FixedThresholdPolicy(5.0).name().find("5"), std::string::npos);
}

TEST(FixedThreshold, DefaultsToTheDiskBreakeven) {
  Rig rig;
  FixedThresholdPolicy policy;
  EXPECT_DOUBLE_EQ(policy.threshold_for(rig.d), 16.0);
  EXPECT_DOUBLE_EQ(FixedThresholdPolicy(3.0).threshold_for(rig.d), 3.0);
}

TEST(FixedThreshold, SpinsDownAfterExactlyTheThreshold) {
  Rig rig;
  FixedThresholdPolicy policy;
  policy.on_disk_idle(rig.sim, rig.d);
  rig.sim.run_until(15.9);
  EXPECT_EQ(rig.d.state(), disk::DiskState::Idle);
  rig.sim.run_until(16.1);
  EXPECT_EQ(rig.d.state(), disk::DiskState::SpinningDown);
  rig.sim.run();
  EXPECT_EQ(rig.d.state(), disk::DiskState::Standby);
  EXPECT_EQ(rig.d.stats().spin_downs, 1u);
}

TEST(FixedThreshold, ActivityCancelsThePendingSpinDown) {
  Rig rig;
  FixedThresholdPolicy policy;
  policy.on_disk_idle(rig.sim, rig.d);
  rig.sim.run_until(10.0);
  policy.on_disk_activity(rig.sim, rig.d);  // request arrived
  rig.sim.run_until(100.0);
  EXPECT_EQ(rig.d.state(), disk::DiskState::Idle);
  EXPECT_EQ(rig.d.stats().spin_downs, 0u);
}

TEST(FixedThreshold, ReIdleRestartsTheClock) {
  Rig rig;
  FixedThresholdPolicy policy;
  policy.on_disk_idle(rig.sim, rig.d);
  rig.sim.run_until(10.0);
  policy.on_disk_activity(rig.sim, rig.d);
  policy.on_disk_idle(rig.sim, rig.d);  // fresh idle period from t=10
  rig.sim.run_until(20.0);              // only 10 s into the new period
  EXPECT_EQ(rig.d.state(), disk::DiskState::Idle);
  rig.sim.run_until(26.5);
  EXPECT_EQ(rig.d.state(), disk::DiskState::SpinningDown);
}

TEST(FixedThreshold, IndependentTimersPerDisk) {
  sim::Simulator sim;
  disk::Disk d0{0, sim, test_power(), {}, disk::DiskState::Idle};
  disk::Disk d1{1, sim, test_power(), {}, disk::DiskState::Idle};
  FixedThresholdPolicy policy;
  policy.on_disk_idle(sim, d0);
  sim.run_until(8.0);
  policy.on_disk_idle(sim, d1);
  policy.on_disk_activity(sim, d0);  // cancel d0 only
  sim.run_until(30.0);
  EXPECT_EQ(d0.state(), disk::DiskState::Idle);
  EXPECT_EQ(d1.state(), disk::DiskState::Standby);
}

TEST(AlwaysOn, NeverReacts) {
  Rig rig;
  AlwaysOnPolicy policy;
  policy.on_disk_idle(rig.sim, rig.d);
  rig.sim.run_until(1000.0);
  EXPECT_EQ(rig.d.state(), disk::DiskState::Idle);
  EXPECT_EQ(policy.name(), "always-on");
}

TEST(Oracle, PreSpinsForTheFirstArrival) {
  sim::Simulator sim;
  disk::Disk d{0, sim, test_power(), {}, disk::DiskState::Standby};
  auto policy = make_oracle({{100.0}});
  policy.on_run_start(sim, {&d});
  // Wake fires at 100 - T_up(6) - margin, i.e. just before 94.
  sim.run_until(94.5);
  EXPECT_EQ(d.state(), disk::DiskState::SpinningUp);
  sim.run_until(100.0);
  EXPECT_EQ(d.state(), disk::DiskState::Idle);
}

TEST(Oracle, StaysIdleThroughInWindowGaps) {
  sim::Simulator sim;
  disk::Disk d{0, sim, test_power(), {}, disk::DiskState::Idle};
  // Next arrival 20 s away: inside the 26 s window -> no spin-down.
  auto policy = make_oracle({{20.0}});
  policy.on_disk_idle(sim, d);
  sim.run_until(19.0);
  EXPECT_EQ(d.state(), disk::DiskState::Idle);
  EXPECT_EQ(d.stats().spin_downs, 0u);
}

TEST(Oracle, CaseISpinsDownThenPreSpinsForTheSuccessor) {
  sim::Simulator sim;
  disk::Disk d{0, sim, test_power(), {}, disk::DiskState::Idle};
  // Next arrival at 100 s: far outside the window.
  auto policy = make_oracle({{100.0}});
  policy.on_disk_idle(sim, d);
  sim.run_until(17.0);  // past breakeven (16 s)
  EXPECT_EQ(d.state(), disk::DiskState::SpinningDown);
  sim.run_until(80.0);
  EXPECT_EQ(d.state(), disk::DiskState::Standby);
  sim.run_until(100.0);
  EXPECT_EQ(d.state(), disk::DiskState::Idle);  // back up just in time
  EXPECT_EQ(d.stats().spin_ups, 1u);
}

TEST(Oracle, NoFutureArrivalBehavesLikePlain2cpm) {
  sim::Simulator sim;
  disk::Disk d{0, sim, test_power(), {}, disk::DiskState::Idle};
  auto policy = make_oracle({{}});
  policy.on_disk_idle(sim, d);
  sim.run();
  EXPECT_EQ(d.state(), disk::DiskState::Standby);
  EXPECT_EQ(d.stats().spin_downs, 1u);
}

TEST(Oracle, ActivityCancelsThePendingSpinDown) {
  sim::Simulator sim;
  disk::Disk d{0, sim, test_power(), {}, disk::DiskState::Idle};
  auto policy = make_oracle({{100.0, 200.0}});
  policy.on_disk_idle(sim, d);
  sim.run_until(10.0);
  policy.on_disk_activity(sim, d);
  sim.run_until(20.0);
  EXPECT_EQ(d.state(), disk::DiskState::Idle);
}

TEST(Oracle, RejectsUnsortedArrivals) {
  EXPECT_THROW(OraclePolicy({{5.0, 1.0}}), InvariantError);
}

}  // namespace
}  // namespace eas::power
