#pragma once

namespace fx {
constexpr int kB = 2;
}  // namespace fx
