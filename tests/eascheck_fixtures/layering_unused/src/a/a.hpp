#pragma once

namespace fx {
constexpr int kA = 1;
}  // namespace fx
