#pragma once

#include "util/timebase.hpp"  // allowed: obs -> util

namespace fx {
struct Trace {
  SimTime stamp = 0.0;
};
}  // namespace fx
