#pragma once
// expect: layering-unknown-module (src/extra has no [layers] entry)

namespace fx {
constexpr int kOrphan = 1;
}  // namespace fx
