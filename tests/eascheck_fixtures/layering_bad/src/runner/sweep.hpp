#pragma once

namespace fx {
constexpr int kSweepWidth = 8;
}  // namespace fx
