#pragma once

namespace fx {
using SimTime = double;
}  // namespace fx
