#pragma once

#include "util/timebase.hpp"  // allowed: sim -> util

#include "obs/trace.hpp"  // expect: layering-forbidden-include

namespace fx {
struct Kernel {
  SimTime now = 0.0;
};
}  // namespace fx
