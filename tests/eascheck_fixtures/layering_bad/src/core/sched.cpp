#include "runner/sweep.hpp"  // expect: layering-forbidden-include

namespace fx {
int schedule() { return kSweepWidth; }
}  // namespace fx
