// Token-accuracy proof: everything in this file LOOKS like a violation to a
// grep-based lint but is legitimate C++. Expected findings: zero.
//
// rand() and srand(1) in a line comment must not flag.
/* Nor time(NULL), std::random_device or mt19937 in a block comment. */
#include <random>  // fine here: the <random> ban is scoped to src/fault/

namespace fx {

// Banned spellings inside ordinary and raw string literals are data.
const char* kDoc = "call rand() then time(nullptr) with mt19937";
const char* kRaw = R"doc(system_clock and random_device, even rand())doc";

// Digit separators must not open character literals mid-number.
const long kSeparated = 1'000'000;

struct Clock {
  // A declaration named `time`: the preceding type name marks it as a
  // declarator, not a call expression.
  double time() const;
  double base = 0.0;
};

double sample(const Clock& c) { return c.time(); }   // member call
double arrow(const Clock* c) { return c->time(); }   // member call

// A user namespace may define time(); only std:: / :: qualify as libc.
namespace myns {
double time();
}
double qualified() { return myns::time(); }

}  // namespace fx
