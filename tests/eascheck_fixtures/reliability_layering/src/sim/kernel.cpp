// Fixture: the event kernel reaching into the reliability tier inverts the
// layering (storage drives retries/hedges above the kernel, never the
// reverse — the kernel only hands out generation-checked handles).
#include "sim/event.hpp"  // allowed: sim -> sim (same module)

#include "reliability/request_state.hpp"  // expect: layering-forbidden-include

namespace fx {

int touch() {
  RequestState st;
  st.id = 1;
  return static_cast<int>(st.id);
}

}  // namespace fx
