#pragma once

#include "util/ids.hpp"  // allowed: sim -> util

namespace fx {
struct EventHandle {
  RequestId slot = 0;
};
}  // namespace fx
