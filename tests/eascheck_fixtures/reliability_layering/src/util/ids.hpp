#pragma once

namespace fx {
using RequestId = unsigned long long;
}  // namespace fx
