#pragma once

#include "sim/event.hpp"  // allowed: reliability -> sim
#include "util/ids.hpp"   // allowed: reliability -> util

namespace fx {
struct RequestState {
  RequestId id = 0;
  EventHandle deadline;
};
}  // namespace fx
