// Contract-coverage fixture: public mutators defined out of line in a
// src/*.cpp must state a contract.
#include "util/check.hpp"

namespace fx {

void Disk::set_speed(double rpm) {  // expect: contracts-missing
  speed_ = rpm;
}

void Disk::add_request(int id) {  // fine: states a precondition
  EAS_REQUIRE(id >= 0);
  queue_depth_ += 1;
}

void Disk::submit(int id) {  // expect: contracts-missing
  queue_depth_ += id;
}

int Disk::queue_depth() const {  // accessor, not a mutator: exempt
  return queue_depth_;
}

void free_set_helper(int v) {  // free function, not a member: exempt
  (void)v;
}

}  // namespace fx
