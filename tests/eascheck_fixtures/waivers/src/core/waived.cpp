// Waiver accounting fixture. Under `--rules all`:
//   line with a justified waiver  -> finding suppressed, waiver counted used
//   line with an empty reason     -> finding suppressed BUT waiver-empty-reason
//   line whose waiver hides nothing -> waiver-stale
namespace fx {

int used() { return rand(); }  // det-ok: fixture exercises a justified waiver
int empty_reason() { return rand(); }  // det-ok:
int stale = 0;  // det-ok: nothing on this line needs a waiver

}  // namespace fx
