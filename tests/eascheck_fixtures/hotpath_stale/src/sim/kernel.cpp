namespace fx {

// The manifest still lists `gone`, which was renamed to `present`.
// expect: hotpath-missing-function, hotpath-missing-file (both anchored to
// the manifest, not this file).
void present() {}

}  // namespace fx
