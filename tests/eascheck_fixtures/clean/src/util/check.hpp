#pragma once

namespace fx {
void contract_failed(const char* what);
}  // namespace fx

#define EAS_REQUIRE(cond) \
  do {                    \
    if (!(cond)) ::fx::contract_failed(#cond); \
  } while (0)
