// A well-behaved translation unit: exercised layering edge, contracts on
// every mutator, deterministic iteration only. Expected findings: zero.
#include "util/check.hpp"

namespace fx {

struct Engine {
  int limit_ = 0;
  void set_limit(int n);
};

void Engine::set_limit(int n) {
  EAS_REQUIRE(n > 0);
  limit_ = n;
}

int limit_of(const Engine& e) { return e.limit_; }

}  // namespace fx
