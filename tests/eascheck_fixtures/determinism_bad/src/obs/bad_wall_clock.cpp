// Fixture: wall clocks banned in src/obs (trace timestamps must be SimTime).
// Each line below yields two findings: the `chrono` identifier and the clock
// name are both banned spellings, plus one for the #include itself.
#include <chrono>  // expect: determinism-obs-wallclock

namespace fx {

long long stamp() {
  auto a = std::chrono::steady_clock::now();  // expect: x2
  auto b = std::chrono::high_resolution_clock::now();  // expect: x2
  return (a.time_since_epoch() + b.time_since_epoch()).count();
}

}  // namespace fx
