// Fixture: range-for over an unordered container inside the cache tier.
// Eviction and destage order feed disk wake-ups, so cache is a decision
// module: lookups may hash, iteration must walk the ordered structures.
#include <unordered_map>

namespace fx {

unsigned long long pick_victim() {
  std::unordered_map<unsigned long long, int> resident;
  resident[7] = 1;
  unsigned long long victim = 0;
  for (const auto& kv : resident) {  // expect: determinism-unordered-iter
    victim = kv.first;
  }
  return victim;
}

}  // namespace fx
