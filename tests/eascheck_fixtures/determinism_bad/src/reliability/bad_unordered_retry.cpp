// Fixture: range-for over an unordered container inside the reliability
// tier. Retry and hedge timing feed scheduler and power decisions, so
// reliability is a decision module: per-request state may hash, iteration
// must walk ordered structures (or go by key only).
#include <unordered_map>

namespace fx {

unsigned long long next_retry() {
  std::unordered_map<unsigned long long, int> pending;
  pending[3] = 1;
  unsigned long long chosen = 0;
  for (const auto& kv : pending) {  // expect: determinism-unordered-iter
    chosen = kv.first;
  }
  return chosen;
}

}  // namespace fx
