// Fixture: nondeterministic seed sources in a decision module.
#include <chrono>
#include <random>

namespace fx {

unsigned seed_from_hardware() {
  std::random_device rd;  // expect: determinism-random-device
  return rd();
}

long long seed_from_wall_clock() {
  auto now = std::chrono::system_clock::now();  // expect: determinism-system-clock
  return now.time_since_epoch().count();
}

}  // namespace fx
