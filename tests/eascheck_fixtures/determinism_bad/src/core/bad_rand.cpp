// Fixture: every banned libc entropy/time construct, one finding each.
#include <cstdlib>
#include <ctime>

namespace fx {

int decide_libc() {
  int a = rand();          // expect: determinism-libc-rand
  srand(42);               // expect: determinism-libc-rand
  long t = time(nullptr);  // expect: determinism-time-seed
  long u = std::time(0);   // expect: determinism-time-seed
  return a + static_cast<int>(t + u);
}

}  // namespace fx
