// Fixture: range-for over an unordered container inside a decision module.
#include <unordered_map>
#include <vector>

namespace fx {

int sum_scores() {
  std::unordered_map<int, int> scores;
  scores[1] = 10;
  int total = 0;
  for (const auto& kv : scores) {  // expect: determinism-unordered-iter
    total += kv.second;
  }
  std::vector<int> ordered = {1, 2, 3};
  for (int v : ordered) total += v;  // ordered: fine
  return total;
}

}  // namespace fx
