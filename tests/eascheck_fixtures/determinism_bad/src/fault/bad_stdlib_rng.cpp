// Fixture: stdlib RNG engines/distributions banned inside src/fault (the
// fault subsystem carries its own counter-based RNG for replayability).
#include <random>  // expect: determinism-fault-stdlib-rng

namespace fx {

double draw() {
  std::mt19937_64 eng(7);  // expect: determinism-fault-stdlib-rng
  std::exponential_distribution<double> d(1.0);  // expect: determinism-fault-stdlib-rng
  return d(eng);
}

}  // namespace fx
