// Fixture: std::function banned in src/sim (kernel uses InlineCallback).
#include <functional>

namespace fx {

struct Kernel {
  std::function<void()> cb;  // expect: determinism-std-function-sim
};

}  // namespace fx
