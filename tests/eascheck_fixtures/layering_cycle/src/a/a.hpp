#pragma once

#include "b/b.hpp"

namespace fx {
constexpr int kA = kB + 1;
}  // namespace fx
