#pragma once

#include "a/a.hpp"

namespace fx {
constexpr int kB = 2;
}  // namespace fx
