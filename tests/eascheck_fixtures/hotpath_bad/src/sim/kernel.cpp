#include <memory>
#include <vector>

namespace fx {

struct Ev {
  void* slot;
};

void* schedule(int n) {
  int* backing = new int[n];  // expect: hotpath-heap-alloc
  auto shared = std::make_shared<Ev>();  // expect: hotpath-heap-alloc
  std::vector<int> queue;  // expect: hotpath-std-heap-type
  queue.push_back(n);
  (void)shared;
  return backing;
}

void fire(Ev& e) {
  if (e.slot == nullptr) throw 42;  // expect: hotpath-throw
  ::new (e.slot) Ev();  // placement new: allowed on the hot path
}

void cold_path() {
  int* scratch = new int(0);  // not a listed hot function: allowed
  delete scratch;
}

}  // namespace fx
