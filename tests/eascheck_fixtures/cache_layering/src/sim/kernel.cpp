// Fixture: the event kernel reaching into the cache tier inverts the
// layering (storage wires the cache above the kernel, never the reverse).
#include "util/ids.hpp"  // allowed: sim -> util

#include "cache/block_cache.hpp"  // expect: layering-forbidden-include

namespace fx {

int touch() {
  BlockCache c;
  c.last = 1;
  return static_cast<int>(c.last);
}

}  // namespace fx
