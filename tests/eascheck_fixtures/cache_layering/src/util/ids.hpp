#pragma once

namespace fx {
using BlockId = unsigned long long;
}  // namespace fx
