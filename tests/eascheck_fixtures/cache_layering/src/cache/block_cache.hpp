#pragma once

#include "util/ids.hpp"  // allowed: cache -> util

namespace fx {
struct BlockCache {
  BlockId last = 0;
};
}  // namespace fx
