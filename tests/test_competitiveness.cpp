// Empirical verification of the 2CPM competitiveness claim (Irani et al.,
// cited in §1): on a single disk, the fixed-breakeven-threshold policy
// consumes at most twice the energy of the offline-optimal power schedule,
// for any arrival sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/basic_schedulers.hpp"
#include "placement/placement.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace eas {
namespace {

disk::DiskPowerParams competitive_power() {
  disk::DiskPowerParams p;
  p.idle_watts = 10.0;
  p.active_watts = 10.0;  // isolate power-management energy from I/O energy
  p.standby_watts = 0.0;
  p.spinup_watts = 32.0;
  p.spindown_watts = 10.0;
  p.spinup_seconds = 5.0;
  p.spindown_seconds = 2.0;  // E = 180 J, T_B = 18 s
  return p;
}

/// Offline-optimal energy for one disk: per gap, the cheaper of staying
/// idle and a full sleep cycle (ski-rental lower bound). Service time is
/// negligible with these parameters.
double offline_optimal_energy(const std::vector<double>& arrivals,
                              double horizon,
                              const disk::DiskPowerParams& p) {
  double energy = 0.0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const double next = i + 1 < arrivals.size() ? arrivals[i + 1] : horizon;
    const double gap = std::max(0.0, next - arrivals[i]);
    energy += std::min(gap * p.idle_watts, p.transition_energy());
  }
  return energy;
}

class CompetitivenessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompetitivenessTest, TwoCpmIsWithinTwiceOfflineOptimal) {
  util::Rng rng(GetParam());
  // Adversarially mixed gaps: some short, some straddling the breakeven,
  // some long — the regime where a wrong threshold hurts the most.
  std::vector<double> arrivals;
  double t = 1.0;
  for (int i = 0; i < 120; ++i) {
    const double mode = rng.next_double();
    double gap;
    if (mode < 0.4) {
      gap = rng.uniform(0.2, 5.0);  // short
    } else if (mode < 0.8) {
      gap = rng.uniform(12.0, 30.0);  // near breakeven (18 s)
    } else {
      gap = rng.uniform(60.0, 300.0);  // long
    }
    arrivals.push_back(t);
    t += gap;
  }

  std::vector<trace::TraceRecord> recs;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    recs.push_back({arrivals[i], 0, 4096, true});
  }
  const trace::Trace trace(std::move(recs));
  placement::PlacementMap placement(1, {{0}});

  storage::SystemConfig cfg;
  cfg.power = competitive_power();
  cfg.initial_state = disk::DiskState::Idle;  // classic setting: starts on
  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy;  // 2CPM
  const auto run = storage::run_online(cfg, placement, trace, sched, policy);

  const double opt =
      offline_optimal_energy(arrivals, run.horizon, cfg.power);
  // The competitive bound applies to the energy spent *managing idleness*;
  // both sides here include the same service energy (active == idle watts),
  // so the raw ratio applies. Allow a small absolute slack for the tail.
  EXPECT_LE(run.total_energy(), 2.0 * opt + cfg.power.transition_energy())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompetitivenessTest,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Competitiveness, EagerThresholdLosesOnStraddlingGaps) {
  // Sanity check of the bound's sharpness: a near-zero threshold pays a
  // full transition on every gap and must do worse than 2CPM on a stream of
  // exactly-breakeven gaps.
  std::vector<trace::TraceRecord> recs;
  const auto p = competitive_power();
  double t = 1.0;
  for (int i = 0; i < 60; ++i) {
    recs.push_back({t, 0, 4096, true});
    t += p.breakeven_seconds() * 0.9;  // just inside: idling is optimal
  }
  const trace::Trace trace(std::move(recs));
  placement::PlacementMap placement(1, {{0}});
  storage::SystemConfig cfg;
  cfg.power = p;
  cfg.initial_state = disk::DiskState::Idle;

  core::StaticScheduler s1, s2;
  power::FixedThresholdPolicy two_cpm;
  power::FixedThresholdPolicy eager(0.5);
  const auto r_2cpm = storage::run_online(cfg, placement, trace, s1, two_cpm);
  const auto r_eager = storage::run_online(cfg, placement, trace, s2, eager);
  EXPECT_LT(r_2cpm.total_energy(), r_eager.total_energy());
  // 2CPM never sleeps between requests; only the post-trace tail may add
  // one final spin-down.
  EXPECT_LE(r_2cpm.total_spin_downs(), 1u);
  EXPECT_GT(r_eager.total_spin_downs(), 50u);
}

}  // namespace
}  // namespace eas
