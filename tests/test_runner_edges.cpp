// Edge cases and failure injection for the storage runners: empty traces,
// misbehaving schedulers, degenerate configurations.
#include <gtest/gtest.h>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "core/wsc_scheduler.hpp"
#include "paper_example.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/synthetic.hpp"

namespace eas::storage {
namespace {

using testing::example_placement;

SystemConfig small_config() {
  SystemConfig cfg;
  cfg.power = disk::example_power_params();
  return cfg;
}

/// Scheduler that ignores placement — must be caught by the runner.
class RogueScheduler final : public core::OnlineScheduler {
 public:
  std::string name() const override { return "rogue"; }
  DiskId pick(const disk::Request& r, const core::SystemView& view) override {
    // Deliberately pick a disk that does not store the data: b1 only lives
    // on disk 0, so disk 2 is always wrong for it.
    return r.data == 0 ? 2 : view.placement().original(r.data);
  }
};

/// Batch scheduler returning the wrong number of assignments.
class ShortBatchScheduler final : public core::BatchScheduler {
 public:
  std::string name() const override { return "short"; }
  double batch_interval_seconds() const override { return 0.1; }
  std::vector<DiskId> assign(const std::vector<disk::Request>& batch,
                             const core::SystemView& view) override {
    std::vector<DiskId> out;
    for (std::size_t i = 0; i + 1 < batch.size(); ++i) {  // one short
      out.push_back(view.placement().original(batch[i].data));
    }
    return out;
  }
};

trace::Trace single_request_trace(DataId data) {
  return trace::Trace({{1.0, data, 4096, true}});
}

TEST(RunnerEdges, EmptyTraceYieldsEmptyResult) {
  power::FixedThresholdPolicy policy;
  core::StaticScheduler sched;
  const auto r = run_online(small_config(), example_placement(),
                            trace::Trace{}, sched, policy);
  EXPECT_EQ(r.total_requests, 0u);
  EXPECT_TRUE(r.response_times.empty());
  EXPECT_DOUBLE_EQ(r.total_energy(), 0.0);  // horizon 0: nothing accrued
}

TEST(RunnerEdges, EmptyTraceUnderBatchModel) {
  power::FixedThresholdPolicy policy;
  core::WscBatchScheduler sched(0.1);
  const auto r = run_batch(small_config(), example_placement(),
                           trace::Trace{}, sched, policy);
  EXPECT_EQ(r.total_requests, 0u);
}

TEST(RunnerEdges, RogueOnlineSchedulerIsRejected) {
  power::FixedThresholdPolicy policy;
  RogueScheduler sched;
  EXPECT_THROW(run_online(small_config(), example_placement(),
                          single_request_trace(0), sched, policy),
               InvariantError);
}

TEST(RunnerEdges, ShortBatchAssignmentIsRejected) {
  power::FixedThresholdPolicy policy;
  ShortBatchScheduler sched;
  trace::Trace two({{1.0, 0, 4096, true}, {1.01, 1, 4096, true}});
  EXPECT_THROW(run_batch(small_config(), example_placement(), two, sched,
                         policy),
               InvariantError);
}

TEST(RunnerEdges, OfflineAssignmentMismatchIsRejected) {
  core::OfflineAssignment bad;
  bad.disk_of_request = {0, 0};  // trace has one request
  EXPECT_THROW(run_offline(small_config(), example_placement(),
                           single_request_trace(0), bad, "bad"),
               InvariantError);
}

TEST(RunnerEdges, SingleRequestRunsToCompletion) {
  power::FixedThresholdPolicy policy;
  core::StaticScheduler sched;
  const auto r = run_online(small_config(), example_placement(),
                            single_request_trace(3), sched, policy);
  EXPECT_EQ(r.total_requests, 1u);
  EXPECT_EQ(r.response_times.count(), 1u);
  // The single standby disk wakes once and, after breakeven, sleeps again.
  EXPECT_EQ(r.total_spin_ups(), 1u);
  EXPECT_EQ(r.total_spin_downs(), 1u);
}

TEST(RunnerEdges, SimultaneousArrivalsAllServed) {
  std::vector<trace::TraceRecord> recs;
  for (DataId b = 0; b < 6; ++b) recs.push_back({2.0, b, 4096, true});
  const trace::Trace t(std::move(recs));
  power::FixedThresholdPolicy policy;
  core::CostFunctionScheduler sched;
  const auto r =
      run_online(small_config(), example_placement(), t, sched, policy);
  EXPECT_EQ(r.total_requests, 6u);
}

TEST(RunnerEdges, RepeatedDataHammerOnOneDisk) {
  // 100 hits on the same single-replica block: FCFS on one disk, all served.
  std::vector<trace::TraceRecord> recs;
  for (int i = 0; i < 100; ++i) {
    recs.push_back({1.0 + 0.001 * i, 0, 4096, true});
  }
  const trace::Trace t(std::move(recs));
  power::FixedThresholdPolicy policy;
  core::StaticScheduler sched;
  const auto r =
      run_online(small_config(), example_placement(), t, sched, policy);
  EXPECT_EQ(r.total_requests, 100u);
  EXPECT_EQ(r.disk_stats[0].requests_served, 100u);
  EXPECT_EQ(r.total_spin_ups(), 1u);
}

TEST(RunnerEdges, HorizonCoversAllAccounting) {
  power::FixedThresholdPolicy policy;
  core::StaticScheduler sched;
  const auto r = run_online(small_config(), example_placement(),
                            single_request_trace(0), sched, policy);
  for (const auto& ds : r.disk_stats) {
    EXPECT_NEAR(ds.total_seconds(), r.horizon, 1e-9);
  }
}

TEST(RunnerEdges, ResultNamesIdentifyTheConfiguration) {
  power::FixedThresholdPolicy policy;
  core::StaticScheduler sched;
  const auto r = run_online(small_config(), example_placement(),
                            single_request_trace(0), sched, policy);
  EXPECT_EQ(r.scheduler_name, "static");
  EXPECT_EQ(r.policy_name, "2cpm");
}

}  // namespace
}  // namespace eas::storage
