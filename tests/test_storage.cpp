// Integration tests: full trace runs through the event-driven storage
// system under each scheduling model and power policy.
#include <gtest/gtest.h>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "core/mwis_scheduler.hpp"
#include "core/offline_eval.hpp"
#include "core/wsc_scheduler.hpp"
#include "paper_example.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/synthetic.hpp"

namespace eas {
namespace {

using testing::example_placement;
using testing::example_power;

storage::SystemConfig small_config() {
  storage::SystemConfig cfg;
  cfg.power.idle_watts = 10.0;
  cfg.power.active_watts = 12.0;
  cfg.power.standby_watts = 1.0;
  cfg.power.spinup_watts = 20.0;
  cfg.power.spindown_watts = 10.0;
  cfg.power.spinup_seconds = 6.0;
  cfg.power.spindown_seconds = 4.0;  // breakeven = 16 s
  return cfg;
}

trace::Trace sparse_trace(std::size_t n, double gap, DataId num_data) {
  std::vector<trace::TraceRecord> recs;
  for (std::size_t i = 0; i < n; ++i) {
    trace::TraceRecord r;
    r.time = gap * static_cast<double>(i);
    r.data = static_cast<DataId>(i % num_data);
    r.is_read = true;
    recs.push_back(r);
  }
  return trace::Trace(std::move(recs));
}

placement::PlacementMap small_placement(DiskId disks, DataId data,
                                        unsigned rf, std::uint64_t seed) {
  placement::ZipfPlacementConfig cfg;
  cfg.num_disks = disks;
  cfg.num_data = data;
  cfg.replication_factor = rf;
  cfg.zipf_z = 1.0;
  cfg.seed = seed;
  return placement::make_zipf_placement(cfg);
}

TEST(RunAlwaysOn, EnergyIsIdlePowerTimesFleetTimesHorizon) {
  const auto cfg = small_config();
  const auto placement = small_placement(8, 32, 2, 1);
  const auto trace = sparse_trace(20, 1.0, 32);
  const auto result = storage::run_always_on(cfg, placement, trace);

  EXPECT_EQ(result.total_requests, trace.size());
  EXPECT_EQ(result.total_spin_ups(), 0u);
  EXPECT_EQ(result.total_spin_downs(), 0u);
  // Disks never leave idle except to serve; energy differs from the pure
  // idle baseline only by the active-vs-idle delta during service.
  const double baseline = result.always_on_energy(cfg.power);
  EXPECT_NEAR(result.total_energy(), baseline, baseline * 0.01);
  EXPECT_GE(result.total_energy(), baseline);
}

TEST(RunOnline, TwoCpmSavesEnergyOnASparseTrace) {
  const auto cfg = small_config();
  const auto placement = small_placement(8, 32, 1, 1);
  // Gaps of 60 s >> breakeven 16 s: every disk should spin down between
  // requests and 2CPM must beat always-on.
  const auto trace = sparse_trace(12, 60.0, 32);

  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy;
  const auto r2cpm = storage::run_online(cfg, placement, trace, sched, policy);
  EXPECT_GT(r2cpm.total_spin_downs(), 0u);
  EXPECT_LT(r2cpm.normalized_energy(cfg.power), 0.75);
}

TEST(RunOnline, SpinUpDelayShowsUpInResponseTimes) {
  const auto cfg = small_config();
  const auto placement = small_placement(4, 8, 1, 3);
  const auto trace = sparse_trace(6, 100.0, 8);

  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy;
  const auto result = storage::run_online(cfg, placement, trace, sched, policy);
  // Disks start standby, so at least the first request per disk waits T_up.
  EXPECT_GT(result.requests_waited_spinup, 0u);
  EXPECT_GE(result.response_times.quantile(1.0), cfg.power.spinup_seconds);
}

TEST(RunOnline, SchedulersOnlyUseReplicaLocations) {
  // The runner EAS_CHECKs placement membership on every dispatch; a full
  // run passing is the assertion.
  const auto cfg = small_config();
  const auto placement = small_placement(10, 64, 3, 7);
  const auto trace = sparse_trace(200, 0.05, 64);

  core::RandomScheduler random(11);
  core::CostFunctionScheduler cost;
  power::FixedThresholdPolicy p1, p2;
  const auto r1 = storage::run_online(cfg, placement, trace, random, p1);
  const auto r2 = storage::run_online(cfg, placement, trace, cost, p2);
  EXPECT_EQ(r1.total_requests, trace.size());
  EXPECT_EQ(r2.total_requests, trace.size());
}

TEST(RunOnline, DeterministicForFixedSeeds) {
  const auto cfg = small_config();
  const auto placement = small_placement(10, 64, 3, 7);
  const auto trace = trace::make_synthetic_trace([] {
    trace::SyntheticTraceConfig c;
    c.num_requests = 500;
    c.num_data = 64;
    c.mean_rate = 50.0;
    c.seed = 5;
    return c;
  }());

  auto run_once = [&] {
    core::RandomScheduler sched(99);
    power::FixedThresholdPolicy policy;
    return storage::run_online(cfg, placement, trace, sched, policy);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.total_energy(), b.total_energy());
  EXPECT_EQ(a.total_spin_ups(), b.total_spin_ups());
  EXPECT_DOUBLE_EQ(a.mean_response(), b.mean_response());
}

TEST(RunBatch, QueueingDelayIsBoundedByOneInterval) {
  const auto cfg = small_config();
  const auto placement = small_placement(8, 32, 2, 1);
  const auto trace = sparse_trace(50, 0.013, 32);

  core::WscBatchScheduler sched(0.1);
  power::FixedThresholdPolicy policy;
  const auto result = storage::run_batch(cfg, placement, trace, sched, policy);
  EXPECT_EQ(result.total_requests, trace.size());
  // Every request waits for the next tick: dispatch - arrival <= interval.
  // Response additionally includes spin-up + service; the minimum response
  // must still reflect some batching delay.
  EXPECT_GT(result.mean_response(), 0.0);
}

TEST(RunBatch, DrainsEveryRequestEvenWithEmptyIntervals) {
  const auto cfg = small_config();
  const auto placement = small_placement(4, 8, 2, 2);
  // Two widely separated clumps; ticks must keep running across the gap.
  std::vector<trace::TraceRecord> recs;
  for (int i = 0; i < 5; ++i) {
    recs.push_back({0.01 * i, static_cast<DataId>(i), 4096, true});
    recs.push_back({50.0 + 0.01 * i, static_cast<DataId>(i), 4096, true});
  }
  const trace::Trace trace(std::move(recs));

  core::WscBatchScheduler sched(0.1);
  power::FixedThresholdPolicy policy;
  const auto result = storage::run_batch(cfg, placement, trace, sched, policy);
  EXPECT_EQ(result.total_requests, trace.size());
}

TEST(RunOffline, OracleAvoidsSpinUpWaits) {
  const auto cfg = small_config();
  const auto placement = small_placement(6, 24, 2, 4);
  // First arrival after T_up so even the initial pre-spin completes in time.
  std::vector<trace::TraceRecord> recs;
  for (int i = 0; i < 12; ++i) {
    recs.push_back({10.0 + 40.0 * i, static_cast<DataId>(i % 24), 4096, true});
  }
  const trace::Trace trace(std::move(recs));

  core::StaticScheduler sched;
  const auto assignment = sched.schedule(trace, placement, cfg.power);
  const auto result =
      storage::run_offline(cfg, placement, trace, assignment, "static");
  EXPECT_EQ(result.total_requests, trace.size());
  EXPECT_EQ(result.requests_waited_spinup, 0u);
  // No request should see more than service time (single-digit ms).
  EXPECT_LT(result.response_times.quantile(1.0), 0.1);
}

TEST(RunOffline, DesAgreesWithAnalyticEvaluator) {
  // The same offline assignment, executed by two independent
  // implementations of the power physics (event-driven vs closed-form),
  // must produce near-identical energy and spin counts. Active-state I/O
  // time is the only modelled difference; with tiny transfers it is noise.
  const auto cfg = small_config();
  const auto placement = small_placement(6, 24, 3, 4);
  std::vector<trace::TraceRecord> recs;
  util::Rng rng(17);
  double t = 20.0;
  for (int i = 0; i < 60; ++i) {
    t += rng.exponential(0.05);  // sparse: mean gap 20 s vs breakeven 16 s
    recs.push_back({t, static_cast<DataId>(rng.next_below(24)), 4096, true});
  }
  const trace::Trace trace(std::move(recs));

  core::MwisOfflineScheduler sched;
  const auto assignment = sched.schedule(trace, placement, cfg.power);

  const auto des =
      storage::run_offline(cfg, placement, trace, assignment, "mwis");
  const auto analytic = core::evaluate_offline(
      trace, assignment, placement.num_disks(), cfg.power, des.horizon);

  EXPECT_EQ(des.total_spin_ups(), analytic.total_spin_ups());
  EXPECT_EQ(des.total_spin_downs(), analytic.total_spin_downs());
  EXPECT_NEAR(des.total_energy(), analytic.total_energy(),
              analytic.total_energy() * 0.01);
}

TEST(RunResult, StateTimeFractionsSumToOne) {
  const auto cfg = small_config();
  const auto placement = small_placement(8, 32, 2, 1);
  const auto trace = sparse_trace(40, 5.0, 32);
  core::CostFunctionScheduler sched;
  power::FixedThresholdPolicy policy;
  const auto result = storage::run_online(cfg, placement, trace, sched, policy);

  std::vector<double> sums(placement.num_disks(), 0.0);
  for (int s = 0; s < disk::kNumDiskStates; ++s) {
    const auto f =
        result.state_time_fractions(static_cast<disk::DiskState>(s));
    for (std::size_t k = 0; k < f.size(); ++k) sums[k] += f[k];
  }
  for (double total : sums) EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EnergyAwareVsOblivious, HeuristicBeatsRandomWithReplication) {
  // The paper's headline: with replicas available, energy-aware routing
  // saves energy relative to Random/Static under identical conditions.
  const auto cfg = small_config();
  const auto placement = small_placement(12, 128, 3, 21);
  trace::SyntheticTraceConfig tc;
  tc.num_requests = 4000;
  tc.num_data = 128;
  tc.mean_rate = 10.0;  // sparse enough that spin-downs are on the table
  tc.seed = 31;
  const auto trace = trace::make_synthetic_trace(tc);

  core::RandomScheduler random(5);
  core::CostFunctionScheduler heuristic;  // alpha=0.2, beta=100
  power::FixedThresholdPolicy p1, p2;
  const auto r_random =
      storage::run_online(cfg, placement, trace, random, p1);
  const auto r_heur =
      storage::run_online(cfg, placement, trace, heuristic, p2);

  EXPECT_LT(r_heur.total_energy(), r_random.total_energy());
}

}  // namespace
}  // namespace eas
