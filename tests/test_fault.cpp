// Fault subsystem tests: FailureView semantics, injector determinism, and
// the degraded-mode path end to end under every registered scheduler.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/basic_schedulers.hpp"
#include "fault/failure_view.hpp"
#include "fault/injector.hpp"
#include "paper_example.hpp"
#include "power/fixed_threshold.hpp"
#include "power/policy.hpp"
#include "runner/emit.hpp"
#include "runner/experiment.hpp"
#include "runner/registry.hpp"
#include "runner/sweep.hpp"
#include "sim/simulator.hpp"
#include "storage/storage_system.hpp"
#include "util/check.hpp"

namespace eas::fault {
namespace {

// ------------------------------------------------------------ FailureView

TEST(FailureView, StartsHealthyAndTracksHealth) {
  FailureView v(4);
  EXPECT_FALSE(v.degraded());
  for (DiskId k = 0; k < 4; ++k) {
    EXPECT_TRUE(v.disk_up(k));
    EXPECT_TRUE(v.accepts_io(k));
  }
  v.set_health(1.0, 2, DiskHealth::kDown);
  EXPECT_TRUE(v.degraded());
  EXPECT_FALSE(v.disk_up(2));
  EXPECT_FALSE(v.accepts_io(2));
  v.set_health(3.0, 2, DiskHealth::kRebuilding);
  EXPECT_TRUE(v.degraded());       // rebuilding still counts as degraded
  EXPECT_FALSE(v.disk_up(2));      // no foreground reads yet
  EXPECT_TRUE(v.accepts_io(2));    // but rebuild writes may land
  v.set_health(5.0, 2, DiskHealth::kUp);
  EXPECT_FALSE(v.degraded());
}

TEST(FailureView, ReplicaReadableRespectsLostRanges) {
  FailureView v(2);
  v.add_lost_range(0.0, 0, 10, 20);
  EXPECT_TRUE(v.degraded());
  EXPECT_FALSE(v.replica_readable(10, 0));
  EXPECT_FALSE(v.replica_readable(15, 0));
  EXPECT_FALSE(v.replica_readable(20, 0));
  EXPECT_TRUE(v.replica_readable(9, 0));
  EXPECT_TRUE(v.replica_readable(21, 0));
  EXPECT_TRUE(v.replica_readable(15, 1));  // other disk unaffected
  // Overlapping add coalesces; partial clear splits.
  v.add_lost_range(1.0, 0, 18, 30);
  EXPECT_FALSE(v.replica_readable(25, 0));
  v.clear_lost_range(2.0, 0, 12, 22);
  EXPECT_TRUE(v.replica_readable(15, 0));
  EXPECT_FALSE(v.replica_readable(11, 0));
  EXPECT_FALSE(v.replica_readable(25, 0));
  v.clear_lost_range(3.0, 0, 0, 100);
  EXPECT_FALSE(v.has_lost_ranges(0));
  EXPECT_FALSE(v.degraded());
}

TEST(FailureView, LiveLocationsFilterPlacementOrder) {
  const auto pm = testing::example_placement();
  FailureView v(pm.num_disks());
  // b3 (data id 2) lives on disks {0, 1, 3}.
  std::vector<DiskId> out;
  EXPECT_TRUE(v.live_locations(pm, 2, out));
  EXPECT_EQ(out, (std::vector<DiskId>{0, 1, 3}));
  EXPECT_EQ(v.first_live(pm, 2), 0u);
  v.set_health(1.0, 0, DiskHealth::kDown);
  EXPECT_TRUE(v.live_locations(pm, 2, out));
  EXPECT_EQ(out, (std::vector<DiskId>{1, 3}));
  EXPECT_EQ(v.first_live(pm, 2), 1u);
  // b1 (data id 0) lives only on disk 0 -> nothing survives.
  EXPECT_FALSE(v.live_locations(pm, 0, out));
  EXPECT_EQ(v.first_live(pm, 0), kInvalidDisk);
}

TEST(FailureView, DegradedTimeIntegratesEpisodes) {
  FailureView v(3);
  v.set_health(10.0, 0, DiskHealth::kDown);
  v.set_health(12.0, 1, DiskHealth::kDown);  // overlap: still one episode
  v.set_health(20.0, 1, DiskHealth::kUp);
  v.set_health(25.0, 0, DiskHealth::kUp);    // episode 1: [10, 25]
  v.set_health(40.0, 2, DiskHealth::kDown);  // episode 2: [40, horizon]
  const auto [seconds, episodes] = v.finalize_degraded(100.0);
  EXPECT_DOUBLE_EQ(seconds, 15.0 + 60.0);
  EXPECT_EQ(episodes, 2u);
}

TEST(FaultProfile, ValidateRejectsNonsense) {
  FaultProfile p;
  p.mttf_seconds = -1.0;
  EXPECT_THROW(p.validate(4), InvariantError);
  p = {};
  p.weibull_shape = 0.0;
  EXPECT_THROW(p.validate(4), InvariantError);
  p = {};
  ScriptedFault f;
  f.disk = 9;  // outside a 4-disk fleet
  p.script.push_back(f);
  EXPECT_THROW(p.validate(4), InvariantError);
  p = {};
  f = {};
  f.kind = ScriptedFault::Kind::kLatentSector;
  f.data_lo = 10;
  f.data_hi = 5;  // inverted
  p.script.push_back(f);
  EXPECT_THROW(p.validate(4), InvariantError);
}

// ----------------------------------------------------------- FaultInjector

struct TimelineEvent {
  double time;
  DiskId disk;
  int what;  // 0 = down, 1 = back, 2 = blocks lost
  bool operator==(const TimelineEvent&) const = default;
};

std::vector<TimelineEvent> record_timeline(const FaultProfile& profile,
                                           DiskId num_disks, double horizon,
                                           FaultStats* stats_out = nullptr) {
  sim::Simulator sim;
  FailureView view(num_disks);
  FaultInjector inj(sim, view, profile);
  std::vector<TimelineEvent> events;
  inj.set_on_disk_down([&](DiskId k, ScriptedFault::Kind) {
    events.push_back({sim.now(), k, 0});
  });
  inj.set_on_disk_back([&](DiskId k, bool) {
    events.push_back({sim.now(), k, 1});
  });
  inj.set_on_blocks_lost([&](DiskId k, DataId, DataId, double) {
    events.push_back({sim.now(), k, 2});
  });
  inj.start(horizon);
  sim.run();
  if (stats_out) *stats_out = inj.stats();
  return events;
}

TEST(FaultInjector, ScriptedTimelineIsExact) {
  FaultProfile p;
  ScriptedFault fail;
  fail.kind = ScriptedFault::Kind::kFailStop;
  fail.disk = 1;
  fail.time = 5.0;
  fail.duration = 10.0;  // replacement online at t=15
  p.script.push_back(fail);
  ScriptedFault lse;
  lse.kind = ScriptedFault::Kind::kLatentSector;
  lse.disk = 2;
  lse.time = 7.0;
  lse.data_lo = 100;
  lse.data_hi = 200;
  p.script.push_back(lse);
  FaultStats stats;
  const auto events = record_timeline(p, 4, 100.0, &stats);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], (TimelineEvent{5.0, 1, 0}));
  EXPECT_EQ(events[1], (TimelineEvent{7.0, 2, 2}));
  EXPECT_EQ(events[2], (TimelineEvent{15.0, 1, 1}));
  EXPECT_EQ(stats.disk_failures, 1u);
  EXPECT_EQ(stats.latent_sector_events, 1u);
  EXPECT_EQ(stats.repairs, 1u);
}

TEST(FaultInjector, ScriptedFaultsBeyondHorizonNeverFire) {
  FaultProfile p;
  ScriptedFault f;
  f.disk = 0;
  f.time = 50.0;
  p.script.push_back(f);
  EXPECT_TRUE(record_timeline(p, 2, 10.0).empty());
}

TEST(FaultInjector, StochasticTimelineIsAPureFunctionOfTheSeed) {
  FaultProfile p;
  p.mttf_seconds = 40.0;
  p.weibull_shape = 1.5;
  p.mttr_seconds = 10.0;
  p.seed = 7;
  const auto a = record_timeline(p, 8, 500.0);
  const auto b = record_timeline(p, 8, 500.0);
  EXPECT_FALSE(a.empty());  // 500 s at MTTF 40 s sees failures w.p. ~1
  EXPECT_EQ(a, b);
  p.seed = 8;
  EXPECT_NE(record_timeline(p, 8, 500.0), a);
}

TEST(FaultInjector, PerDiskStreamsAreIndependent) {
  // Disk k's failure times must not move when the fleet grows: stream k
  // depends only on (seed, k), never on how many other disks exist.
  FaultProfile p;
  p.mttf_seconds = 50.0;
  p.mttr_seconds = 5.0;
  p.seed = 3;
  const auto small = record_timeline(p, 2, 400.0);
  const auto large = record_timeline(p, 6, 400.0);
  std::vector<TimelineEvent> small_d0, large_d0;
  for (const auto& e : small) {
    if (e.disk == 0) small_d0.push_back(e);
  }
  for (const auto& e : large) {
    if (e.disk == 0) large_d0.push_back(e);
  }
  EXPECT_FALSE(small_d0.empty());
  EXPECT_EQ(small_d0, large_d0);
}

TEST(FaultInjector, TransientTimeoutRepairsWithoutRebuild) {
  FaultProfile p;
  ScriptedFault f;
  f.kind = ScriptedFault::Kind::kTransient;
  f.disk = 0;
  f.time = 2.0;
  f.duration = 3.0;
  p.script.push_back(f);
  sim::Simulator sim;
  FailureView view(2);
  FaultInjector inj(sim, view, p);
  bool needed_rebuild = true;
  inj.set_on_disk_back([&](DiskId, bool needs) { needed_rebuild = needs; });
  inj.start(100.0);
  sim.run();
  EXPECT_FALSE(needed_rebuild);
  EXPECT_EQ(inj.stats().transient_timeouts, 1u);
  EXPECT_EQ(inj.stats().disk_failures, 0u);
  EXPECT_EQ(inj.stats().repairs, 1u);
  EXPECT_TRUE(view.disk_up(0));
}

TEST(FaultInjector, WeibullShapeOneIsExponentialWithTheGivenMean) {
  util::Rng rng(42);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = FaultInjector::weibull(rng, 1.0, 30.0);
    ASSERT_GE(x, 0.0);
    ASSERT_TRUE(std::isfinite(x));
    sum += x;
  }
  EXPECT_NEAR(sum / 20000.0, 30.0, 1.0);
}

// ------------------------------------------------- degraded-mode end to end

/// Trace over the paper's six blocks, one request per second.
trace::Trace example_trace(int rounds) {
  std::vector<trace::TraceRecord> recs;
  double t = 0.0;
  for (int i = 0; i < rounds; ++i) {
    for (DataId b = 0; b < 6; ++b) {
      trace::TraceRecord r;
      r.time = t;
      r.data = b;
      r.size_bytes = 64 * 1024;
      r.is_read = true;
      recs.push_back(r);
      t += 1.0;
    }
  }
  return trace::Trace(std::move(recs));
}

TEST(DegradedRun, FailStopCountsFailoversAndUnavailable) {
  // Disk 0 dies at t=5 and never returns. b1 (data 0) lives only on disk 0,
  // so its later requests are unavailable; b2/b3/b5 (data 1, 2, 4) fail over.
  storage::SystemConfig cfg;
  cfg.initial_state = disk::DiskState::Idle;
  ScriptedFault f;
  f.disk = 0;
  f.time = 5.0;
  cfg.fault.script.push_back(f);
  core::StaticScheduler sched;
  power::AlwaysOnPolicy policy;
  const auto r = storage::run_online(cfg, testing::example_placement(),
                                     example_trace(4), sched, policy);
  EXPECT_TRUE(r.faults_enabled);
  EXPECT_EQ(r.fault_stats.disk_failures, 1u);
  EXPECT_GT(r.fault_stats.failovers, 0u);
  EXPECT_GT(r.fault_stats.unavailable_requests, 0u);
  EXPECT_GT(r.fault_stats.degraded_seconds, 0.0);
  EXPECT_EQ(r.fault_stats.degraded_episodes, 1u);
  // Unavailable requests never produce a response sample.
  EXPECT_LT(r.response_times.count(), example_trace(4).size());
}

TEST(DegradedRun, RepairRebuildsFromSurvivingReplicas) {
  // Disk 0 dies at t=2, replacement online at t=12. Disk 0 stored data
  // {0, 1, 2, 4}; data 0 had no other replica, so the rebuild recovers
  // exactly three items and reports one as lost.
  storage::SystemConfig cfg;
  cfg.initial_state = disk::DiskState::Idle;
  ScriptedFault f;
  f.disk = 0;
  f.time = 2.0;
  f.duration = 10.0;
  cfg.fault.script.push_back(f);
  core::StaticScheduler sched;
  power::AlwaysOnPolicy policy;
  const auto r = storage::run_online(cfg, testing::example_placement(),
                                     example_trace(6), sched, policy);
  EXPECT_EQ(r.fault_stats.repairs, 1u);
  EXPECT_EQ(r.fault_stats.rebuilds_completed, 1u);
  EXPECT_EQ(r.fault_stats.rebuild_items_lost, 1u);
  EXPECT_EQ(r.fault_stats.rebuild_bytes,
            3u * cfg.fault.rebuild_bytes_per_item);
}

TEST(DegradedRun, RebuildPinsTheDiskAgainstSpinDown) {
  // Same failure under a 2CPM threshold policy: the run must complete with
  // the rebuild done even though the policy would love to spin the
  // rebuilding disk down between internal requests.
  storage::SystemConfig cfg;
  cfg.initial_state = disk::DiskState::Idle;
  ScriptedFault f;
  f.disk = 0;
  f.time = 2.0;
  f.duration = 10.0;
  cfg.fault.script.push_back(f);
  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy;
  const auto r = storage::run_online(cfg, testing::example_placement(),
                                     example_trace(6), sched, policy);
  EXPECT_EQ(r.fault_stats.rebuilds_completed, 1u);
  EXPECT_EQ(r.fault_stats.rebuild_bytes,
            3u * cfg.fault.rebuild_bytes_per_item);
}

TEST(DegradedRun, ResultJsonGrowsAFaultsObjectOnlyWhenEnabled) {
  storage::SystemConfig cfg;
  cfg.initial_state = disk::DiskState::Idle;
  core::StaticScheduler sched;
  power::AlwaysOnPolicy policy;
  const auto clean = storage::run_online(cfg, testing::example_placement(),
                                         example_trace(2), sched, policy);
  EXPECT_EQ(clean.to_json().find("\"faults\""), std::string::npos);

  ScriptedFault f;
  f.disk = 0;
  f.time = 1.0;
  cfg.fault.script.push_back(f);
  const auto faulty = storage::run_online(cfg, testing::example_placement(),
                                          example_trace(2), sched, policy);
  const std::string json = faulty.to_json();
  EXPECT_NE(json.find("\"faults\""), std::string::npos);
  EXPECT_NE(json.find("\"unavailable_requests\""), std::string::npos);
  EXPECT_NE(json.find("\"rebuild_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded_seconds\""), std::string::npos);
}

// ------------------------------------------- full roster + thread identity

runner::ExperimentParams small_faulty_params() {
  return runner::ExperimentBuilder(runner::Workload::kCello)
      .requests(1200)
      .disks(24)
      .fail_disk_at(/*disk=*/3, /*time=*/0.5)
      .build();
}

TEST(DegradedSweep, SingleDiskFailureRunsUnderEveryRegisteredScheduler) {
  const auto p = small_faulty_params();
  const auto trace = runner::make_workload(p.workload, p.trace_seed,
                                           p.num_requests);
  const auto placement = runner::make_placement(p);
  for (const auto& spec : runner::SchedulerRegistry::global().specs()) {
    SCOPED_TRACE(spec.name);
    const auto r = runner::run_cell(spec, p, trace, placement);
    EXPECT_TRUE(r.faults_enabled);
    EXPECT_EQ(r.fault_stats.disk_failures, 1u);
    EXPECT_GT(r.fault_stats.degraded_seconds, 0.0);
    // rf=3 over 24 disks: losing one disk never strands a block.
    EXPECT_EQ(r.fault_stats.unavailable_requests, 0u);
    EXPECT_EQ(r.total_requests, p.num_requests);
  }
}

TEST(DegradedSweep, BitIdenticalAcrossThreadCounts) {
  const auto faulty = small_faulty_params();
  const auto clean = runner::ExperimentBuilder(runner::Workload::kCello)
                         .requests(1200)
                         .disks(24)
                         .build();
  auto cell = [](const char* sched, const runner::ExperimentParams& p,
                 const char* tag) {
    runner::CellSpec c;
    c.scheduler = sched;
    c.params = p;
    c.tag = tag;
    return c;
  };
  auto make_cells = [&] {
    std::vector<runner::CellSpec> cells;
    for (const char* sched : {"static", "heuristic", "wsc"}) {
      cells.push_back(cell(sched, clean, "clean"));
      cells.push_back(cell(sched, faulty, "fail-3"));
    }
    return cells;
  };
  // Compare the deterministic payload of every cell (wall time and RSS
  // legitimately vary between runs, so emit_cells output is not comparable
  // as a whole).
  auto payload = [](const std::vector<runner::CellResult>& results) {
    std::ostringstream os;
    for (const auto& r : results) {
      EXPECT_EQ(r.status, runner::CellStatus::kOk);
      os << r.spec.scheduler << '|' << r.spec.tag << '|'
         << r.result.to_json(/*include_disks=*/true) << '\n';
    }
    return os.str();
  };
  runner::SweepOptions one;
  one.threads = 1;
  runner::SweepOptions four;
  four.threads = 4;
  const auto serial_results = runner::SweepRunner(one).run(make_cells());
  const auto parallel_results = runner::SweepRunner(four).run(make_cells());
  EXPECT_EQ(payload(serial_results), payload(parallel_results));
  // The fault cells carry the energy delta against their fault-free twin.
  std::ostringstream emitted;
  runner::emit_cells(emitted, serial_results, runner::EmitFormat::kJson);
  EXPECT_NE(emitted.str().find("energy_delta_vs_fault_free_j"),
            std::string::npos);
}

TEST(DegradedSweep, AvailabilityColumnsAppearOnlyWithFaults) {
  const auto clean = runner::ExperimentBuilder(runner::Workload::kCello)
                         .requests(600)
                         .disks(12)
                         .build();
  auto cell = [](const char* sched, const runner::ExperimentParams& p,
                 const char* tag) {
    runner::CellSpec c;
    c.scheduler = sched;
    c.params = p;
    c.tag = tag;
    return c;
  };
  runner::SweepOptions opts;
  opts.threads = 2;
  runner::SweepRunner sweeper(opts);
  const auto clean_results = sweeper.run({cell("static", clean, "clean")});
  std::ostringstream clean_csv;
  runner::emit_cells(clean_csv, clean_results, runner::EmitFormat::kCsv);
  EXPECT_EQ(clean_csv.str().find("unavailable"), std::string::npos);

  const auto faulty = runner::ExperimentBuilder(clean)
                          .fail_disk_at(2, 0.5)
                          .build();
  const auto fault_results = sweeper.run(
      {cell("static", clean, "clean"), cell("static", faulty, "fail-2")});
  std::ostringstream csv;
  runner::emit_cells(csv, fault_results, runner::EmitFormat::kCsv);
  EXPECT_NE(csv.str().find("unavailable"), std::string::npos);
  EXPECT_NE(csv.str().find("rebuild_bytes"), std::string::npos);
  EXPECT_NE(csv.str().find("energy_delta_j"), std::string::npos);
}

}  // namespace
}  // namespace eas::fault
