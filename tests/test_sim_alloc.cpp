// Allocation-freedom tests for the event kernel. The slot-pool simulator
// promises zero heap allocations per steady-state schedule/fire (and
// schedule/cancel) cycle for callbacks that fit InlineCallback's 48-byte
// buffer; this binary replaces global operator new with a counting shim and
// asserts the promise literally.
//
// The shim lives in this dedicated test binary so the rest of the suite is
// unaffected. Counting is on the allocation side only: scalar and array new
// both funnel through the counter, deletes are pass-through frees.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "obs/trace_recorder.hpp"
#include "sim/simulator.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eas::sim {
namespace {

/// Allocations observed while running `body` after the pool is warm.
template <typename Body>
std::uint64_t allocations_during(Body&& body) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  body();
  return g_news.load(std::memory_order_relaxed) - before;
}

TEST(SimulatorAllocation, SteadyStateScheduleFireIsAllocationFree) {
  Simulator sim;
  double acc = 0.0;

  // Warm-up: grow the slot pool, callback chunk, and heap to their
  // steady-state high-water marks, then drain.
  for (int i = 0; i < 512; ++i) {
    sim.schedule_in(1e-3 * (i % 64), [&acc, i] { acc += i; });
  }
  sim.run();

  const std::uint64_t n = allocations_during([&] {
    for (int round = 0; round < 100; ++round) {
      for (int i = 0; i < 512; ++i) {
        sim.schedule_in(1e-3 * (i % 64), [&acc, i] { acc += i; });
      }
      sim.run();
    }
  });
  EXPECT_EQ(n, 0u) << "schedule/fire cycles allocated";
  EXPECT_NE(acc, 0.0);  // keep the callbacks observable
}

TEST(SimulatorAllocation, SteadyStateScheduleCancelIsAllocationFree) {
  Simulator sim;
  double acc = 0.0;
  std::vector<EventHandle> handles;
  handles.reserve(512);

  for (int i = 0; i < 512; ++i) {
    handles.push_back(sim.schedule_in(1.0 + i, [&acc, i] { acc += i; }));
  }
  for (const EventHandle& h : handles) ASSERT_TRUE(sim.cancel(h));

  const std::uint64_t n = allocations_during([&] {
    for (int round = 0; round < 100; ++round) {
      handles.clear();
      for (int i = 0; i < 512; ++i) {
        handles.push_back(sim.schedule_in(1.0 + i, [&acc, i] { acc += i; }));
      }
      for (const EventHandle& h : handles) sim.cancel(h);
    }
  });
  EXPECT_EQ(n, 0u) << "schedule/cancel cycles allocated";
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimulatorAllocation, TracingCompiledInButOffAddsNoAllocations) {
  // The observability hooks ride the simulator as a nullable pointer; with
  // no recorder attached (the default) every EAS_OBS site is one untaken
  // branch and the steady-state zero-allocation promise must hold verbatim.
  Simulator sim;
  ASSERT_EQ(sim.recorder(), nullptr);
  double acc = 0.0;
  for (int i = 0; i < 512; ++i) {
    sim.schedule_in(1e-3 * (i % 64), [&acc, i] { acc += i; });
  }
  sim.run();

  const std::uint64_t n = allocations_during([&] {
    for (int round = 0; round < 100; ++round) {
      for (int i = 0; i < 512; ++i) {
        sim.schedule_in(1e-3 * (i % 64), [&acc, i] { acc += i; });
      }
      sim.run();
    }
  });
  EXPECT_EQ(n, 0u) << "tracing-off schedule/fire cycles allocated";
}

TEST(SimulatorAllocation, RecordingIntoAWarmRingIsAllocationFree) {
  // With tracing *on*, the ring is preallocated at construction; recording
  // through the EAS_OBS macro must never touch the heap, even after the
  // ring wraps.
  obs::TraceRecorder rec({.enabled = true, .capacity = 256});
  Simulator sim;
  sim.set_recorder(&rec);

  const std::uint64_t n = allocations_during([&] {
    for (int i = 0; i < 4096; ++i) {
      EAS_OBS(sim.recorder(),
              record(1e-3 * i, obs::Ev::kQueue,
                     static_cast<std::uint64_t>(i), 3, 7));
    }
  });
  EXPECT_EQ(n, 0u) << "warm-ring recording allocated";
#if !defined(EASCHED_NO_OBS)
  EXPECT_EQ(rec.recorded(), 4096u);
  EXPECT_EQ(rec.dropped(), 4096u - 256u);
#endif
}

TEST(SimulatorAllocation, OversizedCallbacksStillWorkButMayAllocate) {
  // Callbacks beyond the 48-byte inline buffer take the heap fallback —
  // documented, not forbidden. This test pins the *functional* behaviour so
  // the fallback path keeps coverage in the allocation-counting binary.
  Simulator sim;
  struct Big {
    double pad[8];  // 64 bytes: exceeds kInlineSize
  };
  Big big{{1, 2, 3, 4, 5, 6, 7, 8}};
  double sum = 0.0;
  sim.schedule_at(1.0, [big, &sum] {
    for (double v : big.pad) sum += v;
  });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_DOUBLE_EQ(sum, 36.0);
}

}  // namespace
}  // namespace eas::sim
