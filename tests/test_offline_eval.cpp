// Tests for the analytic offline evaluator (Lemma 1) and the local-search
// refinement, including the accounting identity that makes single-request
// move deltas exact.
#include <gtest/gtest.h>

#include <numeric>

#include "core/basic_schedulers.hpp"
#include "core/offline_eval.hpp"
#include "core/refine.hpp"
#include "paper_example.hpp"
#include "util/rng.hpp"

namespace eas::core {
namespace {

using testing::example_offline_trace;
using testing::example_placement;
using testing::example_power;

OfflineAssignment assignment_of(std::vector<DiskId> disks) {
  OfflineAssignment a;
  a.disk_of_request = std::move(disks);
  return a;
}

TEST(OfflineEvaluator, EmptyDiskSpendsTheWholeHorizonInStandby) {
  const auto report = evaluate_offline(example_offline_trace(),
                                       assignment_of({0, 0, 0, 0, 0, 0}), 4,
                                       example_power());
  for (DiskId k = 1; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(report.disk_stats[k].seconds(disk::DiskState::Standby),
                     report.horizon);
    EXPECT_EQ(report.disk_stats[k].spin_ups, 0u);
  }
}

TEST(OfflineEvaluator, DefaultHorizonLetsEveryDiskSettle) {
  const auto p = example_power();
  const auto report = evaluate_offline(
      example_offline_trace(), assignment_of({0, 0, 0, 2, 3, 3}), 4, p);
  EXPECT_DOUBLE_EQ(report.horizon, 13.0 + p.breakeven_seconds());
  // Every used disk finishes spun down: idle+standby+transitions = horizon.
  for (const auto& ds : report.disk_stats) {
    EXPECT_NEAR(ds.total_seconds(), report.horizon, 1e-9);
  }
}

TEST(OfflineEvaluator, SpinCountsFollowTheGapStructure) {
  // d1 serves r1..r3 (one contiguous pile -> 1 up, 1 down); r5 at 12 is
  // outside the 5 s window from r3 at 3, so on the same disk it forces a
  // second cycle.
  const auto report = evaluate_offline(example_offline_trace(),
                                       assignment_of({0, 0, 0, 2, 0, 2}), 4,
                                       example_power());
  EXPECT_EQ(report.disk_stats[0].spin_ups, 2u);
  EXPECT_EQ(report.disk_stats[0].spin_downs, 2u);
  EXPECT_EQ(report.disk_stats[2].spin_ups, 2u);
}

TEST(OfflineEvaluator, TimelineEqualsPerRequestConsumptionWhenStandbyIsFree) {
  // The identity behind refine.cpp: with 0 W standby, total timeline energy
  // == sum of Lemma-1 per-request consumptions (initial spin-up exactly
  // offsets the final ceiling overcount).
  util::Rng rng(11);
  auto p = example_power();  // standby already 0, but with spin costs now:
  p.spinup_watts = 3.0;
  p.spinup_seconds = 1.0;
  p.spindown_watts = 2.0;
  p.spindown_seconds = 0.5;
  p.breakeven_override_seconds = -1.0;  // derive: (3+1)/1 = 4 s

  const auto placement = example_placement();
  // Random valid assignment over a random trace on the 6 example data.
  std::vector<trace::TraceRecord> recs;
  double t = 5.0;
  for (int i = 0; i < 50; ++i) {
    t += rng.exponential(0.4);
    recs.push_back({t, static_cast<DataId>(rng.next_below(6)), 4096, true});
  }
  const trace::Trace trace(std::move(recs));
  OfflineAssignment a;
  for (const auto& rec : trace.records()) {
    const auto& locs = placement.locations(rec.data);
    a.disk_of_request.push_back(locs[rng.next_below(locs.size())]);
  }

  const auto report = evaluate_offline(trace, a, 4, p);
  double consumption = 0.0;
  for (double e : report.request_energy) consumption += e;
  EXPECT_NEAR(report.total_energy(), consumption,
              1e-6 * std::max(1.0, consumption));
}

TEST(OfflineEvaluator, SavingPlusConsumptionIsTheCeilingBudget) {
  const auto p = example_power();
  const auto trace = example_offline_trace();
  const auto report =
      evaluate_offline(trace, assignment_of({0, 0, 0, 2, 3, 3}), 4, p);
  EXPECT_DOUBLE_EQ(
      report.total_saving(p) +
          std::accumulate(report.request_energy.begin(),
                          report.request_energy.end(), 0.0),
      static_cast<double>(trace.size()) * p.max_request_energy());
}

TEST(OfflineEvaluator, HorizonClampTruncatesTheTail) {
  const auto p = example_power();
  const auto full = evaluate_offline(example_offline_trace(),
                                     assignment_of({0, 0, 0, 2, 3, 3}), 4, p);
  const auto clamped =
      evaluate_offline(example_offline_trace(),
                       assignment_of({0, 0, 0, 2, 3, 3}), 4, p, 13.0);
  EXPECT_LT(clamped.total_energy(), full.total_energy());
  for (const auto& ds : clamped.disk_stats) {
    EXPECT_NEAR(ds.total_seconds(), 13.0, 1e-9);
  }
}

// ------------------------------------------------------------------ refine

TEST(Refine, ImprovesScheduleAToScheduleBEnergy) {
  // From the offline variant of Fig 2's schedule A (27 J), single-request
  // moves strictly improve down to schedule B's 23 J: r2 then r3 migrate
  // from d2 onto d1, tightening d1's pile.
  auto a = assignment_of({0, 1, 1, 2, 0, 2});
  const auto stats = refine_offline_assignment(
      a, example_offline_trace(), example_placement(), example_power());
  // r2 and r3 are adjacent on d2 and migrate to d1 — either as one pair
  // move or as two cascading single moves.
  EXPECT_GE(stats.moves + stats.pair_moves, 1u);
  EXPECT_LT(stats.energy_delta, 0.0);
  const auto report = evaluate_offline(example_offline_trace(), a, 4,
                                       example_power());
  EXPECT_DOUBLE_EQ(report.total_energy(), 23.0);
}

TEST(Refine, ScheduleBIsALocalOptimum) {
  // Documented limitation: reaching the global optimum C from B requires
  // moving r5 (from d1) and r6 (from d3) — residing on *different* disks —
  // jointly onto d4. Neither single moves nor adjacent-pair moves (which
  // only relocate two consecutive requests of one disk) cover that, so
  // strict hill-climbing stays at B. Cross-disk pairing is the MWIS stage's
  // job (it selects X(5,6,4) directly); refinement only polishes.
  auto b = assignment_of({0, 0, 0, 2, 0, 2});
  const auto stats = refine_offline_assignment(
      b, example_offline_trace(), example_placement(), example_power());
  EXPECT_EQ(stats.moves + stats.pair_moves, 0u);
  const auto report = evaluate_offline(example_offline_trace(), b, 4,
                                       example_power());
  EXPECT_DOUBLE_EQ(report.total_energy(), 23.0);
}

TEST(Refine, NeverIncreasesEnergy) {
  util::Rng rng(23);
  const auto placement = example_placement();
  const auto p = example_power();
  for (int round = 0; round < 20; ++round) {
    std::vector<trace::TraceRecord> recs;
    double t = 0.0;
    for (int i = 0; i < 30; ++i) {
      t += rng.exponential(0.5);
      recs.push_back({t, static_cast<DataId>(rng.next_below(6)), 4096, true});
    }
    const trace::Trace trace(std::move(recs));
    OfflineAssignment a;
    for (const auto& rec : trace.records()) {
      const auto& locs = placement.locations(rec.data);
      a.disk_of_request.push_back(locs[rng.next_below(locs.size())]);
    }
    const double before = evaluate_offline(trace, a, 4, p).total_energy();
    const auto stats = refine_offline_assignment(a, trace, placement, p, 5);
    a.validate(trace, placement);
    const double after = evaluate_offline(trace, a, 4, p).total_energy();
    EXPECT_LE(after, before + 1e-9) << "round " << round;
    EXPECT_NEAR(after - before, stats.energy_delta,
                1e-6 * std::max(1.0, before));
  }
}

TEST(Refine, FixedPointMakesNoMoves) {
  auto a = assignment_of({0, 0, 0, 2, 3, 3});  // already optimal (C)
  const auto stats = refine_offline_assignment(
      a, example_offline_trace(), example_placement(), example_power());
  EXPECT_EQ(stats.moves, 0u);
  EXPECT_EQ(a.disk_of_request, (std::vector<DiskId>{0, 0, 0, 2, 3, 3}));
}

TEST(Refine, RespectsMaxPasses) {
  auto a = assignment_of({0, 0, 0, 2, 0, 2});
  const auto stats = refine_offline_assignment(
      a, example_offline_trace(), example_placement(), example_power(), 1);
  EXPECT_EQ(stats.passes, 1u);
}

}  // namespace
}  // namespace eas::core
